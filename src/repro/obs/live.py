"""Live run telemetry: a single self-overwriting stderr progress line.

During parallel runs the engine feeds one :class:`LiveProgress` instance
from its completion callbacks (cache hits, per-job commits, resilience
failures).  The reporter renders at most one line -- rewritten in place
with ``\\r``/erase-to-EOL -- so a long Table-3 sweep shows jobs done /
cached / retried / failed and the live cache hit rate without scrolling
the report output away.

The reporter is deliberately dumb about *when* it is appropriate:
:func:`live_progress_enabled` centralizes the policy (an interactive
stderr, or ``REPRO_LIVE=1`` to force it for tests and log capture;
``REPRO_LIVE=0`` always wins) and the runner decides.  Updates are
throttled to ``min_interval`` seconds except for the first and final
renders, so thousands of fast cache hits do not spend their savings on
terminal writes.
"""

from __future__ import annotations

import os
import sys
import time


def live_progress_enabled(stream=None, environ=None) -> bool:
    """Whether the progress line should render (policy, not mechanism)."""
    env = os.environ if environ is None else environ
    forced = env.get("REPRO_LIVE")
    if forced is not None:
        return forced not in ("", "0")
    stream = sys.stderr if stream is None else stream
    return bool(getattr(stream, "isatty", lambda: False)())


class LiveProgress:
    """One-line, in-place progress rendering for parallel batches."""

    def __init__(self, stream=None, min_interval: float = 0.2) -> None:
        self.stream = sys.stderr if stream is None else stream
        self.min_interval = min_interval
        self.total = 0
        self.done = 0
        self.cached = 0
        self.retried = 0
        self.failed = 0
        self.degraded = 0
        self._last_render = 0.0
        self._dirty = False

    # -- feed ---------------------------------------------------------------

    def start_batch(self, jobs: int) -> None:
        """Announce ``jobs`` more units of work (batches accumulate)."""
        self.total += jobs
        self._render()

    def job_cached(self) -> None:
        self.done += 1
        self.cached += 1
        self._render()

    def job_done(self) -> None:
        self.done += 1
        self._render()

    def job_failed(self, kind: str, resolution: str) -> None:
        """One abnormal event from the resilience layer (not terminal:
        a retried or degraded job still completes and counts as done)."""
        self.failed += 1
        if resolution == "retry":
            self.retried += 1
        else:
            self.degraded += 1
        self._render()

    # -- render -------------------------------------------------------------

    def _line(self) -> str:
        lookups = self.done
        hit_rate = self.cached / lookups if lookups else 0.0
        parts = [
            f"jobs {self.done}/{self.total}",
            f"cached {self.cached} ({hit_rate:.0%})",
        ]
        if self.retried:
            parts.append(f"retried {self.retried}")
        if self.degraded:
            parts.append(f"degraded {self.degraded}")
        if self.failed:
            parts.append(f"faults {self.failed}")
        return "[run] " + " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            self._dirty = True
            return
        self._last_render = now
        self._dirty = False
        try:
            self.stream.write("\r\x1b[K" + self._line())
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def clear(self) -> None:
        """Erase the line so unrelated output starts at column zero."""
        try:
            self.stream.write("\r\x1b[K")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def finish(self) -> None:
        """Final render plus the newline that releases the line."""
        self._render(force=True)
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass
