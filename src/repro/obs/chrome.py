"""Chrome trace-event export of the merged span buffer.

Writes the JSON object format of the Trace Event specification (the one
``chrome://tracing``, Perfetto and ``about:tracing`` load directly): a
``traceEvents`` list of complete (``"ph": "X"``) events -- one per span,
with microsecond ``ts``/``dur``, the recording ``pid``/``tid`` and the span
attributes under ``args`` -- plus instant (``"ph": "i"``) events for the
point markers attached to spans (retries, crashes, degradations) and
metadata (``"ph": "M"``) records naming each process track.

Timestamps are epoch-anchored microseconds shifted so the earliest span in
the export starts at 0; spans from different processes were recorded
against the same wall clock, so one shift preserves cross-process
alignment and the per-pid tracks line up the way the run actually
interleaved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.obs.tracer import SpanRecord

#: ``otherData`` tag identifying the producer in exported files.
_PRODUCER = "repro.obs"


def _track_names(spans: Sequence[SpanRecord], parent_pid: int | None) -> dict[int, str]:
    """Stable display name per pid track (parent first, workers by pid)."""
    names = {}
    for record in spans:
        if record.pid not in names:
            names[record.pid] = (
                "parent" if record.pid == parent_pid else f"worker-{record.pid}"
            )
    return names


def trace_events(
    spans: Sequence[SpanRecord],
    parent_pid: int | None = None,
) -> list[dict]:
    """The ``traceEvents`` list for ``spans`` (metadata events first)."""
    origin = min((record.start_us for record in spans), default=0)
    events: list[dict] = []
    for pid, label in sorted(_track_names(spans, parent_pid).items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in spans:
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": record.start_us - origin,
                "dur": record.duration_us,
                "pid": record.pid,
                "tid": record.tid,
                "args": dict(record.attributes),
            }
        )
        for ts_us, name, attributes in record.events:
            events.append(
                {
                    "name": name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant marker
                    "ts": max(0, ts_us - origin),
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": dict(attributes),
                }
            )
    return events


def chrome_payload(
    spans: Sequence[SpanRecord],
    run_id: str | None = None,
    parent_pid: int | None = None,
) -> dict:
    """The full JSON-object-format payload (events + run metadata)."""
    return {
        "traceEvents": trace_events(spans, parent_pid=parent_pid),
        "displayTimeUnit": "ms",
        "otherData": {"producer": _PRODUCER, "run_id": run_id},
    }


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[SpanRecord],
    run_id: str | None = None,
    parent_pid: int | None = None,
) -> Path:
    """Serialize ``spans`` to ``path`` in Chrome trace-event format."""
    path = Path(path)
    payload = chrome_payload(spans, run_id=run_id, parent_pid=parent_pid)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path
