"""Hierarchical span tracer: the core of the observability layer.

The tracer records *spans* -- named, nested intervals of wall-clock time --
into a process-local buffer.  Nesting follows the call structure through a
per-thread span stack, so a Table-3 run produces the hierarchy the
exporters render::

    run -> benchmark job -> flow pass -> DP/recovery round -> stage

Every span carries monotonic-quality timestamps (epoch-anchored start,
``perf_counter``-measured duration), the recording ``pid``/``tid``, free-form
key/value attributes (node counts, cache keys, retry attempts) and a list
of point-in-time *events* (retries, crashes, degradations).  Alongside the
spans the tracer keeps named counters and the legacy per-stage second
accumulators, which is what lets :mod:`repro.profiling` stay a thin shim:
``profiling.stage``/``profiling.count`` delegate here, and the disabled
path remains a single module-attribute read (pinned by the component
micro-benchmark).

Two independent switches share the machinery:

* **profile mode** (:func:`enable_profile`) -- the historical ``--profile``
  accounting: per-stage seconds/entries plus counters.
* **trace mode** (:func:`enable_tracing`) -- full span recording for the
  Chrome-trace/metrics/JSONL exporters, tagged with a run id.

Either one flips the module-level ``ENABLED`` fast-path flag; both off is
the default and costs nothing on the hot paths.

**Cross-process protocol.**  Worker processes never ship the global buffer
wholesale: the engine's pool initializer calls :func:`activate_worker` with
the parent's :func:`worker_config`, each job drains its locally buffered
spans/counters into a picklable *blob* (:func:`drain_worker_blob`) that
rides back inside the job payload, and the parent folds blobs into its own
buffer with :func:`merge_blob`.  Span ids are only unique per process;
merged spans stay distinguishable through their ``pid`` tag, which is also
how the Chrome exporter lays out one track per worker.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Fast-path switch: True when either profile or trace mode is on.  Hot
#: call sites (``stage``/``span``/``count``/``event``/``annotate``) read
#: this one attribute and return immediately when it is False.
ENABLED = False

_PROFILE = False
_TRACE = False

#: True in pool workers activated via :func:`activate_worker`: spans and
#: counters buffer locally and are shipped back per job instead of being
#: reported from this process.
_REMOTE = False

_RUN_ID: str | None = None

# Span storage (completed spans, in completion order) plus the legacy
# per-stage accumulators the profiling shim reports.
_SPANS: list["SpanRecord"] = []
_COUNTERS: dict[str, float] = {}
_STAGE_SECONDS: dict[str, float] = {}
_STAGE_ENTRIES: dict[str, int] = {}

# Worker-side drain cursor: index into _SPANS of the first span not yet
# shipped, so each job blob carries only its own spans.
_DRAINED_SPANS = 0
_DRAINED_COUNTERS: dict[str, float] = {}
_DRAINED_STAGE_SECONDS: dict[str, float] = {}
_DRAINED_STAGE_ENTRIES: dict[str, int] = {}

_NEXT_SPAN_ID = 0
_LOCK = threading.Lock()

_STACK = threading.local()  # per-thread open-span stack


@dataclass
class SpanRecord:
    """One completed (or still open) span."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_us: int  # microseconds since the Unix epoch
    duration_us: int
    pid: int
    tid: int
    attributes: dict = field(default_factory=dict)
    events: list = field(default_factory=list)  # [(ts_us, name, attrs), ...]

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
            "events": [list(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            span_id=int(data["span_id"]),
            parent_id=data["parent_id"],
            name=str(data["name"]),
            category=str(data["category"]),
            start_us=int(data["start_us"]),
            duration_us=int(data["duration_us"]),
            pid=int(data["pid"]),
            tid=int(data["tid"]),
            attributes=dict(data.get("attributes", {})),
            events=[tuple(event) for event in data.get("events", ())],
        )


class SpanHandle:
    """Mutable view of an open span, yielded by :func:`span`.

    ``set`` records attributes discovered mid-span (node counts, acceptance
    decisions); ``add_event`` attaches a timestamped point event.  The
    disabled path yields a shared no-op handle instead, so call sites never
    branch on tracer state themselves.
    """

    __slots__ = ("_record",)

    def __init__(self, record: SpanRecord | None) -> None:
        self._record = record

    def set(self, key: str, value) -> None:
        if self._record is not None:
            self._record.attributes[key] = value

    def add_event(self, name: str, **attributes) -> None:
        if self._record is not None:
            self._record.events.append((time.time_ns() // 1000, name, attributes))


_NOOP_HANDLE = SpanHandle(None)


def _stack() -> list:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


def _refresh_enabled() -> None:
    global ENABLED
    ENABLED = _PROFILE or _TRACE


def _reset_buffers() -> None:
    global _DRAINED_SPANS, _NEXT_SPAN_ID
    _SPANS.clear()
    _COUNTERS.clear()
    _STAGE_SECONDS.clear()
    _STAGE_ENTRIES.clear()
    _DRAINED_COUNTERS.clear()
    _DRAINED_STAGE_SECONDS.clear()
    _DRAINED_STAGE_ENTRIES.clear()
    _DRAINED_SPANS = 0
    _NEXT_SPAN_ID = 0
    _STACK.spans = []


# -- mode switches -----------------------------------------------------------


def enable_profile(reset: bool = True) -> None:
    """Turn on per-stage accounting (the historical ``--profile`` mode).

    ``reset`` clears the previous figures -- unless trace mode is live, in
    which case the already-recorded spans (and the counters the metrics
    exporter shares) must survive a later ``--profile`` activation.
    """
    global _PROFILE
    if reset and not _TRACE:
        _reset_buffers()
    _PROFILE = True
    _refresh_enabled()


def disable_profile() -> None:
    global _PROFILE
    _PROFILE = False
    _refresh_enabled()


def profile_active() -> bool:
    return _PROFILE


def enable_tracing(run_id: str | None = None, reset: bool = True) -> str:
    """Turn on span recording; returns the run id tagged onto the exporters.

    ``run_id`` defaults to ``$REPRO_RUN_ID`` or a fresh UUID hex string.
    """
    global _TRACE, _RUN_ID
    if reset and not ENABLED:
        _reset_buffers()
    if run_id is None:
        run_id = os.environ.get("REPRO_RUN_ID") or uuid.uuid4().hex
    _RUN_ID = run_id
    _TRACE = True
    _refresh_enabled()
    return run_id


def disable_tracing() -> None:
    global _TRACE
    _TRACE = False
    _refresh_enabled()


def tracing_active() -> bool:
    return _TRACE


def run_id() -> str | None:
    """The current run id (None unless tracing was ever enabled)."""
    return _RUN_ID


# -- recording ---------------------------------------------------------------


def _open_span(name: str, category: str, attributes: dict) -> SpanRecord:
    global _NEXT_SPAN_ID
    stack = _stack()
    parent = stack[-1].span_id if stack else None
    with _LOCK:
        span_id = _NEXT_SPAN_ID
        _NEXT_SPAN_ID += 1
    record = SpanRecord(
        span_id=span_id,
        parent_id=parent,
        name=name,
        category=category,
        start_us=time.time_ns() // 1000,
        duration_us=0,
        pid=os.getpid(),
        tid=threading.get_ident() & 0x7FFFFFFF,
        attributes=attributes,
    )
    stack.append(record)
    return record


def _close_span(record: SpanRecord, started: int) -> None:
    record.duration_us = max(0, (time.perf_counter_ns() - started) // 1000)
    stack = _stack()
    if stack and stack[-1] is record:
        stack.pop()
    else:  # pragma: no cover - unbalanced exit (generator abandoned mid-span)
        try:
            stack.remove(record)
        except ValueError:
            pass
    with _LOCK:
        _SPANS.append(record)


@contextmanager
def span(name: str, category: str = "task", **attributes) -> Iterator[SpanHandle]:
    """Record a nested span around the enclosed work.

    Yields a :class:`SpanHandle` for mid-span attributes/events.  One
    attribute read and a no-op handle when tracing is disabled (profile
    mode alone does not record spans).
    """
    if not _TRACE:
        yield _NOOP_HANDLE
        return
    record = _open_span(name, category, attributes)
    started = time.perf_counter_ns()
    try:
        yield SpanHandle(record)
    finally:
        _close_span(record, started)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Accumulate the wall-clock time of a pipeline stage.

    The unit behind ``repro.profiling.stage``: always feeds the per-stage
    seconds/entries accumulators, and additionally records a ``stage``
    category span when trace mode is on.  One attribute read when disabled.
    """
    if not ENABLED:
        yield
        return
    record = _open_span(name, "stage", {}) if _TRACE else None
    started = time.perf_counter_ns()
    try:
        yield
    finally:
        elapsed = time.perf_counter_ns() - started
        if record is not None:
            _close_span(record, started)
        with _LOCK:
            _STAGE_SECONDS[name] = _STAGE_SECONDS.get(name, 0.0) + elapsed / 1e9
            _STAGE_ENTRIES[name] = _STAGE_ENTRIES.get(name, 0) + 1


def count(name: str, value: float = 1) -> None:
    """Accumulate a named event counter (integers stay integral in JSON)."""
    if not ENABLED:
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def annotate(**attributes) -> None:
    """Set attributes on the innermost open span of this thread (if any)."""
    if not _TRACE:
        return
    stack = _stack()
    if stack:
        stack[-1].attributes.update(attributes)


def event(name: str, **attributes) -> None:
    """Attach a point-in-time event to the innermost open span.

    With no span open the event is recorded as a zero-duration span so it
    is never silently dropped (crash/retry markers must survive even when
    they fire outside any instrumented region).
    """
    if not _TRACE:
        return
    stack = _stack()
    if stack:
        stack[-1].events.append((time.time_ns() // 1000, name, attributes))
        return
    record = _open_span(name, "event", dict(attributes))
    _close_span(record, time.perf_counter_ns())


def add_span(
    name: str,
    category: str,
    duration_us: int = 0,
    start_us: int | None = None,
    **attributes,
) -> None:
    """Record a synthetic (already finished) span.

    Used by the parent to materialize work that had no traced execution:
    cache hits, in-process fallbacks of jobs whose retries were exhausted.
    """
    if not _TRACE:
        return
    record = _open_span(name, category, dict(attributes))
    if start_us is not None:
        record.start_us = start_us
    stack = _stack()
    if stack and stack[-1] is record:
        stack.pop()
    record.duration_us = max(0, int(duration_us))
    with _LOCK:
        _SPANS.append(record)


# -- snapshots ---------------------------------------------------------------


def spans() -> list[SpanRecord]:
    """The completed spans recorded (or merged) so far, in completion order."""
    with _LOCK:
        return list(_SPANS)


def counters() -> dict[str, float]:
    with _LOCK:
        return dict(_COUNTERS)


def profile_snapshot() -> dict:
    """The accumulated per-stage figures (stable key order).

    The exact shape :func:`repro.profiling.snapshot` has always returned;
    integral counters are emitted as ints so existing JSON consumers see
    unchanged payloads.
    """
    with _LOCK:
        return {
            "stages": {name: _STAGE_SECONDS[name] for name in sorted(_STAGE_SECONDS)},
            "entries": {name: _STAGE_ENTRIES[name] for name in sorted(_STAGE_ENTRIES)},
            "counters": {
                name: int(value) if float(value).is_integer() else value
                for name, value in sorted(_COUNTERS.items())
            },
            "total_seconds": sum(_STAGE_SECONDS.values()),
        }


# -- cross-process protocol --------------------------------------------------


def worker_config() -> dict:
    """Picklable activation state shipped to pool workers via initargs."""
    return {
        "profile": _PROFILE,
        "trace": _TRACE,
        "run_id": _RUN_ID,
    }


def activate_worker(config: dict | None) -> None:
    """Adopt the parent's observability switches inside a pool worker.

    Clears any buffers inherited through ``fork`` (the parent's spans must
    be reported exactly once, by the parent) and flips the remote flag so
    this process buffers per job instead of exporting.
    """
    global _PROFILE, _TRACE, _REMOTE, _RUN_ID
    _reset_buffers()
    if not config:
        _PROFILE = _TRACE = _REMOTE = False
        _refresh_enabled()
        return
    _PROFILE = bool(config.get("profile"))
    _TRACE = bool(config.get("trace"))
    _RUN_ID = config.get("run_id")
    _REMOTE = _PROFILE or _TRACE
    _refresh_enabled()


def remote_active() -> bool:
    """True when this process buffers telemetry for per-job shipping."""
    return _REMOTE


def drain_worker_blob() -> dict | None:
    """Spans/counters/stages accumulated since the previous drain.

    Called at the end of each worker-side job; the blob travels back inside
    the job payload.  Returns ``None`` when there is nothing to ship (the
    disabled path).  Counters and stage figures ship as deltas so a blob
    merge is a plain addition on the parent side.
    """
    global _DRAINED_SPANS
    if not ENABLED:
        return None
    with _LOCK:
        fresh = _SPANS[_DRAINED_SPANS:]
        _DRAINED_SPANS = len(_SPANS)
        counter_delta = {
            name: value - _DRAINED_COUNTERS.get(name, 0)
            for name, value in _COUNTERS.items()
            if value != _DRAINED_COUNTERS.get(name, 0)
        }
        _DRAINED_COUNTERS.update(_COUNTERS)
        second_delta = {
            name: value - _DRAINED_STAGE_SECONDS.get(name, 0.0)
            for name, value in _STAGE_SECONDS.items()
            if value != _DRAINED_STAGE_SECONDS.get(name, 0.0)
        }
        _DRAINED_STAGE_SECONDS.update(_STAGE_SECONDS)
        entry_delta = {
            name: value - _DRAINED_STAGE_ENTRIES.get(name, 0)
            for name, value in _STAGE_ENTRIES.items()
            if value != _DRAINED_STAGE_ENTRIES.get(name, 0)
        }
        _DRAINED_STAGE_ENTRIES.update(_STAGE_ENTRIES)
    return {
        "pid": os.getpid(),
        "spans": [record.as_dict() for record in fresh],
        "counters": counter_delta,
        "stage_seconds": second_delta,
        "stage_entries": entry_delta,
    }


def merge_blob(blob: dict | None) -> None:
    """Fold one worker blob into this process's buffers.

    Safe to call with ``None`` (disabled workers ship nothing).  Spans keep
    their worker-side ids and pid tags -- ids are only unique per process,
    and every consumer namespaces by ``(pid, span_id)``.
    """
    if not blob:
        return
    with _LOCK:
        for data in blob.get("spans", ()):
            _SPANS.append(SpanRecord.from_dict(data))
        for name, value in blob.get("counters", {}).items():
            _COUNTERS[name] = _COUNTERS.get(name, 0) + value
        for name, value in blob.get("stage_seconds", {}).items():
            _STAGE_SECONDS[name] = _STAGE_SECONDS.get(name, 0.0) + value
        for name, value in blob.get("stage_entries", {}).items():
            _STAGE_ENTRIES[name] = _STAGE_ENTRIES.get(name, 0) + value


def reset() -> None:
    """Full reset: both modes off, buffers cleared (test isolation)."""
    global _PROFILE, _TRACE, _REMOTE, _RUN_ID
    _PROFILE = _TRACE = _REMOTE = False
    _RUN_ID = None
    _reset_buffers()
    _refresh_enabled()
