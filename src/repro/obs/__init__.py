"""Unified observability layer: hierarchical tracing, metrics, exporters.

``repro.obs`` is the telemetry substrate under every deployment-facing
surface of the engine:

* :mod:`repro.obs.tracer` -- the hierarchical span tracer (run -> job ->
  pass -> round -> stage), named counters and the per-stage accumulators
  the :mod:`repro.profiling` shim reports; includes the cross-process
  blob protocol that ships worker-side telemetry back inside job payloads.
* :mod:`repro.obs.chrome` -- Chrome trace-event JSON export (Perfetto /
  ``about:tracing``), one track per process.
* :mod:`repro.obs.metrics` -- log-bucketed latency histograms
  (p50/p90/p99) and the ``--metrics-out`` run report.
* :mod:`repro.obs.events` -- the structured JSONL event log, every line
  tagged with the run id.
* :mod:`repro.obs.live` -- the live stderr progress line of parallel runs.

The public surface is re-exported here; hot call sites (``span``,
``stage``, ``count``, ``annotate``, ``event``) cost one attribute read when
both trace and profile modes are off.
"""

from repro.obs.chrome import chrome_payload, trace_events, write_chrome_trace
from repro.obs.events import event_lines, write_events
from repro.obs.live import LiveProgress, live_progress_enabled
from repro.obs.metrics import Histogram, build_metrics, top_spans
from repro.obs.tracer import (
    SpanRecord,
    activate_worker,
    annotate,
    count,
    counters,
    add_span,
    disable_profile,
    disable_tracing,
    drain_worker_blob,
    enable_profile,
    enable_tracing,
    event,
    merge_blob,
    profile_active,
    profile_snapshot,
    remote_active,
    reset,
    run_id,
    span,
    spans,
    stage,
    tracing_active,
    worker_config,
)

__all__ = [
    "Histogram",
    "LiveProgress",
    "SpanRecord",
    "activate_worker",
    "add_span",
    "annotate",
    "build_metrics",
    "chrome_payload",
    "count",
    "counters",
    "disable_profile",
    "disable_tracing",
    "drain_worker_blob",
    "enable_profile",
    "enable_tracing",
    "event",
    "event_lines",
    "live_progress_enabled",
    "merge_blob",
    "profile_active",
    "profile_snapshot",
    "remote_active",
    "reset",
    "run_id",
    "span",
    "spans",
    "stage",
    "top_spans",
    "trace_events",
    "tracing_active",
    "worker_config",
    "write_chrome_trace",
    "write_events",
]
