"""Structured JSONL event log of a run.

One JSON object per line, every line tagged with the run id, so log
shippers and the future service daemon can tail a run without parsing a
nested document.  The log is derived from the merged span buffer after the
run completes (the spans *are* the source of truth; the JSONL is a flat
projection): a ``run-start``/``run-end`` envelope, one ``span`` record per
completed span and one ``event`` record per point marker, in start order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.obs.tracer import SpanRecord

#: Log schema version carried on the envelope records.
EVENTS_SCHEMA = 1


def event_lines(
    spans: Sequence[SpanRecord],
    run_id: str | None,
    counters: dict[str, float] | None = None,
) -> list[dict]:
    """The log records, in deterministic (start time, pid, id) order."""
    ordered = sorted(
        spans, key=lambda record: (record.start_us, record.pid, record.span_id)
    )
    start_us = ordered[0].start_us if ordered else 0
    end_us = max(
        (record.start_us + record.duration_us for record in ordered), default=0
    )
    lines: list[dict] = [
        {
            "type": "run-start",
            "run_id": run_id,
            "schema": EVENTS_SCHEMA,
            "ts_us": start_us,
        }
    ]
    for record in ordered:
        lines.append(
            {
                "type": "span",
                "run_id": run_id,
                "ts_us": record.start_us,
                "duration_us": record.duration_us,
                "name": record.name,
                "category": record.category,
                "pid": record.pid,
                "tid": record.tid,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "attributes": dict(record.attributes),
            }
        )
        for ts_us, name, attributes in record.events:
            lines.append(
                {
                    "type": "event",
                    "run_id": run_id,
                    "ts_us": ts_us,
                    "name": name,
                    "pid": record.pid,
                    "span_id": record.span_id,
                    "attributes": dict(attributes),
                }
            )
    lines.append(
        {
            "type": "run-end",
            "run_id": run_id,
            "ts_us": end_us,
            "spans": len(ordered),
            "counters": {
                name: int(value) if float(value).is_integer() else value
                for name, value in sorted((counters or {}).items())
            },
        }
    )
    return lines


def write_events(
    path: str | Path,
    spans: Sequence[SpanRecord],
    run_id: str | None,
    counters: dict[str, float] | None = None,
) -> Path:
    """Write the JSONL event log to ``path``."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for line in event_lines(spans, run_id, counters=counters):
            handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path
