"""Metrics derived from the span buffer: histograms and the run report.

:class:`Histogram` is a log-bucketed (quarter-octave, i.e. four buckets per
power of two) approximate distribution: values are binned by
``floor(4 * log2(value))``, percentiles are read off the cumulative bucket
counts with geometric interpolation inside the resolved bucket.  The
relative quantile error is bounded by the bucket width (2^(1/4) ~ 19%),
which is plenty for latency reporting, and the representation serializes to
a compact ``{bucket_floor: count}`` map whatever the value range.

:func:`build_metrics` folds the merged trace (spans + counters) and the
engine's robustness stats into the JSON report behind the runner's
``--metrics-out``: per-job latency percentiles (p50/p90/p99), per-stage and
per-pass time totals, cache hit rate, retry/crash/timeout counts and the
top spans by self time.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.obs.tracer import SpanRecord

#: Buckets per power of two (quarter-octave resolution).
_BUCKETS_PER_OCTAVE = 4

#: Report schema version (bump when the JSON shape changes).
METRICS_SCHEMA = 1


class Histogram:
    """Log-bucketed histogram of non-negative values."""

    __slots__ = ("counts", "zeros", "total", "sum", "max")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.zeros = 0
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    @staticmethod
    def bucket_of(value: float) -> int:
        return math.floor(_BUCKETS_PER_OCTAVE * math.log2(value))

    @staticmethod
    def bucket_bounds(bucket: int) -> tuple[float, float]:
        """The half-open value interval ``[low, high)`` of a bucket index."""
        low = 2.0 ** (bucket / _BUCKETS_PER_OCTAVE)
        high = 2.0 ** ((bucket + 1) / _BUCKETS_PER_OCTAVE)
        return low, high

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        if value == 0:
            self.zeros += 1
            return
        bucket = self.bucket_of(value)
        self.counts[bucket] = self.counts.get(bucket, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), geometrically interpolated.

        Exact for the zero mass; within one bucket width (~19% relative)
        elsewhere.  Returns 0.0 for an empty histogram.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.total == 0:
            return 0.0
        # The value with rank ceil(q/100 * total) in the sorted order
        # (nearest-rank definition; q=0 resolves to the first value).
        rank = max(1, math.ceil(q / 100.0 * self.total))
        if rank <= self.zeros:
            return 0.0
        remaining = rank - self.zeros
        for bucket in sorted(self.counts):
            in_bucket = self.counts[bucket]
            if remaining <= in_bucket:
                low, high = self.bucket_bounds(bucket)
                fraction = remaining / in_bucket
                # Clamp to the exact maximum: interpolation in the top
                # bucket must not report a latency nothing ever reached.
                return min(low * (high / low) ** fraction, self.max)
            remaining -= in_bucket
        return self.max  # pragma: no cover - rank always resolves above

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        """JSON form: summary statistics plus the raw bucket map."""
        return {
            "count": self.total,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "zeros": self.zeros,
            "buckets_per_octave": _BUCKETS_PER_OCTAVE,
            "buckets": {str(bucket): self.counts[bucket] for bucket in sorted(self.counts)},
        }


def _self_times_us(spans: Sequence[SpanRecord]) -> dict[tuple[int, int], int]:
    """Per-span self time: duration minus the direct children's durations."""
    self_us = {
        (record.pid, record.span_id): record.duration_us for record in spans
    }
    for record in spans:
        if record.parent_id is None:
            continue
        parent = (record.pid, record.parent_id)
        if parent in self_us:
            self_us[parent] -= record.duration_us
    return self_us


def top_spans(spans: Sequence[SpanRecord], limit: int = 5) -> list[dict]:
    """The ``limit`` spans with the largest self time, as JSON-ready rows."""
    self_us = _self_times_us(spans)
    ranked = sorted(
        spans,
        key=lambda record: (
            -max(0, self_us[(record.pid, record.span_id)]),
            record.pid,
            record.span_id,
        ),
    )
    return [
        {
            "name": record.name,
            "category": record.category,
            "pid": record.pid,
            "duration_ms": record.duration_us / 1000.0,
            "self_ms": max(0, self_us[(record.pid, record.span_id)]) / 1000.0,
            "attributes": dict(record.attributes),
        }
        for record in ranked[:limit]
    ]


def build_metrics(
    spans: Sequence[SpanRecord],
    counters: dict[str, float],
    run_id: str | None = None,
    robustness: dict | None = None,
) -> dict:
    """The ``--metrics-out`` report from a merged trace.

    ``robustness`` is :meth:`ExperimentEngine.robustness_stats` when an
    engine ran (cache hit rate, shm degradations, failure classification);
    pure-trace consumers may omit it.
    """
    job_latency = Histogram()
    pass_latency = Histogram()
    stage_totals_ms: dict[str, float] = {}
    category_counts: dict[str, int] = {}
    jobs_cached = 0
    candidate_rows = 0
    pids = set()
    for record in spans:
        pids.add(record.pid)
        category_counts[record.category] = (
            category_counts.get(record.category, 0) + 1
        )
        if record.category == "job":
            job_latency.add(record.duration_us / 1000.0)
        elif record.category == "cache":
            jobs_cached += 1
        elif record.category == "pass":
            pass_latency.add(record.duration_us / 1000.0)
        elif record.category == "stage":
            stage_totals_ms[record.name] = (
                stage_totals_ms.get(record.name, 0.0) + record.duration_us / 1000.0
            )
        candidate_rows += int(record.attributes.get("candidate_rows", 0))
    cache = (robustness or {}).get("cache") or {}
    hits = int(cache.get("hits", counters.get("cache.hit", 0)))
    misses = int(cache.get("misses", counters.get("cache.miss", 0)))
    lookups = hits + misses
    report = {
        "schema": METRICS_SCHEMA,
        "run_id": run_id,
        "spans": {
            "total": len(spans),
            "pids": sorted(pids),
            "by_category": dict(sorted(category_counts.items())),
        },
        "jobs": {
            "executed": job_latency.total,
            "cached": jobs_cached,
            "retries": int(counters.get("jobs.retry", 0)),
            "crashes": int(counters.get("jobs.crash", 0)),
            "timeouts": int(counters.get("jobs.timeout", 0)),
            "degraded_inprocess": int(counters.get("jobs.degraded_inprocess", 0)),
            "backoff_seconds": float(counters.get("jobs.backoff_seconds", 0.0)),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / lookups if lookups else 0.0,
        },
        "histograms": {
            "job_latency_ms": job_latency.as_dict(),
            "pass_latency_ms": pass_latency.as_dict(),
        },
        "stage_totals_ms": dict(sorted(stage_totals_ms.items())),
        "mapper": {"candidate_rows": candidate_rows},
        "counters": {
            name: int(value) if float(value).is_integer() else value
            for name, value in sorted(counters.items())
        },
        "top_spans_by_self_time": top_spans(spans),
    }
    if robustness is not None:
        report["robustness"] = robustness
    return report
