"""Technology mapping as a registered flow pass.

A :class:`MappingPass` lets a :class:`~repro.flow.pipeline.FlowSpec`
interleave technology-independent resynthesis with technology mapping: the
pass maps the AIG it receives onto a configured library (objective, recovery
rounds and cut parameters included) and hands the *unchanged* AIG to the
next pass -- mapping is an observation of the network, not a transformation
of it.  The produced :class:`~repro.synthesis.mapper.MappedCircuit` is
recorded on the :class:`~repro.flow.pipeline.FlowResult` (``result.mapped``;
the last mapping pass of a run wins), so a flow like::

    FlowSpec(name="map-deep",
             prologue=("balance",),
             round_passes=("rewrite", "balance", "map"),
             max_rounds=2)

times and maps every resynthesis round and returns the final mapping
alongside the usual per-pass telemetry.

The default ``map`` pass targets the paper's static transmission-gate
library under the delay objective; configured variants are registered with
:func:`mapping_pass`::

    mapping_pass("map-pseudo-area", family=LogicFamily.TG_PSEUDO,
                 objective="area", rounds=2)

Because the mapping configuration lives in the pass (and the registry keys
passes by name), a flow's :meth:`~repro.flow.pipeline.FlowSpec.fingerprint`
distinguishes differently configured mapping passes through their names.
"""

from __future__ import annotations

from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.flow.passes import register_pass
from repro.synthesis.aig import Aig
from repro.synthesis.cuts import DEFAULT_CUT_LIMIT, DEFAULT_MAX_INPUTS
from repro.synthesis.mapper import MappedCircuit, technology_map
from repro.synthesis.matcher import matcher_for


class MappingPass:
    """A flow pass that technology-maps the network it is handed.

    The pass returns its input unchanged (mapping preserves the subject
    graph); the mapped circuit of the most recent :meth:`run` is available
    as :attr:`last_mapped` and is collected into
    :class:`~repro.flow.pipeline.FlowResult.mapped` by the flow driver.
    """

    def __init__(
        self,
        name: str = "map",
        family: LogicFamily = LogicFamily.TG_STATIC,
        objective: str = "delay",
        rounds: int = 0,
        recovery: str = "auto",
        max_inputs: int = DEFAULT_MAX_INPUTS,
        cut_limit: int = DEFAULT_CUT_LIMIT,
        description: str = "",
    ) -> None:
        self.name = name
        self.family = family
        self.objective = objective
        self.rounds = rounds
        self.recovery = recovery
        self.max_inputs = max_inputs
        self.cut_limit = cut_limit
        self.description = description or (
            f"technology-map onto {family.value} ({objective} objective, "
            f"{rounds} recovery round{'s' if rounds != 1 else ''})"
        )
        self.last_mapped: MappedCircuit | None = None

    def run(self, aig: Aig) -> Aig:
        library = build_library(self.family)
        self.last_mapped = technology_map(
            aig,
            library,
            matcher=matcher_for(library),
            objective=self.objective,
            rounds=self.rounds,
            recovery=self.recovery,
            max_inputs=self.max_inputs,
            cut_limit=self.cut_limit,
        )
        return aig


def mapping_pass(
    name: str,
    family: LogicFamily = LogicFamily.TG_STATIC,
    objective: str = "delay",
    rounds: int = 0,
    recovery: str = "auto",
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    description: str = "",
    replace: bool = False,
) -> MappingPass:
    """Register a configured :class:`MappingPass` under ``name``."""
    pass_ = MappingPass(
        name=name,
        family=family,
        objective=objective,
        rounds=rounds,
        recovery=recovery,
        max_inputs=max_inputs,
        cut_limit=cut_limit,
        description=description,
    )
    register_pass(pass_, replace=replace)
    return pass_


#: The default mapping pass: the paper's static transmission-gate library,
#: delay objective, no recovery rounds.
DEFAULT_MAPPING_PASS = mapping_pass("map")
