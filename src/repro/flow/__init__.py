"""Pass-based synthesis flow framework.

This subpackage turns the technology-independent optimization step of the
reproduction from a hard-wired ``optimize(aig)`` call into composable,
registered *passes* sequenced by named *flows*:

* :mod:`repro.flow.passes` -- the pass registry (:func:`register_pass`,
  :func:`flow_pass`) with the built-in ``balance`` / ``rewrite`` /
  ``rewrite3`` / ``rewrite5`` passes and the :class:`PassResult` telemetry
  record;
* :mod:`repro.flow.pipeline` -- :class:`FlowSpec` (prologue + iterated
  rounds + best-result bookkeeping), the flow registry with the built-in
  ``none`` / ``quick`` / ``resyn2rs`` / ``deep`` flows, and
  :func:`run_flow` returning a :class:`FlowResult` with per-pass timing and
  node-count telemetry.

The experiment engine schedules mapping jobs by flow name and folds
:meth:`FlowSpec.fingerprint` into its content-addressed cache keys;
``repro.synthesis.optimize.optimize`` is the ``resyn2rs`` flow.

Technology mapping participates as a pass too (:mod:`repro.flow.mapping`):
the registered ``map`` pass -- and configured variants created with
:func:`mapping_pass` -- maps the network onto a library mid-flow and
records the result as ``FlowResult.mapped``, so FlowSpecs can interleave
resynthesis and mapping.
"""

from repro.flow.passes import (
    FunctionPass,
    Pass,
    PassResult,
    available_passes,
    flow_pass,
    get_pass,
    register_pass,
)
from repro.flow.pipeline import (
    DEFAULT_FLOW,
    FlowResult,
    FlowSpec,
    available_flows,
    get_flow,
    register_flow,
    resolve_flow,
    run_flow,
)
from repro.flow.mapping import MappingPass, mapping_pass

__all__ = [
    "DEFAULT_FLOW",
    "FlowResult",
    "FlowSpec",
    "FunctionPass",
    "MappingPass",
    "Pass",
    "PassResult",
    "available_flows",
    "available_passes",
    "flow_pass",
    "get_flow",
    "get_pass",
    "mapping_pass",
    "register_flow",
    "register_pass",
    "resolve_flow",
    "run_flow",
]
