"""Registered synthesis passes.

A *pass* is a named, function-preserving AIG-to-AIG transformation.  The
registry decouples what a pass does (:mod:`repro.synthesis.optimize` provides
the actual algorithms) from how flows sequence them
(:mod:`repro.flow.pipeline`), so new passes can be plugged in without
touching the drivers:

>>> from repro.flow import flow_pass
>>> @flow_pass("strip", "identity pass used as an example")
... def strip(aig):
...     return aig.cleanup()

Every pass execution is timed and its node/depth deltas recorded in a
:class:`PassResult`, the telemetry unit surfaced by
:class:`repro.flow.pipeline.FlowResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.synthesis.aig import Aig
from repro.synthesis.optimize import (
    balance,
    balance_reference,
    rewrite,
    rewrite_reference,
)


@runtime_checkable
class Pass(Protocol):
    """The pass protocol: a named AIG transformation.

    Implementations must preserve the Boolean function of the network; the
    flow tests check this for every registered pass.
    """

    name: str
    description: str

    def run(self, aig: Aig) -> Aig:  # pragma: no cover - protocol stub
        ...


@dataclass(frozen=True)
class FunctionPass:
    """Adapter turning a plain ``Aig -> Aig`` callable into a :class:`Pass`."""

    name: str
    fn: Callable[[Aig], Aig]
    description: str = ""

    def run(self, aig: Aig) -> Aig:
        return self.fn(aig)


@dataclass(frozen=True)
class PassResult:
    """Telemetry of one pass execution inside a flow."""

    name: str
    nodes_before: int
    nodes_after: int
    depth_before: int
    depth_after: int
    seconds: float

    @property
    def node_delta(self) -> int:
        """Change in AND-node count (negative means the pass shrank the AIG)."""
        return self.nodes_after - self.nodes_before


_PASS_REGISTRY: dict[str, Pass] = {}


def register_pass(pass_: Pass, replace: bool = False) -> Pass:
    """Add a pass to the registry; ``replace=True`` overwrites an existing name."""
    if not pass_.name:
        raise ValueError("a pass must have a non-empty name")
    if not replace and pass_.name in _PASS_REGISTRY:
        raise ValueError(f"pass {pass_.name!r} is already registered")
    _PASS_REGISTRY[pass_.name] = pass_
    return pass_


def flow_pass(
    name: str, description: str = "", replace: bool = False
) -> Callable[[Callable[[Aig], Aig]], Callable[[Aig], Aig]]:
    """Decorator registering a plain function as a named pass."""

    def decorate(fn: Callable[[Aig], Aig]) -> Callable[[Aig], Aig]:
        register_pass(FunctionPass(name, fn, description or (fn.__doc__ or "").strip()),
                      replace=replace)
        return fn

    return decorate


def get_pass(name: str) -> Pass:
    """Look up a registered pass; raises ``KeyError`` naming the known passes."""
    try:
        return _PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; registered passes: {', '.join(available_passes())}"
        ) from None


def available_passes() -> tuple[str, ...]:
    """Names of all registered passes, sorted."""
    return tuple(sorted(_PASS_REGISTRY))


# -- built-in passes ---------------------------------------------------------

register_pass(
    FunctionPass(
        "balance",
        balance,
        "collapse AND trees and rebuild them depth-balanced (ABC `balance`)",
    )
)
register_pass(
    FunctionPass(
        "rewrite",
        rewrite,
        "cut-based resynthesis from 4-input cut functions (ABC `rewrite`/`refactor`)",
    )
)
register_pass(
    FunctionPass(
        "rewrite3",
        lambda aig: rewrite(aig, max_inputs=3),
        "cut-based resynthesis restricted to 3-input cuts (cheap cleanup rounds)",
    )
)
register_pass(
    FunctionPass(
        "rewrite5",
        lambda aig: rewrite(aig, max_inputs=5),
        "cut-based resynthesis over 5-input cuts (aggressive, slower)",
    )
)
register_pass(
    FunctionPass(
        "sweep",
        lambda aig: aig.cleanup(),
        "drop logic unreachable from the outputs (array-backed compaction)",
    )
)
# The reference (pre-vectorization) passes stay addressable so flows and the
# CI parity lane can run the oracle implementations by name.  They are pinned
# node-for-node identical to `balance`/`rewrite`; registering them adds no
# new flow and moves no flow fingerprint.
register_pass(
    FunctionPass(
        "balance_reference",
        balance_reference,
        "reference depth-balancing oracle (identical output to `balance`)",
    )
)
register_pass(
    FunctionPass(
        "rewrite_reference",
        rewrite_reference,
        "reference cut-rewriting oracle (identical output to `rewrite`)",
    )
)
