"""Flow specifications: named pass pipelines with a fixpoint driver.

A :class:`FlowSpec` describes a technology-independent optimization flow as
data: a *prologue* (passes run once), a *round* (passes repeated up to
``max_rounds`` times or until the node count stops improving), and the
best-result bookkeeping that makes the flow monotone (never return a larger
or deeper network than the input).  The driver in :meth:`FlowSpec.run`
executes the spec, timing every pass and recording node/depth telemetry in
the returned :class:`FlowResult`.

Built-in flows:

``none``
    Identity -- map the subject graph exactly as built.
``quick``
    One balancing pass; the cheapest flow that still fixes gross depth
    problems.
``resyn2rs``
    The paper's flow (our ABC ``resyn2rs`` stand-in): balance, then up to
    three rounds of rewrite + balance, keeping the best intermediate result.
    ``repro.synthesis.optimize.optimize`` is this flow.
``deep``
    A longer sweep interleaving 4- and 3-input rewriting over up to six
    rounds, for flow-diversity experiments.

Custom flows are plain :class:`FlowSpec` instances registered with
:func:`register_flow`; the experiment engine keys its result cache on
:meth:`FlowSpec.fingerprint`, so editing a flow's definition automatically
invalidates stale cached artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.flow.passes import PassResult, get_pass
from repro.synthesis.aig import Aig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synthesis.mapper import MappedCircuit

#: The flow used when no flow is named (the paper's synthesis script).
DEFAULT_FLOW = "resyn2rs"


@dataclass
class FlowResult:
    """Outcome of one flow execution: the optimized AIG plus per-pass telemetry.

    ``mapped`` carries the technology-mapped circuit of the last mapping
    pass the flow executed (see :mod:`repro.flow.mapping`), or ``None`` for
    purely technology-independent flows.
    """

    flow: str
    aig: Aig
    passes: list[PassResult] = field(default_factory=list)
    mapped: "MappedCircuit | None" = None

    @property
    def seconds(self) -> float:
        """Total time spent inside passes."""
        return sum(result.seconds for result in self.passes)

    def telemetry_lines(self) -> list[str]:
        """Human-readable per-pass summary (used by the CLI and examples)."""
        lines = []
        for result in self.passes:
            lines.append(
                f"{result.name:<10} nodes {result.nodes_before:>5} -> "
                f"{result.nodes_after:<5} depth {result.depth_before:>3} -> "
                f"{result.depth_after:<3} {result.seconds * 1000:8.1f} ms"
            )
        return lines


@dataclass(frozen=True)
class FlowSpec:
    """A named pass pipeline.

    ``prologue`` passes run once; ``round_passes`` run as a block up to
    ``max_rounds`` times, stopping early when a full round fails to shrink
    the network.  With ``keep_best`` the smallest (then shallowest)
    intermediate result is returned instead of the last; with
    ``compare_input`` the unmodified input wins if it was already smaller.
    """

    name: str
    description: str = ""
    prologue: tuple[str, ...] = ()
    round_passes: tuple[str, ...] = ()
    max_rounds: int = 0
    keep_best: bool = True
    compare_input: bool = True

    def __post_init__(self) -> None:
        if self.max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")

    def pass_names(self) -> tuple[str, ...]:
        """Every pass the flow can execute, in first-use order."""
        seen: list[str] = []
        for name in self.prologue + self.round_passes:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def fingerprint(self) -> str:
        """Stable content string identifying the flow's behaviour.

        Folded into the experiment engine's cache keys so that a cached
        result from one flow definition can never satisfy a request for a
        differently defined flow of the same name.
        """
        return (
            f"{self.name}|prologue={','.join(self.prologue)}"
            f"|round={','.join(self.round_passes)}|max_rounds={self.max_rounds}"
            f"|keep_best={int(self.keep_best)}|compare_input={int(self.compare_input)}"
        )

    def run(self, aig: Aig) -> FlowResult:
        """Execute the flow, collecting per-pass timing and node telemetry.

        Passes exposing a ``last_mapped`` attribute (mapping passes, see
        :mod:`repro.flow.mapping`) additionally contribute a technology
        mapping; the last one executed is returned as ``result.mapped``
        (note it reflects the network state at that point of the pipeline,
        which the keep-best bookkeeping below does not rewind).
        """
        telemetry: list[PassResult] = []
        last_mapped = [None]

        def apply(pass_name: str, current: Aig) -> Aig:
            pass_ = get_pass(pass_name)
            if hasattr(pass_, "last_mapped"):
                pass_.last_mapped = None  # stale results must not leak in
            nodes_before, depth_before = current.num_ands, current.depth()
            start = time.perf_counter()
            with obs.span(
                pass_.name,
                category="pass",
                flow=self.name,
                nodes_before=nodes_before,
                depth_before=depth_before,
            ) as pass_span:
                transformed = pass_.run(current)
                nodes_after, depth_after = transformed.num_ands, transformed.depth()
                pass_span.set("nodes_after", nodes_after)
                pass_span.set("depth_after", depth_after)
            telemetry.append(
                PassResult(
                    name=pass_.name,
                    nodes_before=nodes_before,
                    nodes_after=nodes_after,
                    depth_before=depth_before,
                    depth_after=depth_after,
                    seconds=time.perf_counter() - start,
                )
            )
            produced = getattr(pass_, "last_mapped", None)
            if produced is not None:
                last_mapped[0] = produced
            return transformed

        current = aig
        for pass_name in self.prologue:
            current = apply(pass_name, current)
        best = current
        for _ in range(self.max_rounds):
            nodes_before_round = current.num_ands
            for pass_name in self.round_passes:
                current = apply(pass_name, current)
            if self.keep_best and (current.num_ands, current.depth()) < (
                best.num_ands,
                best.depth(),
            ):
                best = current
            if current.num_ands >= nodes_before_round:
                break
        result = best if self.keep_best else current
        if self.compare_input and (aig.num_ands, aig.depth()) < (
            result.num_ands,
            result.depth(),
        ):
            result = aig
        return FlowResult(
            flow=self.name, aig=result, passes=telemetry, mapped=last_mapped[0]
        )


_FLOW_REGISTRY: dict[str, FlowSpec] = {}


def register_flow(spec: FlowSpec, replace: bool = False) -> FlowSpec:
    """Add a flow to the registry, validating that its passes exist."""
    if not spec.name:
        raise ValueError("a flow must have a non-empty name")
    if not replace and spec.name in _FLOW_REGISTRY:
        raise ValueError(f"flow {spec.name!r} is already registered")
    for pass_name in spec.prologue + spec.round_passes:
        get_pass(pass_name)  # raises KeyError for unknown passes
    _FLOW_REGISTRY[spec.name] = spec
    return spec


def get_flow(name: str) -> FlowSpec:
    """Look up a registered flow; raises ``KeyError`` naming the known flows."""
    try:
        return _FLOW_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown flow {name!r}; registered flows: {', '.join(available_flows())}"
        ) from None


def available_flows() -> tuple[str, ...]:
    """Names of all registered flows, sorted."""
    return tuple(sorted(_FLOW_REGISTRY))


def run_flow(flow: str | FlowSpec, aig: Aig) -> FlowResult:
    """Execute a flow by name or spec on an AIG."""
    spec = get_flow(flow) if isinstance(flow, str) else flow
    return spec.run(aig)


def resolve_flow(flow: str, optimize_first: bool) -> str:
    """Reconcile a flow name with the legacy ``optimize_first`` flag.

    ``optimize_first=False`` is shorthand for the ``none`` flow and is only
    meaningful with the default flow; combining it with an explicitly
    selected flow would silently discard the caller's choice, so that
    conflict is rejected.  The returned name is always a registered flow.
    """
    get_flow(flow)  # fail fast on unknown flows, whatever the flag says
    if optimize_first:
        return flow
    if flow != DEFAULT_FLOW:
        raise ValueError(
            f"optimize_first=False conflicts with the explicit flow {flow!r}; "
            "pass flow='none' instead"
        )
    return "none"


# -- built-in flows ----------------------------------------------------------

register_flow(
    FlowSpec(
        name="none",
        description="identity: map the subject graph exactly as built",
    )
)
register_flow(
    FlowSpec(
        name="quick",
        description="single balancing pass (cheapest useful flow)",
        prologue=("balance",),
    )
)
register_flow(
    FlowSpec(
        name="resyn2rs",
        description="the paper's flow: balance + up to 3 rounds of rewrite/balance",
        prologue=("balance",),
        round_passes=("rewrite", "balance"),
        max_rounds=3,
    )
)
register_flow(
    FlowSpec(
        name="deep",
        description="longer sweep interleaving 4- and 3-input rewriting (6 rounds)",
        prologue=("balance",),
        round_passes=("rewrite", "balance", "rewrite3", "balance"),
        max_rounds=6,
    )
)
# The oracle variant of the paper's flow, built from the reference passes.
# Pinned to produce the identical AIG to ``resyn2rs`` (the CI fast lane and
# the parity tests compare the two run for run); never used by experiments,
# so it shares no fingerprint with -- and cannot invalidate -- cached
# ``resyn2rs`` artifacts.
register_flow(
    FlowSpec(
        name="resyn2rs-reference",
        description="resyn2rs built from the reference passes (parity oracle)",
        prologue=("balance_reference",),
        round_passes=("rewrite_reference", "balance_reference"),
        max_rounds=3,
    )
)
