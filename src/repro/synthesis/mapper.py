"""Cut-based technology mapping onto a characterized gate library.

The mapper is a layered engine in the spirit of ABC's ``map`` command:

1. **Matching.**  Priority cuts are enumerated for every AND node and matched
   against the library through the NPN-canonical index
   (:class:`~repro.synthesis.matcher.LibraryMatcher`).  The matches are
   assembled once per mapping call into a per-node candidate table
   (:class:`~repro.synthesis.cost.MatchCandidate`) read straight off the
   :class:`~repro.synthesis.cuts.CutSet` arrays, so re-pricing the same
   matches across recovery rounds costs nothing.
2. **Dynamic programming.**  A forward pass computes, for every node, the
   best arrival time and cost flow over its candidates.  The objective
   policy -- local gate cost, arrival/flow tie-break, preferred cell per
   canonical class -- is owned entirely by the
   :class:`~repro.synthesis.cost.CostModel` (``delay``/``area``/``power``);
   the DP itself is objective agnostic.  For models providing the batch
   hooks (all built-ins) the pass runs vectorized over a
   :class:`CandidateTable`: nodes are processed one AIG level at a time
   (``aig_array`` level buckets) and the per-node candidate scan becomes a
   slot-indexed incumbent update across the whole level, bitwise identical
   to the scalar scan (see :func:`_dp_round_batched`); the scalar
   :func:`_dp_round` is retained as the oracle and as the fallback for
   third-party cost models without the hooks.  Recovery re-solves are
   *incremental*: only nodes whose required time, reference count or leaf
   arrivals/flows actually changed since the previous round are re-chosen
   (:class:`_DpState` carries the previous solution).
3. **Covering.**  A backward traversal from the primary outputs selects the
   chosen cut of every required node and instantiates one library gate per
   selected cut.
4. **Required-time recovery** (``rounds > 0``).  Round 0 maps under the
   requested objective exactly as above; each recovery round then computes
   required times against the round-0 deadline over the previous cover and
   re-runs the DP under the recovery cost model (area or power flow with
   exact per-cover reference counts), accepting per node only candidates
   that meet their required time.  A round's result is kept only if the
   re-timed circuit is no slower than round 0 and no costlier than the best
   round so far, so recovery can only improve the recovered axis at equal
   worst delay.

Input and output polarities are free: every library cell carries an output
inverter providing both polarities, and the XOR transmission gates accept both
literal polarities directly (paper Secs. 3.1 and 4.3); the CMOS reference
library is mapped under exactly the same convention so that the comparison is
fair.  Circuit-level timing is computed on the mapped netlist by the
arrival/required/slack engine of :mod:`repro.analysis.timing` with the
paper's load assumption (every fanout charges one standard input capacitance
per switching event) and normalized to the technology intrinsic delay
``tau`` to produce the Table-3 "Norm." and "Abs." columns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro import obs, profiling
from repro.core.library import GateLibrary
from repro.synthesis.aig import Aig, lit_node
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cost import (
    EPSILON,
    CostModel,
    MappingContext,
    MatchCandidate,
    cost_model_for,
    resolve_recovery,
)
from repro.synthesis.cuts import (
    DEFAULT_CUT_LIMIT,
    DEFAULT_MAX_INPUTS,
    _track_cutset_memo,
    cut_set_for,
)
from repro.synthesis.matcher import CellMatch, _MatcherBase, matcher_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.activity import ActivityReport
    from repro.analysis.power import NetlistPower


@dataclass(frozen=True)
class MappedGate:
    """One library-gate instance of the mapped netlist.

    ``table`` is the Boolean function of the gate output over ``leaves`` (raw
    truth-table bits, leaf 0 being the least significant input), so the mapped
    netlist can be re-simulated and formally compared against the subject AIG
    without consulting the library again.

    ``leaf_loads`` records, per leaf position, the normalized input
    capacitance of the cell pin the leaf drives (resolved from the matcher's
    pin assignment), and ``inverted`` whether the gate realizes the
    complement of the cell's Table-1 function (output-inverter polarity) --
    both are what the power analysis needs to charge nets correctly.
    """

    output: int
    cell_name: str
    function_id: str
    leaves: tuple[int, ...]
    table: int
    area: float
    intrinsic_delay: float
    parasitic_delay: float
    effort_delay: float
    leaf_loads: tuple[float, ...] = ()
    inverted: bool = False


@dataclass
class MappedCircuit:
    """A technology-mapped circuit and its Table-3 statistics."""

    name: str
    library_name: str
    tau_ps: float
    gates: list[MappedGate]
    primary_inputs: tuple[str, ...]
    primary_outputs: tuple[str, ...]
    po_nodes: tuple[int, ...]
    levels: int = 0
    normalized_delay: float = 0.0
    #: Worst ``required - arrival`` over all nets (0 on a timing-feasible
    #: circuit; recorded by the timing engine alongside the delay figures).
    worst_slack: float = 0.0
    #: Power report attached by :meth:`attach_power` when the circuit has
    #: been analyzed (``None`` until then); excluded from equality so two
    #: identical mappings compare equal whether or not they were analyzed.
    power_report: "NetlistPower | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def area(self) -> float:
        return sum(gate.area for gate in self.gates)

    @property
    def absolute_delay_ps(self) -> float:
        return self.normalized_delay * self.tau_ps

    def gate_histogram(self) -> dict[str, int]:
        """Number of instances per Table-1 function id."""
        histogram: dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.function_id] = histogram.get(gate.function_id, 0) + 1
        return histogram

    def attach_power(self, report: "NetlistPower") -> None:
        """Attach a power analysis so :meth:`statistics` can report it."""
        self.power_report = report

    def statistics(self) -> dict[str, float]:
        stats = {
            "gates": self.gate_count,
            "area": self.area,
            "levels": self.levels,
            "normalized_delay": self.normalized_delay,
            "absolute_delay_ps": self.absolute_delay_ps,
            "worst_slack": self.worst_slack,
        }
        if self.power_report is not None:
            stats["dynamic_power"] = (
                self.power_report.dynamic + self.power_report.input_dynamic
            )
            stats["static_power"] = self.power_report.static
            stats["total_power"] = self.power_report.total
        return stats


@dataclass
class MappingResult:
    """Outcome of a multi-round mapping run (:func:`map_rounds`).

    ``rounds`` holds every round's circuit as built (round 0 first);
    ``accepted`` records, per round, whether the keep-best driver kept it
    (round 0 is always kept; a recovery round is kept only if it is no
    slower than round 0 and no costlier -- under the recovery cost model --
    than the best accepted round before it).
    """

    objective: str
    recovery: str | None
    rounds: list[MappedCircuit]
    accepted: list[bool]

    @property
    def final(self) -> MappedCircuit:
        """The last accepted round's circuit."""
        for mapped, kept in zip(reversed(self.rounds), reversed(self.accepted)):
            if kept:
                return mapped
        return self.rounds[0]


class MappingError(RuntimeError):
    """Raised when a node cannot be matched by any library cell."""


#: How many times one recovery round may be retried with a tightened
#: deadline before the overshooting result is recorded as rejected.
_RECOVERY_RETRIES = 3


def _pin_bindings(match: CellMatch) -> tuple[tuple[str, bool], ...]:
    """Cell pin (name, complemented) driven by each reduced leaf position.

    Follows the :class:`~repro.logic.npn.InputMatch` convention
    ``g(z) = (~)^out f(sigma(z) ^ phase)``: leaf position ``j`` drives
    base-cell input ``permutation[j]``, and the phase is applied in the
    *base function's* input space, so the leaf is complemented when phase
    bit ``permutation[j]`` is set (pinned by the mapper pin-binding test
    against the cell truth tables).
    """
    transform = match.match
    names = match.cell.input_names
    return tuple(
        (
            names[transform.permutation[j]],
            bool((transform.phase >> transform.permutation[j]) & 1),
        )
        for j in range(len(transform.permutation))
    )


def _candidates_for(
    arrays, cut_set, matcher: _MatcherBase, prefer: str
) -> list[list[MatchCandidate]]:
    """The (memoized) candidate table of a cut set under one matcher/policy.

    The memo lives on the :class:`CutSet` (which is itself memoized per AIG
    structure) keyed by matcher identity and preferred-cell policy, so the
    repeated mappings of one subject -- the three objectives of a Pareto
    sweep, the rounds of a recovery run, re-maps after the cut memo warmed
    -- pay for matching and candidate construction once.  The matcher is
    stored in the entry to keep the identity key valid.
    """
    memo = cut_set.__dict__.get("_match_tables")
    if memo is None:
        memo = {}
        object.__setattr__(cut_set, "_match_tables", memo)
        _track_cutset_memo(cut_set)
    key = (id(matcher), prefer)
    entry = memo.get(key)
    if entry is None or entry[0] is not matcher:
        memo[key] = entry = (
            matcher,
            _build_candidates(arrays, cut_set, matcher, prefer),
        )
    return entry[1]


def _build_candidates(
    arrays, cut_set, matcher: _MatcherBase, prefer: str
) -> list[list[MatchCandidate]]:
    """Per-node candidate table: every matched ranked cut of every AND node.

    Reads the :class:`CutSet` struct-of-arrays directly -- the valid
    ``(node, slot)`` pairs are flattened with one ``repeat``/``arange`` pass
    and only those compact rows are converted to Python scalars, instead of
    materializing the full padded ``as_python`` view.  Candidate order per
    node is slot order (the cut ranking), nodes in topological order, so the
    DP sees exactly the sequence the historical single-pass mapper saw.
    """
    candidates: list[list[MatchCandidate]] = [[] for _ in range(arrays.num_nodes)]
    and_nodes = arrays.and_nodes
    if and_nodes.size == 0:
        return candidates
    # Ranked cuts only: the last valid slot of every node is the trivial
    # ``{node}`` cut, which participates in fanout merging but is never
    # matched on its own.
    per_node = cut_set.count[and_nodes] - 1
    total = int(per_node.sum())
    if total == 0:
        return candidates
    nodes_rep = np.repeat(and_nodes, per_node)
    starts = np.concatenate(([0], np.cumsum(per_node)[:-1]))
    slots = np.arange(total) - np.repeat(starts, per_node)

    node_list = nodes_rep.tolist()
    size_list = cut_set.size[nodes_rep, slots].tolist()
    table_list = cut_set.table[nodes_rep, slots].tolist()
    support_list = cut_set.support[nodes_rep, slots].tolist()
    leaves_rows = cut_set.leaves[nodes_rep, slots].tolist()

    match_positions = matcher.match_positions
    for index in range(total):
        found = match_positions(
            size_list[index],
            table_list[index],
            prefer=prefer,
            support_mask=support_list[index],
        )
        if found is None:
            continue
        match, positions, table = found
        row = leaves_rows[index]
        cell = match.cell
        fo4 = cell.delay.fo4_average
        parasitic = cell.delay.parasitic_output
        candidates[node_list[index]].append(
            MatchCandidate(
                leaves=tuple(row[p] for p in positions),
                table=table,
                match=match,
                delay=fo4,
                area=cell.area,
                parasitic=parasitic,
                effort=max(fo4 - parasitic, 0.0) / 4.0,
            )
        )
    return candidates


def _price_candidates(
    and_node_list: list[int],
    candidates: list[list[MatchCandidate]],
    model: CostModel,
    context: MappingContext,
) -> list[list[float]]:
    """Per-candidate local gate costs under one cost model.

    Computed once per (model, mapping call) and reused by every round that
    prices under that model -- the costs are round-invariant, only the flow
    normalization and the required-time constraints change between rounds.
    """
    gate_cost = model.gate_cost
    prices: list[list[float]] = [[] for _ in range(len(candidates))]
    for node in and_node_list:
        prices[node] = [gate_cost(cand, node, context) for cand in candidates[node]]
    return prices


_DELAY_TIEBREAK = cost_model_for("delay")


def _dp_round(
    aig: Aig,
    library: GateLibrary,
    and_node_list: list[int],
    candidates: list[list[MatchCandidate]],
    prices: list[list[float]],
    model: CostModel,
    references: list[float],
    required: list[float] | None = None,
    load_aware: bool = False,
) -> tuple[dict[int, MatchCandidate], list[float], list[float]]:
    """One forward DP pass: best candidate, arrival and flow per node.

    Without ``required`` this is the classical single-pass mapping under
    ``model`` with FO4 cell delays (round 0).  With ``required`` only
    candidates meeting their node's deadline compete under ``model``; if
    none does, the arrival-optimal candidate is chosen instead so arrivals
    degrade as little as possible.  ``load_aware`` switches the arrival
    model to the timing engine's ``parasitic + effort * loads`` using the
    per-node reference estimate as the load -- the recovery rounds use it
    so the DP's deadlines line up with the re-timed circuit.
    """
    num_nodes = len(candidates)
    arrival_list = [0.0] * num_nodes
    flow_list = [0.0] * num_nodes
    choices: dict[int, MatchCandidate] = {}
    better = model.better
    fallback_better = _DELAY_TIEBREAK.better

    for node in and_node_list:
        best: MatchCandidate | None = None
        best_arrival = best_flow = 0.0
        fallback: MatchCandidate | None = None
        fallback_arrival = fallback_flow = 0.0
        node_required = required[node] if required is not None else None
        node_references = references[node]
        for candidate, cost in zip(candidates[node], prices[node]):
            leaves = candidate.leaves
            gate_delay = (
                candidate.parasitic + candidate.effort * node_references
                if load_aware
                else candidate.delay
            )
            arrival = (
                max((arrival_list[leaf] for leaf in leaves), default=0.0)
                + gate_delay
            )
            flow = (
                cost + sum(flow_list[leaf] for leaf in leaves)
            ) / node_references
            if node_required is not None:
                if fallback is None or fallback_better(
                    arrival, flow, fallback_arrival, fallback_flow
                ):
                    fallback = candidate
                    fallback_arrival, fallback_flow = arrival, flow
                if arrival > node_required + EPSILON:
                    continue
            if best is None or better(arrival, flow, best_arrival, best_flow):
                best = candidate
                best_arrival, best_flow = arrival, flow
        if best is None:
            if fallback is None:
                raise MappingError(
                    f"node {node} of {aig.name!r} has no matching cell in library "
                    f"{library.name!r}"
                )
            best = fallback
            best_arrival, best_flow = fallback_arrival, fallback_flow
        choices[node] = best
        arrival_list[node] = best_arrival
        flow_list[node] = best_flow
    return choices, arrival_list, flow_list


# -- vectorized DP ------------------------------------------------------------


@dataclass(frozen=True)
class CandidateTable:
    """Struct-of-arrays candidate table: one row per matched ranked cut.

    Rows are grouped contiguously per node in ascending node id (which is
    also topological order for an :class:`Aig`), each node's rows in cut
    slot order -- exactly the candidate sequence the scalar DP iterates.
    ``leaves`` rows are the support-reduced cut leaves in cell input order,
    padded with node 0 (whose arrival and flow are exactly ``0.0``, so
    padded slots are no-ops in the max/sum kernels).  ``matches`` holds the
    distinct :class:`~repro.synthesis.matcher.CellMatch` objects;
    ``match_index`` maps rows onto them.  ``level_rows``/``level_local``
    mirror ``level_nodes`` (the AIG's level buckets): the row indices of a
    level's nodes and, per row, the position of its node within the bucket.
    """

    num_nodes: int
    max_inputs: int
    and_nodes: np.ndarray  #: int64 AND node ids (topological order)
    node: np.ndarray  #: (rows,) int64 owning node per row
    start: np.ndarray  #: (num_nodes,) int64 first row of each node
    count: np.ndarray  #: (num_nodes,) int64 rows per node
    leaves: np.ndarray  #: (rows, max_inputs) int32, padded with node 0
    width: np.ndarray  #: (rows,) int64 number of real leaves
    table_bits: np.ndarray  #: (rows,) uint64 reduced truth table
    match_index: np.ndarray  #: (rows,) int64 index into ``matches``
    delay: np.ndarray  #: (rows,) float64 cell FO4 delay
    area: np.ndarray  #: (rows,) float64 cell area
    parasitic: np.ndarray  #: (rows,) float64 parasitic delay
    effort: np.ndarray  #: (rows,) float64 effort delay (per unit load)
    matches: list[CellMatch]
    level_nodes: tuple[np.ndarray, ...]
    level_rows: tuple[np.ndarray, ...]
    level_local: tuple[np.ndarray, ...]

    @property
    def num_rows(self) -> int:
        return int(self.node.shape[0])

    def candidate(self, row: int) -> MatchCandidate:
        """Materialize one row as a :class:`MatchCandidate` (cover phase).

        Object construction dominates the scalar table build, so the batched
        path only pays it here -- for the few hundred rows a cover actually
        selects, not the tens of thousands the DP scans.
        """
        width = int(self.width[row])
        return MatchCandidate(
            leaves=tuple(int(leaf) for leaf in self.leaves[row, :width]),
            table=int(self.table_bits[row]),
            match=self.matches[int(self.match_index[row])],
            delay=float(self.delay[row]),
            area=float(self.area[row]),
            parasitic=float(self.parasitic[row]),
            effort=float(self.effort[row]),
        )

    def power_columns(self, context):
        """Per-row power attributes for ``PowerFlowCost.price_batch``.

        Returns ``(switched, pin_caps, static_low, negated)``: the matched
        cell's switched capacitance, the per-leaf-position pin capacitances
        (zero-padded to ``max_inputs`` columns), its low-state static
        current and the output-inverter flag -- each resolved once per
        distinct match and gathered per row.
        """
        num_matches = len(self.matches)
        switched = np.zeros(num_matches, dtype=np.float64)
        static_low = np.zeros(num_matches, dtype=np.float64)
        negated = np.zeros(num_matches, dtype=bool)
        caps = np.zeros((num_matches, self.max_inputs), dtype=np.float64)
        for index, match in enumerate(self.matches):
            power_report = match.cell.power
            switched[index] = power_report.switched_capacitance
            static_low[index] = power_report.static_current_low
            negated[index] = match.match.output_negated
            pin_caps = context.pin_capacitances(match)
            caps[index, : len(pin_caps)] = pin_caps
        gather = self.match_index
        return switched[gather], caps[gather], static_low[gather], negated[gather]


def _level_row_groups(
    level_nodes: tuple[np.ndarray, ...], start: np.ndarray, count: np.ndarray
) -> tuple[tuple[np.ndarray, ...], tuple[np.ndarray, ...]]:
    """Row indices (and within-bucket node positions) per AIG level."""
    level_rows: list[np.ndarray] = []
    level_local: list[np.ndarray] = []
    for nodes in level_nodes:
        counts = count[nodes]
        total = int(counts.sum())
        local = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rows = np.repeat(start[nodes] - offsets, counts) + np.arange(
            total, dtype=np.int64
        )
        level_rows.append(rows)
        level_local.append(local)
    return tuple(level_rows), tuple(level_local)


def _empty_candidate_table(arrays, max_inputs: int) -> CandidateTable:
    zero_rows = np.zeros(0, dtype=np.int64)
    return CandidateTable(
        num_nodes=arrays.num_nodes,
        max_inputs=max_inputs,
        and_nodes=arrays.and_nodes,
        node=zero_rows,
        start=np.zeros(arrays.num_nodes, dtype=np.int64),
        count=np.zeros(arrays.num_nodes, dtype=np.int64),
        leaves=np.zeros((0, max_inputs), dtype=np.int32),
        width=zero_rows,
        table_bits=np.zeros(0, dtype=np.uint64),
        match_index=zero_rows,
        delay=np.zeros(0, dtype=np.float64),
        area=np.zeros(0, dtype=np.float64),
        parasitic=np.zeros(0, dtype=np.float64),
        effort=np.zeros(0, dtype=np.float64),
        matches=[],
        level_nodes=arrays.level_groups,
        level_rows=tuple(zero_rows for _ in arrays.level_groups),
        level_local=tuple(zero_rows for _ in arrays.level_groups),
    )


def _scalar_match_forced() -> bool:
    """Whether ``REPRO_SCALAR_MATCH`` pins the per-function scalar matcher
    loop (parity/debugging escape hatch for the batched match pipeline)."""
    return os.environ.get("REPRO_SCALAR_MATCH", "") not in ("", "0")


def _build_candidate_table(
    arrays, cut_set, matcher: _MatcherBase, prefer: str
) -> CandidateTable:
    """Vectorized candidate-table construction (batched Boolean matching).

    The valid ``(node, slot)`` pairs are flattened as in
    :func:`_build_candidates` and the matcher is consulted once per
    *distinct* ``(size, table)`` function.  With a matcher exposing the
    columnar batch API (:meth:`LibraryMatcher.match_table`) the whole match
    resolution is a handful of vector passes -- batched canonicalization,
    one ``searchsorted`` per arity, vectorized transform composition -- and
    the candidate columns are gathered straight out of the
    :class:`~repro.synthesis.matcher.MatchTable`.  Other matchers (and
    ``REPRO_SCALAR_MATCH=1``) fall back to the per-distinct-function scalar
    ``match_positions`` loop, which is the pinned oracle.  Row order is
    identical to the scalar build (nodes ascending, slot order within a
    node), and no :class:`MatchCandidate` objects are created -- see
    :meth:`CandidateTable.candidate`.
    """
    and_nodes = arrays.and_nodes
    max_inputs = cut_set.max_inputs
    if and_nodes.size == 0:
        return _empty_candidate_table(arrays, max_inputs)
    per_node = cut_set.count[and_nodes] - 1
    total = int(per_node.sum())
    if total == 0:
        return _empty_candidate_table(arrays, max_inputs)
    nodes_rep = np.repeat(and_nodes, per_node)
    starts = np.concatenate(([0], np.cumsum(per_node)[:-1]))
    slots = np.arange(total) - np.repeat(starts, per_node)
    cut_leaves = cut_set.leaves[nodes_rep, slots]

    if hasattr(matcher, "match_table") and not _scalar_match_forced():
        match_table = matcher.match_table(cut_set, and_nodes, prefer)
        inverse = match_table.inverse
        matched = match_table.matched
        widths = match_table.width
        reduced = match_table.reduced
        match_ids = match_table.match_index
        cell_delay = match_table.delay
        cell_area = match_table.area
        cell_parasitic = match_table.parasitic
        cell_effort = match_table.effort
        matches = match_table.matches
        positions = match_table.positions
        if positions.shape[1] < max_inputs:
            padded = np.zeros((positions.shape[0], max_inputs), dtype=np.int64)
            padded[:, : positions.shape[1]] = positions
            positions = padded
        elif positions.shape[1] > max_inputs:
            positions = positions[:, :max_inputs]
    else:
        sizes = cut_set.size[nodes_rep, slots].astype(np.uint64)
        tables = cut_set.table[nodes_rep, slots]
        supports = cut_set.support[nodes_rep, slots]

        keys = np.empty((total, 2), dtype=np.uint64)
        keys[:, 0] = sizes
        keys[:, 1] = tables
        distinct, first_index, inverse = np.unique(
            keys, axis=0, return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)

        num_distinct = distinct.shape[0]
        matched = np.zeros(num_distinct, dtype=bool)
        positions = np.zeros((num_distinct, max_inputs), dtype=np.int64)
        widths = np.zeros(num_distinct, dtype=np.int64)
        reduced = np.zeros(num_distinct, dtype=np.uint64)
        match_ids = np.zeros(num_distinct, dtype=np.int64)
        cell_delay = np.zeros(num_distinct, dtype=np.float64)
        cell_area = np.zeros(num_distinct, dtype=np.float64)
        cell_parasitic = np.zeros(num_distinct, dtype=np.float64)
        cell_effort = np.zeros(num_distinct, dtype=np.float64)
        matches = []

        match_positions = matcher.match_positions
        size_list = distinct[:, 0].tolist()
        table_list = distinct[:, 1].tolist()
        support_list = supports[first_index].tolist()
        for index in range(num_distinct):
            found = match_positions(
                size_list[index],
                table_list[index],
                prefer=prefer,
                support_mask=support_list[index],
            )
            if found is None:
                continue
            match, match_pos, match_table_bits = found
            matched[index] = True
            widths[index] = len(match_pos)
            positions[index, : len(match_pos)] = match_pos
            reduced[index] = match_table_bits
            match_ids[index] = len(matches)
            matches.append(match)
            cell = match.cell
            fo4 = cell.delay.fo4_average
            parasitic = cell.delay.parasitic_output
            cell_delay[index] = fo4
            cell_area[index] = cell.area
            cell_parasitic[index] = parasitic
            cell_effort[index] = max(fo4 - parasitic, 0.0) / 4.0

    kept = np.nonzero(matched[inverse])[0]
    ref = inverse[kept]
    node_rows = nodes_rep[kept]
    width_rows = widths[ref]
    leaf_rows = np.take_along_axis(cut_leaves[kept], positions[ref], axis=1)
    leaf_rows = np.where(
        np.arange(max_inputs)[None, :] < width_rows[:, None], leaf_rows, 0
    ).astype(np.int32)

    count = np.bincount(node_rows, minlength=arrays.num_nodes).astype(np.int64)
    start = np.concatenate(([0], np.cumsum(count)[:-1]))
    level_rows, level_local = _level_row_groups(arrays.level_groups, start, count)
    return CandidateTable(
        num_nodes=arrays.num_nodes,
        max_inputs=max_inputs,
        and_nodes=and_nodes,
        node=node_rows,
        start=start,
        count=count,
        leaves=leaf_rows,
        width=width_rows,
        table_bits=reduced[ref],
        match_index=match_ids[ref],
        delay=cell_delay[ref],
        area=cell_area[ref],
        parasitic=cell_parasitic[ref],
        effort=cell_effort[ref],
        matches=matches,
        level_nodes=arrays.level_groups,
        level_rows=level_rows,
        level_local=level_local,
    )


def _candidate_table_for(
    arrays, cut_set, matcher: _MatcherBase, prefer: str
) -> CandidateTable:
    """Memoized :func:`_build_candidate_table` (same scheme as
    :func:`_candidates_for`, distinct memo key space)."""
    memo = cut_set.__dict__.get("_match_tables")
    if memo is None:
        memo = {}
        object.__setattr__(cut_set, "_match_tables", memo)
        _track_cutset_memo(cut_set)
    key = ("batched", id(matcher), prefer)
    entry = memo.get(key)
    if entry is None or entry[0] is not matcher:
        memo[key] = entry = (
            matcher,
            _build_candidate_table(arrays, cut_set, matcher, prefer),
        )
    return entry[1]


def _concat_candidate_tables(
    base: CandidateTable, extra: CandidateTable
) -> tuple[CandidateTable, np.ndarray, np.ndarray]:
    """Merge two tables per node: ``base`` rows first, then ``extra`` rows.

    Reproduces the scalar recovery merge (``base + extra`` candidate lists).
    Also returns the destination row indices of both inputs so per-row
    companions (the price arrays) can be permuted instead of re-priced.
    """
    count = base.count + extra.count
    start = np.concatenate(([0], np.cumsum(count)[:-1]))
    base_local = np.arange(base.num_rows, dtype=np.int64) - base.start[base.node]
    extra_local = np.arange(extra.num_rows, dtype=np.int64) - extra.start[extra.node]
    dest_base = start[base.node] + base_local
    dest_extra = start[extra.node] + base.count[extra.node] + extra_local

    total = base.num_rows + extra.num_rows

    def merge(field_base: np.ndarray, field_extra: np.ndarray) -> np.ndarray:
        merged = np.empty(
            (total,) + field_base.shape[1:], dtype=field_base.dtype
        )
        merged[dest_base] = field_base
        merged[dest_extra] = field_extra
        return merged

    match_index = merge(
        base.match_index, extra.match_index + len(base.matches)
    )
    level_rows, level_local = _level_row_groups(base.level_nodes, start, count)
    merged = CandidateTable(
        num_nodes=base.num_nodes,
        max_inputs=base.max_inputs,
        and_nodes=base.and_nodes,
        node=merge(base.node, extra.node),
        start=start,
        count=count,
        leaves=merge(base.leaves, extra.leaves),
        width=merge(base.width, extra.width),
        table_bits=merge(base.table_bits, extra.table_bits),
        match_index=match_index,
        delay=merge(base.delay, extra.delay),
        area=merge(base.area, extra.area),
        parasitic=merge(base.parasitic, extra.parasitic),
        effort=merge(base.effort, extra.effort),
        matches=base.matches + extra.matches,
        level_nodes=base.level_nodes,
        level_rows=level_rows,
        level_local=level_local,
    )
    return merged, dest_base, dest_extra


@dataclass
class _DpState:
    """A batched DP solution plus the inputs it was solved under.

    Carries everything the incremental re-solve needs: identity of the
    candidate table / price array / model / arrival model, the per-node
    inputs (references, required times) and the full per-row and per-node
    outputs.  :func:`_dp_round_batched` mutates the state in place on an
    incremental call -- any previous solve of the same configuration is a
    valid diff base, accepted or not, because the DP is a pure function of
    its inputs.
    """

    table: CandidateTable
    prices: np.ndarray
    model_name: str
    load_aware: bool
    references: np.ndarray
    required: np.ndarray | None
    row_arrival: np.ndarray
    row_flow: np.ndarray
    arrival: np.ndarray
    flow: np.ndarray
    choice: np.ndarray


class _BatchedChoices:
    """Lazy node -> :class:`MatchCandidate` view over a DP solution.

    Supports the mapping interface the cover phase and the recovery cost
    accounting need (``choices[node]``) while materializing candidate
    objects only for the nodes actually requested.
    """

    def __init__(self, table: CandidateTable, choice_rows: np.ndarray) -> None:
        self._table = table
        self._rows = choice_rows
        self._memo: dict[int, MatchCandidate] = {}

    def __getitem__(self, node: int) -> MatchCandidate:
        cached = self._memo.get(node)
        if cached is None:
            row = int(self._rows[node])
            if row < 0:
                raise KeyError(node)
            cached = self._memo[node] = self._table.candidate(row)
        return cached


def _supports_batch(model: CostModel) -> bool:
    """Whether a cost model implements the vectorized DP hooks."""
    return callable(getattr(model, "price_batch", None)) and callable(
        getattr(model, "better_batch", None)
    )


def _dp_round_batched(
    aig: Aig,
    library: GateLibrary,
    table: CandidateTable,
    prices: np.ndarray,
    model: CostModel,
    references: np.ndarray,
    required: np.ndarray | None = None,
    load_aware: bool = False,
    state: _DpState | None = None,
) -> _DpState:
    """Vectorized :func:`_dp_round`: level-batched, bitwise-identical scan.

    Nodes are processed one AIG level at a time (every ranked-cut leaf lives
    on a strictly lower level than its node, so a level's inputs are final
    when it is reached).  Per level the scalar candidate loop becomes a scan
    over candidate *slots*: slot ``s`` of every node in the level is
    evaluated with one elementwise incumbent update.  Because the epsilon
    tie-breaks are not transitive, a plain argmin could pick a different
    (equally "best") candidate than the scalar incumbent scan; iterating
    slots in cut-rank order reproduces the scalar comparison sequence
    exactly, so the selected rows -- and all downstream artifacts -- are
    bit-identical.

    When ``state`` holds a previous solve of the same configuration (same
    table, prices, model, arrival model, constraint shape), the pass is
    *incremental*: a node is re-chosen only if its reference count or
    required time changed, or the arrival/flow of any of its candidate
    leaves did.  Unchanged nodes provably reproduce their stored outputs
    (the per-node solve is a pure function of exactly those inputs), so the
    incremental result equals a full re-solve bit for bit.
    """
    num_nodes = table.num_nodes
    if table.and_nodes.size:
        missing = table.and_nodes[table.count[table.and_nodes] == 0]
        if missing.size:
            raise MappingError(
                f"node {int(missing[0])} of {aig.name!r} has no matching cell "
                f"in library {library.name!r}"
            )
    full = (
        state is None
        or state.table is not table
        or state.prices is not prices
        or state.model_name != model.name
        or state.load_aware != load_aware
        or (state.required is None) != (required is None)
    )
    if full:
        state = _DpState(
            table=table,
            prices=prices,
            model_name=model.name,
            load_aware=load_aware,
            references=references,
            required=required,
            row_arrival=np.zeros(table.num_rows, dtype=np.float64),
            row_flow=np.zeros(table.num_rows, dtype=np.float64),
            arrival=np.zeros(num_nodes, dtype=np.float64),
            flow=np.zeros(num_nodes, dtype=np.float64),
            choice=np.full(num_nodes, -1, dtype=np.int64),
        )
        node_dirty = out_changed = None
    else:
        node_dirty = references != state.references
        if required is not None:
            # inf != inf is False, so unconstrained nodes stay clean.
            node_dirty |= required != state.required
        out_changed = np.zeros(num_nodes, dtype=bool)
        state.references = references
        state.required = required

    arrival, flow, choice = state.arrival, state.flow, state.choice
    row_arrival, row_flow = state.row_arrival, state.row_flow
    better = model.better_batch
    fallback_better = _DELAY_TIEBREAK.better_batch

    for level_index, nodes in enumerate(table.level_nodes):
        rows = table.level_rows[level_index]
        if not full:
            dirty = node_dirty[nodes]
            if rows.size:
                leaf_changed = out_changed[table.leaves[rows]].any(axis=1)
                if leaf_changed.any():
                    dirty = dirty | (
                        np.bincount(
                            table.level_local[level_index],
                            weights=leaf_changed,
                            minlength=nodes.size,
                        )
                        > 0
                    )
            if not dirty.any():
                continue
            if not dirty.all():
                nodes = nodes[dirty]
                rows = rows[dirty[table.level_local[level_index]]]
        if rows.size == 0:
            continue

        # Per-row arrival and flow, in the scalar expression order: padded
        # leaves are node 0 (arrival/flow exactly 0.0), so the row-max and
        # the column-accumulated flow sum are unaffected bitwise.
        leaf_ids = table.leaves[rows]
        gate_delay = (
            table.parasitic[rows] + table.effort[rows] * references[table.node[rows]]
            if load_aware
            else table.delay[rows]
        )
        row_arrival[rows] = arrival[leaf_ids].max(axis=1) + gate_delay
        leaf_flows = flow[leaf_ids]
        acc = np.zeros(rows.size, dtype=np.float64)
        for position in range(table.max_inputs):
            acc = acc + leaf_flows[:, position]
        row_flow[rows] = (prices[rows] + acc) / references[table.node[rows]]

        # Slot-ordered incumbent scan across the level (see docstring).
        starts = table.start[nodes]
        counts = table.count[nodes]
        width = nodes.size
        best_arrival = np.zeros(width, dtype=np.float64)
        best_flow = np.zeros(width, dtype=np.float64)
        best_row = np.full(width, -1, dtype=np.int64)
        has_best = np.zeros(width, dtype=bool)
        if required is not None:
            node_required = required[nodes]
            fb_arrival = np.zeros(width, dtype=np.float64)
            fb_flow = np.zeros(width, dtype=np.float64)
            fb_row = np.full(width, -1, dtype=np.int64)
            has_fb = np.zeros(width, dtype=bool)
        for slot in range(int(counts.max())):
            valid = slot < counts
            slot_rows = np.where(valid, starts + slot, 0)
            slot_arrival = row_arrival[slot_rows]
            slot_flow = row_flow[slot_rows]
            if required is not None:
                take_fb = valid & (
                    ~has_fb
                    | fallback_better(slot_arrival, slot_flow, fb_arrival, fb_flow)
                )
                fb_arrival = np.where(take_fb, slot_arrival, fb_arrival)
                fb_flow = np.where(take_fb, slot_flow, fb_flow)
                fb_row = np.where(take_fb, slot_rows, fb_row)
                has_fb |= take_fb
                valid = valid & (slot_arrival <= node_required + EPSILON)
            take = valid & (
                ~has_best | better(slot_arrival, slot_flow, best_arrival, best_flow)
            )
            best_arrival = np.where(take, slot_arrival, best_arrival)
            best_flow = np.where(take, slot_flow, best_flow)
            best_row = np.where(take, slot_rows, best_row)
            has_best |= take
        if required is not None and not has_best.all():
            use_fb = ~has_best
            best_arrival = np.where(use_fb, fb_arrival, best_arrival)
            best_flow = np.where(use_fb, fb_flow, best_flow)
            best_row = np.where(use_fb, fb_row, best_row)

        if not full:
            out_changed[nodes] = (arrival[nodes] != best_arrival) | (
                flow[nodes] != best_flow
            )
        arrival[nodes] = best_arrival
        flow[nodes] = best_flow
        choice[nodes] = best_row
    return state


def _cover(
    aig: Aig,
    library: GateLibrary,
    choices: dict[int, MatchCandidate],
    pin_capacitances,
):
    """Backward covering: instantiate one gate per selected cut and time it.

    Returns the circuit together with its
    :class:`~repro.analysis.timing.TimingReport` so the recovery driver can
    reuse the arrival/required view without re-timing.
    """
    required: list[int] = []
    seen: set[int] = set()
    stack = [lit_node(literal) for literal in aig.po_literals]
    while stack:
        node = stack.pop()
        if node in seen or node == 0 or aig.is_pi(node):
            continue
        seen.add(node)
        required.append(node)
        for leaf in choices[node].leaves:
            stack.append(leaf)

    gates: list[MappedGate] = []
    for node in sorted(required):
        choice = choices[node]
        cell = choice.match.cell
        effort = max(cell.delay.fo4_average - cell.delay.parasitic_output, 0.0) / 4.0
        leaf_loads = pin_capacitances(choice.match)
        gates.append(
            MappedGate(
                output=node,
                cell_name=cell.name,
                function_id=cell.function_id,
                leaves=choice.leaves,
                table=choice.table,
                area=cell.area,
                intrinsic_delay=cell.delay.fo4_average,
                parasitic_delay=cell.delay.parasitic_output,
                effort_delay=effort,
                leaf_loads=leaf_loads,
                inverted=choice.match.match.output_negated,
            )
        )

    mapped = MappedCircuit(
        name=aig.name,
        library_name=library.name,
        tau_ps=library.tau_ps,
        gates=gates,
        primary_inputs=aig.pi_names,
        primary_outputs=aig.po_names,
        po_nodes=tuple(lit_node(literal) for literal in aig.po_literals),
    )
    # Static timing on the mapped netlist is owned by the analysis engine
    # (local import: the analysis package layers above synthesis).
    from repro.analysis.timing import compute_timing

    report = compute_timing(mapped)
    mapped.normalized_delay = report.normalized_delay
    mapped.levels = report.levels
    mapped.worst_slack = report.worst_slack()
    return mapped, report


def _cover_references(mapped: MappedCircuit, fanout: list[int]) -> list[float]:
    """Exact per-node reference counts of a cover (recovery-round flows).

    A node selected by the previous round is referenced once per cover gate
    reading it as a leaf plus once per primary output it drives -- the exact
    sharing the area/power flow normalizes by, and the load estimate of the
    recovery rounds' arrival model.  Nodes outside the cover keep their
    structural fanout estimate.
    """
    counts: dict[int, int] = {}
    for gate in mapped.gates:
        for leaf in gate.leaves:
            counts[leaf] = counts.get(leaf, 0) + 1
    for node in mapped.po_nodes:
        counts[node] = counts.get(node, 0) + 1
    references = [max(count, 1.0) for count in fanout]
    for node, count in counts.items():
        references[node] = float(max(count, 1))
    return references


def _required_times(num_nodes: int, report, deadline: float) -> list[float]:
    """Per-node required times of a cover, re-anchored at ``deadline``.

    The timing report's required times are computed against the previous
    round's own worst arrival; shifting them onto the requested deadline
    hands every net its recoverable slack (a deadline *below* the report's
    worst arrival tightens every net -- the recovery driver uses that to
    compensate load-estimate drift).  Nodes outside the cover are
    unconstrained (``+inf``): their arrival only matters through covered
    sinks, which enforce their own deadlines against actual leaf arrivals.
    """
    shift = deadline - report.normalized_delay
    required = [float("inf")] * num_nodes
    for net, value in report.required.items():
        if 0 <= net < num_nodes:
            required[net] = value + shift
    return required


def map_rounds(
    aig: Aig,
    library: GateLibrary,
    matcher: _MatcherBase | None = None,
    objective: str = "delay",
    rounds: int = 0,
    recovery: str = "auto",
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    activities: "ActivityReport | None" = None,
    incremental: bool = True,
) -> MappingResult:
    """Map an AIG with ``rounds`` required-time recovery rounds.

    Round 0 maps under ``objective``'s cost model (bit-identical to the
    historical single-pass ``technology_map``); each subsequent round
    recomputes required times against the round-0 deadline over the best
    cover so far and re-chooses matches under the ``recovery`` cost model
    (``"auto"``: area recovery for the delay/area objectives, power recovery
    for the power objective) wherever slack allows.  Rounds that fail to
    improve -- slower than round 0, or costlier than the incumbent under
    the recovery model -- are recorded but not accepted, so
    :attr:`MappingResult.final` never regresses either axis.

    ``incremental=False`` forces every recovery re-solve to run the DP from
    scratch instead of diffing against the previous round's
    :class:`_DpState`; the results are identical (pinned by the equivalence
    property tests), the flag exists for oracle comparisons.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    model = cost_model_for(objective)
    recovery_model: CostModel | None = None
    if rounds > 0:
        recovery_model = cost_model_for(resolve_recovery(objective, recovery))
    if matcher is None:
        matcher = matcher_for(library)

    # Per-call memo of the resolved per-leaf pin capacitances of a match
    # (keyed by identity: matches are memoized singletons inside the matcher
    # for the duration of the call; the match is stored alongside to keep it
    # alive).  Shared between the cost models and the covering phase.
    pin_caps_memo: dict[int, tuple[CellMatch, tuple[float, ...]]] = {}

    def pin_capacitances(match: CellMatch) -> tuple[float, ...]:
        entry = pin_caps_memo.get(id(match))
        if entry is None:
            power_report = match.cell.power
            caps = tuple(
                power_report.pin_capacitance(pin, negated)
                for pin, negated in _pin_bindings(match)
            )
            pin_caps_memo[id(match)] = entry = (match, caps)
        return entry[1]

    context = MappingContext(pin_capacitances=pin_capacitances)
    needs_activities = model.name == "power" or (
        recovery_model is not None and recovery_model.name == "power"
    )
    if needs_activities:
        if activities is None:
            # Local import: the analysis package layers above synthesis.
            from repro.analysis.activity import compute_activities

            activities = compute_activities(aig)
        context.activity = activities.activity.tolist()
        context.probability = activities.probability.tolist()

    with profiling.stage("cuts"):
        cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=cut_limit)
        arrays = aig_arrays(aig)

    # The batched DP engine needs the vectorized cost hooks on every model
    # that will price candidates this call; a third-party model without them
    # keeps the scalar oracle path for the whole run.
    batched = _supports_batch(model) and (
        recovery_model is None or _supports_batch(recovery_model)
    )

    and_node_list = arrays.and_nodes.tolist()
    fanout = arrays.fanout.tolist()
    structural_references = [max(count, 1.0) for count in fanout]

    # Candidate tables are keyed by the preferred-cell policy (delay-optimal
    # vs area-optimal cell per canonical class) and shared between models;
    # prices are keyed by (model, policy).  Both are built at most once per
    # call.
    candidate_tables: dict[str, object] = {}
    price_tables: dict[tuple[str, str], object] = {}

    def tables_for(which: CostModel, prefer: str | None = None):
        prefer = which.prefer if prefer is None else prefer
        table = candidate_tables.get(prefer)
        if table is None:
            table = candidate_tables[prefer] = (
                _candidate_table_for(arrays, cut_set, matcher, prefer)
                if batched
                else _candidates_for(arrays, cut_set, matcher, prefer)
            )
            rows = (
                table.num_rows
                if batched
                else sum(len(node_rows) for node_rows in table)
            )
            obs.count("mapper.candidate_rows", rows)
            obs.annotate(candidate_rows=rows)
        prices = price_tables.get((which.name, prefer))
        if prices is None:
            prices = price_tables[(which.name, prefer)] = (
                which.price_batch(table, context)
                if batched
                else _price_candidates(and_node_list, table, which, context)
            )
        return table, prices

    dp_state: _DpState | None = None
    with obs.span(
        "map-round", category="round", round=0, objective=model.name
    ) as round_span:
        with profiling.stage("match"):
            candidates, prices = tables_for(model)
            if batched:
                dp_state = _dp_round_batched(
                    aig,
                    library,
                    candidates,
                    prices,
                    model,
                    np.maximum(arrays.fanout, 1).astype(np.float64),
                )
                choices = _BatchedChoices(candidates, dp_state.choice.copy())
            else:
                choices, _, _ = _dp_round(
                    aig,
                    library,
                    and_node_list,
                    candidates,
                    prices,
                    model,
                    structural_references,
                )

        with profiling.stage("cover"):
            mapped, report = _cover(aig, library, choices, pin_capacitances)
        round_span.set("gates", len(mapped.gates))
        round_span.set("delay", mapped.normalized_delay)

    result = MappingResult(
        objective=model.name,
        recovery=recovery_model.name if recovery_model is not None else None,
        rounds=[mapped],
        accepted=[True],
    )
    if rounds == 0 or not mapped.gates:
        return result

    # Recovery: the DP re-chooses matches under the recovery cost model,
    # constrained per node by the previous cover's required times anchored
    # at the round-0 worst delay, with the previous cover's reference
    # counts as both the flow normalization and the arrival-model load
    # estimate.  A keep-best check over the re-timed circuit makes the
    # no-worse-delay / no-worse-cost guarantee unconditional.
    baseline_delay = mapped.normalized_delay
    recovery_candidates, recovery_prices = tables_for(recovery_model)
    if recovery_model.prefer != model.prefer:
        # Widen the recovery DP's choice set with the round-0 policy's
        # candidates (e.g. the delay-preferred cell of every canonical
        # class): timing-critical nodes can then keep the fast cells round 0
        # used instead of degrading to the cheapest cell of the class.
        extra_candidates, extra_prices = tables_for(recovery_model, model.prefer)
        if batched:
            recovery_candidates, dest_base, dest_extra = _concat_candidate_tables(
                recovery_candidates, extra_candidates
            )
            merged_prices = np.empty(
                recovery_candidates.num_rows, dtype=np.float64
            )
            merged_prices[dest_base] = recovery_prices
            merged_prices[dest_extra] = extra_prices
            recovery_prices = merged_prices
        else:
            recovery_candidates = [
                base + extra
                for base, extra in zip(recovery_candidates, extra_candidates)
            ]
            recovery_prices = [
                base + extra for base, extra in zip(recovery_prices, extra_prices)
            ]

    def cover_cost(mapped_round: MappedCircuit, round_choices) -> float:
        price = recovery_model.gate_cost
        return sum(
            price(round_choices[gate.output], gate.output, context)
            for gate in mapped_round.gates
        )

    best_cost = cover_cost(mapped, choices)
    best_mapped, best_report = mapped, report

    # The DP estimates each candidate's load from the previous cover; when
    # the re-timed circuit overshoots the deadline because the new cover's
    # fanouts drifted from that estimate, the round is retried with the
    # deadline tightened by the observed overshoot (the margin persists
    # across rounds -- drift learned once stays compensated).
    margin = 0.0

    with profiling.stage("recover"):
        for round_index in range(rounds):
            with obs.span(
                "map-round",
                category="round",
                round=round_index + 1,
                objective=recovery_model.name,
            ) as round_span:
                attempts = _RECOVERY_RETRIES
                while True:
                    required = _required_times(
                        arrays.num_nodes, best_report, baseline_delay - margin
                    )
                    references = _cover_references(best_mapped, fanout)
                    if batched:
                        # Incremental re-solve: between rounds (and deadline
                        # retries) only the required/reference inputs move, so
                        # the DP diffs against the previous solution and
                        # re-chooses the affected cone only.
                        dp_state = _dp_round_batched(
                            aig,
                            library,
                            recovery_candidates,
                            recovery_prices,
                            recovery_model,
                            np.asarray(references, dtype=np.float64),
                            required=np.asarray(required, dtype=np.float64),
                            load_aware=True,
                            state=dp_state if incremental else None,
                        )
                        round_choices = _BatchedChoices(
                            recovery_candidates, dp_state.choice.copy()
                        )
                    else:
                        round_choices, _, _ = _dp_round(
                            aig,
                            library,
                            and_node_list,
                            recovery_candidates,
                            recovery_prices,
                            recovery_model,
                            references,
                            required=required,
                            load_aware=True,
                        )
                    round_mapped, round_report = _cover(
                        aig, library, round_choices, pin_capacitances
                    )
                    overshoot = round_mapped.normalized_delay - baseline_delay
                    if overshoot > EPSILON and attempts > 0:
                        attempts -= 1
                        margin += overshoot
                        continue
                    break
                round_cost = cover_cost(round_mapped, round_choices)
                accepted = (
                    overshoot <= EPSILON and round_cost <= best_cost + EPSILON
                )
                round_span.set("accepted", accepted)
                round_span.set("overshoot", overshoot)
                round_span.set("retries", _RECOVERY_RETRIES - attempts)
                result.rounds.append(round_mapped)
                result.accepted.append(accepted)
                if not accepted:
                    # The driver is deterministic: re-running from the same
                    # accepted cover would reproduce the same rejected round.
                    break
                improved = round_cost < best_cost - EPSILON or round_mapped.area < (
                    best_mapped.area - EPSILON
                )
                best_cost = round_cost
                best_mapped, best_report = round_mapped, round_report
                if not improved:
                    break  # fixpoint: further rounds cannot find new slack
    return result


def technology_map(
    aig: Aig,
    library: GateLibrary,
    matcher: _MatcherBase | None = None,
    objective: str = "delay",
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    activities: "ActivityReport | None" = None,
    rounds: int = 0,
    recovery: str = "auto",
) -> MappedCircuit:
    """Map an AIG onto a gate library.

    ``objective`` names the registered :class:`~repro.synthesis.cost.CostModel`
    driving the dynamic-programming pass: ``"delay"`` minimizes arrival time
    with area flow as tie-break, ``"area"`` minimizes area flow with arrival
    time as tie-break, and ``"power"`` minimizes the activity-weighted
    switched-capacitance flow with arrival time as tie-break.

    ``rounds`` adds required-time recovery rounds on top of the round-0
    mapping (see :func:`map_rounds`): the returned circuit then has area (or
    power, per ``recovery``) no worse than round 0 at unchanged worst delay.
    With the default ``rounds=0`` the result is bit-identical to the
    historical single-pass mapper.

    ``activities`` supplies the per-node signal statistics for power mapping
    (see :mod:`repro.analysis.activity`); when omitted they are computed
    with the default exact/Monte-Carlo policy.  The argument is ignored
    unless the power cost model participates.
    """
    return map_rounds(
        aig,
        library,
        matcher=matcher,
        objective=objective,
        rounds=rounds,
        recovery=recovery,
        max_inputs=max_inputs,
        cut_limit=cut_limit,
        activities=activities,
    ).final


def topological_gates(gates: Iterable[MappedGate]) -> list[MappedGate]:
    """The gates in true dependency order (every gate after all its leaves).

    Mapped netlists produced by :func:`technology_map` happen to carry
    ascending, topologically ordered output ids, but nothing in the
    :class:`MappedCircuit` contract guarantees that (ids could be shuffled by
    a cleanup/rewrite of the subject graph), so every consumer that
    propagates values or times through the netlist must walk this order
    rather than ``sorted(..., key=lambda g: g.output)``.  Deterministic:
    roots are visited in ascending output id and each gate's unfinished
    leaves depth-first in reverse tuple order (LIFO stack).
    """
    by_output = {gate.output: gate for gate in gates}
    order: list[MappedGate] = []
    finished: set[int] = set()
    in_progress: set[int] = set()
    for root in sorted(by_output):
        if root in finished:
            continue
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in finished:
                continue
            if expanded:
                in_progress.discard(node)
                finished.add(node)
                order.append(by_output[node])
                continue
            if node in in_progress:
                raise ValueError(
                    f"mapped netlist contains a combinational cycle through "
                    f"net {node}"
                )
            in_progress.add(node)
            stack.append((node, True))
            for leaf in by_output[node].leaves:
                if leaf in by_output and leaf not in finished:
                    stack.append((leaf, False))
    return order


def _eval_table_word(table: int, arity: int, leaf_bits: list[int], mask: int) -> int:
    """Evaluate a truth table on one packed 64-bit word per leaf.

    Shannon cofactor expansion over the highest leaf: the output word is
    ``(w & f1) | (~w & f0)`` where ``f0``/``f1`` are the cofactor words, so a
    ``k``-input gate costs O(2**k) word operations for all 64 patterns at
    once instead of 64 * 2**k single-bit probes.
    """
    if table == 0:
        return 0
    if arity == 0:
        return mask if table & 1 else 0
    cofactor_bits = 1 << (arity - 1)
    low = table & ((1 << cofactor_bits) - 1)
    high = table >> cofactor_bits
    if low == high:
        return _eval_table_word(low, arity - 1, leaf_bits, mask)
    word = leaf_bits[arity - 1]
    return (word & _eval_table_word(high, arity - 1, leaf_bits, mask)) | (
        ~word & mask & _eval_table_word(low, arity - 1, leaf_bits, mask)
    )


def _resimulate_words(
    mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]
) -> dict[int, list[int]]:
    """Packed node values of the mapped netlist on the given patterns."""
    mask = (1 << 64) - 1
    num_words = len(next(iter(patterns.values()))) if patterns else 1
    values: dict[int, list[int]] = {0: [0] * num_words}
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        values[node] = [w & mask for w in patterns[name]]

    for gate in topological_gates(mapped.gates):
        leaf_words = [values[leaf] for leaf in gate.leaves]
        arity = len(leaf_words)
        values[gate.output] = [
            _eval_table_word(
                gate.table, arity, [words[i] for words in leaf_words], mask
            )
            for i in range(num_words)
        ]
    return values


def _outputs_match(
    values: dict[int, list[int]],
    aig: Aig,
    reference: dict[str, list[int]],
) -> bool:
    mask = (1 << 64) - 1
    for name, literal in zip(aig.po_names, aig.po_literals):
        words = values.get(literal >> 1)
        if words is None:
            return False
        if literal & 1:
            words = [(~w) & mask for w in words]
        if words != reference[name]:
            return False
    return True


def verify_mapping(mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]) -> bool:
    """Check that the mapped netlist computes the same functions as the AIG.

    The mapped netlist is re-simulated gate by gate using the per-gate truth
    tables recorded during covering, and the primary outputs are compared
    against a packed simulation of the subject AIG on the same patterns.
    Gate evaluation is word-parallel (see :func:`_eval_table_word`); the
    bit-at-a-time implementation is retained as
    :func:`verify_mapping_reference` and the two are cross-checked by the
    equivalence regression tests.
    """
    reference = aig.simulate_words(patterns)
    values = _resimulate_words(mapped, aig, patterns)
    return _outputs_match(values, aig, reference)


def verify_mapping_reference(
    mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]
) -> bool:
    """Slow reference implementation of :func:`verify_mapping`.

    Evaluates every gate one pattern bit at a time by assembling the minterm
    index explicitly.  Kept as the independent oracle for the word-parallel
    fast path.
    """
    reference = aig.simulate_words(patterns)
    mask = (1 << 64) - 1
    num_words = len(next(iter(patterns.values()))) if patterns else 1
    values: dict[int, list[int]] = {0: [0] * num_words}
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        values[node] = [w & mask for w in patterns[name]]

    for gate in topological_gates(mapped.gates):
        leaf_words = [values[leaf] for leaf in gate.leaves]
        output_words = []
        for word_index in range(num_words):
            word = 0
            for bit in range(64):
                minterm = 0
                for position, leaf_values in enumerate(leaf_words):
                    if (leaf_values[word_index] >> bit) & 1:
                        minterm |= 1 << position
                if (gate.table >> minterm) & 1:
                    word |= 1 << bit
            output_words.append(word)
        values[gate.output] = output_words

    return _outputs_match(values, aig, reference)
