"""Cut-based technology mapping onto a characterized gate library.

The mapper follows the classical two-phase scheme used by ABC's ``map``
command:

1. **Matching / dynamic programming.**  Priority cuts are enumerated for every
   AND node and matched against the library through the NPN-canonical index
   (:class:`~repro.synthesis.matcher.LibraryMatcher`).  A forward pass then
   computes, for every node, the best arrival time (delay mode) or the best
   area flow (area mode) over its matched cuts.
2. **Covering.**  A backward traversal from the primary outputs selects the
   chosen cut of every required node and instantiates one library gate per
   selected cut.

Input and output polarities are free: every library cell carries an output
inverter providing both polarities, and the XOR transmission gates accept both
literal polarities directly (paper Secs. 3.1 and 4.3); the CMOS reference
library is mapped under exactly the same convention so that the comparison is
fair.  Circuit-level timing is computed on the mapped netlist with the
paper's load assumption (every fanout charges one standard input capacitance
per switching event) and normalized to the technology intrinsic delay
``tau`` to produce the Table-3 "Norm." and "Abs." columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro import profiling
from repro.core.library import GateLibrary
from repro.synthesis.aig import Aig, lit_node
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import DEFAULT_CUT_LIMIT, DEFAULT_MAX_INPUTS, cut_set_for
from repro.synthesis.matcher import CellMatch, _MatcherBase, matcher_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.activity import ActivityReport


@dataclass(frozen=True)
class MappedGate:
    """One library-gate instance of the mapped netlist.

    ``table`` is the Boolean function of the gate output over ``leaves`` (raw
    truth-table bits, leaf 0 being the least significant input), so the mapped
    netlist can be re-simulated and formally compared against the subject AIG
    without consulting the library again.

    ``leaf_loads`` records, per leaf position, the normalized input
    capacitance of the cell pin the leaf drives (resolved from the matcher's
    pin assignment), and ``inverted`` whether the gate realizes the
    complement of the cell's Table-1 function (output-inverter polarity) --
    both are what the power analysis needs to charge nets correctly.
    """

    output: int
    cell_name: str
    function_id: str
    leaves: tuple[int, ...]
    table: int
    area: float
    intrinsic_delay: float
    parasitic_delay: float
    effort_delay: float
    leaf_loads: tuple[float, ...] = ()
    inverted: bool = False


@dataclass
class MappedCircuit:
    """A technology-mapped circuit and its Table-3 statistics."""

    name: str
    library_name: str
    tau_ps: float
    gates: list[MappedGate]
    primary_inputs: tuple[str, ...]
    primary_outputs: tuple[str, ...]
    po_nodes: tuple[int, ...]
    levels: int = 0
    normalized_delay: float = 0.0

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def area(self) -> float:
        return sum(gate.area for gate in self.gates)

    @property
    def absolute_delay_ps(self) -> float:
        return self.normalized_delay * self.tau_ps

    def gate_histogram(self) -> dict[str, int]:
        """Number of instances per Table-1 function id."""
        histogram: dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.function_id] = histogram.get(gate.function_id, 0) + 1
        return histogram

    def statistics(self) -> dict[str, float]:
        return {
            "gates": self.gate_count,
            "area": self.area,
            "levels": self.levels,
            "normalized_delay": self.normalized_delay,
            "absolute_delay_ps": self.absolute_delay_ps,
        }


@dataclass
class _NodeChoice:
    match: CellMatch
    leaves: tuple[int, ...]
    table: int
    arrival: float
    #: Objective cost flow: area flow for delay/area mapping, activity-
    #: weighted switched-capacitance flow for power mapping.
    flow: float


class MappingError(RuntimeError):
    """Raised when a node cannot be matched by any library cell."""


def _pin_bindings(match: CellMatch) -> tuple[tuple[str, bool], ...]:
    """Cell pin (name, complemented) driven by each reduced leaf position.

    Follows the :class:`~repro.logic.npn.InputMatch` convention
    ``g(z) = (~)^out f(sigma(z) ^ phase)``: leaf position ``j`` drives
    base-cell input ``permutation[j]``, and the phase is applied in the
    *base function's* input space, so the leaf is complemented when phase
    bit ``permutation[j]`` is set (pinned by the mapper pin-binding test
    against the cell truth tables).
    """
    transform = match.match
    names = match.cell.input_names
    return tuple(
        (
            names[transform.permutation[j]],
            bool((transform.phase >> transform.permutation[j]) & 1),
        )
        for j in range(len(transform.permutation))
    )


def technology_map(
    aig: Aig,
    library: GateLibrary,
    matcher: _MatcherBase | None = None,
    objective: str = "delay",
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    activities: "ActivityReport | None" = None,
) -> MappedCircuit:
    """Map an AIG onto a gate library.

    ``objective`` selects the primary cost during the dynamic-programming
    pass: ``"delay"`` minimizes arrival time with area flow as tie-break,
    ``"area"`` minimizes area flow with arrival time as tie-break, and
    ``"power"`` minimizes the activity-weighted switched-capacitance flow
    (dynamic switching of the cell's output/internal/pin capacitances at the
    node and leaf activities, plus the expected pseudo-family static
    current) with arrival time as tie-break.

    ``activities`` supplies the per-node signal statistics for power mapping
    (see :mod:`repro.analysis.activity`); when omitted they are computed
    with the default exact/Monte-Carlo policy.  The argument is ignored for
    the delay and area objectives.
    """
    if objective not in ("delay", "area", "power"):
        raise ValueError("objective must be 'delay', 'area' or 'power'")
    if matcher is None:
        matcher = matcher_for(library)
    activity_list: list[float] | None = None
    probability_list: list[float] | None = None
    # Per-call memo of the resolved per-leaf pin capacitances of a match
    # (keyed by identity: matches are memoized singletons inside the matcher
    # for the duration of the call; the match is stored alongside to keep it
    # alive).  Shared between the power DP and the covering phase.
    pin_caps_memo: dict[int, tuple[CellMatch, tuple[float, ...]]] = {}

    def pin_capacitances(match: CellMatch) -> tuple[float, ...]:
        entry = pin_caps_memo.get(id(match))
        if entry is None:
            power_report = match.cell.power
            caps = tuple(
                power_report.pin_capacitance(pin, negated)
                for pin, negated in _pin_bindings(match)
            )
            pin_caps_memo[id(match)] = entry = (match, caps)
        return entry[1]

    if objective == "power":
        if activities is None:
            # Local import: the analysis package layers above synthesis.
            from repro.analysis.activity import compute_activities

            activities = compute_activities(aig)
        activity_list = activities.activity.tolist()
        probability_list = activities.probability.tolist()
    with profiling.stage("cuts"):
        cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=cut_limit)
        arrays = aig_arrays(aig)

    # Forward DP over the array representation: per-node best arrival and
    # cost flow live in dense arrays indexed by node id (constant and primary
    # inputs start at zero; every cut leaf precedes its node in topological
    # order, so reads always hit finalized entries), choices are resolved per
    # node from the node's cut slots.  Plain Python lists are used for the
    # dense stores because the loop reads and writes single scalars.
    num_nodes = arrays.num_nodes
    arrival_list = [0.0] * num_nodes
    flow_list = [0.0] * num_nodes
    choices: dict[int, _NodeChoice] = {}
    fanout = arrays.fanout.tolist()
    cut_count, cut_size, cut_leaves, cut_table, cut_support = cut_set.as_python()

    # Cell selection within a canonical class: smallest area for the area
    # *and* power objectives (switched capacitance is monotone in the device
    # widths, i.e. in the area), fastest cell for delay.
    prefer = "delay" if objective == "delay" else "area"

    with profiling.stage("match"):
        for node in arrays.and_nodes.tolist():
            best: _NodeChoice | None = None
            node_leaves = cut_leaves[node]
            node_tables = cut_table[node]
            node_sizes = cut_size[node]
            node_support = cut_support[node]
            for slot in range(cut_count[node] - 1):  # last slot: trivial cut
                found = matcher.match_positions(
                    node_sizes[slot],
                    node_tables[slot],
                    prefer=prefer,
                    support_mask=node_support[slot],
                )
                if found is None:
                    continue
                match, positions, table = found
                slot_leaves = node_leaves[slot]
                leaves = tuple(slot_leaves[p] for p in positions)
                cell = match.cell
                node_arrival = (
                    max((arrival_list[leaf] for leaf in leaves), default=0.0)
                    + cell.delay.fo4_average
                )
                references = max(fanout[node], 1)
                if objective == "power":
                    power_report = cell.power
                    gate_power = (
                        activity_list[node] * power_report.switched_capacitance
                    )
                    for position, capacitance in enumerate(pin_capacitances(match)):
                        gate_power += activity_list[leaves[position]] * capacitance
                    probability_on = (
                        1.0 - probability_list[node]
                        if match.match.output_negated
                        else probability_list[node]
                    )
                    gate_power += power_report.static_power(probability_on)
                    node_flow = (
                        gate_power + sum(flow_list[leaf] for leaf in leaves)
                    ) / references
                else:
                    node_flow = (
                        cell.area + sum(flow_list[leaf] for leaf in leaves)
                    ) / references
                candidate = _NodeChoice(match, leaves, table, node_arrival, node_flow)
                if best is None:
                    best = candidate
                    continue
                if objective == "delay":
                    better = (
                        candidate.arrival < best.arrival - 1e-9
                        or (
                            abs(candidate.arrival - best.arrival) <= 1e-9
                            and candidate.flow < best.flow - 1e-9
                        )
                    )
                else:
                    better = (
                        candidate.flow < best.flow - 1e-9
                        or (
                            abs(candidate.flow - best.flow) <= 1e-9
                            and candidate.arrival < best.arrival - 1e-9
                        )
                    )
                if better:
                    best = candidate
            if best is None:
                raise MappingError(
                    f"node {node} of {aig.name!r} has no matching cell in library "
                    f"{library.name!r}"
                )
            choices[node] = best
            arrival_list[node] = best.arrival
            flow_list[node] = best.flow

    with profiling.stage("cover"):
        # Covering: walk back from the primary outputs.
        required: list[int] = []
        seen: set[int] = set()
        stack = [lit_node(literal) for literal in aig.po_literals]
        while stack:
            node = stack.pop()
            if node in seen or node == 0 or aig.is_pi(node):
                continue
            seen.add(node)
            required.append(node)
            for leaf in choices[node].leaves:
                stack.append(leaf)

        gates: list[MappedGate] = []
        for node in sorted(required):
            choice = choices[node]
            cell = choice.match.cell
            effort = max(cell.delay.fo4_average - cell.delay.parasitic_output, 0.0) / 4.0
            leaf_loads = pin_capacitances(choice.match)
            gates.append(
                MappedGate(
                    output=node,
                    cell_name=cell.name,
                    function_id=cell.function_id,
                    leaves=choice.leaves,
                    table=choice.table,
                    area=cell.area,
                    intrinsic_delay=cell.delay.fo4_average,
                    parasitic_delay=cell.delay.parasitic_output,
                    effort_delay=effort,
                    leaf_loads=leaf_loads,
                    inverted=choice.match.match.output_negated,
                )
            )

        mapped = MappedCircuit(
            name=aig.name,
            library_name=library.name,
            tau_ps=library.tau_ps,
            gates=gates,
            primary_inputs=aig.pi_names,
            primary_outputs=aig.po_names,
            po_nodes=tuple(lit_node(literal) for literal in aig.po_literals),
        )
        _compute_timing(mapped)
    return mapped


def topological_gates(gates: Iterable[MappedGate]) -> list[MappedGate]:
    """The gates in true dependency order (every gate after all its leaves).

    Mapped netlists produced by :func:`technology_map` happen to carry
    ascending, topologically ordered output ids, but nothing in the
    :class:`MappedCircuit` contract guarantees that (ids could be shuffled by
    a cleanup/rewrite of the subject graph), so every consumer that
    propagates values or times through the netlist must walk this order
    rather than ``sorted(..., key=lambda g: g.output)``.  Deterministic:
    roots are visited in ascending output id and each gate's unfinished
    leaves depth-first in reverse tuple order (LIFO stack).
    """
    by_output = {gate.output: gate for gate in gates}
    order: list[MappedGate] = []
    finished: set[int] = set()
    in_progress: set[int] = set()
    for root in sorted(by_output):
        if root in finished:
            continue
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in finished:
                continue
            if expanded:
                in_progress.discard(node)
                finished.add(node)
                order.append(by_output[node])
                continue
            if node in in_progress:
                raise ValueError(
                    f"mapped netlist contains a combinational cycle through "
                    f"net {node}"
                )
            in_progress.add(node)
            stack.append((node, True))
            for leaf in by_output[node].leaves:
                if leaf in by_output and leaf not in finished:
                    stack.append((leaf, False))
    return order


def _eval_table_word(table: int, arity: int, leaf_bits: list[int], mask: int) -> int:
    """Evaluate a truth table on one packed 64-bit word per leaf.

    Shannon cofactor expansion over the highest leaf: the output word is
    ``(w & f1) | (~w & f0)`` where ``f0``/``f1`` are the cofactor words, so a
    ``k``-input gate costs O(2**k) word operations for all 64 patterns at
    once instead of 64 * 2**k single-bit probes.
    """
    if table == 0:
        return 0
    if arity == 0:
        return mask if table & 1 else 0
    cofactor_bits = 1 << (arity - 1)
    low = table & ((1 << cofactor_bits) - 1)
    high = table >> cofactor_bits
    if low == high:
        return _eval_table_word(low, arity - 1, leaf_bits, mask)
    word = leaf_bits[arity - 1]
    return (word & _eval_table_word(high, arity - 1, leaf_bits, mask)) | (
        ~word & mask & _eval_table_word(low, arity - 1, leaf_bits, mask)
    )


def _resimulate_words(
    mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]
) -> dict[int, list[int]]:
    """Packed node values of the mapped netlist on the given patterns."""
    mask = (1 << 64) - 1
    num_words = len(next(iter(patterns.values()))) if patterns else 1
    values: dict[int, list[int]] = {0: [0] * num_words}
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        values[node] = [w & mask for w in patterns[name]]

    for gate in topological_gates(mapped.gates):
        leaf_words = [values[leaf] for leaf in gate.leaves]
        arity = len(leaf_words)
        values[gate.output] = [
            _eval_table_word(
                gate.table, arity, [words[i] for words in leaf_words], mask
            )
            for i in range(num_words)
        ]
    return values


def _outputs_match(
    values: dict[int, list[int]],
    aig: Aig,
    reference: dict[str, list[int]],
) -> bool:
    mask = (1 << 64) - 1
    for name, literal in zip(aig.po_names, aig.po_literals):
        words = values.get(literal >> 1)
        if words is None:
            return False
        if literal & 1:
            words = [(~w) & mask for w in words]
        if words != reference[name]:
            return False
    return True


def verify_mapping(mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]) -> bool:
    """Check that the mapped netlist computes the same functions as the AIG.

    The mapped netlist is re-simulated gate by gate using the per-gate truth
    tables recorded during covering, and the primary outputs are compared
    against a packed simulation of the subject AIG on the same patterns.
    Gate evaluation is word-parallel (see :func:`_eval_table_word`); the
    bit-at-a-time implementation is retained as
    :func:`verify_mapping_reference` and the two are cross-checked by the
    equivalence regression tests.
    """
    reference = aig.simulate_words(patterns)
    values = _resimulate_words(mapped, aig, patterns)
    return _outputs_match(values, aig, reference)


def verify_mapping_reference(
    mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]
) -> bool:
    """Slow reference implementation of :func:`verify_mapping`.

    Evaluates every gate one pattern bit at a time by assembling the minterm
    index explicitly.  Kept as the independent oracle for the word-parallel
    fast path.
    """
    reference = aig.simulate_words(patterns)
    mask = (1 << 64) - 1
    num_words = len(next(iter(patterns.values()))) if patterns else 1
    values: dict[int, list[int]] = {0: [0] * num_words}
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        values[node] = [w & mask for w in patterns[name]]

    for gate in topological_gates(mapped.gates):
        leaf_words = [values[leaf] for leaf in gate.leaves]
        output_words = []
        for word_index in range(num_words):
            word = 0
            for bit in range(64):
                minterm = 0
                for position, leaf_values in enumerate(leaf_words):
                    if (leaf_values[word_index] >> bit) & 1:
                        minterm |= 1 << position
                if (gate.table >> minterm) & 1:
                    word |= 1 << bit
            output_words.append(word)
        values[gate.output] = output_words

    return _outputs_match(values, aig, reference)


def _compute_timing(mapped: MappedCircuit) -> None:
    """Static timing and logic depth on the mapped netlist.

    Delegates to the full arrival/required/slack engine in
    :mod:`repro.analysis.timing` (local import: the analysis package layers
    above synthesis), which walks the gates in true topological order, and
    records the two Table-3 figures on the circuit.
    """
    from repro.analysis.timing import compute_timing

    report = compute_timing(mapped)
    mapped.normalized_delay = report.normalized_delay
    mapped.levels = report.levels
