"""Cut-based technology mapping onto a characterized gate library.

The mapper follows the classical two-phase scheme used by ABC's ``map``
command:

1. **Matching / dynamic programming.**  Priority cuts are enumerated for every
   AND node and matched against the library through the NPN-canonical index
   (:class:`~repro.synthesis.matcher.LibraryMatcher`).  A forward pass then
   computes, for every node, the best arrival time (delay mode) or the best
   area flow (area mode) over its matched cuts.
2. **Covering.**  A backward traversal from the primary outputs selects the
   chosen cut of every required node and instantiates one library gate per
   selected cut.

Input and output polarities are free: every library cell carries an output
inverter providing both polarities, and the XOR transmission gates accept both
literal polarities directly (paper Secs. 3.1 and 4.3); the CMOS reference
library is mapped under exactly the same convention so that the comparison is
fair.  Circuit-level timing is computed on the mapped netlist with the
paper's load assumption (every fanout charges one standard input capacitance
per switching event) and normalized to the technology intrinsic delay
``tau`` to produce the Table-3 "Norm." and "Abs." columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import profiling
from repro.core.library import GateLibrary
from repro.synthesis.aig import Aig, lit_node
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import DEFAULT_CUT_LIMIT, DEFAULT_MAX_INPUTS, cut_set_for
from repro.synthesis.matcher import CellMatch, _MatcherBase, matcher_for


@dataclass(frozen=True)
class MappedGate:
    """One library-gate instance of the mapped netlist.

    ``table`` is the Boolean function of the gate output over ``leaves`` (raw
    truth-table bits, leaf 0 being the least significant input), so the mapped
    netlist can be re-simulated and formally compared against the subject AIG
    without consulting the library again.
    """

    output: int
    cell_name: str
    function_id: str
    leaves: tuple[int, ...]
    table: int
    area: float
    intrinsic_delay: float
    parasitic_delay: float
    effort_delay: float


@dataclass
class MappedCircuit:
    """A technology-mapped circuit and its Table-3 statistics."""

    name: str
    library_name: str
    tau_ps: float
    gates: list[MappedGate]
    primary_inputs: tuple[str, ...]
    primary_outputs: tuple[str, ...]
    po_nodes: tuple[int, ...]
    levels: int = 0
    normalized_delay: float = 0.0

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def area(self) -> float:
        return sum(gate.area for gate in self.gates)

    @property
    def absolute_delay_ps(self) -> float:
        return self.normalized_delay * self.tau_ps

    def gate_histogram(self) -> dict[str, int]:
        """Number of instances per Table-1 function id."""
        histogram: dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.function_id] = histogram.get(gate.function_id, 0) + 1
        return histogram

    def statistics(self) -> dict[str, float]:
        return {
            "gates": self.gate_count,
            "area": self.area,
            "levels": self.levels,
            "normalized_delay": self.normalized_delay,
            "absolute_delay_ps": self.absolute_delay_ps,
        }


@dataclass
class _NodeChoice:
    match: CellMatch
    leaves: tuple[int, ...]
    table: int
    arrival: float
    area_flow: float


class MappingError(RuntimeError):
    """Raised when a node cannot be matched by any library cell."""


def technology_map(
    aig: Aig,
    library: GateLibrary,
    matcher: _MatcherBase | None = None,
    objective: str = "delay",
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> MappedCircuit:
    """Map an AIG onto a gate library.

    ``objective`` selects the primary cost during the dynamic-programming
    pass: ``"delay"`` minimizes arrival time with area flow as tie-break,
    ``"area"`` minimizes area flow with arrival time as tie-break.
    """
    if objective not in ("delay", "area"):
        raise ValueError("objective must be 'delay' or 'area'")
    if matcher is None:
        matcher = matcher_for(library)
    with profiling.stage("cuts"):
        cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=cut_limit)
        arrays = aig_arrays(aig)

    # Forward DP over the array representation: per-node best arrival and
    # area flow live in dense arrays indexed by node id (constant and primary
    # inputs start at zero; every cut leaf precedes its node in topological
    # order, so reads always hit finalized entries), choices are resolved per
    # node from the node's cut slots.  Plain Python lists are used for the
    # dense stores because the loop reads and writes single scalars.
    num_nodes = arrays.num_nodes
    arrival_list = [0.0] * num_nodes
    area_flow_list = [0.0] * num_nodes
    choices: dict[int, _NodeChoice] = {}
    fanout = arrays.fanout.tolist()
    cut_count, cut_size, cut_leaves, cut_table, cut_support = cut_set.as_python()

    prefer = "delay" if objective == "delay" else "area"

    with profiling.stage("match"):
        for node in arrays.and_nodes.tolist():
            best: _NodeChoice | None = None
            node_leaves = cut_leaves[node]
            node_tables = cut_table[node]
            node_sizes = cut_size[node]
            node_support = cut_support[node]
            for slot in range(cut_count[node] - 1):  # last slot: trivial cut
                found = matcher.match_positions(
                    node_sizes[slot],
                    node_tables[slot],
                    prefer=prefer,
                    support_mask=node_support[slot],
                )
                if found is None:
                    continue
                match, positions, table = found
                slot_leaves = node_leaves[slot]
                leaves = tuple(slot_leaves[p] for p in positions)
                cell = match.cell
                node_arrival = (
                    max((arrival_list[leaf] for leaf in leaves), default=0.0)
                    + cell.delay.fo4_average
                )
                references = max(fanout[node], 1)
                node_area_flow = (
                    cell.area + sum(area_flow_list[leaf] for leaf in leaves)
                ) / references
                candidate = _NodeChoice(match, leaves, table, node_arrival, node_area_flow)
                if best is None:
                    best = candidate
                    continue
                if objective == "delay":
                    better = (
                        candidate.arrival < best.arrival - 1e-9
                        or (
                            abs(candidate.arrival - best.arrival) <= 1e-9
                            and candidate.area_flow < best.area_flow - 1e-9
                        )
                    )
                else:
                    better = (
                        candidate.area_flow < best.area_flow - 1e-9
                        or (
                            abs(candidate.area_flow - best.area_flow) <= 1e-9
                            and candidate.arrival < best.arrival - 1e-9
                        )
                    )
                if better:
                    best = candidate
            if best is None:
                raise MappingError(
                    f"node {node} of {aig.name!r} has no matching cell in library "
                    f"{library.name!r}"
                )
            choices[node] = best
            arrival_list[node] = best.arrival
            area_flow_list[node] = best.area_flow

    with profiling.stage("cover"):
        # Covering: walk back from the primary outputs.
        required: list[int] = []
        seen: set[int] = set()
        stack = [lit_node(literal) for literal in aig.po_literals]
        while stack:
            node = stack.pop()
            if node in seen or node == 0 or aig.is_pi(node):
                continue
            seen.add(node)
            required.append(node)
            for leaf in choices[node].leaves:
                stack.append(leaf)

        gates: list[MappedGate] = []
        for node in sorted(required):
            choice = choices[node]
            cell = choice.match.cell
            effort = max(cell.delay.fo4_average - cell.delay.parasitic_output, 0.0) / 4.0
            gates.append(
                MappedGate(
                    output=node,
                    cell_name=cell.name,
                    function_id=cell.function_id,
                    leaves=choice.leaves,
                    table=choice.table,
                    area=cell.area,
                    intrinsic_delay=cell.delay.fo4_average,
                    parasitic_delay=cell.delay.parasitic_output,
                    effort_delay=effort,
                )
            )

        mapped = MappedCircuit(
            name=aig.name,
            library_name=library.name,
            tau_ps=library.tau_ps,
            gates=gates,
            primary_inputs=aig.pi_names,
            primary_outputs=aig.po_names,
            po_nodes=tuple(lit_node(literal) for literal in aig.po_literals),
        )
        _compute_timing(mapped, aig)
    return mapped


def _eval_table_word(table: int, arity: int, leaf_bits: list[int], mask: int) -> int:
    """Evaluate a truth table on one packed 64-bit word per leaf.

    Shannon cofactor expansion over the highest leaf: the output word is
    ``(w & f1) | (~w & f0)`` where ``f0``/``f1`` are the cofactor words, so a
    ``k``-input gate costs O(2**k) word operations for all 64 patterns at
    once instead of 64 * 2**k single-bit probes.
    """
    if table == 0:
        return 0
    if arity == 0:
        return mask if table & 1 else 0
    cofactor_bits = 1 << (arity - 1)
    low = table & ((1 << cofactor_bits) - 1)
    high = table >> cofactor_bits
    if low == high:
        return _eval_table_word(low, arity - 1, leaf_bits, mask)
    word = leaf_bits[arity - 1]
    return (word & _eval_table_word(high, arity - 1, leaf_bits, mask)) | (
        ~word & mask & _eval_table_word(low, arity - 1, leaf_bits, mask)
    )


def _resimulate_words(
    mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]
) -> dict[int, list[int]]:
    """Packed node values of the mapped netlist on the given patterns."""
    mask = (1 << 64) - 1
    num_words = len(next(iter(patterns.values()))) if patterns else 1
    values: dict[int, list[int]] = {0: [0] * num_words}
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        values[node] = [w & mask for w in patterns[name]]

    for gate in sorted(mapped.gates, key=lambda g: g.output):
        leaf_words = [values[leaf] for leaf in gate.leaves]
        arity = len(leaf_words)
        values[gate.output] = [
            _eval_table_word(
                gate.table, arity, [words[i] for words in leaf_words], mask
            )
            for i in range(num_words)
        ]
    return values


def _outputs_match(
    values: dict[int, list[int]],
    aig: Aig,
    reference: dict[str, list[int]],
) -> bool:
    mask = (1 << 64) - 1
    for name, literal in zip(aig.po_names, aig.po_literals):
        words = values.get(literal >> 1)
        if words is None:
            return False
        if literal & 1:
            words = [(~w) & mask for w in words]
        if words != reference[name]:
            return False
    return True


def verify_mapping(mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]) -> bool:
    """Check that the mapped netlist computes the same functions as the AIG.

    The mapped netlist is re-simulated gate by gate using the per-gate truth
    tables recorded during covering, and the primary outputs are compared
    against a packed simulation of the subject AIG on the same patterns.
    Gate evaluation is word-parallel (see :func:`_eval_table_word`); the
    bit-at-a-time implementation is retained as
    :func:`verify_mapping_reference` and the two are cross-checked by the
    equivalence regression tests.
    """
    reference = aig.simulate_words(patterns)
    values = _resimulate_words(mapped, aig, patterns)
    return _outputs_match(values, aig, reference)


def verify_mapping_reference(
    mapped: MappedCircuit, aig: Aig, patterns: dict[str, list[int]]
) -> bool:
    """Slow reference implementation of :func:`verify_mapping`.

    Evaluates every gate one pattern bit at a time by assembling the minterm
    index explicitly.  Kept as the independent oracle for the word-parallel
    fast path.
    """
    reference = aig.simulate_words(patterns)
    mask = (1 << 64) - 1
    num_words = len(next(iter(patterns.values()))) if patterns else 1
    values: dict[int, list[int]] = {0: [0] * num_words}
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        values[node] = [w & mask for w in patterns[name]]

    for gate in sorted(mapped.gates, key=lambda g: g.output):
        leaf_words = [values[leaf] for leaf in gate.leaves]
        output_words = []
        for word_index in range(num_words):
            word = 0
            for bit in range(64):
                minterm = 0
                for position, leaf_values in enumerate(leaf_words):
                    if (leaf_values[word_index] >> bit) & 1:
                        minterm |= 1 << position
                if (gate.table >> minterm) & 1:
                    word |= 1 << bit
            output_words.append(word)
        values[gate.output] = output_words

    return _outputs_match(values, aig, reference)


def _compute_timing(mapped: MappedCircuit, aig: Aig) -> None:
    """Static timing and logic depth on the mapped netlist.

    Gate delay is the characterized FO4 delay rescaled to the instance's
    actual structural fanout: ``parasitic + effort_per_load * fanout`` where
    one load is the standard input capacitance assumed by the paper's
    worst-case delay accounting (Sec. 4.4); primary outputs count as one load.
    """
    gate_by_output = {gate.output: gate for gate in mapped.gates}
    fanout_count: dict[int, int] = {gate.output: 0 for gate in mapped.gates}
    for gate in mapped.gates:
        for leaf in gate.leaves:
            if leaf in fanout_count:
                fanout_count[leaf] += 1
    for node in mapped.po_nodes:
        if node in fanout_count:
            fanout_count[node] += 1

    arrival: dict[int, float] = {0: 0.0}
    depth: dict[int, int] = {0: 0}
    for pi in aig.pi_nodes():
        arrival[pi] = 0.0
        depth[pi] = 0

    for gate in sorted(mapped.gates, key=lambda g: g.output):
        loads = max(fanout_count.get(gate.output, 1), 1)
        delay = gate.parasitic_delay + gate.effort_delay * loads
        gate_arrival = (
            max((arrival.get(leaf, 0.0) for leaf in gate.leaves), default=0.0) + delay
        )
        gate_depth = max((depth.get(leaf, 0) for leaf in gate.leaves), default=0) + 1
        arrival[gate.output] = gate_arrival
        depth[gate.output] = gate_depth

    po_arrivals = [arrival.get(node, 0.0) for node in mapped.po_nodes]
    po_depths = [depth.get(node, 0) for node in mapped.po_nodes]
    mapped.normalized_delay = max(po_arrivals, default=0.0)
    mapped.levels = max(po_depths, default=0)
