"""And-Inverter Graph with structural hashing.

The AIG is the subject-graph representation used by the optimizer and the
technology mapper, mirroring the role it plays inside ABC.  Nodes are
two-input AND gates; edges carry an optional complementation.  A *literal*
encodes a node id and a complement bit as ``2 * node + complement``; node 0 is
the constant false, so literal 0 is constant-0 and literal 1 is constant-1.

Construction applies structural hashing and the usual one-level
simplifications (idempotence, annihilation, complement cancellation), so an
AIG built twice from the same structure shares nodes automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

AigLiteral = int

CONST0: AigLiteral = 0
CONST1: AigLiteral = 1


def lit_complement(literal: AigLiteral) -> AigLiteral:
    """Complement a literal."""
    return literal ^ 1


def lit_node(literal: AigLiteral) -> int:
    """Node index of a literal."""
    return literal >> 1


def lit_is_complemented(literal: AigLiteral) -> bool:
    return bool(literal & 1)


def make_literal(node: int, complemented: bool = False) -> AigLiteral:
    return (node << 1) | int(complemented)


@dataclass(slots=True)
class _Node:
    """One AIG node.  Primary inputs have ``fanin0 == fanin1 == -1``."""

    fanin0: AigLiteral
    fanin1: AigLiteral
    level: int


class Aig:
    """A structurally hashed And-Inverter Graph."""

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        # Node 0 is the constant-false node.
        self._nodes: list[_Node] = [_Node(-1, -1, 0)]
        self._pi_names: list[str] = []
        self._pi_nodes: list[int] = []
        self._po_names: list[str] = []
        self._po_literals: list[AigLiteral] = []
        self._strash: dict[tuple[AigLiteral, AigLiteral], int] = {}

    # -- construction -------------------------------------------------------

    def add_pi(self, name: str) -> AigLiteral:
        """Add a primary input and return its (positive) literal."""
        if name in self._pi_names:
            raise ValueError(f"duplicate primary input name {name!r}")
        node = len(self._nodes)
        self._nodes.append(_Node(-1, -1, 0))
        self._pi_names.append(name)
        self._pi_nodes.append(node)
        return make_literal(node)

    def add_po(self, name: str, literal: AigLiteral) -> None:
        """Register a primary output driven by ``literal``."""
        if literal < 0 or lit_node(literal) >= len(self._nodes):
            raise ValueError(f"literal {literal} does not exist")
        self._po_names.append(name)
        self._po_literals.append(literal)

    def and_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        """AND of two literals with structural hashing and local simplification."""
        nodes = self._nodes
        known = len(nodes)
        if a < 0 or (a >> 1) >= known or b < 0 or (b >> 1) >= known:
            bad = a if (a < 0 or (a >> 1) >= known) else b
            raise ValueError(f"literal {bad} does not exist")
        # Local simplifications.
        if a == CONST0 or b == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        if a ^ 1 == b:
            return CONST0
        # Canonical order for hashing.
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return existing << 1
        level0 = nodes[a >> 1].level
        level1 = nodes[b >> 1].level
        nodes.append(_Node(a, b, (level0 if level0 >= level1 else level1) + 1))
        self._strash[key] = known
        return known << 1

    def not_gate(self, a: AigLiteral) -> AigLiteral:
        return lit_complement(a)

    def or_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return lit_complement(self.and_gate(lit_complement(a), lit_complement(b)))

    def nand_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return lit_complement(self.and_gate(a, b))

    def nor_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return self.and_gate(lit_complement(a), lit_complement(b))

    def xor_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return self.or_gate(
            self.and_gate(a, lit_complement(b)), self.and_gate(lit_complement(a), b)
        )

    def xnor_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return lit_complement(self.xor_gate(a, b))

    def mux_gate(self, select: AigLiteral, when_true: AigLiteral, when_false: AigLiteral) -> AigLiteral:
        return self.or_gate(
            self.and_gate(select, when_true),
            self.and_gate(lit_complement(select), when_false),
        )

    def and_many(self, literals: Sequence[AigLiteral]) -> AigLiteral:
        """Balanced AND of an arbitrary number of literals."""
        items = list(literals)
        if not items:
            return CONST1
        while len(items) > 1:
            items = [
                self.and_gate(items[i], items[i + 1]) if i + 1 < len(items) else items[i]
                for i in range(0, len(items), 2)
            ]
        return items[0]

    def or_many(self, literals: Sequence[AigLiteral]) -> AigLiteral:
        return lit_complement(self.and_many([lit_complement(l) for l in literals]))

    def xor_many(self, literals: Sequence[AigLiteral]) -> AigLiteral:
        result = CONST0
        for literal in literals:
            result = self.xor_gate(result, literal)
        return result

    # -- inspection -----------------------------------------------------------

    @property
    def pi_names(self) -> tuple[str, ...]:
        return tuple(self._pi_names)

    @property
    def po_names(self) -> tuple[str, ...]:
        return tuple(self._po_names)

    @property
    def po_literals(self) -> tuple[AigLiteral, ...]:
        return tuple(self._po_literals)

    @property
    def num_pis(self) -> int:
        return len(self._pi_nodes)

    @property
    def num_pos(self) -> int:
        return len(self._po_literals)

    @property
    def num_nodes(self) -> int:
        """Total node count including the constant and the primary inputs."""
        return len(self._nodes)

    @property
    def num_ands(self) -> int:
        return len(self._nodes) - 1 - len(self._pi_nodes)

    def pi_literal(self, name: str) -> AigLiteral:
        try:
            index = self._pi_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown primary input {name!r}") from exc
        return make_literal(self._pi_nodes[index])

    def is_pi(self, node: int) -> bool:
        return node in set(self._pi_nodes) if False else self._nodes[node].fanin0 == -1 and node != 0

    def is_and(self, node: int) -> bool:
        return self._nodes[node].fanin0 >= 0

    def fanins(self, node: int) -> tuple[AigLiteral, AigLiteral]:
        data = self._nodes[node]
        if data.fanin0 < 0:
            raise ValueError(f"node {node} is not an AND node")
        return data.fanin0, data.fanin1

    def level(self, node: int) -> int:
        return self._nodes[node].level

    def literal_level(self, literal: AigLiteral) -> int:
        """Level of the node a literal refers to."""
        return self._nodes[lit_node(literal)].level

    def depth(self) -> int:
        """Number of AND levels on the longest PI-to-PO path."""
        if not self._po_literals:
            return 0
        return max(self._nodes[lit_node(l)].level for l in self._po_literals)

    def and_nodes(self) -> Iterable[int]:
        """AND node indices in topological (creation) order."""
        for node in range(1, len(self._nodes)):
            if self.is_and(node):
                yield node

    def pi_nodes(self) -> tuple[int, ...]:
        return tuple(self._pi_nodes)

    # -- simulation ------------------------------------------------------------

    def simulate_words(self, pi_words: dict[str, list[int]]) -> dict[str, list[int]]:
        """64-bit packed simulation; returns one word list per primary output.

        Runs on the array-backed view (:mod:`repro.synthesis.aig_array`): all
        nodes of one AND-level are evaluated with a single batched uint64
        gather/AND, so simulation cost is dominated by the number of levels
        rather than the number of nodes.
        """
        import numpy as np

        from repro.synthesis.aig_array import aig_arrays

        if set(pi_words) != set(self._pi_names):
            missing = set(self._pi_names) - set(pi_words)
            extra = set(pi_words) - set(self._pi_names)
            raise ValueError(f"pattern mismatch (missing {missing}, extra {extra})")
        num_words = len(next(iter(pi_words.values()))) if pi_words else 1
        mask = (1 << 64) - 1
        arrays = aig_arrays(self)
        values = np.zeros((len(self._nodes), num_words), dtype=np.uint64)
        for name, node in zip(self._pi_names, self._pi_nodes):
            words = pi_words[name]
            if len(words) != num_words:
                raise ValueError("all inputs must provide the same number of words")
            values[node] = np.fromiter(
                (w & mask for w in words), dtype=np.uint64, count=num_words
            )

        for group in arrays.level_groups:
            fanin0 = arrays.fanin0[group]
            fanin1 = arrays.fanin1[group]
            words0 = values[fanin0 >> 1]
            words1 = values[fanin1 >> 1]
            complement0 = ((fanin0 & 1) == 1)[:, None]
            complement1 = ((fanin1 & 1) == 1)[:, None]
            values[group] = np.where(complement0, ~words0, words0) & np.where(
                complement1, ~words1, words1
            )

        result: dict[str, list[int]] = {}
        for name, literal in zip(self._po_names, self._po_literals):
            row = values[lit_node(literal)]
            if lit_is_complemented(literal):
                row = ~row
            result[name] = [int(word) for word in row]
        return result

    def evaluate(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Single-pattern evaluation (convenience wrapper over word simulation)."""
        words = {name: [1 if assignment[name] else 0] for name in self._pi_names}
        result = self.simulate_words(words)
        return {name: bool(values[0] & 1) for name, values in result.items()}

    # -- restructuring -----------------------------------------------------------

    def cleanup(self) -> "Aig":
        """Return a copy containing only the logic reachable from the outputs.

        Runs on the array-backed view: reachability is a batched backward
        sweep over the level groups and the surviving nodes are compacted
        directly (old node order, canonical fanin order and levels are all
        preserved, so the result is bit-identical to a node-by-node rebuild
        through :meth:`and_gate`).
        """
        import numpy as np

        from repro.synthesis.aig_array import aig_arrays

        arrays = aig_arrays(self)
        and_nodes = arrays.and_nodes
        if and_nodes.size:
            source0 = arrays.fanin0[and_nodes] >> 1
            source1 = arrays.fanin1[and_nodes] >> 1
            if bool((source0 == 0).any() or (source1 == 0).any() or (source0 == source1).any()):
                # Constant or duplicated fanins would re-trigger and_gate
                # simplification; take the straightforward rebuild so
                # behaviour stays identical.
                return self._cleanup_rebuild()

        reachable = np.zeros(arrays.num_nodes, dtype=bool)
        if arrays.po_literals.size:
            reachable[arrays.po_literals >> 1] = True
        for group in reversed(arrays.level_groups):
            live = group[reachable[group]]
            if live.size == 0:
                continue
            reachable[arrays.fanin0[live] >> 1] = True
            reachable[arrays.fanin1[live] >> 1] = True

        new = Aig(self.name)
        mapping = np.zeros(arrays.num_nodes, dtype=np.int64)
        for name, node in zip(self._pi_names, self._pi_nodes):
            mapping[node] = new.add_pi(name)
        live_ands = and_nodes[reachable[and_nodes]]
        base = len(new._nodes)
        mapping[live_ands] = np.arange(base, base + live_ands.size) << 1
        fanin0 = arrays.fanin0[live_ands]
        fanin1 = arrays.fanin1[live_ands]
        new_f0 = mapping[fanin0 >> 1] ^ (fanin0 & 1)
        new_f1 = mapping[fanin1 >> 1] ^ (fanin1 & 1)
        lo = np.minimum(new_f0, new_f1)
        hi = np.maximum(new_f0, new_f1)
        nodes = new._nodes
        strash = new._strash
        for node_id, (low, high, level) in enumerate(
            zip(lo.tolist(), hi.tolist(), arrays.level[live_ands].tolist()),
            start=base,
        ):
            nodes.append(_Node(low, high, level))
            strash[(low, high)] = node_id
        mapping_list = mapping.tolist()
        for name, literal in zip(self._po_names, self._po_literals):
            new.add_po(name, mapping_list[literal >> 1] ^ (literal & 1))
        return new

    def _cleanup_rebuild(self) -> "Aig":
        """Reference node-by-node cleanup (used when simplification may fire)."""
        reachable: set[int] = set()
        stack = [lit_node(l) for l in self._po_literals]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                stack.append(lit_node(f0))
                stack.append(lit_node(f1))
        new = Aig(self.name)
        mapping: dict[int, AigLiteral] = {0: CONST0}
        for name, node in zip(self._pi_names, self._pi_nodes):
            mapping[node] = new.add_pi(name)
        for node in self.and_nodes():
            if node not in reachable:
                continue
            f0, f1 = self.fanins(node)
            new_f0 = mapping[lit_node(f0)] ^ (f0 & 1)
            new_f1 = mapping[lit_node(f1)] ^ (f1 & 1)
            mapping[node] = new.and_gate(new_f0, new_f1)
        for name, literal in zip(self._po_names, self._po_literals):
            new_literal = mapping[lit_node(literal)] ^ (literal & 1)
            new.add_po(name, new_literal)
        return new

    def fanout_counts(self) -> dict[int, int]:
        """Number of references to every node (from AND fanins and POs)."""
        counts: dict[int, int] = {node: 0 for node in range(len(self._nodes))}
        for node in self.and_nodes():
            f0, f1 = self.fanins(node)
            counts[lit_node(f0)] += 1
            counts[lit_node(f1)] += 1
        for literal in self._po_literals:
            counts[lit_node(literal)] += 1
        return counts

    def statistics(self) -> dict[str, int]:
        return {
            "pis": self.num_pis,
            "pos": self.num_pos,
            "ands": self.num_ands,
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.statistics()
        return (
            f"Aig({self.name!r}, pis={stats['pis']}, pos={stats['pos']}, "
            f"ands={stats['ands']}, depth={stats['depth']})"
        )
