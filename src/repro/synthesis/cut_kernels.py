"""Batched uint64 truth-table kernels for the vectorized cut pipeline.

Every K<=6 cut function fits in one 64-bit word, so whole batches of cut
tables -- all candidate cuts of a level of the AIG at once -- can be
manipulated with a handful of numpy bitwise operations instead of per-cut
big-int loops.  This module provides the three primitives the enumerator
needs:

* :func:`insert_dontcare` / :func:`expand_tables` -- re-express a table over
  a superset of its variables by inserting don't-care variables (the batched
  equivalent of ``repro.synthesis.cuts._expand_at_positions``);
* :func:`batch_support` -- true-support masks of a table batch (the batched
  equivalent of ``repro.synthesis.cuts.table_support``);
* :data:`FULL_BY_SIZE` -- the all-ones mask per variable count, for batched
  output complementation.

Don't-care insertion at position ``p`` duplicates every ``2**p``-bit chunk of
the table.  The chunks are first *spread* to double spacing with a butterfly
network of shift-and-mask steps (chunk ``i`` moves by ``i * 2**p`` bits,
decomposed over the binary digits of ``i``), then OR-ed with a copy shifted by
one chunk -- O(log) vector operations per insertion, with the masks
precomputed once per position.

All kernels are pure and exactly bit-compatible with the scalar reference
implementations in :mod:`repro.synthesis.cuts`; the hypothesis property tests
in ``tests/synthesis/test_cut_properties.py`` pin that equivalence.
"""

from __future__ import annotations

import sys
from functools import lru_cache

import numpy as np

_LITTLE_ENDIAN = sys.byteorder == "little"

_U64 = np.uint64
_FULL64 = 0xFFFFFFFFFFFFFFFF

#: All-ones table mask per variable count: ``FULL_BY_SIZE[n]`` has ``2**n``
#: low bits set (the whole word for n == 6).
FULL_BY_SIZE = np.array(
    [(1 << (1 << n)) - 1 if n < 6 else _FULL64 for n in range(7)], dtype=np.uint64
)

#: 64-bit periodic negative-cofactor masks: ``VAR_PERIOD_MASKS[j]`` selects
#: the minterms with variable ``j`` equal to 0, replicated across the word.
VAR_PERIOD_MASKS = np.zeros(6, dtype=np.uint64)
for _j in range(6):
    _block = 1 << _j
    _chunk = (1 << _block) - 1
    _bits = 0
    for _start in range(0, 64, _block * 2):
        _bits |= _chunk << _start
    VAR_PERIOD_MASKS[_j] = np.uint64(_bits)
del _j, _block, _chunk, _bits, _start


@lru_cache(maxsize=None)
def _spread_steps(position: int) -> tuple[tuple[np.uint64, np.uint64, np.uint64], ...]:
    """Butterfly (shift, mask, inverse-mask) steps spreading ``2**position``-bit
    chunks of a <=32-bit table to double spacing inside a 64-bit word."""
    block = 1 << position
    n_chunks = max(32 // block, 1)
    offsets = [index * block for index in range(n_chunks)]
    steps = []
    for k in range((n_chunks - 1).bit_length() - 1, -1, -1):
        shift = (1 << k) * block
        mask = 0
        for index in range(n_chunks):
            if (index >> k) & 1:
                mask |= ((1 << block) - 1) << offsets[index]
        for index in range(n_chunks):
            if (index >> k) & 1:
                offsets[index] += shift
        steps.append((_U64(shift), _U64(mask), _U64(mask ^ _FULL64)))
    return tuple(steps)


def insert_dontcare(tables: np.ndarray, position: int) -> np.ndarray:
    """Insert a don't-care variable at ``position`` into every table.

    ``tables`` must hold functions of at least ``position`` and at most 5
    variables (so the result still fits the word).  Equivalent to one step of
    ``_expand_at_positions`` applied across the whole batch.
    """
    t = tables
    for shift, mask, inverse in _spread_steps(position):
        t = (t & inverse) | ((t & mask) << shift)
    return t | (t << _U64(1 << position))


def _build_expand_index() -> np.ndarray:
    """``_EXPAND_INDEX[submask, m]`` = the source-table bit feeding expanded
    minterm ``m``: the bits of ``m`` at the positions named by ``submask``,
    compressed together (a precomputed parallel-bit-extract)."""
    index = np.zeros((64, 64), dtype=np.uint64)
    for submask in range(64):
        for minterm in range(64):
            source, out = 0, 0
            for position in range(6):
                if (submask >> position) & 1:
                    if (minterm >> position) & 1:
                        source |= 1 << out
                    out += 1
            index[submask, minterm] = source
    return index


_EXPAND_INDEX = _build_expand_index()
_MINTERM_WEIGHTS = _U64(1) << np.arange(64, dtype=np.uint64)

#: ``_EXPAND_LUT[submask, chunk, byte]`` = the expanded-word bits contributed
#: by source-table byte ``chunk`` holding value ``byte`` (built lazily; ~1 MB).
_EXPAND_LUT: np.ndarray | None = None


def _build_expand_lut() -> np.ndarray:
    lut = np.zeros((64, 8, 256), dtype=np.uint64)
    byte_values = np.arange(256, dtype=np.uint64)[:, None]
    for submask in range(64):
        index = _EXPAND_INDEX[submask]
        source_chunk = (index >> _U64(3)).astype(np.int64)
        source_bit = index & _U64(7)
        for chunk in range(8):
            minterms = np.nonzero(source_chunk == chunk)[0]
            if minterms.size == 0:
                continue
            bits = (byte_values >> source_bit[minterms][None, :]) & _U64(1)
            lut[submask, chunk] = (bits * _MINTERM_WEIGHTS[minterms][None, :]).sum(
                axis=1, dtype=np.uint64
            )
    return lut


def expand_tables(tables: np.ndarray, submasks: np.ndarray) -> np.ndarray:
    """Re-express each table over the superset of variables named by its mask.

    ``submasks[i]`` has bit ``p`` set when target position ``p`` carries one
    of table ``i``'s current variables (in ascending order); the remaining
    target positions become don't-cares.  Implemented as eight byte-sliced
    lookups through :data:`_EXPAND_LUT` OR-ed together -- a fixed handful of
    vector operations per batch with no per-position branching, and high
    all-zero source bytes are skipped entirely.

    Bits of the result above ``2**target_size`` are unspecified; callers mask
    with :data:`FULL_BY_SIZE` (the scalar ``_expand_at_positions`` leaves
    them zero instead).
    """
    global _EXPAND_LUT
    if tables.size == 0:
        return tables.astype(np.uint64)
    if _EXPAND_LUT is None:
        _EXPAND_LUT = _build_expand_lut()
    t = np.ascontiguousarray(tables, dtype=np.uint64)
    source_bytes = t[:, None].view(np.uint8)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        source_bytes = source_bytes[:, ::-1]
    populated = (int(t.max()).bit_length() + 7) // 8
    out = _EXPAND_LUT[submasks, 0, source_bytes[:, 0]]
    for chunk in range(1, populated):
        out = out | _EXPAND_LUT[submasks, chunk, source_bytes[:, chunk]]
    return out


def batch_support(tables: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """True-support bitmask of every table (over ``sizes[i]`` variables)."""
    supports = np.zeros(tables.shape, dtype=np.uint8)
    for position in range(6):
        in_range = sizes > position
        if not in_range.any():
            break
        mask = VAR_PERIOD_MASKS[position]
        shifted = tables >> _U64(1 << position)
        depends = (tables & mask) != (shifted & mask)
        supports |= (depends & in_range).astype(np.uint8) << np.uint8(position)
    return supports


#: Batched equivalent of ``repro.synthesis.cuts.table_support`` -- the name
#: the matching pipeline uses; identical to :func:`batch_support`.
table_support_batch = batch_support


def _build_compress_index() -> np.ndarray:
    """``_COMPRESS_INDEX[mask, m]`` = the source-table minterm feeding
    projected minterm ``m``: the low ``popcount(mask)`` bits of ``m``
    deposited at the positions named by ``mask`` (a precomputed
    parallel-bit-deposit, the inverse of :data:`_EXPAND_INDEX`)."""
    index = np.zeros((64, 64), dtype=np.uint64)
    for mask in range(64):
        for minterm in range(64):
            source, consumed = 0, 0
            for position in range(6):
                if (mask >> position) & 1:
                    if (minterm >> consumed) & 1:
                        source |= 1 << position
                    consumed += 1
            index[mask, minterm] = source
    return index


_COMPRESS_INDEX = _build_compress_index()
_POPCOUNT64 = np.array([bin(value).count("1") for value in range(64)], dtype=np.int64)

#: ``_MASK_POSITIONS[mask, j]`` = the ``j``-th set bit position of ``mask``
#: (ascending), zero-padded -- the leaf positions a support mask selects.
_MASK_POSITIONS = np.zeros((64, 6), dtype=np.int64)
for _mask in range(64):
    _positions = [p for p in range(6) if (_mask >> p) & 1]
    _MASK_POSITIONS[_mask, : len(_positions)] = _positions
del _mask, _positions


def support_positions(masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-mask ``(positions, widths)``: the set bit positions (ascending,
    zero-padded to 6 columns) and the popcount of every support mask."""
    masks = masks.astype(np.int64)
    return _MASK_POSITIONS[masks], _POPCOUNT64[masks]


def project_table_batch(tables: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Project every table onto the variables named by its support mask.

    Batched equivalent of ``repro.synthesis.cuts.project_table`` (variables
    outside the mask are removed keeping the negative cofactor, i.e. the
    minterms with those variables at 0): projected minterm ``m`` reads source
    bit :data:`_COMPRESS_INDEX` ``[mask, m]``.  A full mask is the identity
    gather.  Bits at and above ``2**popcount(mask)`` are forced to zero,
    matching the scalar rebuild loop.
    """
    if tables.size == 0:
        return tables.astype(np.uint64)
    tables = tables.astype(np.uint64)
    mask_rows = masks.astype(np.int64)
    out = np.empty(tables.shape[0], dtype=np.uint64)
    minterms = np.arange(64, dtype=np.int64)[None, :]
    # ~1.5 KB of temporaries per row; chunking bounds the working set.
    chunk = 1 << 14
    for start in range(0, tables.shape[0], chunk):
        t = tables[start : start + chunk]
        m = mask_rows[start : start + chunk]
        source = _COMPRESS_INDEX[m]
        bits = (t[:, None] >> source) & _U64(1)
        valid = minterms < (np.int64(1) << _POPCOUNT64[m][:, None])
        contributions = np.where(valid, bits * _MINTERM_WEIGHTS[None, :], _U64(0))
        out[start : start + chunk] = contributions.sum(axis=1, dtype=np.uint64)
    return out
