"""Mapping cost models: the objective-specific policy of the mapping DP.

The dynamic-programming core of :mod:`repro.synthesis.mapper` is objective
agnostic: for every node it evaluates each matched cut's arrival time and
cost *flow* and keeps the best candidate.  What "best" means -- the local
gate cost folded into the flow, the arrival/flow tie-break order and which
cell of a canonical class to prefer -- is owned by a :class:`CostModel`:

``DelayCost``
    Minimize arrival time, area flow as tie-break, fastest cell per class.
``AreaFlowCost``
    Minimize area flow, arrival as tie-break, smallest cell per class.
``PowerFlowCost``
    Minimize the activity-weighted switched-capacitance flow (dynamic
    switching of the cell's output/internal/pin capacitances at the node and
    leaf activities, plus the expected pseudo-family static current), arrival
    as tie-break, smallest cell per class (switched capacitance is monotone
    in the device widths, i.e. in the area).

A model's :meth:`~CostModel.gate_cost` is a pure function of the candidate
match, so the multi-round recovery driver can price the same pre-matched
candidate table under different models without re-running Boolean matching.
Comparisons keep the historical ``1e-9`` epsilons so the selected cells --
and therefore every downstream artifact -- stay bit-identical to the
pre-refactor single-pass mapper.

The built-in models additionally implement the vectorized hooks
:meth:`~CostModel.price_batch` / :meth:`~CostModel.better_batch` consumed by
the batched DP of :mod:`repro.synthesis.mapper`: one numpy expression over a
whole :class:`~repro.synthesis.mapper.CandidateTable` (or one candidate slot
across all nodes of an AIG level) instead of one Python call per candidate.
Both hooks are required to reproduce the scalar semantics *bitwise* --
elementwise IEEE-754 operations in the same order as the scalar code, no
reassociating reductions -- because the ``1e-9`` tie-breaks are not
transitive: a reordered comparison sequence can select a different (equally
"best") cell and change downstream artifacts.  Third-party models registered
without the hooks simply keep the scalar DP path.

Models are stateless singletons looked up by objective name
(:func:`cost_model_for`); the per-mapping context (activities, resolved pin
capacitances) travels in the :class:`MappingContext` handed to every
``gate_cost`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synthesis.mapper import CandidateTable
    from repro.synthesis.matcher import CellMatch

#: Comparison tolerance of the DP tie-breaks (historical value, load-bearing
#: for bit-identical artifacts).
EPSILON = 1e-9


@dataclass(frozen=True)
class MatchCandidate:
    """One pre-matched cut of a node: the unit the DP and the recovery
    rounds price repeatedly.

    ``leaves`` are the cut's leaf nodes in the order the matched cell reads
    them (support-reduced), ``table`` the reduced truth table realized by
    ``match``; ``delay``/``area`` are the matched cell's FO4 delay and area
    and ``parasitic``/``effort`` its load-delay decomposition
    (``gate delay = parasitic + effort * loads``, the timing engine's
    model), all hoisted out of the hot loop.
    """

    leaves: tuple[int, ...]
    table: int
    match: "CellMatch"
    delay: float
    area: float
    parasitic: float
    effort: float


@dataclass
class MappingContext:
    """Per-mapping state shared between the DP rounds and the cost models.

    ``activity``/``probability`` are the per-node signal statistics (plain
    lists indexed by node id; ``None`` until a power model asks for them),
    ``pin_capacitances`` resolves a match's per-leaf pin loads through the
    mapper's per-call memo.
    """

    pin_capacitances: Callable[["CellMatch"], tuple[float, ...]]
    activity: list[float] | None = None
    probability: list[float] | None = None


@runtime_checkable
class CostModel(Protocol):
    """The mapping-objective policy: per-cut cost, tie-break, cell choice."""

    #: Objective name (``technology_map``'s ``objective=`` vocabulary).
    name: str
    #: Preferred-cell selection within a canonical class (``"delay"`` picks
    #: the fastest cell, ``"area"`` the smallest; the matcher's vocabulary).
    prefer: str

    def gate_cost(
        self, candidate: MatchCandidate, node: int, context: MappingContext
    ) -> float:
        """Local cost of instantiating the candidate at ``node``.

        The DP folds this into the cost flow as
        ``(gate_cost + sum(leaf flows)) / references``.
        """
        ...  # pragma: no cover - protocol stub

    def better(
        self, arrival: float, flow: float, best_arrival: float, best_flow: float
    ) -> bool:
        """Whether ``(arrival, flow)`` beats the incumbent ``(best_*)``."""
        ...  # pragma: no cover - protocol stub

    def price_batch(
        self, table: "CandidateTable", context: MappingContext
    ) -> np.ndarray:
        """Vectorized :meth:`gate_cost`: one float64 per candidate row.

        Must return, for every row of the table, exactly the float
        :meth:`gate_cost` would return for the equivalent
        :class:`MatchCandidate` (same operations in the same order).  The
        returned array may alias table storage and must not be mutated by
        callers.  Optional: the mapper falls back to the scalar DP for
        models that do not provide it.
        """
        ...  # pragma: no cover - protocol stub

    def better_batch(
        self,
        arrival: np.ndarray,
        flow: np.ndarray,
        best_arrival: np.ndarray,
        best_flow: np.ndarray,
    ) -> np.ndarray:
        """Elementwise :meth:`better` over candidate batches (bool array).

        Optional, paired with :meth:`price_batch`; must apply the same
        epsilon comparisons elementwise so the batched incumbent scan
        reproduces the scalar scan decision-for-decision.
        """
        ...  # pragma: no cover - protocol stub


class DelayCost:
    """Arrival-time primary cost (area flow breaks ties)."""

    name = "delay"
    prefer = "delay"

    def gate_cost(
        self, candidate: MatchCandidate, node: int, context: MappingContext
    ) -> float:
        return candidate.area

    def better(
        self, arrival: float, flow: float, best_arrival: float, best_flow: float
    ) -> bool:
        return arrival < best_arrival - EPSILON or (
            abs(arrival - best_arrival) <= EPSILON and flow < best_flow - EPSILON
        )

    def price_batch(
        self, table: "CandidateTable", context: MappingContext
    ) -> np.ndarray:
        return table.area

    def better_batch(
        self,
        arrival: np.ndarray,
        flow: np.ndarray,
        best_arrival: np.ndarray,
        best_flow: np.ndarray,
    ) -> np.ndarray:
        return (arrival < best_arrival - EPSILON) | (
            (np.abs(arrival - best_arrival) <= EPSILON)
            & (flow < best_flow - EPSILON)
        )


class AreaFlowCost:
    """Area-flow primary cost (arrival time breaks ties)."""

    name = "area"
    prefer = "area"

    def gate_cost(
        self, candidate: MatchCandidate, node: int, context: MappingContext
    ) -> float:
        return candidate.area

    def better(
        self, arrival: float, flow: float, best_arrival: float, best_flow: float
    ) -> bool:
        return flow < best_flow - EPSILON or (
            abs(flow - best_flow) <= EPSILON and arrival < best_arrival - EPSILON
        )

    def price_batch(
        self, table: "CandidateTable", context: MappingContext
    ) -> np.ndarray:
        return table.area

    def better_batch(
        self,
        arrival: np.ndarray,
        flow: np.ndarray,
        best_arrival: np.ndarray,
        best_flow: np.ndarray,
    ) -> np.ndarray:
        return (flow < best_flow - EPSILON) | (
            (np.abs(flow - best_flow) <= EPSILON)
            & (arrival < best_arrival - EPSILON)
        )


class PowerFlowCost:
    """Activity-weighted switched-capacitance flow (arrival breaks ties).

    The local cost reproduces the historical power objective term for term
    (accumulation order is load-bearing for bit-identical artifacts): the
    node activity times the cell's switched output capacitance, plus every
    leaf's activity times the pin capacitance it drives (in leaf order),
    plus the expected static current of the pseudo families under the
    output-polarity-corrected on-probability.
    """

    name = "power"
    prefer = "area"

    def gate_cost(
        self, candidate: MatchCandidate, node: int, context: MappingContext
    ) -> float:
        activity = context.activity
        probability = context.probability
        if activity is None or probability is None:
            raise ValueError(
                "the power cost model needs signal activities; pass "
                "activities= to technology_map or compute them first"
            )
        match = candidate.match
        power_report = match.cell.power
        cost = activity[node] * power_report.switched_capacitance
        leaves = candidate.leaves
        for position, capacitance in enumerate(context.pin_capacitances(match)):
            cost += activity[leaves[position]] * capacitance
        probability_on = (
            1.0 - probability[node]
            if match.match.output_negated
            else probability[node]
        )
        cost += power_report.static_power(probability_on)
        return cost

    def better(
        self, arrival: float, flow: float, best_arrival: float, best_flow: float
    ) -> bool:
        return flow < best_flow - EPSILON or (
            abs(flow - best_flow) <= EPSILON and arrival < best_arrival - EPSILON
        )

    def price_batch(
        self, table: "CandidateTable", context: MappingContext
    ) -> np.ndarray:
        if context.activity is None or context.probability is None:
            raise ValueError(
                "the power cost model needs signal activities; pass "
                "activities= to technology_map or compute them first"
            )
        activity = np.asarray(context.activity, dtype=np.float64)
        probability = np.asarray(context.probability, dtype=np.float64)
        switched, pin_caps, static_low, negated = table.power_columns(context)
        nodes = table.node
        cost = activity[nodes] * switched
        # Column-by-column accumulation in leaf order: the scalar loop's
        # addition sequence, extended by exact ``+ 0.0`` terms on the padded
        # slots (padded leaves point at node 0, padded capacitances are 0).
        leaves = table.leaves
        for position in range(pin_caps.shape[1]):
            cost = cost + activity[leaves[:, position]] * pin_caps[:, position]
        probability_on = np.where(
            negated, 1.0 - probability[nodes], probability[nodes]
        )
        return cost + static_low * probability_on

    def better_batch(
        self,
        arrival: np.ndarray,
        flow: np.ndarray,
        best_arrival: np.ndarray,
        best_flow: np.ndarray,
    ) -> np.ndarray:
        return (flow < best_flow - EPSILON) | (
            (np.abs(flow - best_flow) <= EPSILON)
            & (arrival < best_arrival - EPSILON)
        )


_COST_MODELS: dict[str, CostModel] = {}


def register_cost_model(model: CostModel, replace: bool = False) -> CostModel:
    """Add a cost model to the registry (pluggable mapping objectives)."""
    if not model.name:
        raise ValueError("a cost model must have a non-empty name")
    if not replace and model.name in _COST_MODELS:
        raise ValueError(f"cost model {model.name!r} is already registered")
    _COST_MODELS[model.name] = model
    return model


def cost_model_for(objective: str) -> CostModel:
    """Look up the cost model of a mapping objective."""
    try:
        return _COST_MODELS[objective]
    except KeyError:
        raise ValueError(
            f"objective must be one of {', '.join(sorted(_COST_MODELS))!s} "
            f"(got {objective!r})"
        ) from None


def available_objectives() -> tuple[str, ...]:
    """Names of all registered mapping objectives, sorted."""
    return tuple(sorted(_COST_MODELS))


def resolve_recovery(objective: str, recovery: str) -> str:
    """Resolve the recovery-round objective of a mapping run.

    ``"auto"`` keeps the mapping objective's own cost axis where it has one
    (``power`` recovers power) and falls back to area recovery for the
    delay objective -- the classical delay-map-then-recover-area scheme.
    The resolved name must be a registered non-delay cost model: recovering
    "delay" is meaningless (round 0 under the delay model is already
    arrival-optimal).
    """
    if recovery == "auto":
        return "power" if objective == "power" else "area"
    cost_model_for(recovery)  # reject unknown models with the usual message
    if recovery == "delay":
        raise ValueError(
            "recovery must name a cost axis to recover (area or power); "
            "delay is what the required times already protect"
        )
    return recovery


register_cost_model(DelayCost())
register_cost_model(AreaFlowCost())
register_cost_model(PowerFlowCost())
