"""NPN-class rewrite library: compiled SOP cover programs for cut functions.

The rewrite pass re-synthesizes every cut function as an AND-OR network of
its irredundant cover (:func:`_isop`).  Three observations make that cheap:

* **Minterm-mask ISOP.**  The expand-greedy cover only ever asks "which
  minterms does this cube contain" and "is this cube inside the on-set".
  Both are bitwise intersections of per-variable cofactor masks
  (:data:`repro.synthesis.cut_kernels.VAR_PERIOD_MASKS`), so the former
  Python loops over ``2**n`` minterms collapse to ``O(n)`` mask ANDs.
* **Cover programs.**  The gate sequence `_synthesize_sop` emits for a cover
  is a pure function of the truth table: polarity choice, cube order and the
  ascending-variable factor order are all fixed.  :func:`compile_cover`
  captures that sequence once per distinct ``(arity, table)`` as a
  :class:`CoverProgram` -- ``(negate, ((var, invert), ...) per cube)`` --
  and :func:`replay_cover` re-emits it through any ``and_gate``-shaped
  constructor, gate for gate identical to the original synthesis.
* **NPN classes.**  Distinct cut functions collapse ~150x under NPN
  equivalence (PR 2's matcher measurement), so the :class:`RewriteLibrary`
  organizes programs by canonical class: each member's table is
  canonicalized through the vectorized exact canonicalizer of
  :mod:`repro.logic.npn` (batched over the distinct tables of a pass via
  :func:`repro.logic.npn.canonicalize_bits_batch`), the *canonical template*
  is compiled once per class, and :meth:`RewriteLibrary.instantiate` can
  replay a template under the composed transform for any member.

One caveat keeps both representations around: the greedy ISOP does **not**
commute with NPN transforms (the lowest-set-minterm seed and the ascending
variable-drop order are not equivariant), so a template replayed under a
transform is functionally equivalent but structurally different from the
member's own cover.  The byte-identity contract of the rewrite pass
therefore replays exact member programs -- the class structure still pays
for itself through template reuse for canonical members, compression
statistics, and the template-instantiation API (property-tested for
functional equivalence in ``tests/synthesis/test_optimize_vectorized.py``).

The library and the ISOP memo register with
:func:`repro.synthesis.cuts.register_cut_cache` so the experiment engine's
between-batch cache clearing bounds them like every other cut-pipeline memo.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, NamedTuple, Sequence

from repro.logic.npn import (
    InputMatch,
    canonicalize_bits,
    canonicalize_bits_batch,
    invert_match,
)
from repro.synthesis.aig import AigLiteral, CONST0, CONST1
from repro.synthesis.cut_kernels import VAR_PERIOD_MASKS
from repro.synthesis.cuts import register_cut_cache

__all__ = [
    "CoverProgram",
    "NpnTemplate",
    "RewriteLibrary",
    "REWRITE_LIBRARY",
    "compile_cover",
    "compile_ops",
    "replay_cover",
    "replay_ops",
    "_isop",
    "_cube_minterms",
    "_cube_inside",
]


@lru_cache(maxsize=None)
def _minterm_masks(num_vars: int) -> tuple[int, tuple[int, ...], tuple[int, ...]]:
    """``(full, zero_masks, one_masks)`` for ``num_vars``-input tables.

    ``zero_masks[j]`` selects the minterms with variable ``j`` equal to 0
    (``one_masks[j]`` the complement), restricted to the table width --
    the scalar big-int view of :data:`VAR_PERIOD_MASKS`.
    """
    full = (1 << (1 << num_vars)) - 1
    zero_masks = tuple(int(VAR_PERIOD_MASKS[j]) & full for j in range(num_vars))
    one_masks = tuple(full & ~mask for mask in zero_masks)
    return full, zero_masks, one_masks


def _cube_minterms(num_vars: int, care: int, value: int) -> int:
    """Bitmask of the minterms contained in the cube ``(care, value)``.

    Intersection of the per-variable cofactor masks of the cared variables
    (``O(num_vars)`` mask ANDs); a ``value`` bit outside ``care`` makes the
    cube empty, matching the old per-minterm comparison.
    """
    full, zero_masks, one_masks = _minterm_masks(num_vars)
    if value & ~care:
        return 0
    bits = full
    for var in range(num_vars):
        if (care >> var) & 1:
            bits &= one_masks[var] if (value >> var) & 1 else zero_masks[var]
    return bits


def _cube_inside(table: int, num_vars: int, care: int, value: int) -> bool:
    """True when every minterm of the cube lies inside the on-set ``table``."""
    return not (_cube_minterms(num_vars, care, value & care) & ~table)


@lru_cache(maxsize=1 << 16)
def _isop(table: int, num_vars: int) -> tuple[tuple[int, int], ...]:
    """Irredundant sum of products of a truth table (cube tuple).

    Each cube is a pair ``(care_mask, value_mask)``: variable *i* appears
    positively when bit *i* is set in both masks, negatively when set in
    ``care_mask`` only.  Uses a simple expand-greedy cover; optimality is not
    required, only irredundancy.  Memoized (and registered with
    :func:`repro.synthesis.cuts.clear_cut_caches`): the rewrite pass asks for
    the cover of both polarities of every cut function, and distinct K<=4
    functions are few across a whole flow.
    """
    size = 1 << num_vars
    full = (1 << size) - 1
    table &= full
    remaining = table
    cubes: list[tuple[int, int]] = []
    while remaining:
        minterm = (remaining & -remaining).bit_length() - 1
        care = (1 << num_vars) - 1
        value = minterm
        # Try to drop every variable from the cube while staying inside the on-set.
        for var in range(num_vars):
            trial_care = care & ~(1 << var)
            if _cube_inside(table, num_vars, trial_care, value):
                care = trial_care
        value &= care
        cubes.append((care, value))
        remaining &= ~_cube_minterms(num_vars, care, value)
    # Irredundancy post-pass: drop any cube whose minterms are already covered
    # by the union of the other kept cubes (greedy expansion can overlap).
    coverage = [_cube_minterms(num_vars, care, value) for care, value in cubes]
    kept = list(range(len(cubes)))
    for index in range(len(cubes)):
        others = 0
        for j in kept:
            if j != index:
                others |= coverage[j]
        if index in kept and not (coverage[index] & ~others):
            kept.remove(index)
    return tuple(cubes[i] for i in kept)


register_cut_cache(_isop)


class CoverProgram(NamedTuple):
    """The exact gate-emission recipe of one cut function.

    ``cubes[c]`` lists the factors of cube ``c`` as ``(leaf_index, invert)``
    pairs in ascending leaf order; ``negate`` records that the complement
    cover was chosen (strictly fewer cubes) and the final output must be
    complemented -- precisely the decisions the scalar rewrite pass makes
    from ``_isop`` of both polarities.
    """

    negate: bool
    cubes: tuple[tuple[tuple[int, int], ...], ...]

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)


def compile_cover(table: int, num_vars: int) -> CoverProgram:
    """Compile the cover program of ``table`` (polarity choice included)."""
    full = (1 << (1 << num_vars)) - 1
    table &= full
    positive = _isop(table, num_vars)
    negative = _isop(table ^ full, num_vars)
    negate = len(negative) < len(positive)
    cubes = negative if negate else positive
    compiled = []
    for care, value in cubes:
        factors = []
        for var in range(num_vars):
            if (care >> var) & 1:
                factors.append((var, ((value >> var) & 1) ^ 1))
        compiled.append(tuple(factors))
    return CoverProgram(negate, tuple(compiled))


def replay_cover(
    and_gate: Callable[[AigLiteral, AigLiteral], AigLiteral],
    leaves: Sequence[AigLiteral],
    program: CoverProgram,
) -> AigLiteral:
    """Emit a compiled cover through ``and_gate``; returns the root literal.

    Reproduces ``_synthesize_sop`` gate for gate: the same balanced-halving
    pairing for the factors of each cube and for the (complemented) terms of
    the OR, in the same order, with the same constant conventions.
    ``and_gate`` is anything with :meth:`Aig.and_gate` semantics -- the real
    graph or the flat ``_GraphBuilder`` of the vectorized passes.
    """
    negate, cubes = program
    terms: list[AigLiteral] = []
    for cube in cubes:
        items = [leaves[var] ^ invert for var, invert in cube]
        if not items:
            terms.append(CONST1)
            continue
        while len(items) > 1:
            items = [
                and_gate(items[i], items[i + 1]) if i + 1 < len(items) else items[i]
                for i in range(0, len(items), 2)
            ]
        terms.append(items[0])
    if terms:
        items = [term ^ 1 for term in terms]
        while len(items) > 1:
            items = [
                and_gate(items[i], items[i + 1]) if i + 1 < len(items) else items[i]
                for i in range(0, len(items), 2)
            ]
        result = items[0] ^ 1
    else:
        result = CONST0
    return result ^ 1 if negate else result


@lru_cache(maxsize=1 << 14)
def compile_ops(
    program: CoverProgram,
) -> tuple[tuple[tuple[int, int], ...], int]:
    """Flatten a cover program into a linear gate schedule ``(ops, result)``.

    Each op is an operand pair feeding one ``and_gate`` call; operands are
    coded integers -- ``0``/``1`` for the constants, else bit 0 = complement,
    bit 1 = temp (a previous op's result) vs leaf, bits 2+ = index + 1 --
    so the hot replay loop of the vectorized rewrite pass is a single flat
    scan with no per-cube list churn.  Compiled by running
    :func:`replay_cover` symbolically (operand codes survive ``^ 1``
    unchanged in meaning), so the schedule is the reference gate stream by
    construction.  Memoized on the (hashable) program and registered with
    the cut-cache clearer.
    """
    ops: list[tuple[int, int]] = []

    def record(a: int, b: int) -> int:
        ops.append((a, b))
        return (len(ops) << 2) | 2

    leaf_codes = [((index + 1) << 2) for index in range(64)]
    result = replay_cover(record, leaf_codes, program)
    return tuple(ops), result


register_cut_cache(compile_ops)


def replay_ops(
    and_gate: Callable[[AigLiteral, AigLiteral], AigLiteral],
    leaves: Sequence[AigLiteral],
    ops: tuple[tuple[int, int], ...],
    result: int,
) -> AigLiteral:
    """Execute a :func:`compile_ops` schedule; same gates as :func:`replay_cover`."""
    temps: list[AigLiteral] = []
    append = temps.append
    for a, b in ops:
        if a >= 2:
            value_a = (temps[(a >> 2) - 1] if a & 2 else leaves[(a >> 2) - 1]) ^ (a & 1)
        else:
            value_a = a
        if b >= 2:
            value_b = (temps[(b >> 2) - 1] if b & 2 else leaves[(b >> 2) - 1]) ^ (b & 1)
        else:
            value_b = b
        append(and_gate(value_a, value_b))
    if result >= 2:
        return (
            temps[(result >> 2) - 1] if result & 2 else leaves[(result >> 2) - 1]
        ) ^ (result & 1)
    return result


@dataclass(frozen=True)
class NpnTemplate:
    """One NPN class: its canonical table and the compiled canonical cover."""

    num_vars: int
    table: int
    program: CoverProgram


class RewriteLibrary:
    """Per-process memo of cover programs, organized by NPN class.

    ``program`` / ``programs_batch`` return the *exact* member program the
    pinned rewrite pass replays (compiled once per distinct ``(arity,
    table)``, shared with the class template when the member is its own
    canonical form); ``instantiate`` replays the class template under the
    member's composed transform instead -- functionally equivalent, one
    compile per *class* (see the module docstring for why the pinned pass
    cannot use it).  Registered with the cut-cache clearer so engine job
    batches bound its footprint like every other memo.
    """

    __slots__ = ("_programs", "_templates", "_class_of")

    def __init__(self) -> None:
        self._programs: dict[tuple[int, int], CoverProgram] = {}
        self._templates: dict[tuple[int, int], NpnTemplate] = {}
        self._class_of: dict[tuple[int, int], tuple[tuple[int, int], InputMatch]] = {}

    # -- registration ----------------------------------------------------

    def _register(
        self, num_vars: int, table: int, canonical: int, match: InputMatch
    ) -> CoverProgram:
        template_key = (num_vars, canonical)
        template = self._templates.get(template_key)
        if template is None:
            template = NpnTemplate(num_vars, canonical, compile_cover(canonical, num_vars))
            self._templates[template_key] = template
        if table == canonical:
            program = template.program  # canonical member: reuse, no recompile
        else:
            program = compile_cover(table, num_vars)
        key = (num_vars, table)
        self._programs[key] = program
        self._class_of[key] = (template_key, match)
        return program

    def program(self, table: int, num_vars: int) -> CoverProgram:
        """The exact cover program of one table (memoized, class-registered)."""
        full = (1 << (1 << num_vars)) - 1
        key = (num_vars, table & full)
        program = self._programs.get(key)
        if program is not None:
            return program
        canonical, perm, phase, negated = canonicalize_bits(key[1], num_vars, True)
        return self._register(num_vars, key[1], canonical, InputMatch(perm, phase, negated))

    def programs_batch(
        self, sizes: Sequence[int], tables: Sequence[int]
    ) -> list[CoverProgram]:
        """Programs for parallel ``(size, table)`` arrays, batch-canonicalized.

        The distinct uncached tables of each arity go through
        :func:`canonicalize_bits_batch` in one call -- this is how the
        vectorized rewrite pass registers a whole pass worth of cut
        functions up front.
        """
        programs: list[CoverProgram | None] = [None] * len(tables)
        missing: dict[int, list[tuple[int, int]]] = {}
        cached = self._programs
        for index, (num_vars, table) in enumerate(zip(sizes, tables)):
            table &= (1 << (1 << num_vars)) - 1
            program = cached.get((num_vars, table))
            if program is not None:
                programs[index] = program
            else:
                missing.setdefault(num_vars, []).append((index, table))
        for num_vars, entries in missing.items():
            canonicalized = canonicalize_bits_batch(
                [table for _, table in entries], num_vars
            )
            for (index, table), (canonical, perm, phase, negated) in zip(
                entries, canonicalized
            ):
                programs[index] = self._register(
                    num_vars, table, canonical, InputMatch(perm, phase, negated)
                )
        return programs  # type: ignore[return-value]

    # -- template instantiation ------------------------------------------

    def template_for(self, table: int, num_vars: int) -> tuple[NpnTemplate, InputMatch]:
        """The member's class template and its member-to-canonical transform."""
        self.program(table, num_vars)
        key = (num_vars, table & ((1 << (1 << num_vars)) - 1))
        template_key, match = self._class_of[key]
        return self._templates[template_key], match

    def instantiate(
        self, aig, leaves: Sequence[AigLiteral], table: int, num_vars: int
    ) -> AigLiteral:
        """Build ``table`` over ``leaves`` by replaying the class template.

        The template leaves are rewired through the inverse of the stored
        member-to-canonical transform (input ``j`` of the member drives
        canonical position ``perm[j]``, phased in canonical input space) and
        the output complemented per the transform.  Functionally equivalent
        to replaying the member program, generally *not* structurally equal
        (greedy ISOP is not NPN-equivariant).
        """
        template, match = self.template_for(table, num_vars)
        perm, phase, negated = invert_match(match)
        remapped: list[AigLiteral] = [CONST0] * num_vars
        for j in range(num_vars):
            position = perm[j]
            remapped[position] = leaves[j] ^ ((phase >> position) & 1)
        literal = replay_cover(aig.and_gate, remapped, template.program)
        return literal ^ 1 if negated else literal

    # -- statistics / cache protocol -------------------------------------

    @property
    def class_count(self) -> int:
        """Distinct NPN classes registered (templates compiled)."""
        return len(self._templates)

    @property
    def member_count(self) -> int:
        """Distinct (arity, table) members registered."""
        return len(self._programs)

    def cache_size(self) -> int:
        return len(self._programs)

    def cache_clear(self) -> None:
        self._programs.clear()
        self._templates.clear()
        self._class_of.clear()


#: The process-wide library shared by every rewrite invocation.
REWRITE_LIBRARY = RewriteLibrary()
register_cut_cache(REWRITE_LIBRARY)
