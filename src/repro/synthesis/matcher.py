"""Boolean matching of cut functions against a gate library.

Two matcher implementations share one interface (``match`` /
``match_reduced`` / ``len``):

* :class:`LibraryMatcher` -- the default **NPN-canonical index**.  Every
  library cell is canonicalized once (:func:`repro.logic.npn.npn_canonicalize`)
  and the index stores a single entry per ``(arity, canonical class)``.  A
  cut is matched by canonicalizing its function (memoized) and composing the
  cut's canonicalizing transform with the cell's stored transform, which
  yields exactly the pin assignment the exhaustive matcher would have looked
  up -- with orders of magnitude fewer index entries and no permutation/phase
  pre-expansion at build time.
* :class:`ExhaustiveLibraryMatcher` -- the original scheme, retained as the
  reference implementation and for the matcher benchmarks: for every cell it
  pre-computes every truth table reachable by permuting inputs,
  complementing inputs and complementing the output, keyed by the raw table
  bits.

Both matchers resolve ties between equally good cells by a stable
``(cost, cell name)`` order, so the selected cell -- and therefore every
downstream artifact -- is bit-identical across runs, hash seeds and matcher
implementations.

The input/output phase freedom models the paper's statement that the mapping
tool is aware of the extra gates obtained by swapping the signal polarities at
the transmission gates, and the fact that every cell carries an output
inverter providing both output polarities (Sec. 3.1 and 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro import obs
from repro.core.cell import LibraryCell
from repro.core.library import GateLibrary
from repro.logic.npn import (
    InputMatch,
    canonicalize_bits,
    canonicalize_bits_batch_columns,
    canonicalizer_memo_size,
    clear_canonicalizer_memo,
    compose_matches,
    invert_match,
)
from repro.synthesis.cut_kernels import (
    project_table_batch,
    support_positions,
    table_support_batch,
)
from repro.synthesis.cuts import (
    _track_cutset_memo,
    project_table,
    register_cut_cache,
    table_support,
)


@dataclass(frozen=True)
class CellMatch:
    """A library cell together with the pin assignment realizing a cut function."""

    cell: LibraryCell
    match: InputMatch

    @property
    def area(self) -> float:
        return self.cell.area

    @property
    def delay(self) -> float:
        return self.cell.delay.fo4_average


def _area_order(candidate: CellMatch) -> tuple[float, float, str]:
    """Stable total order for area-optimal selection (ties -> cell name)."""
    return (candidate.area, candidate.delay, candidate.cell.name)


def _delay_order(candidate: CellMatch) -> tuple[float, float, str]:
    """Stable total order for delay-optimal selection (ties -> cell name)."""
    return (candidate.delay, candidate.area, candidate.cell.name)


_ALL_POSITIONS = tuple(tuple(range(n)) for n in range(8))


@dataclass(frozen=True)
class CutFunctionTable:
    """Distinct ranked-cut functions of a :class:`~repro.synthesis.cuts.CutSet`.

    The library-independent half of the batched matching pipeline: the
    flattened ranked cuts (nodes ascending, slot order per node, trivial cut
    excluded -- the same flattening the mapper uses) deduplicated to their
    distinct ``(size, table)`` functions, each with its support positions,
    support-projected table and exact NPN canonicalization columns.
    ``inverse`` maps every flattened row back onto its distinct id.  Shared
    by every (matcher, policy) pair of a mapping call, memoized on the cut
    set, and shipped across processes by the shared-memory transport.
    """

    inverse: np.ndarray  #: (rows,) int64 flattened ranked cut -> distinct id
    sizes: np.ndarray  #: (d,) int64 cut arity
    tables: np.ndarray  #: (d,) uint64 raw cut function
    support: np.ndarray  #: (d,) uint8 true-support mask
    width: np.ndarray  #: (d,) int64 reduced arity (popcount of support)
    positions: np.ndarray  #: (d, 6) int64 support positions, zero-padded
    reduced: np.ndarray  #: (d,) uint64 support-projected table
    canon: np.ndarray  #: (d,) uint64 canonical bits of the reduced function
    cut_perm: np.ndarray  #: (d, 6) int8 canonicalizing permutation, zero-padded
    cut_phase: np.ndarray  #: (d,) int16 canonicalizing phase
    cut_negated: np.ndarray  #: (d,) bool canonicalizing output negation

    @property
    def num_distinct(self) -> int:
        return int(self.sizes.shape[0])

    @property
    def num_rows(self) -> int:
        return int(self.inverse.shape[0])


@dataclass(frozen=True)
class MatchTable:
    """Columnar match results over the distinct functions of a cut set.

    One row per distinct ``(size, table)`` cut function (aligned with the
    :class:`CutFunctionTable` that produced it); ``inverse`` scatters the
    rows back onto the flattened ranked cuts.  ``matches`` holds one
    materialized :class:`CellMatch` per *matched* row (in row order) and
    ``match_index`` maps rows onto it (``-1`` when unmatched); the cost
    columns carry the matched cell's FO4 delay / area / parasitic / effort
    so the candidate-table build never touches cell objects.
    """

    inverse: np.ndarray  #: (rows,) int64 flattened ranked cut -> row
    matched: np.ndarray  #: (d,) bool
    positions: np.ndarray  #: (d, 6) int64 support positions, zero-padded
    width: np.ndarray  #: (d,) int64 reduced arity
    reduced: np.ndarray  #: (d,) uint64 support-projected table
    match_index: np.ndarray  #: (d,) int64 index into ``matches`` (-1 unmatched)
    delay: np.ndarray  #: (d,) float64 cell FO4 delay
    area: np.ndarray  #: (d,) float64 cell area
    parasitic: np.ndarray  #: (d,) float64 parasitic delay
    effort: np.ndarray  #: (d,) float64 effort delay per unit load
    matches: list[CellMatch]


def _flatten_ranked_cuts(cut_set, and_nodes) -> tuple[np.ndarray, np.ndarray]:
    """The valid ``(node, slot)`` pairs of the ranked (non-trivial) cuts,
    flattened exactly as the mapper's candidate-table build flattens them."""
    per_node = cut_set.count[and_nodes] - 1
    total = int(per_node.sum())
    nodes_rep = np.repeat(and_nodes, per_node)
    starts = np.concatenate(([0], np.cumsum(per_node)[:-1]))
    slots = np.arange(total) - np.repeat(starts, per_node)
    return nodes_rep, slots


def build_function_table(
    sizes: np.ndarray,
    tables: np.ndarray,
    supports: np.ndarray,
    reduced: np.ndarray,
    inverse: np.ndarray,
    include_output_negation: bool,
) -> CutFunctionTable:
    """Assemble a :class:`CutFunctionTable` from distinct-function columns.

    ``reduced`` must already be the support-projected tables (the cut set's
    :meth:`~repro.synthesis.cuts.CutSet.projected_tables` column).  Every
    non-constant reduced function is canonicalized per reduced arity through
    one batched orbit scan each.  Also the worker-side rebuild entry point
    for function tables shipped over shared memory.
    """
    positions, width = support_positions(supports)
    count = sizes.shape[0]
    canon = np.zeros(count, dtype=np.uint64)
    cut_perm = np.zeros((count, 6), dtype=np.int8)
    cut_phase = np.zeros(count, dtype=np.int16)
    cut_negated = np.zeros(count, dtype=bool)
    for arity in range(1, 7):
        group = np.nonzero(width == arity)[0]
        if group.size == 0:
            continue
        group_canon, group_perm, group_phase, group_neg = (
            canonicalize_bits_batch_columns(
                reduced[group], arity, include_output_negation
            )
        )
        canon[group] = group_canon
        cut_perm[group, :arity] = group_perm
        cut_phase[group] = group_phase
        cut_negated[group] = group_neg
    return CutFunctionTable(
        inverse=inverse.astype(np.int64),
        sizes=sizes.astype(np.int64),
        tables=tables.astype(np.uint64),
        support=supports.astype(np.uint8),
        width=width,
        positions=positions,
        reduced=reduced.astype(np.uint64),
        canon=canon,
        cut_perm=cut_perm,
        cut_phase=cut_phase,
        cut_negated=cut_negated,
    )


def cut_function_table(
    cut_set, and_nodes, include_output_negation: bool = True
) -> CutFunctionTable:
    """The (memoized) distinct-function table of a cut set.

    Deduplicates all ranked cut functions with one ``np.unique`` pass over
    ``(size, table)`` keys, reads the projected tables from the cut set's
    batched :meth:`~repro.synthesis.cuts.CutSet.projected_tables` column and
    canonicalizes every distinct reduced function through the columnar batch
    canonicalizer.  Memoized on the cut set per output-negation flag --
    every library/policy pair of a mapping call shares one table, and the
    shared-memory transport pre-installs it in worker processes.
    """
    memo = cut_set.__dict__.get("_function_tables")
    if memo is None:
        memo = {}
        object.__setattr__(cut_set, "_function_tables", memo)
        _track_cutset_memo(cut_set)
    cached = memo.get(include_output_negation)
    if cached is not None:
        return cached

    nodes_rep, slots = _flatten_ranked_cuts(cut_set, and_nodes)
    total = nodes_rep.shape[0]
    keys = np.empty((total, 2), dtype=np.uint64)
    keys[:, 0] = cut_set.size[nodes_rep, slots]
    keys[:, 1] = cut_set.table[nodes_rep, slots]
    distinct, first_index, inverse = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1).astype(np.int64)
    supports = cut_set.support[nodes_rep, slots][first_index]
    projected = cut_set.projected_tables()[nodes_rep, slots][first_index]
    table = build_function_table(
        distinct[:, 0].astype(np.int64),
        distinct[:, 1],
        supports,
        projected,
        inverse,
        include_output_negation,
    )
    memo[include_output_negation] = table
    return table


class _MatcherBase:
    """The lookup interface shared by both matcher implementations."""

    library: GateLibrary

    def cache_clear(self) -> None:
        """Drop the per-matcher match memos (kept bounded between engine
        batches through :func:`repro.synthesis.cuts.clear_cut_caches`)."""
        self.__dict__.pop("_positions_memo", None)
        memo = getattr(self, "_match_memo", None)
        if memo is not None:
            memo.clear()

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        raise NotImplementedError

    def match_positions(
        self,
        num_leaves: int,
        table_bits: int,
        prefer: str = "delay",
        support_mask: int | None = None,
    ) -> tuple[CellMatch, tuple[int, ...], int] | None:
        """Match a cut function after projecting it onto its true support.

        Returns the match, the leaf *positions* (indices into the cut's leaf
        tuple) the matched table reads, and the reduced table bits -- or
        ``None`` when the function is constant or no cell matches.  The
        result depends only on ``(num_leaves, table_bits, prefer)``, so it is
        memoized per matcher; the mapping DP resolves the position tuple
        against each concrete cut's leaves.
        """
        memo = self.__dict__.get("_positions_memo")
        if memo is None:
            memo = self.__dict__["_positions_memo"] = {}
        memo_key = (num_leaves, table_bits, prefer)
        try:
            return memo[memo_key]
        except KeyError:
            pass
        if support_mask is None:
            support_mask = table_support(table_bits, num_leaves)
        result: tuple[CellMatch, tuple[int, ...], int] | None = None
        if support_mask == 0:
            pass
        elif support_mask == (1 << num_leaves) - 1:
            found = self.match(num_leaves, table_bits, prefer)
            if found is not None:
                result = (found, _ALL_POSITIONS[num_leaves], table_bits)
        else:
            reduced_bits = project_table(table_bits, num_leaves, support_mask)
            support = tuple(
                p for p in range(num_leaves) if (support_mask >> p) & 1
            )
            found = self.match(len(support), reduced_bits, prefer)
            if found is not None:
                result = (found, support, reduced_bits)
        memo[memo_key] = result
        return result

    def match_reduced(
        self,
        leaves: tuple[int, ...],
        table_bits: int,
        prefer: str = "delay",
        support_mask: int | None = None,
    ) -> tuple[CellMatch, tuple[int, ...], int] | None:
        """Match a cut after projecting its function onto its true support.

        ``support_mask`` is the bitmask of leaf positions the function
        depends on; pass the mask precomputed during cut enumeration
        (:attr:`repro.synthesis.cuts.Cut.support`) to skip rederiving it.
        Returns the match, the reduced leaf tuple (in the order seen by the
        matched table) and the reduced table bits, or ``None`` when no cell
        matches.  Thin wrapper over :meth:`match_positions`.
        """
        found = self.match_positions(
            len(leaves), table_bits, prefer=prefer, support_mask=support_mask
        )
        if found is None:
            return None
        match, positions, reduced_bits = found
        if len(positions) == len(leaves):
            return match, tuple(leaves), reduced_bits
        return match, tuple(leaves[p] for p in positions), reduced_bits


class LibraryMatcher(_MatcherBase):
    """NPN-canonical match index for one library.

    The index stores, per ``(arity, canonical table)``, the best cell of the
    class by area and by delay together with the cell's canonicalizing
    transform ``t_cell`` (``apply_match(cell.function, t_cell) ==
    canonical``).  At match time the cut function is canonicalized to the
    same form with transform ``t_cut`` and the returned pin assignment is
    ``compose_matches(t_cell, invert_match(t_cut))``, i.e. cell -> canonical
    -> cut.
    """

    def __init__(self, library: GateLibrary, allow_output_negation: bool = True) -> None:
        self.library = library
        self.allow_output_negation = allow_output_negation
        self._by_area: dict[tuple[int, int], CellMatch] = {}
        self._by_delay: dict[tuple[int, int], CellMatch] = {}
        self._match_memo: dict[tuple[int, int, str], CellMatch | None] = {}
        self._build(allow_output_negation)

    def _build(self, allow_output_negation: bool) -> None:
        for cell in self.library.cells:
            canon_bits, perm, phase, negated = canonicalize_bits(
                cell.function.bits, cell.arity, allow_output_negation
            )
            key = (cell.arity, canon_bits)
            candidate = CellMatch(cell, InputMatch(perm, phase, negated))
            best_area = self._by_area.get(key)
            if best_area is None or _area_order(candidate) < _area_order(best_area):
                self._by_area[key] = candidate
            best_delay = self._by_delay.get(key)
            if best_delay is None or _delay_order(candidate) < _delay_order(best_delay):
                self._by_delay[key] = candidate

    def __len__(self) -> int:
        """Number of stored index entries (one per matched canonical class)."""
        return len(self._by_area)

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        """Find the best cell realizing the cut function, or ``None``.

        Functions that do not depend on all cut leaves are looked up on their
        true support, so a 4-leaf cut whose function only uses 3 leaves can
        still match a 3-input cell (the mapper handles the leaf projection).
        """
        memo_key = (num_leaves, table_bits, prefer)
        try:
            return self._match_memo[memo_key]
        except KeyError:
            pass
        canon_bits, perm, phase, negated = canonicalize_bits(
            table_bits, num_leaves, self.allow_output_negation
        )
        table = self._by_delay if prefer == "delay" else self._by_area
        entry = table.get((num_leaves, canon_bits))
        result: CellMatch | None = None
        if entry is not None:
            t_cut = InputMatch(perm, phase, negated)
            composed = compose_matches(entry.match, invert_match(t_cut))
            result = CellMatch(entry.cell, composed)
        self._match_memo[memo_key] = result
        return result

    def _batch_index(self) -> dict[str, dict[int, "_ArityIndex"]]:
        """The per-policy, per-arity sorted canonical-key index (built once).

        For every stored canonical class the index keeps the class key, the
        best cell's canonicalizing transform as columns and its cost model
        (FO4 delay, area, parasitic, effort) -- everything the batched match
        resolution needs without touching cell objects per cut.
        """
        index = self.__dict__.get("_batch_index_cache")
        if index is None:
            index = {
                "delay": _build_arity_index(self._by_delay),
                "area": _build_arity_index(self._by_area),
            }
            self.__dict__["_batch_index_cache"] = index
        return index

    def _resolve_function_table(
        self, functions: CutFunctionTable, prefer: str
    ) -> MatchTable:
        """Resolve every distinct cut function against the canonical index.

        One ``np.searchsorted`` per reduced arity finds the canonical class
        of every function; the returned pin assignments are the vectorized
        equivalent of ``compose_matches(entry.match, invert_match(t_cut))``.
        :class:`CellMatch` objects are materialized only for matched rows (in
        row order, exactly as the scalar candidate-table build appends them).
        """
        per_arity = self._batch_index()[prefer if prefer == "delay" else "area"]
        count = functions.num_distinct
        matched = np.zeros(count, dtype=bool)
        entry_rows = np.zeros(count, dtype=np.int64)
        delay = np.zeros(count, dtype=np.float64)
        area = np.zeros(count, dtype=np.float64)
        parasitic = np.zeros(count, dtype=np.float64)
        effort = np.zeros(count, dtype=np.float64)
        comp_perm = np.zeros((count, 6), dtype=np.int64)
        comp_phase = np.zeros(count, dtype=np.int64)
        comp_neg = np.zeros(count, dtype=bool)

        for arity in range(1, 7):
            group = np.nonzero(functions.width == arity)[0]
            if group.size == 0:
                continue
            arity_index = per_arity.get(arity)
            if arity_index is None:
                continue
            keys = functions.canon[group]
            slot = np.searchsorted(arity_index.keys, keys)
            slot = np.minimum(slot, arity_index.keys.shape[0] - 1)
            hit = arity_index.keys[slot] == keys
            if not hit.any():
                continue
            rows = group[hit]
            entries = slot[hit]
            matched[rows] = True
            entry_rows[rows] = entries
            delay[rows] = arity_index.delay[entries]
            area[rows] = arity_index.area[entries]
            parasitic[rows] = arity_index.parasitic[entries]
            effort[rows] = arity_index.effort[entries]

            # compose_matches(entry.match, invert_match(t_cut)), vectorized:
            # invert the cut transform (inverse perm by argsort, phase bits
            # gathered through the perm), then chain entry's perm/phase.
            cut_perm = functions.cut_perm[rows, :arity].astype(np.int64)
            cut_phase = functions.cut_phase[rows].astype(np.int64)
            entry_perm = arity_index.perm[entries, :arity].astype(np.int64)
            entry_phase = arity_index.phase[entries].astype(np.int64)
            inv_perm = np.argsort(cut_perm, axis=1)
            inv_phase_bits = (cut_phase[:, None] >> cut_perm) & 1
            comp_perm[rows, :arity] = np.take_along_axis(
                entry_perm, inv_perm, axis=1
            )
            comp_phase[rows] = entry_phase ^ (inv_phase_bits << entry_perm).sum(
                axis=1
            )
            comp_neg[rows] = arity_index.negated[entries] ^ functions.cut_negated[
                rows
            ]

        matched_rows = np.nonzero(matched)[0]
        match_index = np.full(count, -1, dtype=np.int64)
        match_index[matched_rows] = np.arange(matched_rows.shape[0])
        matches: list[CellMatch] = []
        perm_list = comp_perm[matched_rows].tolist()
        phase_list = comp_phase[matched_rows].tolist()
        neg_list = comp_neg[matched_rows].tolist()
        width_list = functions.width[matched_rows].tolist()
        for local, row in enumerate(matched_rows.tolist()):
            width = width_list[local]
            cell = per_arity[width].cells[int(entry_rows[row])]
            transform = InputMatch(
                tuple(perm_list[local][:width]),
                phase_list[local],
                bool(neg_list[local]),
            )
            matches.append(CellMatch(cell, transform))
        return MatchTable(
            inverse=functions.inverse,
            matched=matched,
            positions=functions.positions,
            width=functions.width,
            reduced=functions.reduced,
            match_index=match_index,
            delay=delay,
            area=area,
            parasitic=parasitic,
            effort=effort,
            matches=matches,
        )

    def match_positions_batch(
        self,
        sizes: np.ndarray,
        tables: np.ndarray,
        prefer: str = "delay",
        support_masks: np.ndarray | None = None,
    ) -> MatchTable:
        """Batched :meth:`match_positions` over raw ``(size, table)`` arrays.

        Computes supports and projected tables with the batch kernels,
        canonicalizes every row and resolves the canonical index in one
        vectorized pass.  Row ``i`` of the returned :class:`MatchTable`
        corresponds to input row ``i`` (``inverse`` is the identity); the
        scalar :meth:`match_positions` is the pinned oracle.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        tables = np.asarray(tables, dtype=np.uint64)
        if support_masks is None:
            support_masks = table_support_batch(tables, sizes)
        else:
            support_masks = np.asarray(support_masks, dtype=np.uint8)
        reduced = project_table_batch(tables, support_masks)
        inverse = np.arange(sizes.shape[0], dtype=np.int64)
        functions = build_function_table(
            sizes, tables, support_masks, reduced, inverse,
            self.allow_output_negation,
        )
        return self._resolve_function_table(functions, prefer)

    def match_table(self, cut_set, and_nodes, prefer: str = "delay") -> MatchTable:
        """The (memoized) :class:`MatchTable` of a cut set under one policy.

        Builds (or reuses) the cut set's :func:`cut_function_table` and
        resolves it against this matcher's canonical index.  Memoized on the
        cut set next to the candidate tables, so repeated mapping rounds and
        co-resident policies never re-resolve.
        """
        memo = cut_set.__dict__.get("_match_tables")
        if memo is None:
            memo = {}
            object.__setattr__(cut_set, "_match_tables", memo)
            _track_cutset_memo(cut_set)
        key = ("match", id(self), prefer)
        cached = memo.get(key)
        if cached is not None:
            return cached
        with obs.span(
            "match-batch", category="synthesis",
            library=self.library.name, prefer=prefer,
        ) as span:
            functions = cut_function_table(
                cut_set, and_nodes, self.allow_output_negation
            )
            table = self._resolve_function_table(functions, prefer)
            hits = int(table.matched.sum())
            obs.count("match.batch_rows", functions.num_rows)
            obs.count("match.unique_functions", functions.num_distinct)
            obs.count("match.index_hits", hits)
            span.set("rows", functions.num_rows)
            span.set("unique_functions", functions.num_distinct)
            span.set("index_hits", hits)
        memo[key] = table
        return table


@dataclass(frozen=True)
class _ArityIndex:
    """One arity's slice of the batched canonical index (sorted by key)."""

    keys: np.ndarray  #: (m,) uint64 canonical bits, ascending
    perm: np.ndarray  #: (m, 6) int8 cell canonicalizing permutation
    phase: np.ndarray  #: (m,) int16 cell canonicalizing phase
    negated: np.ndarray  #: (m,) bool cell canonicalizing output negation
    delay: np.ndarray  #: (m,) float64 cell FO4 delay
    area: np.ndarray  #: (m,) float64 cell area
    parasitic: np.ndarray  #: (m,) float64 parasitic output delay
    effort: np.ndarray  #: (m,) float64 effort delay per unit load
    cells: list[LibraryCell]


def _build_arity_index(
    table: dict[tuple[int, int], CellMatch]
) -> dict[int, _ArityIndex]:
    """Columnar per-arity index over one best-cell dictionary."""
    by_arity: dict[int, list[tuple[int, CellMatch]]] = {}
    for (arity, canon_bits), entry in table.items():
        by_arity.setdefault(arity, []).append((canon_bits, entry))
    index: dict[int, _ArityIndex] = {}
    for arity, entries in by_arity.items():
        entries.sort(key=lambda item: item[0])
        count = len(entries)
        keys = np.array([canon for canon, _ in entries], dtype=np.uint64)
        perm = np.zeros((count, 6), dtype=np.int8)
        phase = np.zeros(count, dtype=np.int16)
        negated = np.zeros(count, dtype=bool)
        delay = np.zeros(count, dtype=np.float64)
        area = np.zeros(count, dtype=np.float64)
        parasitic = np.zeros(count, dtype=np.float64)
        effort = np.zeros(count, dtype=np.float64)
        cells: list[LibraryCell] = []
        for row, (_canon, entry) in enumerate(entries):
            perm[row, :arity] = entry.match.permutation
            phase[row] = entry.match.phase
            negated[row] = entry.match.output_negated
            cell = entry.cell
            fo4 = cell.delay.fo4_average
            parasitic_output = cell.delay.parasitic_output
            delay[row] = fo4
            area[row] = cell.area
            parasitic[row] = parasitic_output
            effort[row] = max(fo4 - parasitic_output, 0.0) / 4.0
            cells.append(cell)
        index[arity] = _ArityIndex(
            keys=keys, perm=perm, phase=phase, negated=negated,
            delay=delay, area=area, parasitic=parasitic, effort=effort,
            cells=cells,
        )
    return index


class ExhaustiveLibraryMatcher(_MatcherBase):
    """Pre-computed permutation/phase match tables for one library.

    The original (reference) matcher: every reachable truth table of every
    cell is materialized in a dictionary keyed by ``(arity, raw bits)``, so
    matching is a single lookup but construction enumerates up to
    ``2 * n! * 2**n`` variants per cell.
    """

    def __init__(self, library: GateLibrary, allow_output_negation: bool = True) -> None:
        self.library = library
        self.allow_output_negation = allow_output_negation
        self._by_area: dict[tuple[int, int], CellMatch] = {}
        self._by_delay: dict[tuple[int, int], CellMatch] = {}
        self._build(allow_output_negation)

    def _build(self, allow_output_negation: bool) -> None:
        for cell in self.library.cells:
            tables = _fast_permutation_phase_tables(
                cell.function.bits, cell.arity, allow_output_negation
            )
            for bits, match in tables.items():
                key = (cell.arity, bits)
                candidate = CellMatch(cell, match)
                best_area = self._by_area.get(key)
                if best_area is None or _area_order(candidate) < _area_order(best_area):
                    self._by_area[key] = candidate
                best_delay = self._by_delay.get(key)
                if best_delay is None or _delay_order(candidate) < _delay_order(
                    best_delay
                ):
                    self._by_delay[key] = candidate

    def __len__(self) -> int:
        """Number of stored index entries (one per reachable raw table)."""
        return len(self._by_area)

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        """Single-dictionary-lookup match against the pre-expanded tables."""
        table = self._by_delay if prefer == "delay" else self._by_area
        return table.get((num_leaves, table_bits))


def _fast_permutation_phase_tables(
    bits: int, num_vars: int, include_output_negation: bool
) -> dict[int, InputMatch]:
    """Vectorized equivalent of :func:`repro.logic.npn.all_input_permutation_phase_tables`.

    Enumerates every table reachable by permuting and complementing inputs
    (and optionally complementing the output) using numpy gathers, which keeps
    matcher construction fast even for the six-input cells (46k variants
    each).  The returned matches carry the same semantics as the reference
    implementation (verified by the matcher unit tests).
    """
    size = 1 << num_vars
    column = np.fromiter(((bits >> i) & 1 for i in range(size)), dtype=np.uint8, count=size)
    indices = np.arange(size, dtype=np.int64)
    phases = np.arange(size, dtype=np.int64)
    result: dict[int, InputMatch] = {}

    for perm in permutations(range(num_vars)):
        sigma = np.zeros(size, dtype=np.int64)
        for new_position, old_position in enumerate(perm):
            sigma |= ((indices >> new_position) & 1) << old_position
        gathered = column[np.bitwise_xor.outer(phases, sigma)]
        packed = np.packbits(gathered, axis=1, bitorder="little")
        for phase in range(size):
            table_bits = int.from_bytes(packed[phase].tobytes(), "little")
            result.setdefault(table_bits, InputMatch(tuple(perm), phase, False))
            if include_output_negation:
                negated = table_bits ^ ((1 << size) - 1)
                result.setdefault(negated, InputMatch(tuple(perm), phase, True))
    return result


_MATCHER_CACHE: dict[tuple[str, bool, str], _MatcherBase] = {}


def matcher_for(
    library: GateLibrary, allow_output_negation: bool = True, style: str = "npn"
) -> _MatcherBase:
    """Build (and cache) the matcher of a library.

    ``style`` selects the implementation: ``"npn"`` (default) builds the
    canonical index, ``"exhaustive"`` the pre-expanded reference tables.
    One matcher per (library, flags) is reused across all benchmarks of an
    experiment run.
    """
    if style not in ("npn", "exhaustive"):
        raise ValueError("style must be 'npn' or 'exhaustive'")
    key = (library.name, allow_output_negation, style)
    cached = _MATCHER_CACHE.get(key)
    if cached is None or cached.library is not library:
        factory = LibraryMatcher if style == "npn" else ExhaustiveLibraryMatcher
        cached = factory(library, allow_output_negation=allow_output_negation)
        _MATCHER_CACHE[key] = cached
    return cached


class _MatcherMemoSweeper:
    """Clears the match memos of every cached matcher.

    Matchers live in :data:`_MATCHER_CACHE` for the whole process, so their
    per-function memos would otherwise grow without bound across repeated
    large-benchmark runs; registering this sweeper folds them into the
    engine's between-batch :func:`repro.synthesis.cuts.clear_cut_caches`.
    """

    def cache_clear(self) -> None:
        for matcher in _MATCHER_CACHE.values():
            matcher.cache_clear()
        clear_canonicalizer_memo()

    def cache_size(self) -> int:
        """Total memoized matches across the cached matchers (diagnostics)."""
        return sum(self.cache_sizes().values())

    def cache_sizes(self) -> dict[str, int]:
        """Per-memo breakdown surfaced by ``cut_cache_sizes`` (diagnostics)."""
        positions_total = 0
        match_total = 0
        for matcher in _MATCHER_CACHE.values():
            positions_total += len(matcher.__dict__.get("_positions_memo") or ())
            match_total += len(getattr(matcher, "_match_memo", None) or ())
        return {
            "matcher_positions_memo": positions_total,
            "matcher_match_memo": match_total,
            "npn_batch_memo": canonicalizer_memo_size(),
        }


register_cut_cache(_MatcherMemoSweeper())


def _depends_on(table: int, num_vars: int, position: int) -> bool:
    """Whether a raw truth table depends on the variable at ``position``.

    Compatibility wrapper over the cached support computation in
    :mod:`repro.synthesis.cuts`.
    """
    return bool((table_support(table, num_vars) >> position) & 1)


def _project(table: int, num_vars: int, support: list[int]) -> int:
    """Project a truth table onto a subset of its variables.

    Compatibility wrapper over the cached projection in
    :mod:`repro.synthesis.cuts`.
    """
    mask = 0
    for position in support:
        mask |= 1 << position
    return project_table(table, num_vars, mask)
