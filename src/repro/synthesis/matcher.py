"""Boolean matching of cut functions against a gate library.

For every library cell the matcher pre-computes every truth table reachable
from the cell's Table-1 function by permuting inputs, complementing inputs and
complementing the output, and stores them in a dictionary keyed by
``(arity, table bits)``.  Matching a cut is then a single dictionary lookup.

The input/output phase freedom models the paper's statement that the mapping
tool is aware of the extra gates obtained by swapping the signal polarities at
the transmission gates, and the fact that every cell carries an output
inverter providing both output polarities (Sec. 3.1 and 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.core.cell import LibraryCell
from repro.core.library import GateLibrary
from repro.logic.npn import InputMatch
from repro.synthesis.cuts import project_table, table_support


@dataclass(frozen=True)
class CellMatch:
    """A library cell together with the pin assignment realizing a cut function."""

    cell: LibraryCell
    match: InputMatch

    @property
    def area(self) -> float:
        return self.cell.area

    @property
    def delay(self) -> float:
        return self.cell.delay.fo4_average


class LibraryMatcher:
    """Pre-computed permutation/phase match tables for one library."""

    def __init__(self, library: GateLibrary, allow_output_negation: bool = True) -> None:
        self.library = library
        self._by_area: dict[tuple[int, int], CellMatch] = {}
        self._by_delay: dict[tuple[int, int], CellMatch] = {}
        self._build(allow_output_negation)

    def _build(self, allow_output_negation: bool) -> None:
        for cell in self.library.cells:
            tables = _fast_permutation_phase_tables(
                cell.function.bits, cell.arity, allow_output_negation
            )
            for bits, match in tables.items():
                key = (cell.arity, bits)
                candidate = CellMatch(cell, match)
                best_area = self._by_area.get(key)
                if best_area is None or candidate.area < best_area.area - 1e-12 or (
                    abs(candidate.area - best_area.area) < 1e-12
                    and candidate.delay < best_area.delay
                ):
                    self._by_area[key] = candidate
                best_delay = self._by_delay.get(key)
                if best_delay is None or candidate.delay < best_delay.delay - 1e-12 or (
                    abs(candidate.delay - best_delay.delay) < 1e-12
                    and candidate.area < best_delay.area
                ):
                    self._by_delay[key] = candidate

    def __len__(self) -> int:
        return len(self._by_area)

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        """Find the best cell realizing the cut function, or ``None``.

        Functions that do not depend on all cut leaves are looked up on their
        true support, so a 4-leaf cut whose function only uses 3 leaves can
        still match a 3-input cell (the mapper handles the leaf projection).
        """
        table = self._by_delay if prefer == "delay" else self._by_area
        return table.get((num_leaves, table_bits))

    def match_reduced(
        self,
        leaves: tuple[int, ...],
        table_bits: int,
        prefer: str = "delay",
        support_mask: int | None = None,
    ) -> tuple[CellMatch, tuple[int, ...], int] | None:
        """Match a cut after projecting its function onto its true support.

        ``support_mask`` is the bitmask of leaf positions the function
        depends on; pass the mask precomputed during cut enumeration
        (:attr:`repro.synthesis.cuts.Cut.support`) to skip rederiving it.
        Returns the match, the reduced leaf tuple (in the order seen by the
        matched table) and the reduced table bits, or ``None`` when no cell
        matches.
        """
        num_leaves = len(leaves)
        if support_mask is None:
            support_mask = table_support(table_bits, num_leaves)
        if support_mask == 0:
            return None
        if support_mask == (1 << num_leaves) - 1:
            found = self.match(num_leaves, table_bits, prefer)
            if found is None:
                return None
            return found, leaves, table_bits
        reduced_bits = project_table(table_bits, num_leaves, support_mask)
        support = [p for p in range(num_leaves) if (support_mask >> p) & 1]
        found = self.match(len(support), reduced_bits, prefer)
        if found is None:
            return None
        return found, tuple(leaves[p] for p in support), reduced_bits


def _fast_permutation_phase_tables(
    bits: int, num_vars: int, include_output_negation: bool
) -> dict[int, InputMatch]:
    """Vectorized equivalent of :func:`repro.logic.npn.all_input_permutation_phase_tables`.

    Enumerates every table reachable by permuting and complementing inputs
    (and optionally complementing the output) using numpy gathers, which keeps
    matcher construction fast even for the six-input cells (46k variants
    each).  The returned matches carry the same semantics as the reference
    implementation (verified by the matcher unit tests).
    """
    size = 1 << num_vars
    column = np.fromiter(((bits >> i) & 1 for i in range(size)), dtype=np.uint8, count=size)
    indices = np.arange(size, dtype=np.int64)
    phases = np.arange(size, dtype=np.int64)
    result: dict[int, InputMatch] = {}

    for perm in permutations(range(num_vars)):
        sigma = np.zeros(size, dtype=np.int64)
        for new_position, old_position in enumerate(perm):
            sigma |= ((indices >> new_position) & 1) << old_position
        gathered = column[np.bitwise_xor.outer(phases, sigma)]
        packed = np.packbits(gathered, axis=1, bitorder="little")
        for phase in range(size):
            table_bits = int.from_bytes(packed[phase].tobytes(), "little")
            result.setdefault(table_bits, InputMatch(tuple(perm), phase, False))
            if include_output_negation:
                negated = table_bits ^ ((1 << size) - 1)
                result.setdefault(negated, InputMatch(tuple(perm), phase, True))
    return result


_MATCHER_CACHE: dict[tuple[str, bool], "LibraryMatcher"] = {}


def matcher_for(library: GateLibrary, allow_output_negation: bool = True) -> "LibraryMatcher":
    """Build (and cache) the matcher of a library.

    Matcher construction enumerates hundreds of thousands of permutation and
    phase variants, so the experiment harness reuses one matcher per library
    across all benchmarks.
    """
    key = (library.name, allow_output_negation)
    cached = _MATCHER_CACHE.get(key)
    if cached is None or cached.library is not library:
        cached = LibraryMatcher(library, allow_output_negation=allow_output_negation)
        _MATCHER_CACHE[key] = cached
    return cached


def _depends_on(table: int, num_vars: int, position: int) -> bool:
    """Whether a raw truth table depends on the variable at ``position``.

    Compatibility wrapper over the cached support computation in
    :mod:`repro.synthesis.cuts`.
    """
    return bool((table_support(table, num_vars) >> position) & 1)


def _project(table: int, num_vars: int, support: list[int]) -> int:
    """Project a truth table onto a subset of its variables.

    Compatibility wrapper over the cached projection in
    :mod:`repro.synthesis.cuts`.
    """
    mask = 0
    for position in support:
        mask |= 1 << position
    return project_table(table, num_vars, mask)
