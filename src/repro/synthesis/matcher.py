"""Boolean matching of cut functions against a gate library.

Two matcher implementations share one interface (``match`` /
``match_reduced`` / ``len``):

* :class:`LibraryMatcher` -- the default **NPN-canonical index**.  Every
  library cell is canonicalized once (:func:`repro.logic.npn.npn_canonicalize`)
  and the index stores a single entry per ``(arity, canonical class)``.  A
  cut is matched by canonicalizing its function (memoized) and composing the
  cut's canonicalizing transform with the cell's stored transform, which
  yields exactly the pin assignment the exhaustive matcher would have looked
  up -- with orders of magnitude fewer index entries and no permutation/phase
  pre-expansion at build time.
* :class:`ExhaustiveLibraryMatcher` -- the original scheme, retained as the
  reference implementation and for the matcher benchmarks: for every cell it
  pre-computes every truth table reachable by permuting inputs,
  complementing inputs and complementing the output, keyed by the raw table
  bits.

Both matchers resolve ties between equally good cells by a stable
``(cost, cell name)`` order, so the selected cell -- and therefore every
downstream artifact -- is bit-identical across runs, hash seeds and matcher
implementations.

The input/output phase freedom models the paper's statement that the mapping
tool is aware of the extra gates obtained by swapping the signal polarities at
the transmission gates, and the fact that every cell carries an output
inverter providing both output polarities (Sec. 3.1 and 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.core.cell import LibraryCell
from repro.core.library import GateLibrary
from repro.logic.npn import (
    InputMatch,
    canonicalize_bits,
    compose_matches,
    invert_match,
)
from repro.synthesis.cuts import project_table, register_cut_cache, table_support


@dataclass(frozen=True)
class CellMatch:
    """A library cell together with the pin assignment realizing a cut function."""

    cell: LibraryCell
    match: InputMatch

    @property
    def area(self) -> float:
        return self.cell.area

    @property
    def delay(self) -> float:
        return self.cell.delay.fo4_average


def _area_order(candidate: CellMatch) -> tuple[float, float, str]:
    """Stable total order for area-optimal selection (ties -> cell name)."""
    return (candidate.area, candidate.delay, candidate.cell.name)


def _delay_order(candidate: CellMatch) -> tuple[float, float, str]:
    """Stable total order for delay-optimal selection (ties -> cell name)."""
    return (candidate.delay, candidate.area, candidate.cell.name)


_ALL_POSITIONS = tuple(tuple(range(n)) for n in range(8))


class _MatcherBase:
    """The lookup interface shared by both matcher implementations."""

    library: GateLibrary

    def cache_clear(self) -> None:
        """Drop the per-matcher match memos (kept bounded between engine
        batches through :func:`repro.synthesis.cuts.clear_cut_caches`)."""
        self.__dict__.pop("_positions_memo", None)
        memo = getattr(self, "_match_memo", None)
        if memo is not None:
            memo.clear()

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        raise NotImplementedError

    def match_positions(
        self,
        num_leaves: int,
        table_bits: int,
        prefer: str = "delay",
        support_mask: int | None = None,
    ) -> tuple[CellMatch, tuple[int, ...], int] | None:
        """Match a cut function after projecting it onto its true support.

        Returns the match, the leaf *positions* (indices into the cut's leaf
        tuple) the matched table reads, and the reduced table bits -- or
        ``None`` when the function is constant or no cell matches.  The
        result depends only on ``(num_leaves, table_bits, prefer)``, so it is
        memoized per matcher; the mapping DP resolves the position tuple
        against each concrete cut's leaves.
        """
        memo = self.__dict__.get("_positions_memo")
        if memo is None:
            memo = self.__dict__["_positions_memo"] = {}
        memo_key = (num_leaves, table_bits, prefer)
        try:
            return memo[memo_key]
        except KeyError:
            pass
        if support_mask is None:
            support_mask = table_support(table_bits, num_leaves)
        result: tuple[CellMatch, tuple[int, ...], int] | None = None
        if support_mask == 0:
            pass
        elif support_mask == (1 << num_leaves) - 1:
            found = self.match(num_leaves, table_bits, prefer)
            if found is not None:
                result = (found, _ALL_POSITIONS[num_leaves], table_bits)
        else:
            reduced_bits = project_table(table_bits, num_leaves, support_mask)
            support = tuple(
                p for p in range(num_leaves) if (support_mask >> p) & 1
            )
            found = self.match(len(support), reduced_bits, prefer)
            if found is not None:
                result = (found, support, reduced_bits)
        memo[memo_key] = result
        return result

    def match_reduced(
        self,
        leaves: tuple[int, ...],
        table_bits: int,
        prefer: str = "delay",
        support_mask: int | None = None,
    ) -> tuple[CellMatch, tuple[int, ...], int] | None:
        """Match a cut after projecting its function onto its true support.

        ``support_mask`` is the bitmask of leaf positions the function
        depends on; pass the mask precomputed during cut enumeration
        (:attr:`repro.synthesis.cuts.Cut.support`) to skip rederiving it.
        Returns the match, the reduced leaf tuple (in the order seen by the
        matched table) and the reduced table bits, or ``None`` when no cell
        matches.  Thin wrapper over :meth:`match_positions`.
        """
        found = self.match_positions(
            len(leaves), table_bits, prefer=prefer, support_mask=support_mask
        )
        if found is None:
            return None
        match, positions, reduced_bits = found
        if len(positions) == len(leaves):
            return match, tuple(leaves), reduced_bits
        return match, tuple(leaves[p] for p in positions), reduced_bits


class LibraryMatcher(_MatcherBase):
    """NPN-canonical match index for one library.

    The index stores, per ``(arity, canonical table)``, the best cell of the
    class by area and by delay together with the cell's canonicalizing
    transform ``t_cell`` (``apply_match(cell.function, t_cell) ==
    canonical``).  At match time the cut function is canonicalized to the
    same form with transform ``t_cut`` and the returned pin assignment is
    ``compose_matches(t_cell, invert_match(t_cut))``, i.e. cell -> canonical
    -> cut.
    """

    def __init__(self, library: GateLibrary, allow_output_negation: bool = True) -> None:
        self.library = library
        self.allow_output_negation = allow_output_negation
        self._by_area: dict[tuple[int, int], CellMatch] = {}
        self._by_delay: dict[tuple[int, int], CellMatch] = {}
        self._match_memo: dict[tuple[int, int, str], CellMatch | None] = {}
        self._build(allow_output_negation)

    def _build(self, allow_output_negation: bool) -> None:
        for cell in self.library.cells:
            canon_bits, perm, phase, negated = canonicalize_bits(
                cell.function.bits, cell.arity, allow_output_negation
            )
            key = (cell.arity, canon_bits)
            candidate = CellMatch(cell, InputMatch(perm, phase, negated))
            best_area = self._by_area.get(key)
            if best_area is None or _area_order(candidate) < _area_order(best_area):
                self._by_area[key] = candidate
            best_delay = self._by_delay.get(key)
            if best_delay is None or _delay_order(candidate) < _delay_order(best_delay):
                self._by_delay[key] = candidate

    def __len__(self) -> int:
        """Number of stored index entries (one per matched canonical class)."""
        return len(self._by_area)

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        """Find the best cell realizing the cut function, or ``None``.

        Functions that do not depend on all cut leaves are looked up on their
        true support, so a 4-leaf cut whose function only uses 3 leaves can
        still match a 3-input cell (the mapper handles the leaf projection).
        """
        memo_key = (num_leaves, table_bits, prefer)
        try:
            return self._match_memo[memo_key]
        except KeyError:
            pass
        canon_bits, perm, phase, negated = canonicalize_bits(
            table_bits, num_leaves, self.allow_output_negation
        )
        table = self._by_delay if prefer == "delay" else self._by_area
        entry = table.get((num_leaves, canon_bits))
        result: CellMatch | None = None
        if entry is not None:
            t_cut = InputMatch(perm, phase, negated)
            composed = compose_matches(entry.match, invert_match(t_cut))
            result = CellMatch(entry.cell, composed)
        self._match_memo[memo_key] = result
        return result


class ExhaustiveLibraryMatcher(_MatcherBase):
    """Pre-computed permutation/phase match tables for one library.

    The original (reference) matcher: every reachable truth table of every
    cell is materialized in a dictionary keyed by ``(arity, raw bits)``, so
    matching is a single lookup but construction enumerates up to
    ``2 * n! * 2**n`` variants per cell.
    """

    def __init__(self, library: GateLibrary, allow_output_negation: bool = True) -> None:
        self.library = library
        self.allow_output_negation = allow_output_negation
        self._by_area: dict[tuple[int, int], CellMatch] = {}
        self._by_delay: dict[tuple[int, int], CellMatch] = {}
        self._build(allow_output_negation)

    def _build(self, allow_output_negation: bool) -> None:
        for cell in self.library.cells:
            tables = _fast_permutation_phase_tables(
                cell.function.bits, cell.arity, allow_output_negation
            )
            for bits, match in tables.items():
                key = (cell.arity, bits)
                candidate = CellMatch(cell, match)
                best_area = self._by_area.get(key)
                if best_area is None or _area_order(candidate) < _area_order(best_area):
                    self._by_area[key] = candidate
                best_delay = self._by_delay.get(key)
                if best_delay is None or _delay_order(candidate) < _delay_order(
                    best_delay
                ):
                    self._by_delay[key] = candidate

    def __len__(self) -> int:
        """Number of stored index entries (one per reachable raw table)."""
        return len(self._by_area)

    def match(
        self, num_leaves: int, table_bits: int, prefer: str = "delay"
    ) -> CellMatch | None:
        """Single-dictionary-lookup match against the pre-expanded tables."""
        table = self._by_delay if prefer == "delay" else self._by_area
        return table.get((num_leaves, table_bits))


def _fast_permutation_phase_tables(
    bits: int, num_vars: int, include_output_negation: bool
) -> dict[int, InputMatch]:
    """Vectorized equivalent of :func:`repro.logic.npn.all_input_permutation_phase_tables`.

    Enumerates every table reachable by permuting and complementing inputs
    (and optionally complementing the output) using numpy gathers, which keeps
    matcher construction fast even for the six-input cells (46k variants
    each).  The returned matches carry the same semantics as the reference
    implementation (verified by the matcher unit tests).
    """
    size = 1 << num_vars
    column = np.fromiter(((bits >> i) & 1 for i in range(size)), dtype=np.uint8, count=size)
    indices = np.arange(size, dtype=np.int64)
    phases = np.arange(size, dtype=np.int64)
    result: dict[int, InputMatch] = {}

    for perm in permutations(range(num_vars)):
        sigma = np.zeros(size, dtype=np.int64)
        for new_position, old_position in enumerate(perm):
            sigma |= ((indices >> new_position) & 1) << old_position
        gathered = column[np.bitwise_xor.outer(phases, sigma)]
        packed = np.packbits(gathered, axis=1, bitorder="little")
        for phase in range(size):
            table_bits = int.from_bytes(packed[phase].tobytes(), "little")
            result.setdefault(table_bits, InputMatch(tuple(perm), phase, False))
            if include_output_negation:
                negated = table_bits ^ ((1 << size) - 1)
                result.setdefault(negated, InputMatch(tuple(perm), phase, True))
    return result


_MATCHER_CACHE: dict[tuple[str, bool, str], _MatcherBase] = {}


def matcher_for(
    library: GateLibrary, allow_output_negation: bool = True, style: str = "npn"
) -> _MatcherBase:
    """Build (and cache) the matcher of a library.

    ``style`` selects the implementation: ``"npn"`` (default) builds the
    canonical index, ``"exhaustive"`` the pre-expanded reference tables.
    One matcher per (library, flags) is reused across all benchmarks of an
    experiment run.
    """
    if style not in ("npn", "exhaustive"):
        raise ValueError("style must be 'npn' or 'exhaustive'")
    key = (library.name, allow_output_negation, style)
    cached = _MATCHER_CACHE.get(key)
    if cached is None or cached.library is not library:
        factory = LibraryMatcher if style == "npn" else ExhaustiveLibraryMatcher
        cached = factory(library, allow_output_negation=allow_output_negation)
        _MATCHER_CACHE[key] = cached
    return cached


class _MatcherMemoSweeper:
    """Clears the match memos of every cached matcher.

    Matchers live in :data:`_MATCHER_CACHE` for the whole process, so their
    per-function memos would otherwise grow without bound across repeated
    large-benchmark runs; registering this sweeper folds them into the
    engine's between-batch :func:`repro.synthesis.cuts.clear_cut_caches`.
    """

    def cache_clear(self) -> None:
        for matcher in _MATCHER_CACHE.values():
            matcher.cache_clear()

    def cache_size(self) -> int:
        """Total memoized matches across the cached matchers (diagnostics)."""
        total = 0
        for matcher in _MATCHER_CACHE.values():
            total += len(matcher.__dict__.get("_positions_memo") or ())
            total += len(getattr(matcher, "_match_memo", None) or ())
        return total


register_cut_cache(_MatcherMemoSweeper())


def _depends_on(table: int, num_vars: int, position: int) -> bool:
    """Whether a raw truth table depends on the variable at ``position``.

    Compatibility wrapper over the cached support computation in
    :mod:`repro.synthesis.cuts`.
    """
    return bool((table_support(table, num_vars) >> position) & 1)


def _project(table: int, num_vars: int, support: list[int]) -> int:
    """Project a truth table onto a subset of its variables.

    Compatibility wrapper over the cached projection in
    :mod:`repro.synthesis.cuts`.
    """
    mask = 0
    for position in support:
        mask |= 1 << position
    return project_table(table, num_vars, mask)
