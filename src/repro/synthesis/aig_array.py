"""Array-backed (struct-of-arrays) view of an :class:`~repro.synthesis.aig.Aig`.

The pointer-chasing :class:`Aig` is ideal for incremental construction with
structural hashing, but the hot read-only consumers -- cut enumeration, the
mapping DP, packed simulation -- only ever walk the finished graph.  For them
this module flattens the AIG once into a handful of numpy arrays:

* ``fanin0`` / ``fanin1``  -- fanin *literals* per node (``-1`` for the
  constant node and primary inputs), so complement bits travel with the edge;
* ``level``                -- AND-level of every node;
* ``fanout``               -- reference counts (AND fanins plus primary
  outputs), the tie-break signal of the cut ranking;
* ``and_nodes``            -- AND node ids in topological (creation) order;
* ``level_groups``         -- the same AND nodes bucketed by level, the unit
  of batching for the vectorized kernels (nodes of one level never depend on
  each other, so a whole level can be processed with one array operation).

The view is immutable and cached on the source ``Aig`` instance keyed by its
node/output counts (the ``Aig`` API is append-only, so those counts change
whenever the structure does); repeated consumers -- e.g. the three library
mapping jobs of one benchmark -- share a single flattening.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.synthesis.aig import Aig


@dataclass(frozen=True)
class AigArrays:
    """Immutable struct-of-arrays snapshot of an AIG (see module docstring)."""

    num_nodes: int
    fanin0: np.ndarray  #: int64 fanin-0 literal per node (-1 for PI/const)
    fanin1: np.ndarray  #: int64 fanin-1 literal per node (-1 for PI/const)
    level: np.ndarray  #: int64 AND-level per node
    fanout: np.ndarray  #: int64 reference count per node (fanins + POs)
    is_and: np.ndarray  #: bool mask of AND nodes
    and_nodes: np.ndarray  #: int64 AND node ids in topological order
    pi_nodes: np.ndarray  #: int64 primary-input node ids
    po_literals: np.ndarray  #: int64 primary-output literals
    level_groups: tuple[np.ndarray, ...] = field(repr=False)
    """AND node ids bucketed by level (ascending level, ids ascending within)."""

    @property
    def num_ands(self) -> int:
        return int(self.and_nodes.shape[0])

    def fanout_dict(self) -> dict[int, int]:
        """The counts as a plain dict (compatible with ``Aig.fanout_counts``)."""
        return {node: int(count) for node, count in enumerate(self.fanout)}


def arrays_from_parts(
    fanin0: np.ndarray,
    fanin1: np.ndarray,
    level: np.ndarray,
    po_literals: np.ndarray,
) -> AigArrays:
    """Assemble an :class:`AigArrays` from its irreducible arrays.

    Everything else -- the AND/PI masks, fanout counts and level buckets --
    is a pure function of the fanin literals and output literals, so
    consumers that receive only the flat buffers (the shared-memory job
    transport of :mod:`repro.experiments.shm`) rebuild the exact same view
    without shipping the derived arrays.  Primary inputs are the non-zero
    nodes without fanins (``Aig.add_pi`` appends them in id order, so the
    ascending ids match the PI name order).
    """
    num_nodes = int(fanin0.shape[0])
    is_and = fanin0 >= 0
    and_nodes = np.nonzero(is_and)[0].astype(np.int64)
    pi_mask = ~is_and
    if num_nodes:
        pi_mask[0] = False  # node 0 is the constant, never a PI
    pi_nodes = np.nonzero(pi_mask)[0].astype(np.int64)

    fanout = np.zeros(num_nodes, dtype=np.int64)
    if and_nodes.size:
        refs = np.concatenate([fanin0[and_nodes] >> 1, fanin1[and_nodes] >> 1])
    else:
        refs = np.empty(0, dtype=np.int64)
    if po_literals.size:
        refs = np.concatenate([refs, po_literals >> 1])
    if refs.size:
        fanout += np.bincount(refs, minlength=num_nodes)

    groups: list[np.ndarray] = []
    if and_nodes.size:
        and_levels = level[and_nodes]
        order = np.argsort(and_levels, kind="stable")  # ids stay ascending per level
        sorted_nodes = and_nodes[order]
        sorted_levels = and_levels[order]
        boundaries = np.nonzero(np.diff(sorted_levels))[0] + 1
        groups = list(np.split(sorted_nodes, boundaries))

    return AigArrays(
        num_nodes=num_nodes,
        fanin0=fanin0,
        fanin1=fanin1,
        level=level,
        fanout=fanout,
        is_and=is_and,
        and_nodes=and_nodes,
        pi_nodes=pi_nodes,
        po_literals=po_literals,
        level_groups=tuple(groups),
    )


def _build_arrays(aig: Aig) -> AigArrays:
    num_nodes = aig.num_nodes
    fanin0 = np.full(num_nodes, -1, dtype=np.int64)
    fanin1 = np.full(num_nodes, -1, dtype=np.int64)
    level = np.zeros(num_nodes, dtype=np.int64)

    nodes = aig._nodes  # flattening lives next to the Aig class
    for index in range(1, num_nodes):
        data = nodes[index]
        if data.fanin0 >= 0:
            fanin0[index] = data.fanin0
            fanin1[index] = data.fanin1
        level[index] = data.level

    po_literals = np.asarray(aig.po_literals, dtype=np.int64)
    return arrays_from_parts(fanin0, fanin1, level, po_literals)


def aig_arrays(aig: Aig) -> AigArrays:
    """The (cached) array view of an AIG.

    The cache key is ``(num_nodes, num_pos)``: the ``Aig`` API only ever
    appends nodes and outputs, so an unchanged pair means an unchanged
    structure and the cached snapshot can be reused; a changed pair rebuilds.
    """
    key = (aig.num_nodes, aig.num_pos)
    cached = aig.__dict__.get("_array_view")
    if cached is not None and cached[0] == key:
        return cached[1]
    arrays = _build_arrays(aig)
    aig.__dict__["_array_view"] = (key, arrays)
    return arrays
