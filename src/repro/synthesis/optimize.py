"""Technology-independent AIG optimization (the ``resyn2rs`` stand-in).

The paper synthesizes every benchmark with ABC's ``resyn2rs`` script before
technology mapping.  That script interleaves balancing, rewriting, refactoring
and resubstitution.  We provide a compact equivalent built from three passes:

* :func:`balance` -- collapses multi-input AND trees and rebuilds them as
  depth-balanced binary trees (ABC's ``balance``);
* :func:`rewrite` -- cut-based local rewriting: for every node a small cut is
  extracted, its function computed, and the cone replaced by a cheaper
  implementation synthesised from the function's irredundant sum of products
  via a simple factoring heuristic (covers ABC's ``rewrite``/``refactor``
  behaviour for the cone sizes that matter here);
* :func:`optimize` -- the driver that interleaves the two until the node count
  stops improving, mirroring the iterative structure of ``resyn2rs``.

Because every transformation rebuilds the graph through the structurally
hashing constructors, common subexpressions are shared automatically, which
is where most of the practical reduction comes from.

Both passes exist twice, mirroring how the mapper DP and the cut enumerator
are organized:

* :func:`balance` / :func:`rewrite` -- the **array-backed fast paths**.
  They read the graph through :class:`~repro.synthesis.aig_array.AigArrays`
  and the :class:`~repro.synthesis.cuts.CutSet` struct-of-arrays (no
  ``as_python()`` round-trip), select candidate cuts with one numpy scan,
  fetch pre-compiled cover programs from the NPN-class library of
  :mod:`repro.synthesis.rewrite_lib`, and emit gates into a flat
  :class:`_GraphBuilder` instead of a pointer-chasing :class:`Aig`.
* :func:`balance_reference` / :func:`rewrite_reference` -- the original
  per-node algorithms, retained as oracles.

The fast paths are pinned **node-for-node identical** to the references:
same candidate order, same gate-emission sequence (including the synthesis
of losing candidates, whose structural-hash side effects feed later cost
decisions), same structural hashing order, same levels.  Tiny graphs --
where flattening overhead exceeds the win -- automatically fall back to the
reference passes; both dispatch arms produce the same AIG, so artifacts are
byte-identical either way.  ``tests/synthesis/test_optimize_vectorized.py``
pins the parity per node and per choice.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.synthesis.aig import (
    Aig,
    AigLiteral,
    CONST0,
    CONST1,
    _Node,
    lit_complement,
    lit_is_complemented,
    lit_node,
)
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import cut_set_for
from repro.synthesis.rewrite_lib import (  # noqa: F401  (re-exported: tests and
    REWRITE_LIBRARY,  # historical importers reach _isop and friends through here)
    _cube_inside,
    _cube_minterms,
    _isop,
    compile_ops,
    replay_cover,
    replay_ops,
)

#: Below this many AND nodes the reference passes run instead of the
#: vectorized ones: the array view, numpy candidate scan and flat-builder
#: setup cost more than they save on tiny graphs.  Both arms produce the
#: identical AIG, so the dispatch is purely a performance choice.
PASS_VECTOR_THRESHOLD = 16


class _GraphBuilder:
    """Append-only AND-graph accumulator on flat lists.

    Replays :meth:`Aig.and_gate` exactly -- the same local simplifications,
    canonical fanin order, structural hashing and level computation -- while
    skipping its per-call validation, attribute chasing and ``_Node``
    allocation; :meth:`finish` bulk-materializes the accumulated nodes into
    a real, fully equivalent :class:`Aig` (strash table included).  The
    vectorized passes emit a whole pass worth of gates through one builder.
    """

    __slots__ = ("fanin0", "fanin1", "level", "strash", "_pi_names")

    def __init__(self, pi_names: tuple[str, ...]) -> None:
        count = 1 + len(pi_names)
        self.fanin0 = [-1] * count
        self.fanin1 = [-1] * count
        self.level = [0] * count
        self.strash: dict[int, int] = {}
        self._pi_names = pi_names

    def pi_literal(self, index: int) -> AigLiteral:
        """Literal of the ``index``-th primary input (they precede all ANDs)."""
        return (1 + index) << 1

    def and_gate(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        if a < 2 or b < 2:
            if a == 0 or b == 0:
                return 0
            return b if a == 1 else a
        if a == b:
            return a
        if a ^ 1 == b:
            return 0
        if a > b:
            a, b = b, a
        key = (a << 32) | b
        node = self.strash.get(key)
        if node is not None:
            return node << 1
        level = self.level
        level0 = level[a >> 1]
        level1 = level[b >> 1]
        fanin0 = self.fanin0
        node = len(fanin0)
        fanin0.append(a)
        self.fanin1.append(b)
        level.append((level0 if level0 >= level1 else level1) + 1)
        self.strash[key] = node
        return node << 1

    @property
    def num_nodes(self) -> int:
        return len(self.fanin0)

    def replay(
        self,
        leaves: list[AigLiteral],
        ops: tuple[tuple[int, int], ...],
        result: int,
    ) -> AigLiteral:
        """Run a :func:`~repro.synthesis.rewrite_lib.compile_ops` schedule.

        Semantically ``replay_ops(self.and_gate, leaves, ops, result)`` with
        the gate constructor inlined into the op loop -- the rewrite pass
        replays thousands of schedules per graph and the two function frames
        per gate are its hottest remaining overhead.
        """
        fanin0 = self.fanin0
        fanin1 = self.fanin1
        level = self.level
        strash = self.strash
        strash_get = strash.get
        temps: list[AigLiteral] = []
        append_temp = temps.append
        for code_a, code_b in ops:
            if code_a >= 2:
                a = (
                    temps[(code_a >> 2) - 1]
                    if code_a & 2
                    else leaves[(code_a >> 2) - 1]
                ) ^ (code_a & 1)
            else:
                a = code_a
            if code_b >= 2:
                b = (
                    temps[(code_b >> 2) - 1]
                    if code_b & 2
                    else leaves[(code_b >> 2) - 1]
                ) ^ (code_b & 1)
            else:
                b = code_b
            if a < 2 or b < 2:
                if a == 0 or b == 0:
                    append_temp(0)
                else:
                    append_temp(b if a == 1 else a)
                continue
            if a == b:
                append_temp(a)
                continue
            if a ^ 1 == b:
                append_temp(0)
                continue
            if a > b:
                a, b = b, a
            key = (a << 32) | b
            node = strash_get(key)
            if node is not None:
                append_temp(node << 1)
                continue
            level0 = level[a >> 1]
            level1 = level[b >> 1]
            node = len(fanin0)
            fanin0.append(a)
            fanin1.append(b)
            level.append((level0 if level0 >= level1 else level1) + 1)
            strash[key] = node
            append_temp(node << 1)
        if result >= 2:
            return (
                temps[(result >> 2) - 1] if result & 2 else leaves[(result >> 2) - 1]
            ) ^ (result & 1)
        return result

    def finish(self, name: str) -> Aig:
        """Materialize the accumulated graph as a real :class:`Aig`."""
        aig = Aig(name)
        for pi_name in self._pi_names:
            aig.add_pi(pi_name)
        nodes = aig._nodes
        strash = aig._strash
        fanin0 = self.fanin0
        fanin1 = self.fanin1
        level = self.level
        for index in range(len(nodes), len(fanin0)):
            a = fanin0[index]
            b = fanin1[index]
            nodes.append(_Node(a, b, level[index]))
            strash[(a, b)] = index
        return aig

    def finish_cleaned(
        self,
        name: str,
        po_names: tuple[str, ...],
        po_literals: list[AigLiteral],
    ) -> Aig:
        """Materialize only the logic reachable from ``po_literals``.

        Fuses :meth:`finish` with :meth:`Aig.cleanup`: liveness is one
        descending sweep (fanins always precede their node), and the live
        nodes are appended in their original order with an order-preserving
        id remap.  Because the builder never emits constant or duplicated
        fanins and the remap is strictly increasing, canonical fanin order
        and levels are untouched -- the result is node-for-node the AIG that
        ``finish(name)`` + ``add_po`` + ``cleanup()`` would produce, without
        materializing the dead nodes or re-deriving the array view.
        """
        fanin0 = self.fanin0
        fanin1 = self.fanin1
        level = self.level
        count = len(fanin0)
        first_and = 1 + len(self._pi_names)
        live = bytearray(count)
        for literal in po_literals:
            live[literal >> 1] = 1
        for node in range(count - 1, first_and - 1, -1):
            if live[node]:
                live[fanin0[node] >> 1] = 1
                live[fanin1[node] >> 1] = 1

        aig = Aig(name)
        mapping = list(range(0, 2 * first_and, 2))
        for pi_name in self._pi_names:
            aig.add_pi(pi_name)
        nodes = aig._nodes
        strash = aig._strash
        for node in range(first_and, count):
            if not live[node]:
                mapping.append(-1)
                continue
            a = fanin0[node]
            b = fanin1[node]
            new_a = mapping[a >> 1] ^ (a & 1)
            new_b = mapping[b >> 1] ^ (b & 1)
            new_id = len(nodes)
            nodes.append(_Node(new_a, new_b, level[node]))
            strash[(new_a, new_b)] = new_id
            mapping.append(new_id << 1)
        for po_name, literal in zip(po_names, po_literals):
            aig.add_po(po_name, mapping[literal >> 1] ^ (literal & 1))
        return aig


# -- balance -----------------------------------------------------------------


def balance(aig: Aig, trace: list | None = None) -> Aig:
    """Depth-balance the AND trees of an AIG (array-backed fast path).

    For every node the maximal single-fanout AND tree rooted at it is
    collapsed into its leaf literals and rebuilt as a balanced binary tree,
    pairing the shallowest literals first (same heuristic as ABC's
    ``balance``).  The collapse runs bottom-up over ``AigArrays`` so shared
    subtrees contribute their leaf lists once, and the rebuild schedules
    literals through a ``heapq`` keyed on ``(level, insertion index)`` --
    exactly the order of the reference's sorted-list scheduling.  Falls back
    to :func:`balance_reference` below :data:`PASS_VECTOR_THRESHOLD`;
    ``trace``, when given, receives the per-node choice stream
    ``(node, rebuilt_literal)`` for the parity tests.
    """
    if aig.num_ands < PASS_VECTOR_THRESHOLD:
        return balance_reference(aig, trace)
    arrays = aig_arrays(aig)
    fanin0 = arrays.fanin0.tolist()
    fanin1 = arrays.fanin1.tolist()
    fanout = arrays.fanout.tolist()
    and_nodes = arrays.and_nodes.tolist()

    builder = _GraphBuilder(aig.pi_names)
    mapping = [-1] * arrays.num_nodes
    mapping[0] = CONST0
    for index, node in enumerate(arrays.pi_nodes.tolist()):
        mapping[node] = builder.pi_literal(index)

    # Maximal-AND-tree leaves, bottom-up: a fanin edge is absorbed when it is
    # uncomplemented, feeds from an AND node and that node has fanout 1 (the
    # reference's collect_and_leaves recursion, shared instead of re-walked).
    leaves: list[list[int] | None] = [None] * arrays.num_nodes
    for node in and_nodes:
        f0 = fanin0[node]
        f1 = fanin1[node]
        source0 = f0 >> 1
        source1 = f1 >> 1
        part0 = (
            leaves[source0]
            if (f0 & 1) == 0 and fanout[source0] == 1 and leaves[source0] is not None
            else [f0]
        )
        part1 = (
            leaves[source1]
            if (f1 & 1) == 0 and fanout[source1] == 1 and leaves[source1] is not None
            else [f1]
        )
        leaves[node] = part0 + part1

    level = builder.level
    and_gate = builder.and_gate
    heappush = heapq.heappush
    heappop = heapq.heappop
    for node in and_nodes:
        node_leaves = leaves[node]
        if len(node_leaves) == 2:
            # Dominant case (nothing collapsed): one gate, no heap.  The
            # heap would pop these two in some order and and_gate
            # canonicalizes its arguments, so the emitted gate is identical.
            f0, f1 = node_leaves
            result = and_gate(
                mapping[f0 >> 1] ^ (f0 & 1), mapping[f1 >> 1] ^ (f1 & 1)
            )
        else:
            heap = []
            for order, leaf in enumerate(node_leaves):
                literal = mapping[leaf >> 1] ^ (leaf & 1)
                heap.append((level[literal >> 1], order, literal))
            heapq.heapify(heap)
            sequence = len(heap)
            while len(heap) > 1:
                _, _, a = heappop(heap)
                _, _, b = heappop(heap)
                combined = and_gate(a, b)
                heappush(heap, (level[combined >> 1], sequence, combined))
                sequence += 1
            result = heap[0][2] if heap else CONST1
        mapping[node] = result
        if trace is not None:
            trace.append((node, result))

    po_literals = [
        mapping[literal >> 1] ^ (literal & 1) for literal in aig.po_literals
    ]
    return builder.finish_cleaned(aig.name, aig.po_names, po_literals)


def balance_reference(aig: Aig, trace: list | None = None) -> Aig:
    """Reference depth-balancing (the pre-vectorization per-node algorithm).

    Kept as the oracle for :func:`balance` and as the small-graph fast path.
    The only change from its original form is the scheduling container: the
    ``ordered.pop(0)`` / ``insert`` list (O(n^2) on wide collapsed trees) is
    now a ``heapq`` keyed on ``(level, insertion index)``.  The heap pops in
    exactly the old order -- the list was kept sorted by level with stable
    insertion after ties, which is precisely the (level, sequence) total
    order -- so the produced tree is identical gate for gate.
    """
    fanout = aig_arrays(aig).fanout.tolist()
    new = Aig(aig.name)
    mapping: dict[int, AigLiteral] = {0: CONST0}
    for name in aig.pi_names:
        mapping[lit_node(aig.pi_literal(name))] = new.add_pi(name)

    def translate(literal: AigLiteral) -> AigLiteral:
        return mapping[lit_node(literal)] ^ (literal & 1)

    def collect_and_leaves(literal: AigLiteral, root: bool) -> list[AigLiteral]:
        """Leaves of the maximal AND tree rooted at ``literal``."""
        node = lit_node(literal)
        if (
            lit_is_complemented(literal)
            or not aig.is_and(node)
            or (not root and fanout[node] > 1)
        ):
            return [literal]
        f0, f1 = aig.fanins(node)
        return collect_and_leaves(f0, False) + collect_and_leaves(f1, False)

    def rebuild(node: int) -> AigLiteral:
        if node in mapping:
            return mapping[node]
        leaves = collect_and_leaves(node << 1, True)
        translated = []
        for leaf in leaves:
            leaf_node = lit_node(leaf)
            if leaf_node not in mapping:
                rebuild(leaf_node)
            translated.append(translate(leaf))
        # Pair shallow literals first so the deepest signal sees the fewest
        # levels; ties resolve by insertion order (combined gates last).
        heap = [
            (new.literal_level(literal), order, literal)
            for order, literal in enumerate(translated)
        ]
        heapq.heapify(heap)
        sequence = len(heap)
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            combined = new.and_gate(a, b)
            heapq.heappush(heap, (new.literal_level(combined), sequence, combined))
            sequence += 1
        result = heap[0][2] if heap else CONST1
        mapping[node] = result
        if trace is not None:
            trace.append((node, result))
        return result

    for node in aig.and_nodes():
        rebuild(node)
    for name, literal in zip(aig.po_names, aig.po_literals):
        node = lit_node(literal)
        if node not in mapping:
            rebuild(node)
        new.add_po(name, translate(literal))
    return new.cleanup()


# -- rewrite -----------------------------------------------------------------


def _synthesize_sop(
    aig: Aig, leaves: list[AigLiteral], cubes: tuple[tuple[int, int], ...], num_vars: int
) -> AigLiteral:
    """Build an AND-OR implementation of a cube cover."""
    terms: list[AigLiteral] = []
    for care, value in cubes:
        factors: list[AigLiteral] = []
        for var in range(num_vars):
            if not (care >> var) & 1:
                continue
            literal = leaves[var]
            if not (value >> var) & 1:
                literal = lit_complement(literal)
            factors.append(literal)
        terms.append(aig.and_many(factors) if factors else CONST1)
    return aig.or_many(terms) if terms else CONST0


def rewrite(aig: Aig, max_inputs: int = 4, trace: list | None = None) -> Aig:
    """Cut-based rewriting (array-backed fast path).

    For every AND node the candidate cuts are taken straight from the
    :class:`~repro.synthesis.cuts.CutSet` arrays -- one numpy scan selects
    the valid (node, slot) pairs and their size/table/leaf columns, with no
    ``as_python()`` round-trip -- and each distinct cut function is compiled
    once into a cover program by the NPN-class library
    (:data:`~repro.synthesis.rewrite_lib.REWRITE_LIBRARY`, batch
    canonicalization + one ISOP per class representative or member).  Every
    candidate program is then replayed into a flat :class:`_GraphBuilder`;
    the cheapest result (strictly fewer added gates, first minimum wins) is
    kept per node, losing candidates included in the emission stream exactly
    as the reference does -- their structural-hash side effects feed the
    costs of later nodes, so replaying them is part of the pinned contract.
    Falls back to :func:`rewrite_reference` below
    :data:`PASS_VECTOR_THRESHOLD`; ``trace`` receives the per-node choice
    stream ``(node, winning slot, cost)`` for the parity tests.
    """
    if aig.num_ands < PASS_VECTOR_THRESHOLD:
        return rewrite_reference(aig, max_inputs, trace)
    cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=4)
    arrays = aig_arrays(aig)
    and_nodes = arrays.and_nodes

    # Candidate scan: valid slots per node (inside the count, at least two
    # leaves -- single-leaf cuts are the trivial ones the reference skips),
    # in node-major slot-ascending order to match the reference loop.
    counts = cut_set.count[and_nodes]
    sizes = cut_set.size[and_nodes]
    slot_index = np.arange(sizes.shape[1], dtype=counts.dtype)
    valid = (slot_index[None, :] < counts[:, None]) & (sizes >= 2)
    local_node, slot_of = np.nonzero(valid)
    candidate_nodes = and_nodes[local_node]
    candidate_sizes = sizes[local_node, slot_of]
    candidate_tables = cut_set.table[candidate_nodes, slot_of]
    candidate_leaves = cut_set.leaves[candidate_nodes, slot_of]

    # One cover program per distinct (size, table); the library batches the
    # canonicalization of whatever this pass has not seen before.
    keys = np.empty((candidate_tables.shape[0], 2), dtype=np.uint64)
    keys[:, 0] = candidate_sizes
    keys[:, 1] = candidate_tables
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    unique_programs = REWRITE_LIBRARY.programs_batch(
        unique_keys[:, 0].tolist(), unique_keys[:, 1].tolist()
    )
    unique_ops = [compile_ops(program) for program in unique_programs]
    ops_of = [unique_ops[index] for index in inverse.tolist()]

    per_node = valid.sum(axis=1).tolist()
    slots = slot_of.tolist()
    size_list = candidate_sizes.tolist()
    leaf_rows = candidate_leaves.tolist()
    fanin0 = arrays.fanin0.tolist()
    fanin1 = arrays.fanin1.tolist()

    builder = _GraphBuilder(aig.pi_names)
    mapping = [-1] * arrays.num_nodes
    mapping[0] = CONST0
    for index, node in enumerate(arrays.pi_nodes.tolist()):
        mapping[node] = builder.pi_literal(index)

    and_gate = builder.and_gate
    replay = builder.replay
    node_fanins = builder.fanin0
    cursor = 0
    for local, node in enumerate(and_nodes.tolist()):
        best_literal = -1
        best_cost = -1
        best_slot = -1
        for _ in range(per_node[local]):
            num_vars = size_list[cursor]
            row = leaf_rows[cursor]
            leaves = []
            available = True
            for position in range(num_vars):
                literal = mapping[row[position]]
                if literal < 0:
                    available = False
                    break
                leaves.append(literal)
            if available:
                ops, result = ops_of[cursor]
                before = len(node_fanins)
                literal = replay(leaves, ops, result)
                cost = len(node_fanins) - before
                if best_cost < 0 or cost < best_cost:
                    best_cost = cost
                    best_literal = literal
                    best_slot = slots[cursor]
            cursor += 1
        if best_literal < 0:
            f0 = fanin0[node]
            f1 = fanin1[node]
            best_literal = and_gate(
                mapping[f0 >> 1] ^ (f0 & 1), mapping[f1 >> 1] ^ (f1 & 1)
            )
        mapping[node] = best_literal
        if trace is not None:
            trace.append((node, best_slot, best_cost))

    po_literals = [
        mapping[literal >> 1] ^ (literal & 1) for literal in aig.po_literals
    ]
    return builder.finish_cleaned(aig.name, aig.po_names, po_literals)


def rewrite_reference(
    aig: Aig, max_inputs: int = 4, trace: list | None = None
) -> Aig:
    """Reference cut-based rewriting (the pre-vectorization algorithm).

    For every AND node the best small cut is taken, the node function over the
    cut leaves is computed, and an AND-OR implementation of its irredundant
    cover (or of the complement, whichever is smaller) is built in a fresh
    AIG.  Structural hashing shares the rebuilt logic; the pass never
    increases the size of an individual cone beyond its SOP cost but may keep
    the existing structure when that is cheaper.  Kept as the oracle for
    :func:`rewrite` and as the small-graph fast path.
    """
    cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=4)
    cut_count, cut_size, cut_leaves, cut_table, _ = cut_set.as_python()
    new = Aig(aig.name)
    mapping: dict[int, AigLiteral] = {0: CONST0}
    for name in aig.pi_names:
        mapping[lit_node(aig.pi_literal(name))] = new.add_pi(name)

    def translate(literal: AigLiteral) -> AigLiteral:
        return mapping[lit_node(literal)] ^ (literal & 1)

    for node in aig.and_nodes():
        best_literal: AigLiteral | None = None
        best_cost: int | None = None
        best_slot = -1
        node_sizes = cut_size[node]
        node_leaves = cut_leaves[node]
        node_tables = cut_table[node]
        for slot in range(cut_count[node]):
            num_vars = node_sizes[slot]
            if num_vars == 1:
                continue
            cut_leaf_ids = node_leaves[slot][:num_vars]
            if any(leaf not in mapping for leaf in cut_leaf_ids):
                continue
            leaves = [mapping[leaf] for leaf in cut_leaf_ids]
            table = node_tables[slot]
            size_before = new.num_ands
            positive = _isop(table, num_vars)
            negative = _isop(~table & ((1 << (1 << num_vars)) - 1), num_vars)
            if len(negative) < len(positive):
                literal = lit_complement(
                    _synthesize_sop(new, leaves, negative, num_vars)
                )
            else:
                literal = _synthesize_sop(new, leaves, positive, num_vars)
            cost = new.num_ands - size_before
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_literal = literal
                best_slot = slot
        if best_literal is None:
            f0, f1 = aig.fanins(node)
            best_literal = new.and_gate(translate(f0), translate(f1))
        mapping[node] = best_literal
        if trace is not None:
            trace.append((node, best_slot, -1 if best_cost is None else best_cost))

    for name, literal in zip(aig.po_names, aig.po_literals):
        new.add_po(name, translate(literal))
    return new.cleanup()


def optimize(aig: Aig, max_rounds: int = 3) -> Aig:
    """The ``resyn2rs`` stand-in: interleave balancing and rewriting to a fixpoint.

    Since the pass-based flow framework landed this is a thin wrapper over
    the registered ``resyn2rs`` flow (balance prologue, up to ``max_rounds``
    rounds of rewrite + balance, best intermediate result kept); see
    :mod:`repro.flow`.  The returned AIG is never larger or deeper than the
    input even when a rewriting round locally increases the node count.
    """
    from dataclasses import replace

    from repro.flow import get_flow

    flow = get_flow("resyn2rs")
    if max_rounds != flow.max_rounds:
        flow = replace(flow, max_rounds=max_rounds)
    return flow.run(aig).aig
