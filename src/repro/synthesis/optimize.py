"""Technology-independent AIG optimization (the ``resyn2rs`` stand-in).

The paper synthesizes every benchmark with ABC's ``resyn2rs`` script before
technology mapping.  That script interleaves balancing, rewriting, refactoring
and resubstitution.  We provide a compact equivalent built from three passes:

* :func:`balance` -- collapses multi-input AND trees and rebuilds them as
  depth-balanced binary trees (ABC's ``balance``);
* :func:`rewrite` -- cut-based local rewriting: for every node a small cut is
  extracted, its function computed, and the cone replaced by a cheaper
  implementation synthesised from the function's irredundant sum of products
  via a simple factoring heuristic (covers ABC's ``rewrite``/``refactor``
  behaviour for the cone sizes that matter here);
* :func:`optimize` -- the driver that interleaves the two until the node count
  stops improving, mirroring the iterative structure of ``resyn2rs``.

Because every transformation rebuilds the graph through the structurally
hashing constructors, common subexpressions are shared automatically, which
is where most of the practical reduction comes from.
"""

from __future__ import annotations

from functools import lru_cache

from repro.synthesis.aig import (
    Aig,
    AigLiteral,
    CONST0,
    CONST1,
    lit_complement,
    lit_is_complemented,
    lit_node,
)
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import cut_set_for, register_cut_cache


def balance(aig: Aig) -> Aig:
    """Depth-balance the AND trees of an AIG.

    For every node the maximal single-fanout AND tree rooted at it is
    collapsed into its leaf literals and rebuilt as a balanced binary tree,
    sorting the leaves by their current depth so that late-arriving signals
    traverse fewer levels (same heuristic as ABC's ``balance``).
    """
    fanout = aig_arrays(aig).fanout.tolist()
    new = Aig(aig.name)
    mapping: dict[int, AigLiteral] = {0: CONST0}
    for name in aig.pi_names:
        mapping[lit_node(aig.pi_literal(name))] = new.add_pi(name)

    def translate(literal: AigLiteral) -> AigLiteral:
        return mapping[lit_node(literal)] ^ (literal & 1)

    def collect_and_leaves(literal: AigLiteral, root: bool) -> list[AigLiteral]:
        """Leaves of the maximal AND tree rooted at ``literal``."""
        node = lit_node(literal)
        if (
            lit_is_complemented(literal)
            or not aig.is_and(node)
            or (not root and fanout[node] > 1)
        ):
            return [literal]
        f0, f1 = aig.fanins(node)
        return collect_and_leaves(f0, False) + collect_and_leaves(f1, False)

    def rebuild(node: int) -> AigLiteral:
        if node in mapping:
            return mapping[node]
        leaves = collect_and_leaves(node << 1, True)
        translated = []
        for leaf in leaves:
            leaf_node = lit_node(leaf)
            if leaf_node not in mapping:
                rebuild(leaf_node)
            translated.append(translate(leaf))
        # Pair shallow literals first so the deepest signal sees the fewest levels.
        ordered = sorted(translated, key=new.literal_level)
        while len(ordered) > 1:
            a = ordered.pop(0)
            b = ordered.pop(0)
            combined = new.and_gate(a, b)
            # Insert keeping the depth order.
            level = new.literal_level(combined)
            index = 0
            while index < len(ordered) and new.literal_level(ordered[index]) <= level:
                index += 1
            ordered.insert(index, combined)
        result = ordered[0] if ordered else CONST1
        mapping[node] = result
        return result

    for node in aig.and_nodes():
        rebuild(node)
    for name, literal in zip(aig.po_names, aig.po_literals):
        node = lit_node(literal)
        if node not in mapping:
            rebuild(node)
        new.add_po(name, translate(literal))
    return new.cleanup()


@lru_cache(maxsize=1 << 16)
def _isop(table: int, num_vars: int) -> tuple[tuple[int, int], ...]:
    """Irredundant sum of products of a truth table (cube tuple).

    Each cube is a pair ``(care_mask, value_mask)``: variable *i* appears
    positively when bit *i* is set in both masks, negatively when set in
    ``care_mask`` only.  Uses a simple expand-greedy cover; optimality is not
    required, only irredundancy.  Memoized (and registered with
    :func:`repro.synthesis.cuts.clear_cut_caches`): the rewrite pass asks for
    the cover of both polarities of every cut function, and distinct K<=4
    functions are few across a whole flow.
    """
    size = 1 << num_vars
    full = (1 << size) - 1
    table &= full
    remaining = table
    cubes: list[tuple[int, int]] = []
    while remaining:
        minterm = (remaining & -remaining).bit_length() - 1
        care = (1 << num_vars) - 1
        value = minterm
        # Try to drop every variable from the cube while staying inside the on-set.
        for var in range(num_vars):
            trial_care = care & ~(1 << var)
            if _cube_inside(table, num_vars, trial_care, value):
                care = trial_care
        value &= care
        cubes.append((care, value))
        remaining &= ~_cube_minterms(num_vars, care, value)
    # Irredundancy post-pass: drop any cube whose minterms are already covered
    # by the union of the other kept cubes (greedy expansion can overlap).
    coverage = [_cube_minterms(num_vars, care, value) for care, value in cubes]
    kept = list(range(len(cubes)))
    for index in range(len(cubes)):
        others = 0
        for j in kept:
            if j != index:
                others |= coverage[j]
        if index in kept and not (coverage[index] & ~others):
            kept.remove(index)
    return tuple(cubes[i] for i in kept)


register_cut_cache(_isop)


def _cube_minterms(num_vars: int, care: int, value: int) -> int:
    bits = 0
    for minterm in range(1 << num_vars):
        if (minterm & care) == value:
            bits |= 1 << minterm
    return bits


def _cube_inside(table: int, num_vars: int, care: int, value: int) -> bool:
    value &= care
    for minterm in range(1 << num_vars):
        if (minterm & care) == value and not ((table >> minterm) & 1):
            return False
    return True


def _synthesize_sop(
    aig: Aig, leaves: list[AigLiteral], cubes: tuple[tuple[int, int], ...], num_vars: int
) -> AigLiteral:
    """Build an AND-OR implementation of a cube cover."""
    terms: list[AigLiteral] = []
    for care, value in cubes:
        factors: list[AigLiteral] = []
        for var in range(num_vars):
            if not (care >> var) & 1:
                continue
            literal = leaves[var]
            if not (value >> var) & 1:
                literal = lit_complement(literal)
            factors.append(literal)
        terms.append(aig.and_many(factors) if factors else CONST1)
    return aig.or_many(terms) if terms else CONST0


def rewrite(aig: Aig, max_inputs: int = 4) -> Aig:
    """Cut-based rewriting: re-synthesize small cones from their functions.

    For every AND node the best small cut is taken, the node function over the
    cut leaves is computed, and an AND-OR implementation of its irredundant
    cover (or of the complement, whichever is smaller) is built in a fresh
    AIG.  Structural hashing shares the rebuilt logic; the pass never
    increases the size of an individual cone beyond its SOP cost but may keep
    the existing structure when that is cheaper.
    """
    cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=4)
    cut_count, cut_size, cut_leaves, cut_table, _ = cut_set.as_python()
    new = Aig(aig.name)
    mapping: dict[int, AigLiteral] = {0: CONST0}
    for name in aig.pi_names:
        mapping[lit_node(aig.pi_literal(name))] = new.add_pi(name)

    def translate(literal: AigLiteral) -> AigLiteral:
        return mapping[lit_node(literal)] ^ (literal & 1)

    for node in aig.and_nodes():
        best_literal: AigLiteral | None = None
        best_cost: int | None = None
        node_sizes = cut_size[node]
        node_leaves = cut_leaves[node]
        node_tables = cut_table[node]
        for slot in range(cut_count[node]):
            num_vars = node_sizes[slot]
            if num_vars == 1:
                continue
            cut_leaf_ids = node_leaves[slot][:num_vars]
            if any(leaf not in mapping for leaf in cut_leaf_ids):
                continue
            leaves = [mapping[leaf] for leaf in cut_leaf_ids]
            table = node_tables[slot]
            size_before = new.num_ands
            positive = _isop(table, num_vars)
            negative = _isop(~table & ((1 << (1 << num_vars)) - 1), num_vars)
            if len(negative) < len(positive):
                literal = lit_complement(
                    _synthesize_sop(new, leaves, negative, num_vars)
                )
            else:
                literal = _synthesize_sop(new, leaves, positive, num_vars)
            cost = new.num_ands - size_before
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_literal = literal
        if best_literal is None:
            f0, f1 = aig.fanins(node)
            best_literal = new.and_gate(translate(f0), translate(f1))
        mapping[node] = best_literal

    for name, literal in zip(aig.po_names, aig.po_literals):
        new.add_po(name, translate(literal))
    return new.cleanup()


def optimize(aig: Aig, max_rounds: int = 3) -> Aig:
    """The ``resyn2rs`` stand-in: interleave balancing and rewriting to a fixpoint.

    Since the pass-based flow framework landed this is a thin wrapper over
    the registered ``resyn2rs`` flow (balance prologue, up to ``max_rounds``
    rounds of rewrite + balance, best intermediate result kept); see
    :mod:`repro.flow`.  The returned AIG is never larger or deeper than the
    input even when a rewriting round locally increases the node count.
    """
    from dataclasses import replace

    from repro.flow import get_flow

    flow = get_flow("resyn2rs")
    if max_rounds != flow.max_rounds:
        flow = replace(flow, max_rounds=max_rounds)
    return flow.run(aig).aig
