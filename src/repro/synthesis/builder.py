"""Named-signal circuit builder used by the benchmark generators.

:class:`CircuitBuilder` wraps an :class:`~repro.synthesis.aig.Aig` with a
signal-name namespace and small word-level helpers (buses, ripple adders,
one-hot decoders, ...), so that the benchmark generators of
:mod:`repro.bench` read like structural RTL instead of raw AIG surgery.
"""

from __future__ import annotations

from typing import Sequence

from repro.synthesis.aig import Aig, AigLiteral, CONST0, CONST1


class CircuitBuilder:
    """Structural circuit construction on top of an AIG."""

    def __init__(self, name: str) -> None:
        self.aig = Aig(name)

    # -- inputs / outputs -----------------------------------------------------

    def input(self, name: str) -> AigLiteral:
        """Declare one primary input."""
        return self.aig.add_pi(name)

    def input_bus(self, prefix: str, width: int) -> list[AigLiteral]:
        """Declare ``width`` primary inputs named ``prefix[0] .. prefix[width-1]``."""
        return [self.input(f"{prefix}[{i}]") for i in range(width)]

    def output(self, name: str, literal: AigLiteral) -> None:
        self.aig.add_po(name, literal)

    def output_bus(self, prefix: str, literals: Sequence[AigLiteral]) -> None:
        for i, literal in enumerate(literals):
            self.output(f"{prefix}[{i}]", literal)

    # -- constants and gates ----------------------------------------------------

    @property
    def zero(self) -> AigLiteral:
        return CONST0

    @property
    def one(self) -> AigLiteral:
        return CONST1

    def not_(self, a: AigLiteral) -> AigLiteral:
        return self.aig.not_gate(a)

    def and_(self, *literals: AigLiteral) -> AigLiteral:
        return self.aig.and_many(list(literals))

    def or_(self, *literals: AigLiteral) -> AigLiteral:
        return self.aig.or_many(list(literals))

    def xor_(self, *literals: AigLiteral) -> AigLiteral:
        return self.aig.xor_many(list(literals))

    def nand_(self, *literals: AigLiteral) -> AigLiteral:
        return self.not_(self.and_(*literals))

    def nor_(self, *literals: AigLiteral) -> AigLiteral:
        return self.not_(self.or_(*literals))

    def xnor_(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return self.aig.xnor_gate(a, b)

    def mux(self, select: AigLiteral, when_true: AigLiteral, when_false: AigLiteral) -> AigLiteral:
        return self.aig.mux_gate(select, when_true, when_false)

    # -- word-level helpers -------------------------------------------------------

    def full_adder(
        self, a: AigLiteral, b: AigLiteral, carry_in: AigLiteral
    ) -> tuple[AigLiteral, AigLiteral]:
        """One-bit full adder; returns (sum, carry_out)."""
        partial = self.xor_(a, b)
        total = self.xor_(partial, carry_in)
        carry = self.or_(self.and_(a, b), self.and_(partial, carry_in))
        return total, carry

    def half_adder(self, a: AigLiteral, b: AigLiteral) -> tuple[AigLiteral, AigLiteral]:
        return self.xor_(a, b), self.and_(a, b)

    def ripple_adder(
        self,
        a: Sequence[AigLiteral],
        b: Sequence[AigLiteral],
        carry_in: AigLiteral | None = None,
    ) -> tuple[list[AigLiteral], AigLiteral]:
        """Ripple-carry adder over two equal-width buses; returns (sum bus, carry out)."""
        if len(a) != len(b):
            raise ValueError("adder operands must have the same width")
        carry = carry_in if carry_in is not None else CONST0
        sums: list[AigLiteral] = []
        for bit_a, bit_b in zip(a, b):
            bit_sum, carry = self.full_adder(bit_a, bit_b, carry)
            sums.append(bit_sum)
        return sums, carry

    def subtractor(
        self, a: Sequence[AigLiteral], b: Sequence[AigLiteral]
    ) -> tuple[list[AigLiteral], AigLiteral]:
        """Two's-complement subtraction ``a - b``; returns (difference, borrow-free carry)."""
        inverted = [self.not_(bit) for bit in b]
        return self.ripple_adder(a, inverted, carry_in=CONST1)

    def equal(self, a: Sequence[AigLiteral], b: Sequence[AigLiteral]) -> AigLiteral:
        if len(a) != len(b):
            raise ValueError("comparison operands must have the same width")
        return self.and_(*[self.xnor_(x, y) for x, y in zip(a, b)])

    def parity(self, bits: Sequence[AigLiteral]) -> AigLiteral:
        return self.xor_(*bits) if bits else CONST0

    def decoder(self, select: Sequence[AigLiteral]) -> list[AigLiteral]:
        """One-hot decoder of a select bus (2**n outputs)."""
        outputs: list[AigLiteral] = []
        for value in range(1 << len(select)):
            terms = [
                bit if (value >> i) & 1 else self.not_(bit)
                for i, bit in enumerate(select)
            ]
            outputs.append(self.and_(*terms) if terms else CONST1)
        return outputs

    def mux_bus(
        self,
        select: AigLiteral,
        when_true: Sequence[AigLiteral],
        when_false: Sequence[AigLiteral],
    ) -> list[AigLiteral]:
        if len(when_true) != len(when_false):
            raise ValueError("mux operands must have the same width")
        return [self.mux(select, t, f) for t, f in zip(when_true, when_false)]

    def mux_tree(
        self, select: Sequence[AigLiteral], inputs: Sequence[AigLiteral]
    ) -> AigLiteral:
        """Select one of ``2**len(select)`` single-bit inputs."""
        if len(inputs) != (1 << len(select)):
            raise ValueError("mux tree needs 2**len(select) inputs")
        current = list(inputs)
        for bit in select:
            current = [
                self.mux(bit, current[i + 1], current[i])
                for i in range(0, len(current), 2)
            ]
        return current[0]

    def constant_bus(self, value: int, width: int) -> list[AigLiteral]:
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    def truth_table_logic(
        self, inputs: Sequence[AigLiteral], column: Sequence[int]
    ) -> AigLiteral:
        """Sum-of-minterms logic for an arbitrary truth-table column.

        Used by the S-box style generators; ``column[i]`` is the output for
        the input assignment ``i`` (input 0 is the least significant bit).
        """
        if len(column) != (1 << len(inputs)):
            raise ValueError("column length must be 2**len(inputs)")
        minterms = []
        for value, bit in enumerate(column):
            if not bit:
                continue
            terms = [
                inp if (value >> i) & 1 else self.not_(inp)
                for i, inp in enumerate(inputs)
            ]
            minterms.append(self.and_(*terms))
        return self.or_(*minterms) if minterms else CONST0

    def finish(self) -> Aig:
        """Return the constructed AIG (cleaned of dangling nodes)."""
        return self.aig.cleanup()
