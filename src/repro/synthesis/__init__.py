"""Logic-synthesis substrate (the ABC replacement).

The paper's flow (Sec. 4.4) synthesizes each benchmark with ABC's
``resyn2rs`` script and maps it onto genlib libraries compiled from the
Table-2 characterization.  This subpackage provides an equivalent
self-contained flow:

* :mod:`repro.synthesis.aig` -- an And-Inverter Graph with structural hashing
  and 64-bit packed simulation;
* :mod:`repro.synthesis.builder` -- a convenience circuit builder used by the
  benchmark generators (named signals, word-level helpers);
* :mod:`repro.synthesis.blif` -- BLIF import/export;
* :mod:`repro.synthesis.optimize` -- technology-independent optimization
  (balancing and cut-based rewriting, our stand-in for ``resyn2rs``; the
  array-backed fast passes are pinned node-for-node to the retained
  ``*_reference`` oracles);
* :mod:`repro.synthesis.rewrite_lib` -- the NPN-class rewrite library of
  compiled SOP cover programs backing the fast ``rewrite`` pass;
* :mod:`repro.synthesis.cuts` -- k-feasible priority-cut enumeration with cut
  functions;
* :mod:`repro.synthesis.matcher` -- Boolean matching of cut functions against
  a characterized :class:`~repro.core.library.GateLibrary`;
* :mod:`repro.synthesis.cost` -- the pluggable mapping cost models
  (delay / area-flow / power-flow) owning per-cut cost, tie-breaks and
  preferred-cell selection;
* :mod:`repro.synthesis.mapper` -- cut-based technology mapping with
  multi-round required-time recovery, producing a
  :class:`~repro.synthesis.mapper.MappedCircuit` with the statistics reported
  in Table 3 (gate count, area, logic depth, normalized and absolute delay).
"""

from repro.synthesis.aig import Aig, AigLiteral
from repro.synthesis.builder import CircuitBuilder
from repro.synthesis.blif import read_blif, write_blif
from repro.synthesis.cost import CostModel, cost_model_for, register_cost_model
from repro.synthesis.optimize import (
    optimize,
    balance,
    balance_reference,
    rewrite,
    rewrite_reference,
)
from repro.synthesis.cuts import enumerate_cuts
from repro.synthesis.rewrite_lib import REWRITE_LIBRARY, RewriteLibrary
from repro.synthesis.matcher import ExhaustiveLibraryMatcher, LibraryMatcher
from repro.synthesis.mapper import (
    MappedCircuit,
    MappingResult,
    map_rounds,
    technology_map,
)

__all__ = [
    "Aig",
    "AigLiteral",
    "CircuitBuilder",
    "CostModel",
    "read_blif",
    "write_blif",
    "optimize",
    "balance",
    "balance_reference",
    "rewrite",
    "rewrite_reference",
    "REWRITE_LIBRARY",
    "RewriteLibrary",
    "cost_model_for",
    "enumerate_cuts",
    "ExhaustiveLibraryMatcher",
    "LibraryMatcher",
    "MappedCircuit",
    "MappingResult",
    "map_rounds",
    "register_cost_model",
    "technology_map",
]
