"""K-feasible priority-cut enumeration with cut functions.

A *cut* of an AIG node is a set of nodes (the leaves) such that every path
from a primary input to the node passes through a leaf.  Cut-based technology
mapping enumerates, for every node, a small set of K-feasible cuts (at most
``cut_limit`` cuts with at most ``max_inputs`` leaves each), computes the
Boolean function of the node in terms of the cut leaves, and matches that
function against the library.

Cut functions are kept as raw integer truth tables (at most ``2**6`` bits for
six-input cuts) for speed; the matcher converts them to
:class:`~repro.logic.truth_table.TruthTable` keys on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.synthesis.aig import Aig, lit_is_complemented, lit_node

#: Default mapping parameters, chosen to cover the six-input cells (F42..F45)
#: of the library while keeping enumeration tractable in pure Python.
DEFAULT_MAX_INPUTS = 6
DEFAULT_CUT_LIMIT = 8

_FULL_MASK = {n: (1 << (1 << n)) - 1 for n in range(0, 7)}

# Truth-table columns of the projection functions x0..x5 over 6 variables,
# restricted on demand to fewer variables by masking.
_VAR_COLUMNS_6 = []
for _i in range(6):
    _block = 1 << _i
    _chunk = ((1 << _block) - 1) << _block
    _period = _block * 2
    _bits = 0
    for _start in range(0, 64, _period):
        _bits |= _chunk << _start
    _VAR_COLUMNS_6.append(_bits)


@dataclass(frozen=True)
class Cut:
    """One cut: sorted leaf nodes and the node function over those leaves.

    ``support`` is the bitmask of leaf positions the function actually
    depends on, precomputed at enumeration time so that downstream matching
    never has to rederive it (``-1`` means "not computed yet"; use
    :meth:`support_mask`).
    """

    leaves: tuple[int, ...]
    table: int
    support: int = field(default=-1, compare=False)

    @property
    def size(self) -> int:
        return len(self.leaves)

    def support_mask(self) -> int:
        """Bitmask of leaf positions in the true support of the cut function."""
        if self.support >= 0:
            return self.support
        return table_support(self.table, len(self.leaves))


@lru_cache(maxsize=None)
def _cofactor_mask(num_vars: int, position: int) -> int:
    """Bits of the negative cofactor of variable ``position`` (periodic mask)."""
    block = 1 << position
    chunk = (1 << block) - 1
    mask = 0
    for start in range(0, 1 << num_vars, block * 2):
        mask |= chunk << start
    return mask


@lru_cache(maxsize=1 << 16)
def table_support(table: int, num_vars: int) -> int:
    """Bitmask of the variables a raw truth table actually depends on."""
    mask = 0
    for position in range(num_vars):
        low = _cofactor_mask(num_vars, position)
        if (table & low) != ((table >> (1 << position)) & low):
            mask |= 1 << position
    return mask


@lru_cache(maxsize=1 << 16)
def project_table(table: int, num_vars: int, support_mask: int) -> int:
    """Project a truth table onto the variables named by ``support_mask``.

    Variables outside the mask are removed by keeping their negative
    cofactor (they must be don't-cares for the projection to preserve the
    function).  Removal proceeds from the highest position down so lower
    positions stay valid while the table shrinks.
    """
    for position in range(num_vars - 1, -1, -1):
        if (support_mask >> position) & 1:
            continue
        block = 1 << position
        chunk_mask = (1 << block) - 1
        rebuilt, shift, rest = 0, 0, table
        while rest:
            rebuilt |= (rest & chunk_mask) << shift
            rest >>= block * 2
            shift += block
        table = rebuilt
    return table


@lru_cache(maxsize=1 << 16)
def _expand_at_positions(table: int, insert_positions: tuple[int, ...]) -> int:
    """Insert don't-care variables at the given (ascending) positions.

    Each insertion at position ``p`` splits the table into ``2**p``-bit
    chunks and duplicates every chunk, which is equivalent to the classical
    per-minterm re-indexing but runs in O(chunks) big-int operations.
    """
    for position in insert_positions:
        block = 1 << position
        chunk_mask = (1 << block) - 1
        rebuilt, shift, rest = 0, 0, table
        while rest:
            chunk = rest & chunk_mask
            rebuilt |= (chunk | (chunk << block)) << shift
            rest >>= block
            shift += block * 2
        table = rebuilt
    return table


def _expand_table(table: int, leaves: tuple[int, ...], merged: tuple[int, ...]) -> int:
    """Re-express ``table`` (over ``leaves``) over the superset ``merged``."""
    if leaves == merged:
        return table
    inserts = []
    leaf_index = 0
    for position, leaf in enumerate(merged):
        if leaf_index < len(leaves) and leaves[leaf_index] == leaf:
            leaf_index += 1
        else:
            inserts.append(position)
    return _expand_at_positions(table, tuple(inserts))


def _merge_leaves(a: tuple[int, ...], b: tuple[int, ...], limit: int) -> tuple[int, ...] | None:
    """Sorted union of two leaf sets, or ``None`` if it exceeds ``limit``."""
    merged = sorted(set(a) | set(b))
    if len(merged) > limit:
        return None
    return tuple(merged)


def enumerate_cuts(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> dict[int, list[Cut]]:
    """Enumerate priority cuts (with functions) for every node of the AIG.

    Returns a dictionary mapping node index to its cut list; the first cut of
    every AND node is always available (the cut formed by its two fanins), and
    the trivial cut ``{node}`` is included for use as a leaf of larger cuts
    but never matched on its own.
    """
    if max_inputs < 2 or max_inputs > 6:
        raise ValueError("max_inputs must be between 2 and 6")
    if cut_limit < 1:
        raise ValueError("cut_limit must be at least 1")

    cuts: dict[int, list[Cut]] = {}
    # Constant node and primary inputs only have their trivial cut.
    cuts[0] = [Cut((0,), 0b10, 0b1)]  # unused in practice
    for pi in aig.pi_nodes():
        cuts[pi] = [Cut((pi,), 0b10, 0b1)]

    fanout = aig.fanout_counts()

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        node0, node1 = lit_node(f0), lit_node(f1)
        comp0, comp1 = lit_is_complemented(f0), lit_is_complemented(f1)
        candidates: dict[tuple[int, ...], int] = {}

        for cut0 in cuts[node0]:
            for cut1 in cuts[node1]:
                merged = _merge_leaves(cut0.leaves, cut1.leaves, max_inputs)
                if merged is None:
                    continue
                full = _FULL_MASK[len(merged)]
                t0 = _expand_table(cut0.table, cut0.leaves, merged)
                t1 = _expand_table(cut1.table, cut1.leaves, merged)
                if comp0:
                    t0 = ~t0 & full
                if comp1:
                    t1 = ~t1 & full
                table = t0 & t1
                existing = candidates.get(merged)
                if existing is None:
                    candidates[merged] = table
                # Identical leaf sets always produce the same function, so no
                # merge policy is needed beyond first-wins.

        ranked = sorted(
            candidates.items(),
            key=lambda item: (len(item[0]), sum(fanout[l] == 1 for l in item[0])),
        )
        node_cuts = [
            Cut(leaves, table, table_support(table, len(leaves)))
            for leaves, table in ranked[:cut_limit]
        ]
        # The trivial cut participates in fanout cut merging.
        node_cuts.append(Cut((node,), 0b10, 0b1))
        cuts[node] = node_cuts

    return cuts
