"""K-feasible priority-cut enumeration with cut functions.

A *cut* of an AIG node is a set of nodes (the leaves) such that every path
from a primary input to the node passes through a leaf.  Cut-based technology
mapping enumerates, for every node, a small set of K-feasible cuts (at most
``cut_limit`` cuts with at most ``max_inputs`` leaves each), computes the
Boolean function of the node in terms of the cut leaves, and matches that
function against the library.

Cut functions are kept as raw integer truth tables (at most ``2**6`` bits for
six-input cuts) for speed; the matcher converts them to
:class:`~repro.logic.truth_table.TruthTable` keys on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synthesis.aig import Aig, lit_is_complemented, lit_node

#: Default mapping parameters, chosen to cover the six-input cells (F42..F45)
#: of the library while keeping enumeration tractable in pure Python.
DEFAULT_MAX_INPUTS = 6
DEFAULT_CUT_LIMIT = 8

_FULL_MASK = {n: (1 << (1 << n)) - 1 for n in range(0, 7)}

# Truth-table columns of the projection functions x0..x5 over 6 variables,
# restricted on demand to fewer variables by masking.
_VAR_COLUMNS_6 = []
for _i in range(6):
    _block = 1 << _i
    _chunk = ((1 << _block) - 1) << _block
    _period = _block * 2
    _bits = 0
    for _start in range(0, 64, _period):
        _bits |= _chunk << _start
    _VAR_COLUMNS_6.append(_bits)


@dataclass(frozen=True)
class Cut:
    """One cut: sorted leaf nodes and the node function over those leaves."""

    leaves: tuple[int, ...]
    table: int

    @property
    def size(self) -> int:
        return len(self.leaves)


def _expand_table(table: int, leaves: tuple[int, ...], merged: tuple[int, ...]) -> int:
    """Re-express ``table`` (over ``leaves``) over the superset ``merged``."""
    if leaves == merged:
        return table
    positions = [merged.index(leaf) for leaf in leaves]
    size = 1 << len(merged)
    result = 0
    for minterm in range(size):
        old_index = 0
        for old_pos, new_pos in enumerate(positions):
            if (minterm >> new_pos) & 1:
                old_index |= 1 << old_pos
        if (table >> old_index) & 1:
            result |= 1 << minterm
    return result


def _merge_leaves(a: tuple[int, ...], b: tuple[int, ...], limit: int) -> tuple[int, ...] | None:
    """Sorted union of two leaf sets, or ``None`` if it exceeds ``limit``."""
    merged = sorted(set(a) | set(b))
    if len(merged) > limit:
        return None
    return tuple(merged)


def enumerate_cuts(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> dict[int, list[Cut]]:
    """Enumerate priority cuts (with functions) for every node of the AIG.

    Returns a dictionary mapping node index to its cut list; the first cut of
    every AND node is always available (the cut formed by its two fanins), and
    the trivial cut ``{node}`` is included for use as a leaf of larger cuts
    but never matched on its own.
    """
    if max_inputs < 2 or max_inputs > 6:
        raise ValueError("max_inputs must be between 2 and 6")
    if cut_limit < 1:
        raise ValueError("cut_limit must be at least 1")

    cuts: dict[int, list[Cut]] = {}
    # Constant node and primary inputs only have their trivial cut.
    cuts[0] = [Cut((0,), 0b10)]  # unused in practice
    for pi in aig.pi_nodes():
        cuts[pi] = [Cut((pi,), 0b10)]

    fanout = aig.fanout_counts()

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        node0, node1 = lit_node(f0), lit_node(f1)
        comp0, comp1 = lit_is_complemented(f0), lit_is_complemented(f1)
        candidates: dict[tuple[int, ...], int] = {}

        for cut0 in cuts[node0]:
            for cut1 in cuts[node1]:
                merged = _merge_leaves(cut0.leaves, cut1.leaves, max_inputs)
                if merged is None:
                    continue
                full = _FULL_MASK[len(merged)]
                t0 = _expand_table(cut0.table, cut0.leaves, merged)
                t1 = _expand_table(cut1.table, cut1.leaves, merged)
                if comp0:
                    t0 = ~t0 & full
                if comp1:
                    t1 = ~t1 & full
                table = t0 & t1
                existing = candidates.get(merged)
                if existing is None:
                    candidates[merged] = table
                # Identical leaf sets always produce the same function, so no
                # merge policy is needed beyond first-wins.

        ranked = sorted(
            candidates.items(),
            key=lambda item: (len(item[0]), sum(fanout[l] == 1 for l in item[0])),
        )
        node_cuts = [Cut(leaves, table) for leaves, table in ranked[:cut_limit]]
        # The trivial cut participates in fanout cut merging.
        node_cuts.append(Cut((node,), 0b10))
        cuts[node] = node_cuts

    return cuts
