"""K-feasible priority-cut enumeration with cut functions.

A *cut* of an AIG node is a set of nodes (the leaves) such that every path
from a primary input to the node passes through a leaf.  Cut-based technology
mapping enumerates, for every node, a small set of K-feasible cuts (at most
``cut_limit`` cuts with at most ``max_inputs`` leaves each), computes the
Boolean function of the node in terms of the cut leaves, and matches that
function against the library.

Two implementations share one contract:

* :func:`enumerate_cuts_arrays` -- the **vectorized kernel path**.  Per-node
  candidate cuts live in numpy arrays (:class:`CutSet`): leaf tuples are
  merged with batched sorts, truth tables are expanded and AND-ed as uint64
  words across all candidate cuts of a whole AIG level at once
  (:mod:`repro.synthesis.cut_kernels`), and leaf-set deduplication is a
  single signature sort instead of a per-pair dict.  Every K<=6 cut function
  fits one 64-bit word, which is what makes the batching exact.
* :func:`enumerate_cuts_reference` -- the original pure-Python enumeration,
  retained as the oracle; the property tests assert cut-for-cut agreement.

:func:`enumerate_cuts` keeps the historical dict-of-:class:`Cut` interface on
top of the vectorized path (and memoizes the underlying :class:`CutSet` on
the AIG, so e.g. the three library-mapping jobs of one benchmark enumerate
once).  Cut functions are raw integer truth tables (at most ``2**6`` bits);
the matcher converts them to :class:`~repro.logic.truth_table.TruthTable`
keys on demand.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.synthesis.aig import Aig, lit_is_complemented, lit_node
from repro.synthesis.aig_array import AigArrays, aig_arrays
from repro.synthesis.cut_kernels import (
    FULL_BY_SIZE,
    batch_support,
    expand_tables,
    project_table_batch,
)

#: Default mapping parameters, chosen to cover the six-input cells (F42..F45)
#: of the library while keeping enumeration tractable.
DEFAULT_MAX_INPUTS = 6
DEFAULT_CUT_LIMIT = 8

_FULL_MASK = {n: (1 << (1 << n)) - 1 for n in range(0, 7)}

#: Padding value for unused leaf slots in the array representation; larger
#: than any node id so batched sorts push padding to the right.
LEAF_SENTINEL = np.int32(2**31 - 1)

# Truth-table columns of the projection functions x0..x5 over 6 variables,
# restricted on demand to fewer variables by masking.
_VAR_COLUMNS_6 = []
for _i in range(6):
    _block = 1 << _i
    _chunk = ((1 << _block) - 1) << _block
    _period = _block * 2
    _bits = 0
    for _start in range(0, 64, _period):
        _bits |= _chunk << _start
    _VAR_COLUMNS_6.append(_bits)


@dataclass(frozen=True)
class Cut:
    """One cut: sorted leaf nodes and the node function over those leaves.

    ``support`` is the bitmask of leaf positions the function actually
    depends on, precomputed at enumeration time so that downstream matching
    never has to rederive it (``-1`` means "not computed yet"; use
    :meth:`support_mask`).
    """

    leaves: tuple[int, ...]
    table: int
    support: int = field(default=-1, compare=False)

    @property
    def size(self) -> int:
        return len(self.leaves)

    def support_mask(self) -> int:
        """Bitmask of leaf positions in the true support of the cut function."""
        if self.support >= 0:
            return self.support
        return table_support(self.table, len(self.leaves))


@lru_cache(maxsize=None)
def _cofactor_mask(num_vars: int, position: int) -> int:
    """Bits of the negative cofactor of variable ``position`` (periodic mask)."""
    block = 1 << position
    chunk = (1 << block) - 1
    mask = 0
    for start in range(0, 1 << num_vars, block * 2):
        mask |= chunk << start
    return mask


@lru_cache(maxsize=1 << 16)
def table_support(table: int, num_vars: int) -> int:
    """Bitmask of the variables a raw truth table actually depends on."""
    mask = 0
    for position in range(num_vars):
        low = _cofactor_mask(num_vars, position)
        if (table & low) != ((table >> (1 << position)) & low):
            mask |= 1 << position
    return mask


@lru_cache(maxsize=1 << 16)
def project_table(table: int, num_vars: int, support_mask: int) -> int:
    """Project a truth table onto the variables named by ``support_mask``.

    Variables outside the mask are removed by keeping their negative
    cofactor (they must be don't-cares for the projection to preserve the
    function).  Removal proceeds from the highest position down so lower
    positions stay valid while the table shrinks.
    """
    for position in range(num_vars - 1, -1, -1):
        if (support_mask >> position) & 1:
            continue
        block = 1 << position
        chunk_mask = (1 << block) - 1
        rebuilt, shift, rest = 0, 0, table
        while rest:
            rebuilt |= (rest & chunk_mask) << shift
            rest >>= block * 2
            shift += block
        table = rebuilt
    return table


@lru_cache(maxsize=1 << 16)
def _expand_at_positions(table: int, insert_positions: tuple[int, ...]) -> int:
    """Insert don't-care variables at the given (ascending) positions.

    Each insertion at position ``p`` splits the table into ``2**p``-bit
    chunks and duplicates every chunk, which is equivalent to the classical
    per-minterm re-indexing but runs in O(chunks) big-int operations.
    """
    for position in insert_positions:
        block = 1 << position
        chunk_mask = (1 << block) - 1
        rebuilt, shift, rest = 0, 0, table
        while rest:
            chunk = rest & chunk_mask
            rebuilt |= (chunk | (chunk << block)) << shift
            rest >>= block
            shift += block * 2
        table = rebuilt
    return table


#: The bounded per-process caches of the cut pipeline, in one place so
#: :func:`clear_cut_caches` (called by the experiment engine between job
#: batches) can release them without reaching into function attributes.
#: Other modules (e.g. the SOP cache of :mod:`repro.synthesis.optimize`)
#: join via :func:`register_cut_cache`.
_CUT_PIPELINE_CACHES: list = [table_support, project_table, _expand_at_positions]


def register_cut_cache(cached) -> None:
    """Register an ``lru_cache``-decorated helper with the cache clearer."""
    _CUT_PIPELINE_CACHES.append(cached)


def clear_cut_caches() -> None:
    """Drop the memoized table transforms and their high-water memory.

    The caches are already bounded (``1 << 16`` entries each), but a long
    sequence of large-benchmark runs in one process would otherwise keep
    several full caches of big-int tables alive indefinitely; the experiment
    engine calls this hook between job batches.  Per-AIG :class:`CutSet`
    memos are unaffected -- they are garbage-collected with their AIG.
    """
    for cached in _CUT_PIPELINE_CACHES:
        cached.cache_clear()


def cut_cache_sizes() -> dict[str, int]:
    """Current entry counts of the registered caches, by name.

    Diagnostic counterpart of :func:`clear_cut_caches` -- the engine's
    worker-cache regression test asserts these stay bounded across job
    batches.  Registered entries expose ``lru_cache``'s ``cache_info``, a
    custom scalar ``cache_size`` hook, or a ``cache_sizes`` hook returning a
    per-memo breakdown (e.g. the matcher memo sweeper reporting its
    positions / match / match-table memos separately); entries with none
    count as zero.
    """
    sizes: dict[str, int] = {}
    for cached in _CUT_PIPELINE_CACHES:
        name = getattr(cached, "__name__", type(cached).__name__)
        info = getattr(cached, "cache_info", None)
        if info is not None:
            sizes[name] = int(info().currsize)
            continue
        breakdown = getattr(cached, "cache_sizes", None)
        if breakdown is not None:
            for sub_name, size in breakdown().items():
                sizes[sub_name] = int(size)
            continue
        size_of = getattr(cached, "cache_size", None)
        sizes[name] = int(size_of()) if size_of is not None else 0
    return sizes


# -- per-CutSet memo registry -------------------------------------------------

#: Live :class:`CutSet` objects that have lazily attached memos (projected
#: tables, match/function tables).  The memos normally die with their AIG,
#: but a long-lived worker process pins optimized AIGs across jobs, so the
#: engine's between-batch sweep also walks this registry; a ``WeakSet`` keeps
#: the registry itself from pinning anything.
_CUTSET_MEMOS: "weakref.WeakValueDictionary[int, CutSet]" = (
    weakref.WeakValueDictionary()
)

#: The lazily attached per-:class:`CutSet` attributes the sweeper owns.
_CUTSET_MEMO_FIELDS = ("_match_tables", "_function_tables", "_projected")


def _track_cutset_memo(cut_set: "CutSet") -> None:
    """Register a cut set that grew a lazily attached memo.

    Keyed by ``id`` because cut sets (frozen dataclasses over arrays) are
    unhashable; the weak values keep the registry from pinning them and drop
    the entry when the cut set dies.
    """
    _CUTSET_MEMOS[id(cut_set)] = cut_set


class _CutSetMemoSweeper:
    """Folds the per-:class:`CutSet` memos into the cut-cache registry.

    ``cache_clear`` drops the attached match/function/projected-table memos
    of every live cut set; ``cache_sizes`` reports how many entries they
    currently hold (the worker-footprint regression test reads these through
    :func:`cut_cache_sizes`).
    """

    __name__ = "cutset_memos"

    def cache_clear(self) -> None:
        for cut_set in list(_CUTSET_MEMOS.values()):
            for field_name in _CUTSET_MEMO_FIELDS:
                cut_set.__dict__.pop(field_name, None)

    def cache_size(self) -> int:
        total = 0
        for cut_set in list(_CUTSET_MEMOS.values()):
            for field_name in _CUTSET_MEMO_FIELDS:
                value = cut_set.__dict__.get(field_name)
                if value is None:
                    continue
                total += len(value) if isinstance(value, dict) else 1
        return total


register_cut_cache(_CutSetMemoSweeper())


@lru_cache(maxsize=1 << 16)
def _expand_table(table: int, leaves: tuple[int, ...], merged: tuple[int, ...]) -> int:
    """Re-express ``table`` (over ``leaves``) over the superset ``merged``."""
    if leaves == merged:
        return table
    inserts = []
    leaf_index = 0
    for position, leaf in enumerate(merged):
        if leaf_index < len(leaves) and leaves[leaf_index] == leaf:
            leaf_index += 1
        else:
            inserts.append(position)
    return _expand_at_positions(table, tuple(inserts))


_CUT_PIPELINE_CACHES.append(_expand_table)


def _merge_leaves(a: tuple[int, ...], b: tuple[int, ...], limit: int) -> tuple[int, ...] | None:
    """Sorted union of two leaf sets, or ``None`` if it exceeds ``limit``."""
    merged = sorted(set(a) | set(b))
    if len(merged) > limit:
        return None
    return tuple(merged)


def _validate_parameters(max_inputs: int, cut_limit: int) -> None:
    if max_inputs < 2 or max_inputs > 6:
        raise ValueError("max_inputs must be between 2 and 6")
    if cut_limit < 1:
        raise ValueError("cut_limit must be at least 1")


# -- array representation -----------------------------------------------------


@dataclass(frozen=True)
class CutSet:
    """Struct-of-arrays priority-cut storage for one AIG.

    Every node owns up to ``cut_limit + 1`` slots (ranked cuts followed by
    the trivial ``{node}`` cut).  ``leaves`` rows are ascending node ids
    padded with :data:`LEAF_SENTINEL`; ``table`` holds the cut function as a
    64-bit word over ``size`` variables; ``support`` is the true-support
    bitmask of that function.
    """

    max_inputs: int
    cut_limit: int
    count: np.ndarray  #: (nodes,) int64 -- valid slots per node (incl. trivial)
    leaves: np.ndarray  #: (nodes, slots, K) int32
    size: np.ndarray  #: (nodes, slots) int8
    table: np.ndarray  #: (nodes, slots) uint64
    support: np.ndarray  #: (nodes, slots) uint8

    def as_python(self) -> tuple[list, list, list, list, list]:
        """The cut arrays as nested Python lists (memoized).

        Scalar-heavy consumers -- the mapping DP and the rewrite pass -- read
        one element at a time, where plain list indexing is several times
        cheaper than numpy scalar access; ``tolist`` converts the whole block
        in one C pass.  Returns ``(count, size, leaves, table, support)``.
        """
        cached = self.__dict__.get("_python_view")
        if cached is None:
            cached = (
                self.count.tolist(),
                self.size.tolist(),
                self.leaves.tolist(),
                self.table.tolist(),
                self.support.tolist(),
            )
            object.__setattr__(self, "_python_view", cached)
        return cached

    def projected_tables(self) -> np.ndarray:
        """Support-projected cut tables as a ``(nodes, slots)`` uint64 column.

        Every valid slot's table is projected onto its true support
        (:func:`repro.synthesis.cut_kernels.project_table_batch`) in one
        batched pass -- full-support cuts project to themselves -- and the
        column is memoized on the cut set, so the batched matching pipeline
        of every (matcher, policy) pair reads the same array.  Invalid slots
        hold zero.
        """
        cached = self.__dict__.get("_projected")
        if cached is None:
            cached = np.zeros(self.table.shape, dtype=np.uint64)
            valid = (
                np.arange(self.table.shape[1], dtype=np.int64)[None, :]
                < self.count[:, None]
            )
            rows = np.nonzero(valid)
            cached[rows] = project_table_batch(self.table[rows], self.support[rows])
            cached.flags.writeable = False
            object.__setattr__(self, "_projected", cached)
            _track_cutset_memo(self)
        return cached

    def cuts_of(self, node: int) -> list[Cut]:
        """The node's cuts as :class:`Cut` objects (ranked, trivial last)."""
        cuts = []
        for slot in range(int(self.count[node])):
            width = int(self.size[node, slot])
            cuts.append(
                Cut(
                    tuple(int(leaf) for leaf in self.leaves[node, slot, :width]),
                    int(self.table[node, slot]),
                    int(self.support[node, slot]),
                )
            )
        return cuts

    def to_dict(self, arrays: AigArrays) -> dict[int, list[Cut]]:
        """The historical ``enumerate_cuts`` view (same node order)."""
        result: dict[int, list[Cut]] = {0: self.cuts_of(0)}
        for pi in arrays.pi_nodes.tolist():
            result[pi] = self.cuts_of(pi)
        for node in arrays.and_nodes.tolist():
            result[node] = self.cuts_of(node)
        return result


#: Below this many candidate cut pairs per level (nodes per level times the
#: squared per-node cut count), per-operation dispatch overhead beats the
#: batching win and the scalar path is used instead (deep, narrow graphs such
#: as ripple-carry chains at small K).  Measured crossover on this container
#: is ~190 at the rewrite pass's K=4 / cut_limit=4 shape: C6288 (497
#: pairs/level) enumerates 1.8x faster batched while add-64 (111) and C1355
#: (181) stay faster scalar.
VECTOR_PAIRS_THRESHOLD = 192


def enumerate_cuts_arrays(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> CutSet:
    """Enumerate priority cuts for every node into a :class:`CutSet`.

    Dispatches on batch width: wide graphs run the batched uint64 kernels
    (:func:`enumerate_cuts_vectorized`), deep narrow graphs -- where numpy
    dispatch overhead exceeds the batching win -- fall back to the scalar
    reference loop and pack its result.  Both produce identical cuts.
    """
    _validate_parameters(max_inputs, cut_limit)
    arrays = aig_arrays(aig)
    groups = len(arrays.level_groups)
    pairs_per_level = (
        arrays.num_ands / groups * (cut_limit + 1) ** 2 if groups else 0.0
    )
    if pairs_per_level < VECTOR_PAIRS_THRESHOLD:
        return enumerate_cuts_scalar(aig, max_inputs=max_inputs, cut_limit=cut_limit)
    return enumerate_cuts_vectorized(aig, max_inputs=max_inputs, cut_limit=cut_limit)


def _cut_set_from_dict(
    cuts: dict[int, list[Cut]], arrays: AigArrays, max_inputs: int, cut_limit: int
) -> CutSet:
    """Pack a dict-of-:class:`Cut` enumeration into the array representation."""
    num_nodes = arrays.num_nodes
    slots = cut_limit + 1
    count = np.zeros(num_nodes, dtype=np.int64)
    leaves = np.full((num_nodes, slots, max_inputs), LEAF_SENTINEL, dtype=np.int32)
    size = np.zeros((num_nodes, slots), dtype=np.int8)
    table = np.zeros((num_nodes, slots), dtype=np.uint64)
    support = np.zeros((num_nodes, slots), dtype=np.uint8)
    for node, node_cuts in cuts.items():
        count[node] = len(node_cuts)
        for slot, cut in enumerate(node_cuts):
            width = len(cut.leaves)
            leaves[node, slot, :width] = cut.leaves
            size[node, slot] = width
            table[node, slot] = cut.table
            support[node, slot] = cut.support_mask()
    return CutSet(
        max_inputs=max_inputs,
        cut_limit=cut_limit,
        count=count,
        leaves=leaves,
        size=size,
        table=table,
        support=support,
    )


def enumerate_cuts_scalar(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> CutSet:
    """Tuned scalar enumeration straight into the array representation.

    The narrow-graph arm of :func:`enumerate_cuts_arrays`: the same
    algorithm as :func:`enumerate_cuts_reference` -- fanin-major pair order,
    first-wins leaf-set dedup, stable ``(size, single-fanout leaves)``
    ranking -- but with the per-pair overhead stripped (plain tuple/dict
    state instead of :class:`Cut` objects, table expansion skipped for
    aligned leaf sets, duplicate leaf sets skipped before any table work)
    and the result scattered into the :class:`CutSet` arrays in one bulk
    numpy pass instead of per-slot assignments.  Produces bit-identical
    cuts; the property tests compare all three enumerators cut for cut.
    """
    _validate_parameters(max_inputs, cut_limit)
    arrays = aig_arrays(aig)
    num_nodes = arrays.num_nodes
    fanin0 = arrays.fanin0.tolist()
    fanin1 = arrays.fanin1.tolist()
    fanout = arrays.fanout.tolist()
    single = [count == 1 for count in fanout]

    trivial_table = 0b10
    # Per-cut state: (leaves tuple, leaf set, single-fanout count, table).
    # The set and the ranking count are computed once per kept cut instead
    # of once per fanin pair.
    cuts: list[list[tuple[tuple[int, ...], set[int], int, int]] | None] = (
        [None] * num_nodes
    )
    cuts[0] = [((0,), {0}, int(single[0]), trivial_table)]
    for pi in arrays.pi_nodes.tolist():
        cuts[pi] = [((pi,), {pi}, int(single[pi]), trivial_table)]

    owners: list[int] = []
    slots_of: list[int] = []
    sizes_flat: list[int] = []
    tables_flat: list[int] = []
    supports_flat: list[int] = []
    rows: list[tuple[int, ...]] = []
    counts = [0] * num_nodes

    pad = (int(LEAF_SENTINEL),) * max_inputs
    expand = _expand_table
    support_of = table_support
    full_mask = _FULL_MASK

    for node in arrays.and_nodes.tolist():
        f0 = fanin0[node]
        f1 = fanin1[node]
        comp0 = f0 & 1
        comp1 = f1 & 1
        list0 = cuts[f0 >> 1]
        list1 = cuts[f1 >> 1]
        # First-wins dedup on the leaf set only; tables are computed after
        # ranking, for the kept cuts alone (the ranking key never looks at
        # the table, and the first pair producing a leaf set is recorded, so
        # the kept tables are exactly the ones the eager loop would keep).
        # Keys are materialized at insertion as plain tuples -- sorting them
        # natively with the insertion index as tiebreaker reproduces the
        # stable (size, single-fanout leaves) ranking without a key lambda.
        seen: set[tuple[int, ...]] = set()
        keyed: list[tuple] = []
        for leaves0, set0, singles0, table0 in list0:
            for leaves1, set1, singles1, table1 in list1:
                if set1 <= set0:
                    merged = leaves0
                    merged_set = set0
                    singles = singles0
                elif set0 <= set1:
                    merged = leaves1
                    merged_set = set1
                    singles = singles1
                else:
                    merged_set = set0 | set1
                    if len(merged_set) > max_inputs:
                        continue
                    merged = tuple(sorted(merged_set))
                    singles = sum(map(single.__getitem__, merged))
                if merged in seen:
                    continue  # identical leaf sets produce the same function
                seen.add(merged)
                keyed.append(
                    (
                        len(merged),
                        singles,
                        len(keyed),
                        merged,
                        merged_set,
                        (leaves0, table0, leaves1, table1),
                    )
                )

        keyed.sort()
        node_cuts = []
        for _, singles, _, merged, merged_set, pair in keyed[:cut_limit]:
            leaves0, table0, leaves1, table1 = pair
            full = full_mask[len(merged)]
            t0 = table0 if leaves0 == merged else expand(table0, leaves0, merged)
            t1 = table1 if leaves1 == merged else expand(table1, leaves1, merged)
            if comp0:
                t0 = ~t0 & full
            if comp1:
                t1 = ~t1 & full
            node_cuts.append((merged, merged_set, singles, t0 & t1))
        node_cuts.append(((node,), {node}, int(single[node]), trivial_table))
        cuts[node] = node_cuts
        counts[node] = len(node_cuts)
        for slot, (leaves_t, _set, _singles, table) in enumerate(node_cuts):
            width = len(leaves_t)
            owners.append(node)
            slots_of.append(slot)
            sizes_flat.append(width)
            tables_flat.append(table)
            supports_flat.append(
                1 if width == 1 else support_of(table, width)
            )
            rows.append(leaves_t + pad[width:])

    slots = cut_limit + 1
    count = np.zeros(num_nodes, dtype=np.int64)
    leaves = np.full((num_nodes, slots, max_inputs), LEAF_SENTINEL, dtype=np.int32)
    size = np.zeros((num_nodes, slots), dtype=np.int8)
    table = np.zeros((num_nodes, slots), dtype=np.uint64)
    support = np.zeros((num_nodes, slots), dtype=np.uint8)

    initial = np.concatenate(([0], arrays.pi_nodes)).astype(np.int64)
    leaves[initial, 0, 0] = initial
    size[initial, 0] = 1
    table[initial, 0] = trivial_table
    support[initial, 0] = 1
    count[initial] = 1

    if owners:
        owner_index = np.asarray(owners, dtype=np.int64)
        slot_index = np.asarray(slots_of, dtype=np.int64)
        leaves[owner_index, slot_index] = np.asarray(rows, dtype=np.int32)
        size[owner_index, slot_index] = np.asarray(sizes_flat, dtype=np.int8)
        table[owner_index, slot_index] = np.asarray(tables_flat, dtype=np.uint64)
        support[owner_index, slot_index] = np.asarray(supports_flat, dtype=np.uint8)
        count[1:] = np.maximum(count[1:], np.bincount(owner_index, minlength=num_nodes)[1:])

    return CutSet(
        max_inputs=max_inputs,
        cut_limit=cut_limit,
        count=count,
        leaves=leaves,
        size=size,
        table=table,
        support=support,
    )


def enumerate_cuts_vectorized(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> CutSet:
    """Enumerate priority cuts for every node with the batched uint64 kernels.

    Bit-identical to :func:`enumerate_cuts_reference` (same cuts, same order,
    same tables): candidate pairs are generated in the same fanin-major
    order, deduplicated first-wins by leaf signature and stably ranked by
    ``(size, single-fanout leaves, first occurrence)``.
    """
    _validate_parameters(max_inputs, cut_limit)
    arrays = aig_arrays(aig)
    num_nodes = arrays.num_nodes
    slots = cut_limit + 1
    leaf_width = max_inputs

    count = np.zeros(num_nodes, dtype=np.int64)
    leaves = np.full((num_nodes, slots, leaf_width), LEAF_SENTINEL, dtype=np.int32)
    size = np.zeros((num_nodes, slots), dtype=np.int8)
    table = np.zeros((num_nodes, slots), dtype=np.uint64)
    support = np.zeros((num_nodes, slots), dtype=np.uint8)

    # Constant node and primary inputs carry only their trivial cut.
    initial = np.concatenate(([0], arrays.pi_nodes)).astype(np.int64)
    leaves[initial, 0, 0] = initial
    size[initial, 0] = 1
    table[initial, 0] = 2  # identity function of the single leaf
    support[initial, 0] = 1
    count[initial] = 1

    for group in arrays.level_groups:
        _enumerate_level(
            group, arrays, max_inputs, cut_limit, count, leaves, size, table, support
        )

    return CutSet(
        max_inputs=max_inputs,
        cut_limit=cut_limit,
        count=count,
        leaves=leaves,
        size=size,
        table=table,
        support=support,
    )


def _enumerate_level(
    nodes: np.ndarray,
    arrays: AigArrays,
    max_inputs: int,
    cut_limit: int,
    count: np.ndarray,
    leaves: np.ndarray,
    size: np.ndarray,
    table: np.ndarray,
    support: np.ndarray,
) -> None:
    """Compute the cut slots of every AND node of one level in one batch."""
    width = max_inputs
    fanin0 = arrays.fanin0[nodes]
    fanin1 = arrays.fanin1[nodes]
    node0 = fanin0 >> 1
    node1 = fanin1 >> 1
    comp0 = (fanin0 & 1).astype(bool)
    comp1 = (fanin1 & 1).astype(bool)
    cuts0 = count[node0]
    cuts1 = count[node1]

    # Candidate pairs in fanin-major order: pair p of a node is
    # (cut i0 = p // cuts1, cut i1 = p % cuts1), matching the reference's
    # nested loop, so "first occurrence" means the same thing on both paths.
    pairs_per_node = cuts0 * cuts1
    total = int(pairs_per_node.sum())
    if total == 0:
        return
    local = np.repeat(np.arange(nodes.shape[0]), pairs_per_node)
    starts = np.concatenate(([0], np.cumsum(pairs_per_node)[:-1]))
    within = np.arange(total) - np.repeat(starts, pairs_per_node)
    cuts1_rep = cuts1[local]
    index0 = within // cuts1_rep
    index1 = within - index0 * cuts1_rep

    source0 = node0[local]
    source1 = node1[local]
    leaves0 = leaves[source0, index0]
    leaves1 = leaves[source1, index1]

    # Sorted union of the two (already sorted, sentinel-padded) leaf rows:
    # sort, blank out duplicates, re-sort, keep the first K columns.
    merged_wide = np.concatenate([leaves0, leaves1], axis=1)
    merged_wide.sort(axis=1)
    duplicate = np.zeros(merged_wide.shape, dtype=bool)
    duplicate[:, 1:] = merged_wide[:, 1:] == merged_wide[:, :-1]
    merged_wide = np.where(duplicate, LEAF_SENTINEL, merged_wide)
    merged_wide.sort(axis=1)
    merged_size = (merged_wide != LEAF_SENTINEL).sum(axis=1)

    feasible = np.nonzero(merged_size <= width)[0]
    if feasible.size == 0:
        _finalize_level(nodes, np.zeros(nodes.shape[0], np.int64), count, leaves, size, table, support)
        return
    merged = np.ascontiguousarray(merged_wide[feasible, :width])
    merged_size = merged_size[feasible]
    local = local[feasible]

    # Signature dedup (first occurrence wins) across the whole level: one
    # stable unique over (node, leaf row) replaces the per-pair dict -- and
    # runs *before* any table work, so functions are only computed for the
    # distinct leaf sets (identical leaf sets always produce the same
    # function, exactly as on the reference path).
    signature = np.empty((feasible.size, width + 1), dtype=np.int32)
    signature[:, 0] = local
    signature[:, 1:] = merged
    _, first_index = np.unique(signature, axis=0, return_index=True)

    candidate_local = local[first_index]
    candidate_leaves = merged[first_index]
    candidate_size = merged_size[first_index]
    pair = feasible[first_index]
    pair_source0 = source0[pair]
    pair_source1 = source1[pair]
    pair_index0 = index0[pair]
    pair_index1 = index1[pair]
    leaves0 = leaves0[pair]
    leaves1 = leaves1[pair]

    # Position of every fanin-cut leaf inside the merged row, then the mask
    # of merged positions each sub-table occupies.
    size0 = size[pair_source0, pair_index0].astype(np.int64)
    size1 = size[pair_source1, pair_index1].astype(np.int64)
    positions0 = (candidate_leaves[:, None, :] < leaves0[:, :, None]).sum(axis=2)
    positions1 = (candidate_leaves[:, None, :] < leaves1[:, :, None]).sum(axis=2)
    columns = np.arange(width)[None, :]
    submask0 = np.where(columns < size0[:, None], 1 << positions0, 0).sum(axis=1)
    submask1 = np.where(columns < size1[:, None], 1 << positions1, 0).sum(axis=1)

    # Expand both fanin tables over the merged variables in one stacked pass,
    # complement as the edges dictate, AND, and clip to the table width.
    stacked = expand_tables(
        np.concatenate([table[pair_source0, pair_index0], table[pair_source1, pair_index1]]),
        np.concatenate([submask0, submask1]),
    )
    half = first_index.size
    full = FULL_BY_SIZE[candidate_size]
    zero = np.uint64(0)
    table0 = stacked[:half] ^ np.where(comp0[candidate_local], full, zero)
    table1 = stacked[half:] ^ np.where(comp1[candidate_local], full, zero)
    candidate_table = table0 & table1 & full

    # Ranking: stable by (size, number of single-fanout leaves, insertion
    # order), grouped per node -- the vectorized form of the reference's
    # stable sort over the insertion-ordered candidate dict.
    is_leaf = candidate_leaves != LEAF_SENTINEL
    fanout = arrays.fanout[np.where(is_leaf, candidate_leaves, 0)]
    weak = ((fanout == 1) & is_leaf).sum(axis=1)
    order = np.lexsort((first_index, weak, candidate_size, candidate_local))

    ranked_local = candidate_local[order]
    group_start = np.ones(ranked_local.shape[0], dtype=bool)
    group_start[1:] = ranked_local[1:] != ranked_local[:-1]
    start_positions = np.where(group_start, np.arange(ranked_local.shape[0]), 0)
    rank = np.arange(ranked_local.shape[0]) - np.maximum.accumulate(start_positions)
    keep = rank < cut_limit

    selected = order[keep]
    destination = nodes[candidate_local[selected]]
    slot = rank[keep]
    kept_tables = candidate_table[selected]
    kept_sizes = candidate_size[selected]
    leaves[destination, slot] = candidate_leaves[selected]
    size[destination, slot] = kept_sizes
    table[destination, slot] = kept_tables
    support[destination, slot] = batch_support(kept_tables, kept_sizes)

    per_node = np.bincount(candidate_local[selected], minlength=nodes.shape[0])
    _finalize_level(nodes, per_node, count, leaves, size, table, support)


def _finalize_level(
    nodes: np.ndarray,
    kept_per_node: np.ndarray,
    count: np.ndarray,
    leaves: np.ndarray,
    size: np.ndarray,
    table: np.ndarray,
    support: np.ndarray,
) -> None:
    """Append every node's trivial cut after its ranked cuts and set counts."""
    trivial_slot = kept_per_node
    leaves[nodes, trivial_slot, 0] = nodes
    size[nodes, trivial_slot] = 1
    table[nodes, trivial_slot] = 2
    support[nodes, trivial_slot] = 1
    count[nodes] = kept_per_node + 1


def cut_set_for(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> CutSet:
    """The (memoized) :class:`CutSet` of an AIG.

    The memo lives on the AIG instance keyed by its structural counts plus
    the enumeration parameters, so consumers sharing one subject graph --
    e.g. the three library jobs of a Table-3 benchmark, or the mapper after
    the rewrite pass already enumerated -- pay for enumeration once.  The
    memo is garbage-collected with the AIG.
    """
    _validate_parameters(max_inputs, cut_limit)
    structure = (aig.num_nodes, aig.num_pos)
    memo_structure, memo = aig.__dict__.get("_cut_sets", (None, None))
    if memo_structure != structure:
        memo = {}
        aig.__dict__["_cut_sets"] = (structure, memo)
    key = (max_inputs, cut_limit)
    cached = memo.get(key)
    if cached is None:
        cached = enumerate_cuts_arrays(aig, max_inputs=max_inputs, cut_limit=cut_limit)
        memo[key] = cached
    return cached


def enumerate_cuts(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> dict[int, list[Cut]]:
    """Enumerate priority cuts (with functions) for every node of the AIG.

    Returns a dictionary mapping node index to its cut list; the first cut of
    every AND node is always available (the cut formed by its two fanins), and
    the trivial cut ``{node}`` is included for use as a leaf of larger cuts
    but never matched on its own.  Runs on the vectorized kernel path; see
    :func:`enumerate_cuts_reference` for the retained pure-Python oracle.
    """
    cut_set = cut_set_for(aig, max_inputs=max_inputs, cut_limit=cut_limit)
    return cut_set.to_dict(aig_arrays(aig))


def enumerate_cuts_reference(
    aig: Aig,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    cut_limit: int = DEFAULT_CUT_LIMIT,
) -> dict[int, list[Cut]]:
    """Pure-Python reference enumeration (the pre-vectorization algorithm).

    Kept as the independent oracle for :func:`enumerate_cuts_arrays`; the
    hypothesis property tests assert cut-for-cut agreement between the two.
    """
    _validate_parameters(max_inputs, cut_limit)

    cuts: dict[int, list[Cut]] = {}
    # Constant node and primary inputs only have their trivial cut.
    cuts[0] = [Cut((0,), 0b10, 0b1)]  # unused in practice
    for pi in aig.pi_nodes():
        cuts[pi] = [Cut((pi,), 0b10, 0b1)]

    fanout = aig.fanout_counts()

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        node0, node1 = lit_node(f0), lit_node(f1)
        comp0, comp1 = lit_is_complemented(f0), lit_is_complemented(f1)
        candidates: dict[tuple[int, ...], int] = {}

        for cut0 in cuts[node0]:
            for cut1 in cuts[node1]:
                merged = _merge_leaves(cut0.leaves, cut1.leaves, max_inputs)
                if merged is None:
                    continue
                full = _FULL_MASK[len(merged)]
                t0 = _expand_table(cut0.table, cut0.leaves, merged)
                t1 = _expand_table(cut1.table, cut1.leaves, merged)
                if comp0:
                    t0 = ~t0 & full
                if comp1:
                    t1 = ~t1 & full
                table = t0 & t1
                existing = candidates.get(merged)
                if existing is None:
                    candidates[merged] = table
                # Identical leaf sets always produce the same function, so no
                # merge policy is needed beyond first-wins.

        ranked = sorted(
            candidates.items(),
            key=lambda item: (len(item[0]), sum(fanout[l] == 1 for l in item[0])),
        )
        node_cuts = [
            Cut(leaves, table, table_support(table, len(leaves)))
            for leaves, table in ranked[:cut_limit]
        ]
        # The trivial cut participates in fanout cut merging.
        node_cuts.append(Cut((node,), 0b10, 0b1))
        cuts[node] = node_cuts

    return cuts
