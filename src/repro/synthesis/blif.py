"""BLIF import / export.

BLIF (Berkeley Logic Interchange Format) is the netlist format used by SIS
and ABC; the paper's benchmark circuits circulate in this format.  The reader
builds an :class:`~repro.synthesis.aig.Aig` from the ``.names`` sum-of-product
covers; the writer emits either an AIG or a mapped circuit so that results
can be inspected with external tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.synthesis.aig import Aig, AigLiteral, CONST0, CONST1, lit_complement


class BlifParseError(ValueError):
    """Raised on malformed BLIF input."""


def _join_continuations(lines: Iterable[str]) -> list[str]:
    joined: list[str] = []
    buffer = ""
    for raw in lines:
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        joined.append(buffer + line)
        buffer = ""
    if buffer:
        joined.append(buffer)
    return joined


def read_blif(text: str, name: str | None = None) -> Aig:
    """Parse BLIF text into an AIG.

    Supports the combinational subset: ``.model``, ``.inputs``, ``.outputs``,
    ``.names`` (with multi-cube covers and the ``0``/``1``/``-`` input
    notation) and ``.end``.  Latches and subcircuits are rejected.
    """
    lines = _join_continuations(text.splitlines())
    model_name = name or "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    covers: dict[str, tuple[list[str], list[str], str]] = {}

    index = 0
    while index < len(lines):
        line = lines[index]
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            if len(tokens) > 1:
                model_name = tokens[1]
            index += 1
        elif keyword == ".inputs":
            inputs.extend(tokens[1:])
            index += 1
        elif keyword == ".outputs":
            outputs.extend(tokens[1:])
            index += 1
        elif keyword == ".names":
            signals = tokens[1:]
            if not signals:
                raise BlifParseError(".names with no signals")
            target = signals[-1]
            fanins = signals[:-1]
            cubes: list[str] = []
            output_value = "1"
            bare_rows = cube_rows = 0
            index += 1
            while index < len(lines) and not lines[index].startswith("."):
                row = lines[index].split()
                if len(row) == 1:
                    # Cube part omitted: a constant driver.  Zero-input
                    # ``.names`` covers are the common form, but tools also
                    # emit the bare output value under declared fanins
                    # (every input a don't-care), so accept both.
                    output_value = row[0]
                    cubes.append("-" * len(fanins))
                    bare_rows += 1
                elif len(row) == 2:
                    cubes.append(row[0])
                    output_value = row[1]
                    cube_rows += 1
                else:
                    raise BlifParseError(f"malformed cover row: {lines[index]!r}")
                index += 1
            if bare_rows and cube_rows:
                # A bare output value only means "constant driver"; mixed
                # with cube rows it is almost certainly a cube whose output
                # column was dropped, so keep rejecting that.
                raise BlifParseError(
                    f"cover of {target!r} mixes bare output-value rows with "
                    "cube rows"
                )
            covers[target] = (fanins, cubes, output_value)
        elif keyword == ".end":
            index += 1
        elif keyword in (".latch", ".subckt", ".gate"):
            raise BlifParseError(f"unsupported BLIF construct {keyword}")
        else:
            raise BlifParseError(f"unknown BLIF keyword {keyword!r}")

    aig = Aig(model_name)
    literals: dict[str, AigLiteral] = {}
    for input_name in inputs:
        literals[input_name] = aig.add_pi(input_name)

    def build_signal(signal: str, visiting: set[str]) -> AigLiteral:
        if signal in literals:
            return literals[signal]
        if signal not in covers:
            raise BlifParseError(f"signal {signal!r} is never defined")
        if signal in visiting:
            raise BlifParseError(f"combinational loop through {signal!r}")
        visiting.add(signal)
        fanins, cubes, output_value = covers[signal]
        fanin_literals = [build_signal(f, visiting) for f in fanins]
        visiting.remove(signal)

        if not fanins:
            literal = CONST1 if cubes and output_value == "1" else CONST0
            literals[signal] = literal
            return literal

        cube_literals: list[AigLiteral] = []
        for cube in cubes:
            if len(cube) != len(fanins):
                raise BlifParseError(
                    f"cube {cube!r} width does not match fanins of {signal!r}"
                )
            terms: list[AigLiteral] = []
            for value, fanin_literal in zip(cube, fanin_literals):
                if value == "1":
                    terms.append(fanin_literal)
                elif value == "0":
                    terms.append(lit_complement(fanin_literal))
                elif value == "-":
                    continue
                else:
                    raise BlifParseError(f"invalid cube character {value!r}")
            cube_literals.append(aig.and_many(terms) if terms else CONST1)
        literal = aig.or_many(cube_literals) if cube_literals else CONST0
        if output_value == "0":
            literal = lit_complement(literal)
        literals[signal] = literal
        return literal

    for output_name in outputs:
        aig.add_po(output_name, build_signal(output_name, set()))
    return aig


def read_blif_file(path: str | Path) -> Aig:
    """Read a BLIF file from disk."""
    path = Path(path)
    return read_blif(path.read_text(), name=path.stem)


def write_blif(aig: Aig) -> str:
    """Serialize an AIG to BLIF (one two-input AND cover per node)."""
    lines = [f".model {aig.name}"]
    if aig.pi_names:
        lines.append(".inputs " + " ".join(aig.pi_names))
    if aig.po_names:
        lines.append(".outputs " + " ".join(aig.po_names))

    def node_name(node: int) -> str:
        if aig.is_pi(node):
            return aig.pi_names[aig.pi_nodes().index(node)]
        return f"n{node}"

    def literal_expr(literal: AigLiteral) -> tuple[str, bool]:
        return node_name(literal >> 1), bool(literal & 1)

    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        n0, c0 = literal_expr(f0)
        n1, c1 = literal_expr(f1)
        lines.append(f".names {n0} {n1} n{node}")
        lines.append(f"{'0' if c0 else '1'}{'0' if c1 else '1'} 1")

    for name, literal in zip(aig.po_names, aig.po_literals):
        if literal == CONST0 or literal == CONST1:
            lines.append(f".names {name}")
            if literal == CONST1:
                lines.append("1")
            continue
        source, complemented = literal_expr(literal)
        lines.append(f".names {source} {name}")
        lines.append("0 1" if complemented else "1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"
