"""Normalized technology constants used by sizing, area and delay models.

All electrical quantities are normalized exactly as in the paper (Sec. 4):

* the on-resistance of a unit-width (W/L = 1) transistor is ``R = 1``;
* the gate capacitance of a unit-width transistor is ``C = 1`` and the
  drain/source parasitic capacitance of a device equals its gate capacitance
  (paper Sec. 4.3 assumption);
* area is the sum of W/L over all devices in a cell;
* delays are expressed in units of the technology-dependent intrinsic delay
  ``tau`` (the delay of a fanout-of-1 inverter without parasitics), with
  ``tau1 = 0.59 ps`` for CNTFETs and ``tau2 = 3.00 ps`` for 32 nm CMOS
  (Table 2, bottom row, citing [1]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """A normalized technology description.

    Attributes
    ----------
    name:
        Human-readable identifier (``"cntfet-32nm"`` or ``"cmos-32nm"``).
    ambipolar:
        True when devices have an in-field programmable polarity gate
        (ambipolar SB-CNTFETs).  Only ambipolar technologies may build
        CNTFET transmission gates and pass-transistor XOR switches.
    pn_resistance_ratio:
        On-resistance of a unit p-device divided by that of a unit n-device.
        1.0 for CNTFETs (equal electron/hole mobility), 2.0 for CMOS.
    weak_direction_factor:
        Multiplier on the on-resistance of a device conducting in its weak
        direction (an n-device passing a high level or a p-device passing a
        low level); the paper uses 2 [12].
    tau_ps:
        Technology-dependent intrinsic delay in picoseconds used to convert
        normalized delays to absolute delays.
    lithography_pitch_nm:
        Drawn feature pitch, for documentation purposes only.
    """

    name: str
    ambipolar: bool
    pn_resistance_ratio: float
    weak_direction_factor: float
    tau_ps: float
    lithography_pitch_nm: float

    @property
    def inverter_nmos_width(self) -> float:
        """Width of the unit inverter's pull-down device (always 1)."""
        return 1.0

    @property
    def inverter_pmos_width(self) -> float:
        """Width of the unit inverter's pull-up device.

        Sized so that the pull-up resistance equals the pull-down resistance:
        1 for CNTFETs, 2 for CMOS.
        """
        return self.pn_resistance_ratio

    @property
    def inverter_input_capacitance(self) -> float:
        """Input capacitance of the unit inverter (normalization base for logical effort)."""
        return self.inverter_nmos_width + self.inverter_pmos_width

    @property
    def inverter_area(self) -> float:
        """Normalized area of the unit inverter."""
        return self.inverter_nmos_width + self.inverter_pmos_width

    def n_width_for_resistance(self, resistance: float) -> float:
        """Width of an n-device achieving the given normalized on-resistance."""
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        return 1.0 / resistance

    def p_width_for_resistance(self, resistance: float) -> float:
        """Width of a p-device achieving the given normalized on-resistance."""
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        return self.pn_resistance_ratio / resistance


#: Ambipolar SB-CNTFET technology at a 32 nm lithography pitch (paper Sec. 4).
CNTFET_32NM = Technology(
    name="cntfet-32nm",
    ambipolar=True,
    pn_resistance_ratio=1.0,
    weak_direction_factor=2.0,
    tau_ps=0.59,
    lithography_pitch_nm=32.0,
)

#: 32 nm CMOS reference technology (paper Sec. 4, tau2 = 3.00 ps).
CMOS_32NM = Technology(
    name="cmos-32nm",
    ambipolar=False,
    pn_resistance_ratio=2.0,
    weak_direction_factor=2.0,
    tau_ps=3.00,
    lithography_pitch_nm=32.0,
)
