"""Device and technology models.

The paper evaluates three technologies:

* ambipolar Schottky-barrier CNTFETs whose polarity is set in-field through a
  polarity gate (Sec. 2), with equal electron and hole mobility
  (``R_n == R_p``), intrinsic delay ``tau1 = 0.59 ps``;
* the same devices used as pass transistors (worst-case on-resistance ``2R``
  when conducting in the weak direction);
* a 32 nm CMOS reference with a hole/electron mobility ratio of 2 and
  intrinsic delay ``tau2 = 3.00 ps``.

This subpackage holds the normalized technology constants
(:class:`~repro.devices.models.Technology`), the device primitives
(:class:`~repro.devices.transistor.Device`,
:class:`~repro.devices.transistor.Literal`) and the transmission-gate helper
(:mod:`repro.devices.transmission_gate`).
"""

from repro.devices.models import (
    CMOS_32NM,
    CNTFET_32NM,
    Technology,
)
from repro.devices.transistor import (
    ChannelType,
    Device,
    DeviceRole,
    Literal,
    PolarityControl,
)
from repro.devices.transmission_gate import transmission_gate_devices, pass_transistor_device

__all__ = [
    "Technology",
    "CNTFET_32NM",
    "CMOS_32NM",
    "ChannelType",
    "Device",
    "DeviceRole",
    "Literal",
    "PolarityControl",
    "transmission_gate_devices",
    "pass_transistor_device",
]
