"""Device-level primitives: literals, channel types and transistors.

An ambipolar CNTFET has four terminals: source, drain, the regular gate ``G``
that switches the channel, and the polarity gate ``PG`` that sets the device
polarity in-field (``PG = 0`` gives n-type behaviour, ``PG = 1`` gives p-type
behaviour, Fig. 1 of the paper).  A conventional MOSFET is modelled as the
same structure with the polarity permanently fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping


@dataclass(frozen=True)
class Literal:
    """A signal name with an optional complementation.

    ``Literal("A", negated=True)`` denotes the complemented signal ``A'``.
    Library cells receive both polarities of their inputs (each gate carries an
    output inverter, paper Sec. 4.3), so the two polarities are treated as two
    distinct physical wires with separate capacitive loads.
    """

    name: str
    negated: bool = False

    def complement(self) -> "Literal":
        return Literal(self.name, not self.negated)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            value = bool(assignment[self.name])
        except KeyError as exc:
            raise KeyError(f"no value provided for signal {self.name!r}") from exc
        return (not value) if self.negated else value

    def __str__(self) -> str:
        return f"{self.name}'" if self.negated else self.name


class ChannelType(Enum):
    """Electrical polarity of a device at a given moment."""

    N = "n"
    P = "p"


class PolarityControl:
    """How a device's polarity is determined.

    * ``PolarityControl.fixed(ChannelType.N)`` -- a conventional device or an
      ambipolar device whose polarity gate is tied to a rail.
    * ``PolarityControl.signal(Literal("B"))`` -- an ambipolar device whose
      polarity gate is driven by a logic signal: the device is n-type when the
      literal evaluates to 0 and p-type when it evaluates to 1.
    """

    __slots__ = ("_fixed", "_literal")

    def __init__(self, fixed: ChannelType | None, literal: Literal | None) -> None:
        if (fixed is None) == (literal is None):
            raise ValueError("exactly one of fixed / literal must be given")
        self._fixed = fixed
        self._literal = literal

    @staticmethod
    def fixed(channel: ChannelType) -> "PolarityControl":
        return PolarityControl(channel, None)

    @staticmethod
    def signal(literal: Literal) -> "PolarityControl":
        return PolarityControl(None, literal)

    @property
    def is_fixed(self) -> bool:
        return self._fixed is not None

    @property
    def fixed_channel(self) -> ChannelType | None:
        return self._fixed

    @property
    def literal(self) -> Literal | None:
        return self._literal

    def channel_type(self, assignment: Mapping[str, bool]) -> ChannelType:
        """Resolve the device polarity under an input assignment."""
        if self._fixed is not None:
            return self._fixed
        assert self._literal is not None
        return ChannelType.P if self._literal.evaluate(assignment) else ChannelType.N

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolarityControl):
            return NotImplemented
        return self._fixed == other._fixed and self._literal == other._literal

    def __hash__(self) -> int:
        return hash((self._fixed, self._literal))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._fixed is not None:
            return f"PolarityControl.fixed({self._fixed})"
        return f"PolarityControl.signal({self._literal})"


class DeviceRole(Enum):
    """Where a device sits in the cell."""

    PULL_UP = "pull-up"
    PULL_DOWN = "pull-down"
    PSEUDO_LOAD = "pseudo-load"
    OUTPUT_INVERTER = "output-inverter"


@dataclass(frozen=True)
class Device:
    """One transistor instance inside a cell netlist.

    ``gate`` may be ``None`` for an always-on device (the weak pull-up load of
    the pseudo families, whose gate is tied to the active rail).
    """

    role: DeviceRole
    gate: Literal | None
    polarity: PolarityControl
    width: float
    node_a: str
    node_b: str

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("device width must be positive")

    def channel_type(self, assignment: Mapping[str, bool]) -> ChannelType:
        return self.polarity.channel_type(assignment)

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        """Whether the channel conducts under the given input assignment.

        An n-type device conducts when its gate is high; a p-type device
        conducts when its gate is low.  Always-on loads conduct
        unconditionally.
        """
        channel = self.channel_type(assignment)
        if self.gate is None:
            return True
        gate_value = self.gate.evaluate(assignment)
        return gate_value if channel is ChannelType.N else not gate_value

    def passes_strongly(self, rail_value: bool, assignment: Mapping[str, bool]) -> bool:
        """Whether this device passes the given rail value without degradation.

        An n-type device passes a low level (0) at full swing but degrades a
        high level to ``VDD - VTn``; a p-type device passes a high level at
        full swing but degrades a low level to ``|VTp|`` (paper Sec. 3.1).
        """
        channel = self.channel_type(assignment)
        return channel is ChannelType.P if rail_value else channel is ChannelType.N

    def signal_loads(self) -> dict[Literal, float]:
        """Capacitive load this device presents to each distinct signal literal.

        Both the regular gate and the polarity gate contribute one gate
        capacitance proportional to the device width (the paper assumes equal
        capacitance for both gates, Sec. 4.3).
        """
        loads: dict[Literal, float] = {}
        if self.gate is not None:
            loads[self.gate] = loads.get(self.gate, 0.0) + self.width
        if not self.polarity.is_fixed:
            literal = self.polarity.literal
            assert literal is not None
            loads[literal] = loads.get(literal, 0.0) + self.width
        return loads
