"""Ambipolar CNTFET transmission gates and pass-transistor XOR switches.

A single ambipolar CNTFET with its regular gate on ``U`` and its polarity
gate on ``V`` conducts exactly when ``U xor V`` is true (it is n-type when
``V = 0`` and then needs ``U = 1``; it is p-type when ``V = 1`` and then needs
``U = 0``).  This is the pass-transistor XOR switch of Sec. 3.2.

Pairing that device with a second one controlled by the complemented signals
(``U'`` on the gate, ``V'`` on the polarity gate) yields a *transmission
gate* (Fig. 3): both devices conduct under the same condition ``U xor V``,
but at any moment one of them is n-type and the other p-type, so one of the
two always restores the passed level to full swing.
"""

from __future__ import annotations

from repro.devices.transistor import Device, DeviceRole, Literal, PolarityControl


def transmission_gate_devices(
    gate_literal: Literal,
    polarity_literal: Literal,
    width_each: float,
    node_a: str,
    node_b: str,
    role: DeviceRole,
) -> tuple[Device, Device]:
    """The two devices of a CNTFET transmission gate conducting on ``gate ^ polarity``.

    ``width_each`` is the width of each of the two parallel devices; the
    equivalent on-resistance of the pair is ``(2/3) / width_each`` because the
    strongly conducting device (resistance ``1/W``) is in parallel with the
    weak-direction one (resistance ``2/W``) -- paper Sec. 4.1.
    """
    first = Device(
        role=role,
        gate=gate_literal,
        polarity=PolarityControl.signal(polarity_literal),
        width=width_each,
        node_a=node_a,
        node_b=node_b,
    )
    second = Device(
        role=role,
        gate=gate_literal.complement(),
        polarity=PolarityControl.signal(polarity_literal.complement()),
        width=width_each,
        node_a=node_a,
        node_b=node_b,
    )
    return first, second


def pass_transistor_device(
    gate_literal: Literal,
    polarity_literal: Literal,
    width: float,
    node_a: str,
    node_b: str,
    role: DeviceRole,
) -> Device:
    """A single ambipolar pass transistor conducting on ``gate ^ polarity``.

    Its worst-case on-resistance is ``2 / width`` (weak-direction conduction),
    which is why the pass-transistor families size these devices twice as
    large as a plain transistor of the same drive (paper Sec. 4.2).
    """
    return Device(
        role=role,
        gate=gate_literal,
        polarity=PolarityControl.signal(polarity_literal),
        width=width,
        node_a=node_a,
        node_b=node_b,
    )
