"""Total dynamic + static power of a technology-mapped circuit.

The classic switched-capacitance model: normalized dynamic power is the sum
over nets of ``activity * capacitance`` where the activity comes from the
word-parallel signal-statistics engine (:mod:`repro.analysis.activity`) and
the capacitance of a net is

* the driving cell's switched output capacitance (output node plus half the
  internal stack parasitics, :class:`~repro.analysis.cell_power.PowerReport`),
* plus the input capacitance of every sink pin the net drives (the exact pin
  polarities resolved by the matcher and recorded as
  :attr:`MappedGate.leaf_loads`),
* plus one unit input capacitance per primary-output load (the paper's
  load convention, matching the timing model).

Normalized static power is the pseudo-family standing current: for every
gate whose cell carries the weak always-on load, the characterized mean
output-low current weighted by the probability that the pull-down network
conducts (which is the probability that the cell's Table-1 function is true
under the bound pins, i.e. the mapped node's signal probability,
complemented when the matcher used the inverted output polarity).  Static
families and the CMOS reference contribute exactly zero.

Everything is a pure function of ``(mapped circuit, activity report)``, so
power figures are bit-identical across runs, processes and cache replays --
the property the Pareto experiment lane relies on.

Units: normalized capacitance (multiples of the unit inverter input
capacitance) switched per cycle at ``Vdd = 1`` for dynamic power, normalized
current (``Vdd`` over the unit device resistance) for static power.  The two
are reported separately and as a sum; converting to watts would additionally
require the technology's absolute ``C``, ``Vdd`` and clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.activity import (
    DEFAULT_SEED,
    DEFAULT_VECTORS,
    ActivityReport,
    compute_activities,
)
from repro.core.library import GateLibrary
from repro.synthesis.aig import Aig
from repro.synthesis.mapper import MappedCircuit

#: Capacitance presented by one primary-output load (one unit inverter input).
PO_LOAD = 1.0


@dataclass(frozen=True)
class GatePower:
    """Per-instance power breakdown (dynamic charged at the output net)."""

    output: int
    cell_name: str
    activity: float
    net_capacitance: float
    dynamic: float
    static: float

    @property
    def total(self) -> float:
        return self.dynamic + self.static


@dataclass(frozen=True)
class NetlistPower:
    """Power report of one mapped circuit (see module docstring for units)."""

    name: str
    library_name: str
    #: Signal-statistics provenance (``"exact"`` / ``"monte-carlo"``, pattern
    #: count, seed) -- recorded so archived figures stay comparable.
    method: str
    patterns: int
    seed: int | None
    #: Dynamic power of the gate-driven nets.
    dynamic: float
    #: Dynamic power of the primary-input nets (sink pins they drive).
    input_dynamic: float
    #: Total standing pseudo-family current.
    static: float
    gates: tuple[GatePower, ...]

    @property
    def total(self) -> float:
        return self.dynamic + self.input_dynamic + self.static

    def statistics(self) -> dict[str, float]:
        return {
            "dynamic": self.dynamic,
            "input_dynamic": self.input_dynamic,
            "static": self.static,
            "total": self.total,
        }


def analyze_power(
    mapped: MappedCircuit,
    aig: Aig,
    library: GateLibrary,
    activities: ActivityReport | None = None,
    vectors: int = DEFAULT_VECTORS,
    seed: int = DEFAULT_SEED,
) -> NetlistPower:
    """Compute total dynamic + static power of a mapped circuit.

    ``aig`` is the subject graph the circuit was mapped from (node ids of
    the mapped netlist refer to it); ``activities`` may be shared across the
    mapping and the analysis -- when omitted it is computed with the default
    exact/Monte-Carlo policy and the given ``vectors``/``seed``.
    """
    if activities is None:
        activities = compute_activities(aig, vectors=vectors, seed=seed)
    activity = activities.activity
    probability = activities.probability

    cells = {cell.name: cell for cell in library.cells}

    # Sink loads per net: the recorded pin capacitances of every gate input,
    # plus one unit load per primary output.
    sink_load: dict[int, float] = {}
    for gate in mapped.gates:
        loads = gate.leaf_loads
        if len(loads) != len(gate.leaves):
            # Hand-built netlists may omit the pin bindings; fall back to the
            # cell's mean per-signal input capacitance.
            average = cells[gate.cell_name].power.input_capacitance_average
            loads = (average,) * len(gate.leaves)
        for leaf, cap in zip(gate.leaves, loads):
            sink_load[leaf] = sink_load.get(leaf, 0.0) + cap
    for node in mapped.po_nodes:
        sink_load[node] = sink_load.get(node, 0.0) + PO_LOAD

    gate_outputs = {gate.output for gate in mapped.gates}

    dynamic = 0.0
    static = 0.0
    per_gate: list[GatePower] = []
    for gate in sorted(mapped.gates, key=lambda g: g.output):
        cell = cells[gate.cell_name]
        report = cell.power
        net_capacitance = report.switched_capacitance + sink_load.get(
            gate.output, 0.0
        )
        net_activity = float(activity[gate.output])
        gate_dynamic = net_activity * net_capacitance
        probability_on = float(probability[gate.output])
        if gate.inverted:
            probability_on = 1.0 - probability_on
        gate_static = report.static_power(probability_on)
        dynamic += gate_dynamic
        static += gate_static
        per_gate.append(
            GatePower(
                output=gate.output,
                cell_name=gate.cell_name,
                activity=net_activity,
                net_capacitance=net_capacitance,
                dynamic=gate_dynamic,
                static=gate_static,
            )
        )

    # Primary-input nets switch the pins they drive (no driver capacitance:
    # the input driver sits outside the circuit under analysis).
    input_dynamic = 0.0
    for name in aig.pi_names:
        node = aig.pi_literal(name) >> 1
        if node in gate_outputs:
            continue
        load = sink_load.get(node, 0.0)
        if load:
            input_dynamic += float(activity[node]) * load

    return NetlistPower(
        name=mapped.name,
        library_name=mapped.library_name,
        method=activities.method,
        patterns=activities.patterns,
        seed=activities.seed,
        dynamic=dynamic,
        input_dynamic=input_dynamic,
        static=static,
        gates=tuple(per_gate),
    )
