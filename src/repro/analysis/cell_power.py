"""Per-cell power characterization (switched capacitance + static current).

The paper's central tradeoff is that the pseudo families buy speed and area
by burning static power through their weak always-on pull-up loads (Sec. 3.2).
This module characterizes both power components of a cell from the same sized
:class:`~repro.circuits.netlist.CellNetlist` the delay model uses, under the
same normalizations (Sec. 4.3): the gate capacitance of a device equals its
width, drain/source parasitics equal the gate capacitance, and all
capacitances are reported in multiples of the unit inverter's input
capacitance ``c_unit`` (so a normalized dynamic power of 1 means one unit
input capacitance switched per cycle at ``Vdd``).

*Dynamic* characterization is purely capacitive:

* per input literal wire, the gate + polarity-gate capacitance that switches
  when the wire toggles (exactly :meth:`CellNetlist.signal_capacitance`);
* per output transition, the output node's drain/source parasitics plus half
  of the internal stack-node parasitics (an internal node follows the output
  on roughly half of the output transitions, the usual switched-capacitance
  approximation).

*Static* characterization only applies to the pseudo families: whenever the
pull-down network conducts, a resistive path ``VDD -> 1/3-wide load ->
pull-down network -> VSS`` carries a standing current.  For every output-low
input state we solve the conducting pull-down network exactly (the same
Laplacian machinery as the Elmore delay model) and report the mean current
over low states plus the state-averaged current, both in normalized units
(``Vdd = 1``, unit device resistance 1), so normalized static power equals
normalized static current.  Static families have complementary pull networks
and draw no standing current at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.delay import _PULL_DOWN_ROLES, _effective_resistances, _output_value
from repro.circuits.netlist import OUTPUT, VSS, CellNetlist
from repro.circuits.sizing import PSEUDO_LOAD_WIDTH, PSEUDO_PULL_DOWN_TARGET
from repro.devices.transistor import DeviceRole, Literal


@dataclass(frozen=True)
class PowerReport:
    """Power characterization of one cell (all capacitances in ``c_unit``)."""

    #: Capacitance switched by each input literal wire (per polarity).
    literal_capacitance: dict[Literal, float]
    #: Worst-polarity capacitance per input signal name (mirrors the delay
    #: model's per-signal view).
    signal_capacitance: dict[str, float]
    #: Drain/source parasitics on the output node (== ``parasitic_output``).
    output_capacitance: float
    #: Total drain/source parasitics on internal stack nodes.
    internal_capacitance: float
    #: Capacitance charged per output transition: output node plus half the
    #: internal nodes (see module docstring).
    switched_capacitance: float
    #: Mean standing current over the output-low input states (0 for static
    #: families); normalized so current equals power at ``Vdd = 1``.
    static_current_low: float
    #: Standing current averaged over *all* input states (equal weights).
    static_current_average: float
    #: Fraction of input states with the output low (pull-down conducting).
    low_state_fraction: float

    @property
    def is_pseudo(self) -> bool:
        return self.static_current_low > 0.0

    @property
    def input_capacitance_total(self) -> float:
        """Sum of every input literal wire's capacitance."""
        return sum(self.literal_capacitance.values())

    @property
    def input_capacitance_average(self) -> float:
        """Mean per-signal (worst-polarity) input capacitance."""
        if not self.signal_capacitance:
            return 0.0
        return sum(self.signal_capacitance.values()) / len(self.signal_capacitance)

    def pin_capacitance(self, name: str, negated: bool = False) -> float:
        """Capacitance presented by the pin wire of one polarity.

        Falls back to the worst-polarity signal capacitance when the
        requested polarity wire does not load any device in this cell (the
        mapper may still route the complemented literal through the output
        inverter of the driving gate).
        """
        cap = self.literal_capacitance.get(Literal(name, negated), 0.0)
        if cap > 0.0:
            return cap
        return self.signal_capacitance.get(name, 0.0)

    def static_power(self, probability_low: float) -> float:
        """Expected normalized static power given the output-low probability."""
        return self.static_current_low * probability_low


def characterize_power(netlist: CellNetlist) -> PowerReport:
    """Compute the power report of a cell netlist (see module docstring)."""
    technology = netlist.technology
    c_unit = technology.inverter_input_capacitance
    weak = technology.weak_direction_factor
    pseudo = any(d.role is DeviceRole.PSEUDO_LOAD for d in netlist.devices)

    literal_capacitance = {
        literal: netlist.signal_capacitance(literal) / c_unit
        for literal in netlist.input_literals()
    }
    signal_capacitance: dict[str, float] = {}
    for literal, cap in literal_capacitance.items():
        signal_capacitance[literal.name] = max(
            signal_capacitance.get(literal.name, 0.0), cap
        )

    output_capacitance = netlist.node_capacitance(OUTPUT) / c_unit
    internal_capacitance = (
        sum(netlist.node_capacitance(node) for node in netlist.internal_nodes())
        / c_unit
    )
    switched_capacitance = output_capacitance + internal_capacitance / 2.0

    static_current_low = 0.0
    static_current_average = 0.0
    low_state_fraction = 0.0
    if pseudo:
        load_resistance = 1.0 / PSEUDO_LOAD_WIDTH
        pd_devices = [d for d in netlist.devices if d.role in _PULL_DOWN_ROLES]
        order = netlist.input_signals
        num_states = 1 << len(order)
        low_currents: list[float] = []
        for minterm in range(num_states):
            assignment = {
                name: bool((minterm >> i) & 1) for i, name in enumerate(order)
            }
            if _output_value(netlist, assignment) is not False:
                continue
            resistances = _effective_resistances(
                pd_devices, assignment, VSS, False, weak
            )
            pd_resistance = (
                resistances[OUTPUT]
                if resistances is not None
                else PSEUDO_PULL_DOWN_TARGET
            )
            low_currents.append(1.0 / (load_resistance + pd_resistance))
        if low_currents:
            static_current_low = sum(low_currents) / len(low_currents)
            static_current_average = sum(low_currents) / num_states
            low_state_fraction = len(low_currents) / num_states

    return PowerReport(
        literal_capacitance=literal_capacitance,
        signal_capacitance=signal_capacitance,
        output_capacitance=output_capacitance,
        internal_capacitance=internal_capacitance,
        switched_capacitance=switched_capacitance,
        static_current_low=static_current_low,
        static_current_average=static_current_average,
        low_state_fraction=low_state_fraction,
    )
