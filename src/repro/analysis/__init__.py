"""Power/energy and timing analysis subsystem.

Three layers, each consuming the one below (data flow documented in
``ARCHITECTURE.md``):

1. **Cell power characterization** (:mod:`repro.analysis.cell_power`) --
   per-cell switched capacitances and pseudo-family static currents computed
   from the sized transistor netlists, cached on
   :class:`~repro.core.cell.LibraryCell` like the delay report.
2. **Activities and netlist power** (:mod:`repro.analysis.activity`,
   :mod:`repro.analysis.power`, :mod:`repro.analysis.timing`) -- exact
   word-parallel or Monte-Carlo signal probabilities/switching activities of
   an AIG, total dynamic + static power of a mapped circuit, and the
   arrival/required/slack timing report.
3. **Power-aware mapping and Pareto experiments** -- ``objective="power"``
   in :func:`repro.synthesis.mapper.technology_map` and
   :mod:`repro.experiments.pareto`, both built on the first two layers.

The package ``__init__`` resolves its exports lazily: ``repro.core.cell``
characterizes power through this package, so importing everything eagerly
here would create an import cycle through ``repro.core``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "ActivityReport",
    "PowerReport",
    "NetlistPower",
    "TimingReport",
    "analyze_power",
    "characterize_power",
    "compute_activities",
    "compute_timing",
    "exact_activities",
    "monte_carlo_activities",
]

_EXPORTS = {
    "PowerReport": ("repro.analysis.cell_power", "PowerReport"),
    "characterize_power": ("repro.analysis.cell_power", "characterize_power"),
    "ActivityReport": ("repro.analysis.activity", "ActivityReport"),
    "compute_activities": ("repro.analysis.activity", "compute_activities"),
    "exact_activities": ("repro.analysis.activity", "exact_activities"),
    "monte_carlo_activities": ("repro.analysis.activity", "monte_carlo_activities"),
    "NetlistPower": ("repro.analysis.power", "NetlistPower"),
    "analyze_power": ("repro.analysis.power", "analyze_power"),
    "TimingReport": ("repro.analysis.timing", "TimingReport"),
    "compute_timing": ("repro.analysis.timing", "compute_timing"),
}

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.activity import (
        ActivityReport,
        compute_activities,
        exact_activities,
        monte_carlo_activities,
    )
    from repro.analysis.cell_power import PowerReport, characterize_power
    from repro.analysis.power import NetlistPower, analyze_power
    from repro.analysis.timing import TimingReport, compute_timing


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
