"""Static timing analysis of a mapped netlist (arrival/required/slack).

Generalizes the mapper's historical ``_compute_timing``: the same
fanout-scaled gate-delay model (``parasitic + effort_per_load * loads``,
one load per structural fanout, primary outputs counting as one load,
paper Sec. 4.4), but walking the gates in true topological order
(:func:`repro.synthesis.mapper.topological_gates`) and producing the full
:class:`TimingReport` -- per-net arrival, required time and slack plus the
critical path -- instead of only the worst PO arrival and the logic depth.

The worst PO arrival of this engine is by construction identical to the
``normalized_delay`` the mapper records on the circuit, which the unit tests
pin for every Table-3 benchmark and library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synthesis.mapper import MappedCircuit, MappedGate, topological_gates


@dataclass(frozen=True)
class TimingReport:
    """Arrival/required/slack view of one mapped circuit.

    All times are in units of the technology intrinsic delay ``tau`` (the
    mapper's normalized-delay convention).  Nets are keyed by the driving
    node id: gate outputs, plus primary-input/constant nodes at arrival 0.
    """

    #: Worst primary-output arrival time (== ``MappedCircuit.normalized_delay``).
    normalized_delay: float
    #: Logic depth on the longest PI-to-PO gate path.
    levels: int
    #: Arrival time per net.
    arrival: dict[int, float]
    #: Required time per net against the worst PO arrival as the deadline.
    required: dict[int, float]
    #: ``required - arrival`` per net; >= 0 everywhere, 0 on the critical path.
    slack: dict[int, float]
    #: Gate output ids along one critical path, input side first.
    critical_path: tuple[int, ...]

    def worst_slack(self) -> float:
        return min(self.slack.values(), default=0.0)

    def critical_gates(self, tolerance: float = 1e-9) -> tuple[int, ...]:
        """Every net with slack within ``tolerance`` of zero."""
        return tuple(
            node for node, value in sorted(self.slack.items()) if value <= tolerance
        )


def gate_delay(gate: MappedGate, loads: int) -> float:
    """Instance delay under the paper's load model (one unit per fanout)."""
    return gate.parasitic_delay + gate.effort_delay * max(loads, 1)


def compute_timing(mapped: MappedCircuit) -> TimingReport:
    """Compute the full timing report of a mapped circuit."""
    gate_by_output = {gate.output: gate for gate in mapped.gates}
    fanout_count: dict[int, int] = {gate.output: 0 for gate in mapped.gates}
    for gate in mapped.gates:
        for leaf in gate.leaves:
            if leaf in fanout_count:
                fanout_count[leaf] += 1
    for node in mapped.po_nodes:
        if node in fanout_count:
            fanout_count[node] += 1

    order = topological_gates(mapped.gates)

    # Forward pass: arrival times and logic depth.  Leaves that are not gate
    # outputs (primary inputs, the constant node) arrive at time 0.
    arrival: dict[int, float] = {}
    depth: dict[int, int] = {}
    delays: dict[int, float] = {}
    for gate in order:
        delay = gate_delay(gate, fanout_count.get(gate.output, 1))
        delays[gate.output] = delay
        arrival[gate.output] = (
            max((arrival.get(leaf, 0.0) for leaf in gate.leaves), default=0.0) + delay
        )
        depth[gate.output] = (
            max((depth.get(leaf, 0) for leaf in gate.leaves), default=0) + 1
        )

    normalized_delay = max(
        (arrival.get(node, 0.0) for node in mapped.po_nodes), default=0.0
    )
    levels = max((depth.get(node, 0) for node in mapped.po_nodes), default=0)

    # Every referenced non-gate net (PIs, constant) appears with arrival 0 so
    # slack is reported for the whole net set.
    for gate in mapped.gates:
        for leaf in gate.leaves:
            arrival.setdefault(leaf, 0.0)
    for node in mapped.po_nodes:
        arrival.setdefault(node, 0.0)

    # Backward pass: required times against the worst PO arrival.
    required: dict[int, float] = {node: float("inf") for node in arrival}
    for node in mapped.po_nodes:
        required[node] = min(required[node], normalized_delay)
    for gate in reversed(order):
        gate_required = required[gate.output]
        budget = gate_required - delays[gate.output]
        for leaf in gate.leaves:
            if budget < required[leaf]:
                required[leaf] = budget
    # Unconstrained nets (no path to a PO survived covering) get zero slack
    # margin against their own arrival rather than an infinite required time.
    slack = {
        node: (required[node] - arrival[node])
        if required[node] != float("inf")
        else 0.0
        for node in arrival
    }
    for node, value in required.items():
        if value == float("inf"):
            required[node] = arrival[node]

    # Critical path: walk back from the worst PO, always following a leaf
    # whose arrival accounts for the gate's arrival (first such leaf wins,
    # deterministically).
    critical: list[int] = []
    start = None
    for node in mapped.po_nodes:
        if start is None or arrival.get(node, 0.0) > arrival.get(start, 0.0):
            start = node
    node = start
    while node is not None and node in gate_by_output:
        critical.append(node)
        gate = gate_by_output[node]
        target = arrival[node] - delays[node]
        next_node = None
        for leaf in gate.leaves:
            if abs(arrival.get(leaf, 0.0) - target) <= 1e-9:
                next_node = leaf
                break
        if next_node is None or next_node not in gate_by_output:
            break
        node = next_node
    critical.reverse()

    return TimingReport(
        normalized_delay=normalized_delay,
        levels=levels,
        arrival=arrival,
        required=required,
        slack=slack,
        critical_path=tuple(critical),
    )
