"""Signal probabilities and switching activities of an AIG.

Dynamic power is driven by the *switching activity* of every net: under the
standard zero-delay model with temporally independent input vectors, a net
with signal probability ``p`` (probability of being logic 1) toggles with
activity ``a = 2 p (1 - p)`` per cycle.  This module computes per-node
probabilities for a whole AIG two ways:

* **Exact enumeration** (:func:`exact_activities`) -- for subject graphs with
  at most ``exact_limit`` primary inputs, all ``2**n`` input patterns are
  enumerated at once in packed uint64 words (the same word-parallel batching
  as :meth:`Aig.simulate_words`: one gather/AND per AND-level) and the
  probability of a node is its exact minterm count over ``2**n``.
* **Monte-Carlo estimation** (:func:`monte_carlo_activities`) -- for large
  benchmarks, ``vectors`` words of 64 uniform random patterns per input are
  drawn from a seeded :func:`numpy.random.default_rng` and propagated with
  the same vectorized kernel.  The estimate is a pure function of
  ``(structure, vectors, seed)``, so results are bit-identical across
  processes and runs -- which is what lets the experiment engine fold the
  Monte-Carlo parameters into its content-addressed cache key.

:func:`compute_activities` picks between the two automatically;
:func:`exact_activities_reference` is the slow one-assignment-at-a-time
oracle the hypothesis property tests compare against.

Primary inputs are assumed uniform and independent (``p = 1/2``), the
convention of the classic switched-capacitance literature and the one the
paper's FO4-style normalizations imply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synthesis.aig import Aig, lit_is_complemented, lit_node
from repro.synthesis.aig_array import aig_arrays

#: Largest primary-input count enumerated exactly (4096 patterns = 64 words).
DEFAULT_EXACT_LIMIT = 12
#: Monte-Carlo words per primary input (1024 words = 65536 patterns).
DEFAULT_VECTORS = 1024
#: Default Monte-Carlo seed (folded into the engine's cache key).
DEFAULT_SEED = 2009

_U64 = np.uint64
_FULL64 = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class ActivityReport:
    """Per-node signal probabilities and switching activities of one AIG."""

    #: ``"exact"`` or ``"monte-carlo"``.
    method: str
    #: Number of input patterns the probabilities were computed over.
    patterns: int
    #: RNG seed of a Monte-Carlo run (``None`` for exact enumeration).
    seed: int | None
    #: Probability of logic 1 per node id (positive polarity), float64.
    probability: np.ndarray
    #: Switching activity ``2 p (1 - p)`` per node id, float64.
    activity: np.ndarray

    def node_probability(self, node: int) -> float:
        return float(self.probability[node])

    def node_activity(self, node: int) -> float:
        return float(self.activity[node])

    def literal_probability(self, literal: int) -> float:
        """Probability of a literal (complement bit applied)."""
        p = float(self.probability[lit_node(literal)])
        return 1.0 - p if lit_is_complemented(literal) else p


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    # Fallback for numpy < 2.0: count set bits byte by byte.
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(as_bytes).reshape(*words.shape, 64).sum(axis=-1)


def _propagate_words(aig: Aig, pi_words: np.ndarray) -> np.ndarray:
    """Packed values of *every* node on the given input words.

    ``pi_words`` has shape ``(num_pis, num_words)``; the result has shape
    ``(num_nodes, num_words)``.  Same level-batched evaluation as
    :meth:`Aig.simulate_words`, kept separate because power analysis needs
    the internal nodes, not just the primary outputs.
    """
    arrays = aig_arrays(aig)
    num_words = pi_words.shape[1] if pi_words.size else 1
    values = np.zeros((arrays.num_nodes, num_words), dtype=np.uint64)
    if arrays.pi_nodes.size:
        values[arrays.pi_nodes] = pi_words
    for group in arrays.level_groups:
        fanin0 = arrays.fanin0[group]
        fanin1 = arrays.fanin1[group]
        words0 = values[fanin0 >> 1]
        words1 = values[fanin1 >> 1]
        complement0 = ((fanin0 & 1) == 1)[:, None]
        complement1 = ((fanin1 & 1) == 1)[:, None]
        values[group] = np.where(complement0, ~words0, words0) & np.where(
            complement1, ~words1, words1
        )
    return values

def _report_from_values(
    values: np.ndarray,
    total_patterns: int,
    tail_mask: int,
    method: str,
    seed: int | None,
) -> ActivityReport:
    """Count minterms per node and derive probabilities/activities.

    ``tail_mask`` selects the valid bits of the last word (all words before
    it are fully populated).
    """
    counts = _popcount(values[:, :-1]).sum(axis=1, dtype=np.int64)
    counts += _popcount(values[:, -1] & np.uint64(tail_mask)).astype(np.int64)
    probability = counts / float(total_patterns)
    activity = 2.0 * probability * (1.0 - probability)
    return ActivityReport(
        method=method,
        patterns=total_patterns,
        seed=seed,
        probability=probability,
        activity=activity,
    )


def exact_pi_words(num_pis: int) -> tuple[np.ndarray, int, int]:
    """All ``2**n`` input patterns, packed: ``(words, total_patterns, tail_mask)``.

    Input ``i`` follows the canonical truth-table column ordering (period
    ``2**(i+1)``), so the word at index ``w`` covers minterms ``64*w ..
    64*w + 63``.
    """
    total = 1 << num_pis
    num_words = max(total >> 6, 1)
    tail_mask = (1 << min(total, 64)) - 1
    words = np.zeros((num_pis, num_words), dtype=np.uint64)
    word_index = np.arange(num_words, dtype=np.uint64)
    for i in range(num_pis):
        if i < 6:
            block = 1 << i
            column = 0
            for start in range(block, 64, 2 * block):
                column |= ((1 << block) - 1) << start
            words[i, :] = np.uint64(column)
        else:
            bit = (word_index >> np.uint64(i - 6)) & _U64(1)
            words[i, :] = np.where(bit == 1, _FULL64, _U64(0))
    return words, total, tail_mask


def exact_activities(aig: Aig, exact_limit: int = 16) -> ActivityReport:
    """Exact probabilities by word-parallel exhaustive enumeration.

    ``exact_limit`` is a guard against accidentally enumerating huge input
    spaces (``2**n`` patterns); raise it explicitly for mid-size cones.
    """
    if aig.num_pis > exact_limit:
        raise ValueError(
            f"{aig.name!r} has {aig.num_pis} inputs; exact enumeration is "
            f"limited to {exact_limit} (use monte_carlo_activities)"
        )
    pi_words, total, tail_mask = exact_pi_words(aig.num_pis)
    values = _propagate_words(aig, pi_words)
    return _report_from_values(values, total, tail_mask, "exact", None)


def monte_carlo_activities(
    aig: Aig, vectors: int = DEFAULT_VECTORS, seed: int = DEFAULT_SEED
) -> ActivityReport:
    """Monte-Carlo probabilities on ``64 * vectors`` seeded random patterns."""
    if vectors <= 0:
        raise ValueError("vectors must be positive")
    rng = np.random.default_rng(seed)
    pi_words = rng.integers(
        0, 1 << 64, size=(aig.num_pis, vectors), dtype=np.uint64
    )
    values = _propagate_words(aig, pi_words)
    return _report_from_values(values, 64 * vectors, (1 << 64) - 1, "monte-carlo", seed)


def compute_activities(
    aig: Aig,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    vectors: int = DEFAULT_VECTORS,
    seed: int = DEFAULT_SEED,
) -> ActivityReport:
    """Exact enumeration for small cones, Monte-Carlo above ``exact_limit``."""
    if aig.num_pis <= exact_limit:
        return exact_activities(aig, exact_limit=exact_limit)
    return monte_carlo_activities(aig, vectors=vectors, seed=seed)


def exact_activities_reference(aig: Aig) -> ActivityReport:
    """Slow reference for :func:`exact_activities` (oracle for the tests).

    Evaluates the AIG one input assignment at a time through plain Python
    fanin recursion -- no packed words, no numpy batching.
    """
    num_nodes = aig.num_nodes
    counts = [0] * num_nodes
    pi_nodes = aig.pi_nodes()
    for minterm in range(1 << aig.num_pis):
        values = [False] * num_nodes
        for i, node in enumerate(pi_nodes):
            values[node] = bool((minterm >> i) & 1)
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            v0 = values[lit_node(f0)] ^ lit_is_complemented(f0)
            v1 = values[lit_node(f1)] ^ lit_is_complemented(f1)
            values[node] = v0 and v1
        for node in range(num_nodes):
            if values[node]:
                counts[node] += 1
    total = 1 << aig.num_pis
    probability = np.array(counts, dtype=np.float64) / float(total)
    activity = 2.0 * probability * (1.0 - probability)
    return ActivityReport(
        method="exact",
        patterns=total,
        seed=None,
        probability=probability,
        activity=activity,
    )
