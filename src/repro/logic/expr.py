"""Boolean expression AST and parser.

The gate library of the paper (Table 1) is specified as algebraic forms such
as ``(A ^ B) & C`` or ``(A ^ D) | ((B ^ E) & (C ^ F))``.  This module provides
a small immutable AST, a recursive-descent parser for that notation, and
conversion to :class:`~repro.logic.truth_table.TruthTable`.

Grammar (lowest to highest precedence)::

    or_expr   := xor_expr ('|' xor_expr)*          also accepts '+'
    xor_expr  := and_expr ('^' and_expr)*
    and_expr  := unary ('&' unary)*                 also accepts '*' and '.'
    unary     := '!' unary | '~' unary | primary ("'")*
    primary   := NAME | '0' | '1' | '(' or_expr ')'

A trailing apostrophe (``A'``) complements a term, matching the notation of
the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.logic.truth_table import TruthTable


class Expr:
    """Base class for Boolean expression nodes."""

    def variables(self) -> tuple[str, ...]:
        """Sorted tuple of distinct variable names appearing in the expression."""
        names: set[str] = set()
        self._collect_variables(names)
        return tuple(sorted(names))

    def _collect_variables(self, into: set[str]) -> None:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a variable assignment."""
        raise NotImplementedError

    def to_truth_table(self, variable_order: Sequence[str] | None = None) -> TruthTable:
        """Convert to a truth table over ``variable_order`` (default: sorted names)."""
        order = list(variable_order) if variable_order is not None else list(self.variables())
        missing = set(self.variables()) - set(order)
        if missing:
            raise ValueError(f"variable order missing names: {sorted(missing)}")
        index = {name: i for i, name in enumerate(order)}
        num_vars = len(order)
        bits = 0
        for minterm in range(1 << num_vars):
            assignment = {name: bool((minterm >> index[name]) & 1) for name in order}
            if self.evaluate(assignment):
                bits |= 1 << minterm
        return TruthTable(num_vars, bits)

    # Operator sugar used heavily by tests and generators.
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, _coerce(other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, _coerce(other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, _coerce(other))

    def __invert__(self) -> "Expr":
        return Not(self)


def _coerce(value: "Expr | bool | int") -> "Expr":
    if isinstance(value, Expr):
        return value
    return Const(bool(value))


@dataclass(frozen=True)
class Var(Expr):
    """A named input variable."""

    name: str

    def _collect_variables(self, into: set[str]) -> None:
        into.add(self.name)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError as exc:
            raise KeyError(f"no value provided for variable {self.name!r}") from exc

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A Boolean constant."""

    value: bool

    def _collect_variables(self, into: set[str]) -> None:
        return None

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expr):
    """Logical complement."""

    operand: Expr

    def _collect_variables(self, into: set[str]) -> None:
        self.operand._collect_variables(into)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def __str__(self) -> str:
        return f"!{_wrap(self.operand)}"


@dataclass(frozen=True)
class _Binary(Expr):
    left: Expr
    right: Expr
    _symbol = "?"

    def _collect_variables(self, into: set[str]) -> None:
        self.left._collect_variables(into)
        self.right._collect_variables(into)

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


class And(_Binary):
    _symbol = "&"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)


class Or(_Binary):
    _symbol = "|"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)


class Xor(_Binary):
    _symbol = "^"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) != self.right.evaluate(assignment)


def _wrap(expr: Expr) -> str:
    if isinstance(expr, (Var, Const, Not)):
        return str(expr)
    return f"({expr})"


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_NAME_CHARS = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_0123456789[]")


class ExprParseError(ValueError):
    """Raised when an expression string cannot be parsed."""


def _tokenize(text: str) -> Iterator[str]:
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()&|^!~'":
            yield ch
            i += 1
            continue
        if ch in "+*.":
            # Alternative spellings used in the paper's algebra.
            yield {"+": "|", "*": "&", ".": "&"}[ch]
            i += 1
            continue
        if ch.isalpha() or ch == "_" or ch.isdigit():
            start = i
            while i < length and text[i] in _NAME_CHARS:
                i += 1
            yield text[start:i]
            continue
        raise ExprParseError(f"unexpected character {ch!r} at position {i}")


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._pos = 0
        self._text = text

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ExprParseError(f"unexpected end of expression: {self._text!r}")
        self._pos += 1
        return token

    def parse(self) -> Expr:
        expr = self._or()
        if self._peek() is not None:
            raise ExprParseError(
                f"trailing tokens starting at {self._peek()!r} in {self._text!r}"
            )
        return expr

    def _or(self) -> Expr:
        expr = self._xor()
        while self._peek() == "|":
            self._next()
            expr = Or(expr, self._xor())
        return expr

    def _xor(self) -> Expr:
        expr = self._and()
        while self._peek() == "^":
            self._next()
            expr = Xor(expr, self._and())
        return expr

    def _and(self) -> Expr:
        expr = self._unary()
        while True:
            token = self._peek()
            if token == "&":
                self._next()
                expr = And(expr, self._unary())
            elif token is not None and (token == "(" or _is_name(token)):
                # Implicit AND by juxtaposition, e.g. "A B" or "A(B|C)".
                expr = And(expr, self._unary())
            else:
                return expr

    def _unary(self) -> Expr:
        token = self._peek()
        if token in ("!", "~"):
            self._next()
            return self._postfix(Not(self._unary()))
        return self._postfix(self._primary())

    def _postfix(self, expr: Expr) -> Expr:
        while self._peek() == "'":
            self._next()
            expr = Not(expr)
        return expr

    def _primary(self) -> Expr:
        token = self._next()
        if token == "(":
            expr = self._or()
            closing = self._next()
            if closing != ")":
                raise ExprParseError(f"expected ')' but found {closing!r}")
            return expr
        if token == "0":
            return Const(False)
        if token == "1":
            return Const(True)
        if _is_name(token):
            return Var(token)
        raise ExprParseError(f"unexpected token {token!r} in {self._text!r}")


def _is_name(token: str) -> bool:
    return bool(token) and token not in "()&|^!~'" and not token.isspace()


def parse_expr(text: str) -> Expr:
    """Parse an expression string into an :class:`Expr` tree."""
    return _Parser(text).parse()
