"""Bit-packed truth tables.

A :class:`TruthTable` stores the output column of a completely specified
Boolean function of ``n`` ordered variables as an integer bit mask.  Bit
``i`` of :attr:`TruthTable.bits` holds the function value for the input
assignment whose integer encoding is ``i`` (variable 0 is the least
significant input bit).

Truth tables are the lingua franca of the reproduction: the gate library
(:mod:`repro.core`), the switch-level simulator (:mod:`repro.circuits`), the
cut enumeration and the Boolean matcher (:mod:`repro.synthesis`) all exchange
functions in this representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


def _mask(num_vars: int) -> int:
    """Bit mask covering all ``2**num_vars`` minterm positions."""
    return (1 << (1 << num_vars)) - 1


# Pre-computed "variable column" patterns var_pattern(i, n): the truth table of
# the projection function x_i over n variables.  Built lazily and cached.
_VAR_PATTERN_CACHE: dict[tuple[int, int], int] = {}


def var_pattern(index: int, num_vars: int) -> int:
    """Truth-table bits of the projection function ``x_index`` on ``num_vars`` inputs."""
    if index < 0 or index >= num_vars:
        raise ValueError(f"variable index {index} out of range for {num_vars} inputs")
    key = (index, num_vars)
    cached = _VAR_PATTERN_CACHE.get(key)
    if cached is not None:
        return cached
    block = 1 << index
    # Pattern: 'block' zeros followed by 'block' ones, repeated.
    chunk = ((1 << block) - 1) << block
    period = block * 2
    bits = 0
    for start in range(0, 1 << num_vars, period):
        bits |= chunk << start
    _VAR_PATTERN_CACHE[key] = bits
    return bits


@dataclass(frozen=True)
class TruthTable:
    """A completely specified Boolean function of ``num_vars`` ordered inputs."""

    num_vars: int
    bits: int

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        if self.num_vars > 20:
            raise ValueError("truth tables beyond 20 variables are not supported")
        object.__setattr__(self, "bits", self.bits & _mask(self.num_vars))

    # -- constructors -----------------------------------------------------

    @staticmethod
    def constant(value: bool, num_vars: int = 0) -> "TruthTable":
        """The constant-0 or constant-1 function on ``num_vars`` inputs."""
        return TruthTable(num_vars, _mask(num_vars) if value else 0)

    @staticmethod
    def variable(index: int, num_vars: int) -> "TruthTable":
        """The projection function ``x_index``."""
        return TruthTable(num_vars, var_pattern(index, num_vars))

    @staticmethod
    def from_function(func: Callable[..., bool], num_vars: int) -> "TruthTable":
        """Build a table by evaluating ``func`` on every input assignment."""
        bits = 0
        for assignment in range(1 << num_vars):
            values = [bool((assignment >> i) & 1) for i in range(num_vars)]
            if func(*values):
                bits |= 1 << assignment
        return TruthTable(num_vars, bits)

    @staticmethod
    def from_values(values: Sequence[int | bool]) -> "TruthTable":
        """Build a table from an explicit output column (length must be a power of two)."""
        length = len(values)
        if length == 0 or length & (length - 1):
            raise ValueError("output column length must be a power of two")
        num_vars = length.bit_length() - 1
        bits = 0
        for i, v in enumerate(values):
            if v:
                bits |= 1 << i
        return TruthTable(num_vars, bits)

    @staticmethod
    def from_minterms(minterms: Iterable[int], num_vars: int) -> "TruthTable":
        """Build a table from the set of satisfying input assignments."""
        bits = 0
        size = 1 << num_vars
        for m in minterms:
            if m < 0 or m >= size:
                raise ValueError(f"minterm {m} out of range for {num_vars} variables")
            bits |= 1 << m
        return TruthTable(num_vars, bits)

    # -- evaluation and inspection ----------------------------------------

    def evaluate(self, assignment: Sequence[int | bool]) -> bool:
        """Evaluate on one input assignment (``assignment[i]`` is variable ``i``)."""
        if len(assignment) != self.num_vars:
            raise ValueError(
                f"expected {self.num_vars} input values, got {len(assignment)}"
            )
        index = 0
        for i, value in enumerate(assignment):
            if value:
                index |= 1 << i
        return bool((self.bits >> index) & 1)

    def value_at(self, minterm_index: int) -> bool:
        """Function value for the assignment encoded as an integer."""
        if minterm_index < 0 or minterm_index >= (1 << self.num_vars):
            raise ValueError("minterm index out of range")
        return bool((self.bits >> minterm_index) & 1)

    def output_column(self) -> list[int]:
        """The full output column as a list of 0/1 values."""
        return [(self.bits >> i) & 1 for i in range(1 << self.num_vars)]

    def count_ones(self) -> int:
        """Number of satisfying assignments (on-set size)."""
        return self.bits.bit_count()

    def is_constant(self) -> bool:
        return self.bits == 0 or self.bits == _mask(self.num_vars)

    # -- Boolean algebra ---------------------------------------------------

    def _check_compatible(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError(
                "truth tables must be over the same number of variables "
                f"({self.num_vars} vs {other.num_vars})"
            )

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    # -- structure ---------------------------------------------------------

    def cofactor(self, index: int, value: bool) -> "TruthTable":
        """Shannon cofactor with variable ``index`` fixed; result keeps ``num_vars``."""
        pattern = var_pattern(index, self.num_vars)
        block = 1 << index
        if value:
            positive = self.bits & pattern
            result = positive | (positive >> block)
        else:
            negative = self.bits & ~pattern
            result = negative | (negative << block)
        return TruthTable(self.num_vars, result)

    def depends_on(self, index: int) -> bool:
        """True when the function actually depends on variable ``index``."""
        return self.cofactor(index, True).bits != self.cofactor(index, False).bits

    def support(self) -> tuple[int, ...]:
        """Indices of variables the function depends on."""
        return tuple(i for i in range(self.num_vars) if self.depends_on(i))

    def support_size(self) -> int:
        return len(self.support())

    def shrink_to_support(self) -> tuple["TruthTable", tuple[int, ...]]:
        """Project onto the support variables.

        Returns the reduced table and the tuple mapping new variable positions
        back to the original indices.
        """
        support = self.support()
        reduced = self.permute_expand(support, len(support))
        return reduced, support

    def permute_expand(
        self, source_indices: Sequence[int], new_num_vars: int
    ) -> "TruthTable":
        """Re-express the function over a new variable ordering.

        ``source_indices[j]`` gives, for each new variable position ``j``, the
        original variable it corresponds to.  Original variables not listed
        must not be in the support.  ``new_num_vars`` may exceed
        ``len(source_indices)`` to pad with don't-care inputs.
        """
        if new_num_vars < len(source_indices):
            raise ValueError("new_num_vars smaller than the provided mapping")
        listed = set(source_indices)
        for var in self.support():
            if var not in listed:
                raise ValueError(
                    f"variable {var} is in the support but absent from the mapping"
                )
        bits = 0
        for new_index in range(1 << new_num_vars):
            old_index = 0
            for new_pos, old_pos in enumerate(source_indices):
                if (new_index >> new_pos) & 1:
                    old_index |= 1 << old_pos
            if (self.bits >> old_index) & 1:
                bits |= 1 << new_index
        return TruthTable(new_num_vars, bits)

    def place_variables(
        self, positions: Sequence[int], new_num_vars: int
    ) -> "TruthTable":
        """Inverse of :meth:`shrink_to_support`.

        Re-express the function over ``new_num_vars`` variables, placing the
        current variable ``j`` at position ``positions[j]``.  Positions not
        listed become don't-care inputs.
        """
        if len(positions) != self.num_vars:
            raise ValueError("one target position is required per current variable")
        if len(set(positions)) != len(positions):
            raise ValueError("target positions must be distinct")
        if any(p < 0 or p >= new_num_vars for p in positions):
            raise ValueError("target position out of range")
        bits = 0
        for new_index in range(1 << new_num_vars):
            old_index = 0
            for old_pos, new_pos in enumerate(positions):
                if (new_index >> new_pos) & 1:
                    old_index |= 1 << old_pos
            if (self.bits >> old_index) & 1:
                bits |= 1 << new_index
        return TruthTable(new_num_vars, bits)

    def permute_inputs(self, permutation: Sequence[int]) -> "TruthTable":
        """Apply an input permutation.

        ``permutation[j]`` is the original variable placed at new position ``j``.
        """
        if sorted(permutation) != list(range(self.num_vars)):
            raise ValueError("permutation must be a rearrangement of all inputs")
        return self.permute_expand(permutation, self.num_vars)

    def flip_input(self, index: int) -> "TruthTable":
        """Complement one input variable."""
        pattern = var_pattern(index, self.num_vars)
        block = 1 << index
        high = self.bits & pattern
        low = self.bits & ~pattern
        return TruthTable(self.num_vars, (high >> block) | (low << block))

    def apply_phase(self, phase_mask: int) -> "TruthTable":
        """Complement every input whose bit is set in ``phase_mask``."""
        table = self
        for i in range(self.num_vars):
            if (phase_mask >> i) & 1:
                table = table.flip_input(i)
        return table

    def compose(self, inputs: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute a function for every input variable.

        All substituted functions must share the same variable count; the
        result is expressed over that variable set.
        """
        if len(inputs) != self.num_vars:
            raise ValueError("one substituted function is required per input")
        if not inputs:
            return TruthTable(0, self.bits & 1)
        inner_vars = inputs[0].num_vars
        for table in inputs:
            if table.num_vars != inner_vars:
                raise ValueError("substituted functions must agree on variable count")
        result_bits = 0
        full = _mask(inner_vars)
        for minterm in range(1 << self.num_vars):
            if not ((self.bits >> minterm) & 1):
                continue
            term = full
            for i, table in enumerate(inputs):
                if (minterm >> i) & 1:
                    term &= table.bits
                else:
                    term &= full & ~table.bits
            result_bits |= term
        return TruthTable(inner_vars, result_bits)

    # -- presentation -------------------------------------------------------

    def to_hex(self) -> str:
        """Hexadecimal string of the output column (LSB = minterm 0)."""
        width = max(1, (1 << self.num_vars) // 4)
        return format(self.bits, f"0{width}x")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"TruthTable({self.num_vars} vars, 0x{self.to_hex()})"


def truth_table_distance(a: TruthTable, b: TruthTable) -> int:
    """Number of input assignments on which two functions differ."""
    if a.num_vars != b.num_vars:
        raise ValueError("tables must have the same number of variables")
    return (a.bits ^ b.bits).bit_count()
