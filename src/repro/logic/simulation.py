"""Vectorized multi-pattern simulation helpers.

Verification of the synthesis flow compares the Boolean behaviour of a
circuit before and after each transformation.  For small circuits an
exhaustive comparison over all input assignments is possible; for the larger
benchmark circuits (hundreds of inputs) we fall back to random-pattern
equivalence checking with 64-bit packed patterns, the standard light-weight
technique used inside logic synthesis tools.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

PACK_WIDTH = 64
PACK_MASK = (1 << PACK_WIDTH) - 1


def random_pattern_words(
    input_names: Sequence[str], num_words: int, seed: int = 2009
) -> dict[str, list[int]]:
    """Generate ``num_words`` 64-bit random pattern words per input signal.

    Bit *k* of word *w* of every signal together form one random input
    assignment, so one call produces ``num_words * 64`` patterns.
    """
    rng = random.Random(seed)
    patterns: dict[str, list[int]] = {}
    for name in input_names:
        patterns[name] = [rng.getrandbits(PACK_WIDTH) for _ in range(num_words)]
    return patterns


def exhaustive_pattern_words(input_names: Sequence[str]) -> dict[str, list[int]]:
    """Packed pattern words enumerating every assignment of up to 16 inputs."""
    n = len(input_names)
    if n > 16:
        raise ValueError("exhaustive simulation is limited to 16 inputs")
    total = 1 << n
    num_words = (total + PACK_WIDTH - 1) // PACK_WIDTH
    patterns = {name: [0] * num_words for name in input_names}
    for assignment in range(total):
        word, bit = divmod(assignment, PACK_WIDTH)
        for i, name in enumerate(input_names):
            if (assignment >> i) & 1:
                patterns[name][word] |= 1 << bit
    return patterns


def words_equal(a: Mapping[str, list[int]], b: Mapping[str, list[int]]) -> bool:
    """Compare two simulation result dictionaries signal by signal."""
    if set(a) != set(b):
        return False
    return all(a[name] == b[name] for name in a)
