"""Boolean-function substrate.

This subpackage provides the foundation used throughout the reproduction:

* :class:`~repro.logic.truth_table.TruthTable` -- bit-packed truth tables with
  the usual Boolean algebra, cofactors, support computation and composition.
* :mod:`~repro.logic.expr` -- a small Boolean expression AST with a parser for
  the textual function forms used in the paper (e.g. ``"(A ^ B) & C"``).
* :mod:`~repro.logic.npn` -- input permutation / phase enumeration and
  NPN-canonicalization used by the Boolean matcher of the technology mapper.
* :mod:`~repro.logic.simulation` -- vectorized multi-pattern simulation
  helpers shared by the verification tests.
"""

from repro.logic.truth_table import TruthTable
from repro.logic.expr import (
    Expr,
    Var,
    Const,
    Not,
    And,
    Or,
    Xor,
    parse_expr,
)
from repro.logic.npn import (
    InputMatch,
    all_input_permutation_phase_tables,
    apply_match,
    compose_matches,
    invert_match,
    npn_canonical,
    npn_canonicalize,
    p_canonical,
)

__all__ = [
    "TruthTable",
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
    "InputMatch",
    "all_input_permutation_phase_tables",
    "apply_match",
    "compose_matches",
    "invert_match",
    "npn_canonical",
    "npn_canonicalize",
    "p_canonical",
]
