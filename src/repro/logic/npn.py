"""Input permutation / phase enumeration and NPN canonicalization.

Technology mapping matches the Boolean function computed by a cut of the
subject graph against the functions implemented by library cells.  The paper
notes (Sec. 3.1) that the mapping tool is aware of the additional gates
obtained by swapping signal polarities at the transmission gates; we model
that freedom by matching modulo input permutation and input/output
complementation (NPN equivalence).

Three services are provided:

* :func:`all_input_permutation_phase_tables` enumerates every table obtained
  from a base function by permuting and/or complementing inputs (and
  optionally the output).  Retained as the reference enumeration; the
  canonical matcher no longer pre-expands these dictionaries.
* :func:`npn_canonicalize` computes the canonical representative of a
  function's NPN (or NP) class *together with the witnessing transform*, so
  two functions can be matched by canonicalizing each side and composing the
  transforms (:func:`compose_matches`, :func:`invert_match`).  The search is
  exact (minimum over the full orbit) but vectorized with numpy, and the
  raw-bits entry point :func:`canonicalize_bits` is memoized, which is what
  makes canonical matching practical in the mapper's inner loop.
* :func:`npn_canonical` / :func:`p_canonical` return only the canonical
  table, used to group functions into equivalence classes in tests and
  analyses.  The brute-force search is kept as
  :func:`npn_canonical_exhaustive` and cross-checked against the fast path
  by the unit tests.

A transform is an :class:`InputMatch` ``t`` applied as ``apply_match(f, t) =
[~] f.apply_phase(t.phase).permute_inputs(t.permutation)``: evaluated at
``z``, that is ``g(z) = (~)^out f(sigma(z) ^ phase)`` where ``sigma`` places
input ``j`` of ``g`` at position ``t.permutation[j]`` of ``f``.  Transforms
form a group under :func:`compose_matches` with inverses given by
:func:`invert_match`.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Iterator, NamedTuple, Sequence

import numpy as np

from repro.logic.truth_table import TruthTable


class InputMatch(NamedTuple):
    """Describes how a target function maps onto a base library function.

    ``permutation[j]`` is the base-function input that the target's input ``j``
    drives; ``phase`` is applied in the *base function's* input space (see
    :func:`apply_match`: ``g(z) = (~)^out f(sigma(z) ^ phase)``), so target
    input ``j`` is complemented before entering the base function exactly when
    phase bit ``permutation[j]`` is set; ``output_negated`` records whether
    the base function's output must be complemented.
    """

    permutation: tuple[int, ...]
    phase: int
    output_negated: bool


def enumerate_permutation_phase(
    table: TruthTable, include_output_negation: bool = False
) -> Iterator[tuple[TruthTable, InputMatch]]:
    """Yield every (table, match) pair reachable by permuting/complementing inputs.

    The ``match`` describes how to wire the *original* function's inputs so
    that it realizes the yielded table; this is exactly the information the
    technology mapper needs to instantiate a library cell for a matched cut.
    """
    n = table.num_vars
    seen_phase_tables: dict[int, TruthTable] = {}
    for phase in range(1 << n):
        seen_phase_tables[phase] = table.apply_phase(phase)
    for perm in permutations(range(n)):
        for phase, phased in seen_phase_tables.items():
            permuted = phased.permute_inputs(perm)
            match = InputMatch(tuple(perm), phase, False)
            yield permuted, match
            if include_output_negation:
                yield ~permuted, InputMatch(tuple(perm), phase, True)


def all_input_permutation_phase_tables(
    table: TruthTable, include_output_negation: bool = False
) -> dict[int, InputMatch]:
    """Map every reachable table's bit pattern to one witnessing match.

    When several permutation/phase combinations produce the same table, the
    first one found is kept (they are functionally interchangeable).
    """
    result: dict[int, InputMatch] = {}
    for reachable, match in enumerate_permutation_phase(
        table, include_output_negation=include_output_negation
    ):
        result.setdefault(reachable.bits, match)
    return result


def p_canonical(table: TruthTable) -> TruthTable:
    """Canonical representative under input permutation only."""
    best = table.bits
    for perm in permutations(range(table.num_vars)):
        candidate = table.permute_inputs(perm).bits
        if candidate < best:
            best = candidate
    return TruthTable(table.num_vars, best)


def npn_canonical(table: TruthTable) -> TruthTable:
    """Canonical representative under input negation, permutation and output negation.

    Delegates to the vectorized exact canonicalizer
    (:func:`canonicalize_bits`); intended for functions with at most 6
    inputs (library cells and mapping cuts).
    """
    n = table.num_vars
    if n > 6:
        raise ValueError("npn_canonical is limited to 6 inputs")
    bits, _perm, _phase, _neg = canonicalize_bits(table.bits, n, True)
    return TruthTable(n, bits)


def npn_canonical_exhaustive(table: TruthTable) -> TruthTable:
    """Brute-force reference for :func:`npn_canonical` (oracle for tests).

    Exhaustive search over ``2 * n! * 2**n`` candidates.
    """
    n = table.num_vars
    if n > 6:
        raise ValueError("npn_canonical is limited to 6 inputs")
    best: int | None = None
    for output_negated in (False, True):
        base = ~table if output_negated else table
        for phase in range(1 << n):
            phased = base.apply_phase(phase)
            for perm in permutations(range(n)):
                candidate = phased.permute_inputs(perm).bits
                if best is None or candidate < best:
                    best = candidate
    assert best is not None
    return TruthTable(n, best)


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when two functions are NPN-equivalent."""
    if a.num_vars != b.num_vars:
        return False
    return npn_canonical(a) == npn_canonical(b)


# -- transform algebra -------------------------------------------------------


def apply_match(table: TruthTable, match: InputMatch) -> TruthTable:
    """Apply a transform: phase the inputs, permute them, maybe negate the output.

    This is the single definition of what an :class:`InputMatch` *means*;
    :func:`enumerate_permutation_phase` yields pairs satisfying
    ``apply_match(base, match) == reachable`` and the canonical matcher relies
    on the same convention.
    """
    result = table.apply_phase(match.phase).permute_inputs(match.permutation)
    return ~result if match.output_negated else result


def invert_match(match: InputMatch) -> InputMatch:
    """The transform undoing ``match``: ``apply_match(apply_match(f, m), invert_match(m)) == f``."""
    n = len(match.permutation)
    inverse_perm = [0] * n
    for new_position, old_position in enumerate(match.permutation):
        inverse_perm[old_position] = new_position
    phase = 0
    for j in range(n):
        if (match.phase >> match.permutation[j]) & 1:
            phase |= 1 << j
    return InputMatch(tuple(inverse_perm), phase, match.output_negated)


def compose_matches(first: InputMatch, second: InputMatch) -> InputMatch:
    """The transform applying ``first`` then ``second``.

    ``apply_match(f, compose_matches(a, b)) == apply_match(apply_match(f, a), b)``.
    """
    n = len(first.permutation)
    if len(second.permutation) != n:
        raise ValueError("cannot compose transforms of different arities")
    permutation = tuple(first.permutation[second.permutation[j]] for j in range(n))
    # first's sigma applied to second's phase: bit j lands at first.permutation[j].
    phase = first.phase
    for j in range(n):
        if (second.phase >> j) & 1:
            phase ^= 1 << first.permutation[j]
    return InputMatch(
        permutation, phase, first.output_negated != second.output_negated
    )


# -- fast exact canonicalization ---------------------------------------------

# Per-arity candidate machinery: the list of input permutations and the index
# matrix IDX of shape (n! * 2**n, 2**n) with IDX[p * 2**n + phase, z] =
# sigma_p(z) ^ phase, so that gathering a function's output column through a
# row yields the column of the transformed function for that (perm, phase).
_CANDIDATE_CACHE: dict[int, tuple[list[tuple[int, ...]], "np.ndarray"]] = {}


def _candidate_matrix(num_vars: int) -> tuple[list[tuple[int, ...]], "np.ndarray"]:
    cached = _CANDIDATE_CACHE.get(num_vars)
    if cached is not None:
        return cached
    perms = list(permutations(range(num_vars)))
    size = 1 << num_vars
    assignments = np.arange(size, dtype=np.int64)
    sigma = np.zeros((len(perms), size), dtype=np.uint8)
    for row, perm in enumerate(perms):
        placed = np.zeros(size, dtype=np.int64)
        for j, target in enumerate(perm):
            placed |= ((assignments >> j) & 1) << target
        sigma[row] = placed
    phases = np.arange(size, dtype=np.uint8)
    index = (sigma[:, None, :] ^ phases[None, :, None]).reshape(-1, size)
    _CANDIDATE_CACHE[num_vars] = (perms, index)
    return perms, index


def _min_variant(bits: int, num_vars: int) -> tuple[int, tuple[int, ...], int]:
    """Minimum table over all input permutations/phases, with its witness."""
    size = 1 << num_vars
    perms, index = _candidate_matrix(num_vars)
    column = np.unpackbits(
        np.frombuffer(bits.to_bytes(8, "little"), dtype=np.uint8), bitorder="little"
    )[:size]
    candidates = column[index]
    packed = np.packbits(candidates, axis=1, bitorder="little")
    if packed.shape[1] < 8:
        packed = np.pad(packed, ((0, 0), (0, 8 - packed.shape[1])))
    values = np.ascontiguousarray(packed).reshape(-1).view(np.dtype("<u8"))
    row = int(values.argmin())
    perm_index, phase = divmod(row, size)
    return int(values[row]), perms[perm_index], phase


#: Memory budget (bytes) for one chunk of the batched orbit scan.  At arity 6
#: the candidate block is ``n! * 2**n * 2**n`` = ~2.9 MB per table, so the
#: default budget scans ~20 six-input tables per chunk while whole batches of
#: small-arity tables fit in one pass.
_BATCH_SCAN_BYTES = 1 << 26


def _min_variant_batch(
    values: "np.ndarray", num_vars: int
) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Batched :func:`_min_variant`: minimum variant of every table at once.

    Returns ``(best, perm_index, phase)`` arrays with
    ``best[i] == _min_variant(values[i], num_vars)[0]`` (and the same witness:
    both take the *first* row attaining the minimum, so the chosen
    permutation/phase is identical to the scalar scan).  The candidate block
    is processed in chunks bounded by :data:`_BATCH_SCAN_BYTES`.
    """
    size = 1 << num_vars
    _perms, index = _candidate_matrix(num_vars)
    count = values.shape[0]
    best = np.empty(count, dtype=np.uint64)
    rows = np.empty(count, dtype=np.int64)
    chunk = max(1, _BATCH_SCAN_BYTES // (index.size or 1))
    for start in range(0, count, chunk):
        block = np.ascontiguousarray(values[start : start + chunk], dtype="<u8")
        columns = np.unpackbits(
            block.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
        )[:, :size]
        candidates = columns[:, index]
        packed = np.packbits(candidates, axis=2, bitorder="little")
        if packed.shape[2] < 8:
            packed = np.pad(packed, ((0, 0), (0, 0), (0, 8 - packed.shape[2])))
        words = (
            np.ascontiguousarray(packed)
            .reshape(block.shape[0], -1)
            .view(np.dtype("<u8"))
        )
        argrow = words.argmin(axis=1)
        best[start : start + chunk] = words[np.arange(block.shape[0]), argrow]
        rows[start : start + chunk] = argrow
    perm_index, phase = np.divmod(rows, size)
    return best, perm_index, phase


@lru_cache(maxsize=1 << 16)
def canonicalize_bits(
    bits: int, num_vars: int, include_output_negation: bool = True
) -> tuple[int, tuple[int, ...], int, bool]:
    """Exact canonical form of a raw truth table, with the witnessing transform.

    Returns ``(canonical_bits, permutation, phase, output_negated)`` such
    that applying ``InputMatch(permutation, phase, output_negated)`` to the
    input table yields the canonical table (the minimum integer over the
    whole NPN orbit, or the NP orbit when ``include_output_negation`` is
    false).  Memoized: mapping runs canonicalize the same cut functions over
    and over, so repeated calls are dictionary hits.
    """
    if num_vars > 6:
        raise ValueError("canonicalize_bits is limited to 6 inputs")
    full = (1 << (1 << num_vars)) - 1
    bits &= full
    best, perm, phase = _min_variant(bits, num_vars)
    output_negated = False
    if include_output_negation:
        negated_best, negated_perm, negated_phase = _min_variant(
            bits ^ full, num_vars
        )
        if negated_best < best:
            best, perm, phase = negated_best, negated_perm, negated_phase
            output_negated = True
    return best, perm, phase, output_negated


#: Per-``(num_vars, include_output_negation)`` memo of the columnar batch
#: canonicalizer: raw bits -> ``(canonical, permutation, phase, negated)``
#: exactly as :func:`canonicalize_bits` returns them.  Kept separate from the
#: scalar ``lru_cache`` (which cannot be populated externally) but cleared by
#: the same between-batch sweep (see the matcher's cache sweeper) and bounded
#: by :data:`_COLUMN_MEMO_LIMIT`.
_COLUMN_MEMO: dict[tuple[int, bool], dict[int, tuple[int, tuple[int, ...], int, bool]]] = {}
_COLUMN_MEMO_LIMIT = 1 << 16


def clear_canonicalizer_memo() -> None:
    """Drop the batch canonicalizer's cross-call memo."""
    _COLUMN_MEMO.clear()


def canonicalizer_memo_size() -> int:
    """Entries in the batch canonicalizer's memo (diagnostics)."""
    return sum(len(memo) for memo in _COLUMN_MEMO.values())


def canonicalize_bits_batch_columns(
    bits: "Sequence[int] | np.ndarray",
    num_vars: int,
    include_output_negation: bool = True,
) -> tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
    """Columnar batch canonicalization: canonical bits *and* transform columns.

    Returns ``(canonical, permutation, phase, negated)`` arrays over the
    input order -- ``canonical`` uint64, ``permutation`` int8 of shape
    ``(len(bits), num_vars)``, ``phase`` int16, ``negated`` bool -- with row
    ``i`` element-for-element equal to ``canonicalize_bits(bits[i], num_vars,
    include_output_negation)`` (pinned by the npn property tests).  The batch
    is deduplicated with one ``np.unique`` pass, unseen tables run through
    the chunked vectorized orbit scan (:func:`_min_variant_batch`, both
    polarities when output negation is allowed) and results are memoized in
    :data:`_COLUMN_MEMO` so repeated batches -- the same cut functions across
    benchmarks and libraries -- are dictionary hits.
    """
    if num_vars > 6:
        raise ValueError("canonicalize_bits_batch_columns is limited to 6 inputs")
    array = np.asarray(bits, dtype=np.uint64)
    count = array.shape[0]
    canonical = np.zeros(count, dtype=np.uint64)
    permutation = np.zeros((count, num_vars), dtype=np.int8)
    phase = np.zeros(count, dtype=np.int16)
    negated = np.zeros(count, dtype=bool)
    if count == 0:
        return canonical, permutation, phase, negated

    full = (1 << (1 << num_vars)) - 1
    unique, inverse = np.unique(array & np.uint64(full), return_inverse=True)
    memo = _COLUMN_MEMO.setdefault((num_vars, include_output_negation), {})
    unique_values = unique.tolist()
    missing = [
        position
        for position, value in enumerate(unique_values)
        if value not in memo
    ]
    if missing:
        if len(memo) + len(missing) > _COLUMN_MEMO_LIMIT:
            memo.clear()
        todo = unique[missing]
        perms, _index = _candidate_matrix(num_vars)
        best, perm_index, best_phase = _min_variant_batch(todo, num_vars)
        flip = np.zeros(len(missing), dtype=bool)
        if include_output_negation:
            neg_best, neg_perm_index, neg_phase = _min_variant_batch(
                todo ^ np.uint64(full), num_vars
            )
            flip = neg_best < best
            best = np.where(flip, neg_best, best)
            perm_index = np.where(flip, neg_perm_index, perm_index)
            best_phase = np.where(flip, neg_phase, best_phase)
        for row, position in enumerate(missing):
            memo[unique_values[position]] = (
                int(best[row]),
                perms[int(perm_index[row])],
                int(best_phase[row]),
                bool(flip[row]),
            )

    unique_canon = np.empty(unique.shape[0], dtype=np.uint64)
    unique_perm = np.empty((unique.shape[0], num_vars), dtype=np.int8)
    unique_phase = np.empty(unique.shape[0], dtype=np.int16)
    unique_neg = np.empty(unique.shape[0], dtype=bool)
    for position, value in enumerate(unique_values):
        canon_bits, perm, phase_bits, neg = memo[value]
        unique_canon[position] = canon_bits
        unique_perm[position] = perm
        unique_phase[position] = phase_bits
        unique_neg[position] = neg

    inverse = inverse.reshape(-1)
    return (
        unique_canon[inverse],
        unique_perm[inverse],
        unique_phase[inverse],
        unique_neg[inverse],
    )


def canonicalize_bits_batch(
    bits: "Sequence[int] | np.ndarray",
    num_vars: int,
    include_output_negation: bool = True,
) -> list[tuple[int, tuple[int, ...], int, bool]]:
    """Canonicalize a batch of raw tables of one arity.

    Deduplicates the batch with one ``np.unique`` pass, sends each distinct
    table through the memoized vectorized canonicalizer
    (:func:`canonicalize_bits`, one numpy orbit scan per polarity) and
    scatters the results back in input order.  This is the entry point the
    rewrite library uses to register all distinct cut functions of a pass
    at once; results are element-for-element identical to calling
    :func:`canonicalize_bits` in a loop.
    """
    array = np.asarray(bits, dtype=np.uint64)
    if array.size == 0:
        return []
    unique, inverse = np.unique(array, return_inverse=True)
    results = [
        canonicalize_bits(int(value), num_vars, include_output_negation)
        for value in unique.tolist()
    ]
    return [results[index] for index in inverse.tolist()]


def npn_canonicalize(
    table: TruthTable, include_output_negation: bool = True
) -> tuple[TruthTable, InputMatch]:
    """Canonical representative plus the transform reaching it.

    ``apply_match(table, transform) == canonical`` always holds for the
    returned pair; the canonical table is invariant over the whole
    equivalence class (NPN, or NP when output negation is excluded).
    """
    bits, perm, phase, output_negated = canonicalize_bits(
        table.bits, table.num_vars, include_output_negation
    )
    return TruthTable(table.num_vars, bits), InputMatch(perm, phase, output_negated)
