"""Input permutation / phase enumeration and NPN canonicalization.

Technology mapping matches the Boolean function computed by a cut of the
subject graph against the functions implemented by library cells.  The paper
notes (Sec. 3.1) that the mapping tool is aware of the additional gates
obtained by swapping signal polarities at the transmission gates; we model
that freedom by matching modulo input permutation and input/output
complementation (NPN equivalence).

Two services are provided:

* :func:`all_input_permutation_phase_tables` enumerates every table obtained
  from a base function by permuting and/or complementing inputs (and
  optionally the output).  The matcher pre-computes these for every library
  cell and stores them in a dictionary keyed by the raw table bits, so that a
  cut function is matched with a single dictionary lookup.
* :func:`npn_canonical` computes a canonical representative (by exhaustive
  search, practical up to 6 inputs) used to group functions into equivalence
  classes in tests and analyses.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator, NamedTuple

from repro.logic.truth_table import TruthTable


class InputMatch(NamedTuple):
    """Describes how a target function maps onto a base library function.

    ``permutation[j]`` is the base-function input that the target's input ``j``
    drives; ``phase`` bit ``j`` is set when target input ``j`` must be
    complemented before entering the base function; ``output_negated`` records
    whether the base function's output must be complemented.
    """

    permutation: tuple[int, ...]
    phase: int
    output_negated: bool


def enumerate_permutation_phase(
    table: TruthTable, include_output_negation: bool = False
) -> Iterator[tuple[TruthTable, InputMatch]]:
    """Yield every (table, match) pair reachable by permuting/complementing inputs.

    The ``match`` describes how to wire the *original* function's inputs so
    that it realizes the yielded table; this is exactly the information the
    technology mapper needs to instantiate a library cell for a matched cut.
    """
    n = table.num_vars
    seen_phase_tables: dict[int, TruthTable] = {}
    for phase in range(1 << n):
        seen_phase_tables[phase] = table.apply_phase(phase)
    for perm in permutations(range(n)):
        for phase, phased in seen_phase_tables.items():
            permuted = phased.permute_inputs(perm)
            match = InputMatch(tuple(perm), phase, False)
            yield permuted, match
            if include_output_negation:
                yield ~permuted, InputMatch(tuple(perm), phase, True)


def all_input_permutation_phase_tables(
    table: TruthTable, include_output_negation: bool = False
) -> dict[int, InputMatch]:
    """Map every reachable table's bit pattern to one witnessing match.

    When several permutation/phase combinations produce the same table, the
    first one found is kept (they are functionally interchangeable).
    """
    result: dict[int, InputMatch] = {}
    for reachable, match in enumerate_permutation_phase(
        table, include_output_negation=include_output_negation
    ):
        result.setdefault(reachable.bits, match)
    return result


def p_canonical(table: TruthTable) -> TruthTable:
    """Canonical representative under input permutation only."""
    best = table.bits
    for perm in permutations(range(table.num_vars)):
        candidate = table.permute_inputs(perm).bits
        if candidate < best:
            best = candidate
    return TruthTable(table.num_vars, best)


def npn_canonical(table: TruthTable) -> TruthTable:
    """Canonical representative under input negation, permutation and output negation.

    Exhaustive search over ``2 * n! * 2**n`` candidates; intended for
    functions with at most 6 inputs (library cells and mapping cuts).
    """
    n = table.num_vars
    if n > 6:
        raise ValueError("npn_canonical is limited to 6 inputs")
    best: int | None = None
    for output_negated in (False, True):
        base = ~table if output_negated else table
        for phase in range(1 << n):
            phased = base.apply_phase(phase)
            for perm in permutations(range(n)):
                candidate = phased.permute_inputs(perm).bits
                if best is None or candidate < best:
                    best = candidate
    assert best is not None
    return TruthTable(n, best)


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when two functions are NPN-equivalent."""
    if a.num_vars != b.num_vars:
        return False
    return npn_canonical(a) == npn_canonical(b)
