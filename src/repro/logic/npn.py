"""Input permutation / phase enumeration and NPN canonicalization.

Technology mapping matches the Boolean function computed by a cut of the
subject graph against the functions implemented by library cells.  The paper
notes (Sec. 3.1) that the mapping tool is aware of the additional gates
obtained by swapping signal polarities at the transmission gates; we model
that freedom by matching modulo input permutation and input/output
complementation (NPN equivalence).

Three services are provided:

* :func:`all_input_permutation_phase_tables` enumerates every table obtained
  from a base function by permuting and/or complementing inputs (and
  optionally the output).  Retained as the reference enumeration; the
  canonical matcher no longer pre-expands these dictionaries.
* :func:`npn_canonicalize` computes the canonical representative of a
  function's NPN (or NP) class *together with the witnessing transform*, so
  two functions can be matched by canonicalizing each side and composing the
  transforms (:func:`compose_matches`, :func:`invert_match`).  The search is
  exact (minimum over the full orbit) but vectorized with numpy, and the
  raw-bits entry point :func:`canonicalize_bits` is memoized, which is what
  makes canonical matching practical in the mapper's inner loop.
* :func:`npn_canonical` / :func:`p_canonical` return only the canonical
  table, used to group functions into equivalence classes in tests and
  analyses.  The brute-force search is kept as
  :func:`npn_canonical_exhaustive` and cross-checked against the fast path
  by the unit tests.

A transform is an :class:`InputMatch` ``t`` applied as ``apply_match(f, t) =
[~] f.apply_phase(t.phase).permute_inputs(t.permutation)``: evaluated at
``z``, that is ``g(z) = (~)^out f(sigma(z) ^ phase)`` where ``sigma`` places
input ``j`` of ``g`` at position ``t.permutation[j]`` of ``f``.  Transforms
form a group under :func:`compose_matches` with inverses given by
:func:`invert_match`.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Iterator, NamedTuple, Sequence

import numpy as np

from repro.logic.truth_table import TruthTable


class InputMatch(NamedTuple):
    """Describes how a target function maps onto a base library function.

    ``permutation[j]`` is the base-function input that the target's input ``j``
    drives; ``phase`` is applied in the *base function's* input space (see
    :func:`apply_match`: ``g(z) = (~)^out f(sigma(z) ^ phase)``), so target
    input ``j`` is complemented before entering the base function exactly when
    phase bit ``permutation[j]`` is set; ``output_negated`` records whether
    the base function's output must be complemented.
    """

    permutation: tuple[int, ...]
    phase: int
    output_negated: bool


def enumerate_permutation_phase(
    table: TruthTable, include_output_negation: bool = False
) -> Iterator[tuple[TruthTable, InputMatch]]:
    """Yield every (table, match) pair reachable by permuting/complementing inputs.

    The ``match`` describes how to wire the *original* function's inputs so
    that it realizes the yielded table; this is exactly the information the
    technology mapper needs to instantiate a library cell for a matched cut.
    """
    n = table.num_vars
    seen_phase_tables: dict[int, TruthTable] = {}
    for phase in range(1 << n):
        seen_phase_tables[phase] = table.apply_phase(phase)
    for perm in permutations(range(n)):
        for phase, phased in seen_phase_tables.items():
            permuted = phased.permute_inputs(perm)
            match = InputMatch(tuple(perm), phase, False)
            yield permuted, match
            if include_output_negation:
                yield ~permuted, InputMatch(tuple(perm), phase, True)


def all_input_permutation_phase_tables(
    table: TruthTable, include_output_negation: bool = False
) -> dict[int, InputMatch]:
    """Map every reachable table's bit pattern to one witnessing match.

    When several permutation/phase combinations produce the same table, the
    first one found is kept (they are functionally interchangeable).
    """
    result: dict[int, InputMatch] = {}
    for reachable, match in enumerate_permutation_phase(
        table, include_output_negation=include_output_negation
    ):
        result.setdefault(reachable.bits, match)
    return result


def p_canonical(table: TruthTable) -> TruthTable:
    """Canonical representative under input permutation only."""
    best = table.bits
    for perm in permutations(range(table.num_vars)):
        candidate = table.permute_inputs(perm).bits
        if candidate < best:
            best = candidate
    return TruthTable(table.num_vars, best)


def npn_canonical(table: TruthTable) -> TruthTable:
    """Canonical representative under input negation, permutation and output negation.

    Delegates to the vectorized exact canonicalizer
    (:func:`canonicalize_bits`); intended for functions with at most 6
    inputs (library cells and mapping cuts).
    """
    n = table.num_vars
    if n > 6:
        raise ValueError("npn_canonical is limited to 6 inputs")
    bits, _perm, _phase, _neg = canonicalize_bits(table.bits, n, True)
    return TruthTable(n, bits)


def npn_canonical_exhaustive(table: TruthTable) -> TruthTable:
    """Brute-force reference for :func:`npn_canonical` (oracle for tests).

    Exhaustive search over ``2 * n! * 2**n`` candidates.
    """
    n = table.num_vars
    if n > 6:
        raise ValueError("npn_canonical is limited to 6 inputs")
    best: int | None = None
    for output_negated in (False, True):
        base = ~table if output_negated else table
        for phase in range(1 << n):
            phased = base.apply_phase(phase)
            for perm in permutations(range(n)):
                candidate = phased.permute_inputs(perm).bits
                if best is None or candidate < best:
                    best = candidate
    assert best is not None
    return TruthTable(n, best)


def npn_equivalent(a: TruthTable, b: TruthTable) -> bool:
    """True when two functions are NPN-equivalent."""
    if a.num_vars != b.num_vars:
        return False
    return npn_canonical(a) == npn_canonical(b)


# -- transform algebra -------------------------------------------------------


def apply_match(table: TruthTable, match: InputMatch) -> TruthTable:
    """Apply a transform: phase the inputs, permute them, maybe negate the output.

    This is the single definition of what an :class:`InputMatch` *means*;
    :func:`enumerate_permutation_phase` yields pairs satisfying
    ``apply_match(base, match) == reachable`` and the canonical matcher relies
    on the same convention.
    """
    result = table.apply_phase(match.phase).permute_inputs(match.permutation)
    return ~result if match.output_negated else result


def invert_match(match: InputMatch) -> InputMatch:
    """The transform undoing ``match``: ``apply_match(apply_match(f, m), invert_match(m)) == f``."""
    n = len(match.permutation)
    inverse_perm = [0] * n
    for new_position, old_position in enumerate(match.permutation):
        inverse_perm[old_position] = new_position
    phase = 0
    for j in range(n):
        if (match.phase >> match.permutation[j]) & 1:
            phase |= 1 << j
    return InputMatch(tuple(inverse_perm), phase, match.output_negated)


def compose_matches(first: InputMatch, second: InputMatch) -> InputMatch:
    """The transform applying ``first`` then ``second``.

    ``apply_match(f, compose_matches(a, b)) == apply_match(apply_match(f, a), b)``.
    """
    n = len(first.permutation)
    if len(second.permutation) != n:
        raise ValueError("cannot compose transforms of different arities")
    permutation = tuple(first.permutation[second.permutation[j]] for j in range(n))
    # first's sigma applied to second's phase: bit j lands at first.permutation[j].
    phase = first.phase
    for j in range(n):
        if (second.phase >> j) & 1:
            phase ^= 1 << first.permutation[j]
    return InputMatch(
        permutation, phase, first.output_negated != second.output_negated
    )


# -- fast exact canonicalization ---------------------------------------------

# Per-arity candidate machinery: the list of input permutations and the index
# matrix IDX of shape (n! * 2**n, 2**n) with IDX[p * 2**n + phase, z] =
# sigma_p(z) ^ phase, so that gathering a function's output column through a
# row yields the column of the transformed function for that (perm, phase).
_CANDIDATE_CACHE: dict[int, tuple[list[tuple[int, ...]], "np.ndarray"]] = {}


def _candidate_matrix(num_vars: int) -> tuple[list[tuple[int, ...]], "np.ndarray"]:
    cached = _CANDIDATE_CACHE.get(num_vars)
    if cached is not None:
        return cached
    perms = list(permutations(range(num_vars)))
    size = 1 << num_vars
    assignments = np.arange(size, dtype=np.int64)
    sigma = np.zeros((len(perms), size), dtype=np.uint8)
    for row, perm in enumerate(perms):
        placed = np.zeros(size, dtype=np.int64)
        for j, target in enumerate(perm):
            placed |= ((assignments >> j) & 1) << target
        sigma[row] = placed
    phases = np.arange(size, dtype=np.uint8)
    index = (sigma[:, None, :] ^ phases[None, :, None]).reshape(-1, size)
    _CANDIDATE_CACHE[num_vars] = (perms, index)
    return perms, index


def _min_variant(bits: int, num_vars: int) -> tuple[int, tuple[int, ...], int]:
    """Minimum table over all input permutations/phases, with its witness."""
    size = 1 << num_vars
    perms, index = _candidate_matrix(num_vars)
    column = np.unpackbits(
        np.frombuffer(bits.to_bytes(8, "little"), dtype=np.uint8), bitorder="little"
    )[:size]
    candidates = column[index]
    packed = np.packbits(candidates, axis=1, bitorder="little")
    if packed.shape[1] < 8:
        packed = np.pad(packed, ((0, 0), (0, 8 - packed.shape[1])))
    values = np.ascontiguousarray(packed).reshape(-1).view(np.dtype("<u8"))
    row = int(values.argmin())
    perm_index, phase = divmod(row, size)
    return int(values[row]), perms[perm_index], phase


@lru_cache(maxsize=1 << 16)
def canonicalize_bits(
    bits: int, num_vars: int, include_output_negation: bool = True
) -> tuple[int, tuple[int, ...], int, bool]:
    """Exact canonical form of a raw truth table, with the witnessing transform.

    Returns ``(canonical_bits, permutation, phase, output_negated)`` such
    that applying ``InputMatch(permutation, phase, output_negated)`` to the
    input table yields the canonical table (the minimum integer over the
    whole NPN orbit, or the NP orbit when ``include_output_negation`` is
    false).  Memoized: mapping runs canonicalize the same cut functions over
    and over, so repeated calls are dictionary hits.
    """
    if num_vars > 6:
        raise ValueError("canonicalize_bits is limited to 6 inputs")
    full = (1 << (1 << num_vars)) - 1
    bits &= full
    best, perm, phase = _min_variant(bits, num_vars)
    output_negated = False
    if include_output_negation:
        negated_best, negated_perm, negated_phase = _min_variant(
            bits ^ full, num_vars
        )
        if negated_best < best:
            best, perm, phase = negated_best, negated_perm, negated_phase
            output_negated = True
    return best, perm, phase, output_negated


def canonicalize_bits_batch(
    bits: "Sequence[int] | np.ndarray",
    num_vars: int,
    include_output_negation: bool = True,
) -> list[tuple[int, tuple[int, ...], int, bool]]:
    """Canonicalize a batch of raw tables of one arity.

    Deduplicates the batch with one ``np.unique`` pass, sends each distinct
    table through the memoized vectorized canonicalizer
    (:func:`canonicalize_bits`, one numpy orbit scan per polarity) and
    scatters the results back in input order.  This is the entry point the
    rewrite library uses to register all distinct cut functions of a pass
    at once; results are element-for-element identical to calling
    :func:`canonicalize_bits` in a loop.
    """
    array = np.asarray(bits, dtype=np.uint64)
    if array.size == 0:
        return []
    unique, inverse = np.unique(array, return_inverse=True)
    results = [
        canonicalize_bits(int(value), num_vars, include_output_negation)
        for value in unique.tolist()
    ]
    return [results[index] for index in inverse.tolist()]


def npn_canonicalize(
    table: TruthTable, include_output_negation: bool = True
) -> tuple[TruthTable, InputMatch]:
    """Canonical representative plus the transform reaching it.

    ``apply_match(table, transform) == canonical`` always holds for the
    returned pair; the canonical table is invariant over the whole
    equivalence class (NPN, or NP when output negation is excluded).
    """
    bits, perm, phase, output_negated = canonicalize_bits(
        table.bits, table.num_vars, include_output_negation
    )
    return TruthTable(table.num_vars, bits), InputMatch(perm, phase, output_negated)
