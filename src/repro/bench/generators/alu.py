"""ALU-plus-control circuits (the C2670 / C3540 / C5315 / C7552 / dalu class).

Four of the paper's benchmarks are ISCAS-85 "ALU and control" circuits and
one (dalu) is the MCNC dedicated ALU.  Their netlists are not redistributable,
so this generator builds a parameterized datapath of the same functional
class: an arithmetic/logic unit (add, subtract, AND, OR, XOR, compare,
shift), operand selection muxes, a flag/condition block and a block of
random-looking control logic derived deterministically from a seed.  The mix
of arithmetic (XOR-rich) and control (unate-dominated) logic reproduces the
intermediate improvement factors the paper reports for this class.
"""

from __future__ import annotations

import random

from repro.synthesis.aig import Aig, AigLiteral
from repro.synthesis.builder import CircuitBuilder


def _control_block(
    builder: CircuitBuilder,
    inputs: list[AigLiteral],
    num_outputs: int,
    rng: random.Random,
    depth: int = 4,
    fan_in: int = 3,
) -> list[AigLiteral]:
    """Deterministic pseudo-random multi-level control logic."""
    level = list(inputs)
    for _ in range(depth):
        next_level: list[AigLiteral] = []
        for _ in range(max(len(level) // 2, num_outputs)):
            chosen = rng.sample(level, k=min(fan_in, len(level)))
            literals = [
                builder.not_(lit) if rng.random() < 0.5 else lit for lit in chosen
            ]
            kind = rng.random()
            if kind < 0.45:
                next_level.append(builder.and_(*literals))
            elif kind < 0.9:
                next_level.append(builder.or_(*literals))
            else:
                next_level.append(builder.xor_(*literals[:2]))
        level = next_level
    return level[:num_outputs]


def alu_control_circuit(
    data_width: int = 16,
    control_inputs: int = 12,
    control_outputs: int = 24,
    seed: int = 2670,
    name: str | None = None,
) -> Aig:
    """An ALU datapath with operand muxing, flags and surrounding control logic."""
    if data_width < 2:
        raise ValueError("data width must be at least 2")
    builder = CircuitBuilder(name or f"alu-{data_width}")
    rng = random.Random(seed)

    a = builder.input_bus("a", data_width)
    b = builder.input_bus("b", data_width)
    c = builder.input_bus("c", data_width)
    opcode = builder.input_bus("op", 3)
    control = builder.input_bus("ctl", control_inputs)

    # Operand selection: the second operand is C when ctl[0] is set, B otherwise.
    operand = builder.mux_bus(control[0], c, b)

    # Arithmetic units.
    add_sum, add_carry = builder.ripple_adder(a, operand)
    sub_diff, sub_carry = builder.subtractor(a, operand)

    # Logic units.
    and_bus = [builder.and_(x, y) for x, y in zip(a, operand)]
    or_bus = [builder.or_(x, y) for x, y in zip(a, operand)]
    xor_bus = [builder.xor_(x, y) for x, y in zip(a, operand)]
    shift_bus = [builder.zero] + a[:-1]
    pass_bus = list(operand)
    not_bus = [builder.not_(x) for x in a]

    # Result selection mux tree over the eight operations.
    op_select = builder.decoder(opcode)
    buses = [add_sum, sub_diff, and_bus, or_bus, xor_bus, shift_bus, pass_bus, not_bus]
    result: list[AigLiteral] = []
    for bit in range(data_width):
        terms = [
            builder.and_(op_select[index], buses[index][bit])
            for index in range(len(buses))
        ]
        result.append(builder.or_(*terms))
    builder.output_bus("result", result)

    # Flags: zero, carry, overflow-ish, parity, equality.
    builder.output("zero", builder.nor_(*result))
    builder.output("carry", builder.mux(op_select[1], sub_carry, add_carry))
    builder.output("parity", builder.parity(result))
    builder.output("equal", builder.equal(a, operand))

    # Control block consuming the control inputs plus a few datapath signals.
    control_nets = control + [result[0], result[-1], add_carry]
    control_out = _control_block(builder, control_nets, control_outputs, rng)
    builder.output_bus("ctlout", control_out)

    return builder.finish()


def dedicated_alu_circuit(
    data_width: int = 16, seed: int = 1984, name: str | None = None
) -> Aig:
    """A 'dedicated ALU' in the dalu style: arithmetic core plus wide decode logic."""
    builder = CircuitBuilder(name or f"dalu-{data_width}")
    rng = random.Random(seed)

    a = builder.input_bus("a", data_width)
    b = builder.input_bus("b", data_width)
    mode = builder.input_bus("mode", 4)
    enable = builder.input_bus("en", data_width // 2)

    add_sum, carry = builder.ripple_adder(a, b)
    sub_diff, borrow = builder.subtractor(a, b)
    xor_bus = [builder.xor_(x, y) for x, y in zip(a, b)]
    masked = [builder.and_(x, enable[i % len(enable)]) for i, x in enumerate(add_sum)]

    mode_select = builder.decoder(mode[:2])
    result = []
    for bit in range(data_width):
        result.append(
            builder.or_(
                builder.and_(mode_select[0], masked[bit]),
                builder.and_(mode_select[1], sub_diff[bit]),
                builder.and_(mode_select[2], xor_bus[bit]),
                builder.and_(mode_select[3], builder.and_(a[bit], b[bit])),
            )
        )
    builder.output_bus("y", result)
    builder.output("carry", builder.mux(mode[2], borrow, carry))

    decode = _control_block(builder, mode + enable + result[:4], data_width // 2, rng)
    builder.output_bus("dec", decode)
    return builder.finish()
