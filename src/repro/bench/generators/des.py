"""Reduced DES datapath (the ``des`` benchmark class of Table 3).

The MCNC ``des`` benchmark is the combinational data-encryption-standard
round logic (256 inputs, 245 outputs).  The original netlist is not available
offline, so this generator builds a functionally analogous Feistel datapath:
a configurable number of rounds, each with key mixing (XOR), a bank of 6-to-4
substitution boxes generated deterministically from a seed, a bit
permutation, and the Feistel cross-over XOR.  The structure matches the
original's mixture of wide XOR layers and random-logic S-boxes, which is what
determines how it maps onto the two libraries.
"""

from __future__ import annotations

import random

from repro.synthesis.aig import Aig, AigLiteral
from repro.synthesis.builder import CircuitBuilder


def _sbox_columns(rng: random.Random, input_bits: int = 6, output_bits: int = 4) -> list[list[int]]:
    """Deterministic pseudo-random S-box truth-table columns."""
    size = 1 << input_bits
    return [[rng.randint(0, 1) for _ in range(size)] for _ in range(output_bits)]


def _expand(block: list[AigLiteral], target_width: int) -> list[AigLiteral]:
    """Simple expansion permutation: repeat bits cyclically up to the target width."""
    return [block[i % len(block)] for i in range(target_width)]


def des_round_circuit(
    block_width: int = 64,
    rounds: int = 2,
    seed: int = 1977,
    name: str | None = None,
) -> Aig:
    """A reduced-round Feistel (DES-style) encryption datapath.

    ``block_width`` must be even; each round consumes ``3 * block_width // 4``
    key bits (one per expanded half-block bit).
    """
    if block_width < 8 or block_width % 8:
        raise ValueError("block width must be a multiple of 8 and at least 8")
    if rounds < 1:
        raise ValueError("at least one round is required")
    builder = CircuitBuilder(name or f"des-{block_width}x{rounds}")
    rng = random.Random(seed)

    half = block_width // 2
    expanded_width = (half * 3) // 2
    sbox_count = expanded_width // 6
    expanded_width = sbox_count * 6

    plaintext = builder.input_bus("pt", block_width)
    left = plaintext[:half]
    right = plaintext[half:]

    for round_index in range(rounds):
        key = builder.input_bus(f"k{round_index}", expanded_width)

        expanded = _expand(right, expanded_width)
        mixed = [builder.xor_(bit, key[i]) for i, bit in enumerate(expanded)]

        substituted: list[AigLiteral] = []
        for box in range(sbox_count):
            chunk = mixed[box * 6 : (box + 1) * 6]
            for column in _sbox_columns(rng):
                substituted.append(builder.truth_table_logic(chunk, column))

        # Bit permutation back to half-block width (deterministic shuffle).
        order = list(range(len(substituted)))
        rng.shuffle(order)
        permuted = [substituted[order[i % len(order)]] for i in range(half)]

        new_right = [builder.xor_(l, p) for l, p in zip(left, permuted)]
        left, right = right, new_right

    builder.output_bus("ct", left + right)
    return builder.finish()
