"""Error-correcting circuits (the C1355 / C1908 class of Table 3).

ISCAS-85 C1355 and C1908 are 32-bit single-error-correcting (SEC) channel
circuits built around Hamming parity trees.  The generator below produces a
complete SEC pipeline for a configurable data width: parity-check computation
over the received code word, syndrome decoding, and correction of the flagged
bit.  Parity trees are pure XOR logic, which is why this class shows some of
the largest CNTFET gains in the paper (more than 8x speed-up).
"""

from __future__ import annotations

from repro.synthesis.aig import Aig, AigLiteral
from repro.synthesis.builder import CircuitBuilder


def _parity_positions(parity_index: int, code_length: int) -> list[int]:
    """1-based code-word positions covered by Hamming parity bit ``parity_index``."""
    mask = 1 << parity_index
    return [pos for pos in range(1, code_length + 1) if pos & mask]


def hamming_circuit(
    data_width: int = 32, corrected_output: bool = True, name: str | None = None
) -> Aig:
    """A Hamming single-error-correcting receiver for ``data_width`` data bits.

    Inputs are the received code word (data bits plus parity bits in Hamming
    positions); outputs are the syndrome, a corrected-data bus (when
    ``corrected_output`` is set, as in C1908) and an error flag.
    """
    if data_width < 4:
        raise ValueError("data width must be at least 4")
    parity_count = 0
    while (1 << parity_count) < data_width + parity_count + 1:
        parity_count += 1
    code_length = data_width + parity_count

    builder = CircuitBuilder(name or f"hamming-{data_width}")
    received = builder.input_bus("r", code_length)

    # Position map: 1-based code positions; powers of two carry parity bits.
    position_literal: dict[int, AigLiteral] = {}
    for position in range(1, code_length + 1):
        position_literal[position] = received[position - 1]

    # Syndrome: XOR of every covered position per parity index.
    syndrome: list[AigLiteral] = []
    for parity_index in range(parity_count):
        covered = [position_literal[p] for p in _parity_positions(parity_index, code_length)]
        syndrome.append(builder.parity(covered))
    builder.output_bus("syndrome", syndrome)

    error = builder.or_(*syndrome)
    builder.output("error", error)

    if corrected_output:
        # Decode the syndrome to a one-hot error position and flip that bit.
        data_positions = [
            p for p in range(1, code_length + 1) if (p & (p - 1)) != 0
        ]  # non-powers of two carry data
        for out_index, position in enumerate(data_positions[:data_width]):
            # flagged = (syndrome == position)
            terms = []
            for parity_index in range(parity_count):
                bit = syndrome[parity_index]
                if (position >> parity_index) & 1:
                    terms.append(bit)
                else:
                    terms.append(builder.not_(bit))
            flagged = builder.and_(*terms)
            corrected = builder.xor_(position_literal[position], flagged)
            builder.output(f"d[{out_index}]", corrected)

    return builder.finish()
