"""Ripple-carry adders (the add-16 / add-32 / add-64 benchmarks of Table 3).

These three benchmarks are exact reconstructions: the paper's add-N circuits
are plain N-bit adders with a carry input and a carry output (I/O counts
2N+1 / N+1, matching Table 3), which a ripple-carry structure reproduces
faithfully.  They are the purest showcase of the ambipolar library because a
full adder is two XORs plus a majority gate.
"""

from __future__ import annotations

from repro.synthesis.aig import Aig
from repro.synthesis.builder import CircuitBuilder


def ripple_adder_circuit(width: int, name: str | None = None) -> Aig:
    """An N-bit ripple-carry adder with carry-in and carry-out."""
    if width < 1:
        raise ValueError("adder width must be at least 1")
    builder = CircuitBuilder(name or f"add-{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    carry_in = builder.input("cin")
    total, carry = builder.ripple_adder(a, b, carry_in=carry_in)
    builder.output_bus("sum", total)
    builder.output("cout", carry)
    return builder.finish()
