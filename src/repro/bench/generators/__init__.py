"""Structural generators for the Table-3 benchmark classes."""

from repro.bench.generators.adders import ripple_adder_circuit
from repro.bench.generators.multiplier import array_multiplier_circuit
from repro.bench.generators.ecc import hamming_circuit
from repro.bench.generators.alu import alu_control_circuit, dedicated_alu_circuit
from repro.bench.generators.des import des_round_circuit
from repro.bench.generators.logic_misc import (
    random_control_logic_circuit,
    symmetric_logic_circuit,
)

__all__ = [
    "ripple_adder_circuit",
    "array_multiplier_circuit",
    "hamming_circuit",
    "alu_control_circuit",
    "dedicated_alu_circuit",
    "des_round_circuit",
    "random_control_logic_circuit",
    "symmetric_logic_circuit",
]
