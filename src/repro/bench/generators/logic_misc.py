"""Generic multi-level control logic (the i10 / i18 / t481 class of Table 3).

The MCNC circuits i10 and i18 are large flat "logic" benchmarks without a
published arithmetic structure, and t481 is a single-output 16-input
symmetric-style function.  As stand-ins we provide:

* :func:`random_control_logic_circuit` -- deterministic pseudo-random
  multi-level unate-dominated logic with a configurable number of inputs,
  outputs and levels (i10 / i18 class); and
* :func:`symmetric_logic_circuit` -- a single-output circuit computing a
  threshold/interval predicate of the population count of its inputs
  (t481 class: wide, single output, reconvergent).

These circuits are intentionally *not* XOR-rich: the paper reports the
smallest CNTFET gains (sometimes parity with CMOS) for this class, and the
stand-ins preserve that contrast with the arithmetic benchmarks.
"""

from __future__ import annotations

import random

from repro.synthesis.aig import Aig, AigLiteral
from repro.synthesis.builder import CircuitBuilder


def random_control_logic_circuit(
    num_inputs: int = 64,
    num_outputs: int = 48,
    levels: int = 6,
    width_factor: float = 1.5,
    xor_fraction: float = 0.08,
    seed: int = 10,
    name: str | None = None,
) -> Aig:
    """Deterministic pseudo-random multi-level control logic.

    Each level combines randomly chosen (possibly complemented) signals from
    the previous level with AND/OR nodes; a small ``xor_fraction`` of XOR
    nodes reflects the occasional parity found in real control logic.
    """
    if num_inputs < 4:
        raise ValueError("at least 4 inputs are required")
    if not 0 <= xor_fraction <= 1:
        raise ValueError("xor_fraction must be between 0 and 1")
    builder = CircuitBuilder(name or f"logic-{num_inputs}x{num_outputs}")
    rng = random.Random(seed)
    level = builder.input_bus("x", num_inputs)

    for depth in range(levels):
        width = max(int(len(level) * width_factor) if depth == 0 else len(level), num_outputs)
        width = max(width // (2 if depth >= levels - 2 else 1), num_outputs)
        next_level: list[AigLiteral] = []
        for _ in range(width):
            fan_in = rng.randint(2, 4)
            chosen = rng.sample(level, k=min(fan_in, len(level)))
            literals = [
                builder.not_(lit) if rng.random() < 0.4 else lit for lit in chosen
            ]
            draw = rng.random()
            if draw < xor_fraction:
                next_level.append(builder.xor_(literals[0], literals[1]))
            elif draw < xor_fraction + (1 - xor_fraction) / 2:
                next_level.append(builder.and_(*literals))
            else:
                next_level.append(builder.or_(*literals))
        level = next_level

    for index in range(num_outputs):
        builder.output(f"y[{index}]", level[index % len(level)])
    return builder.finish()


def symmetric_logic_circuit(
    num_inputs: int = 16, thresholds: tuple[int, ...] = (3, 7, 11), name: str | None = None
) -> Aig:
    """A single-output symmetric predicate over ``num_inputs`` inputs.

    The output is true when the population count of the inputs lies in the
    union of the intervals delimited by ``thresholds`` (an alternating
    interval predicate), computed structurally with a bit-counting adder tree
    followed by interval comparators -- a wide, single-output, reconvergent
    circuit in the spirit of t481.
    """
    if num_inputs < 4:
        raise ValueError("at least 4 inputs are required")
    builder = CircuitBuilder(name or f"sym-{num_inputs}")
    inputs = builder.input_bus("x", num_inputs)

    # Population count via an adder tree of growing word widths.
    words: list[list[AigLiteral]] = [[bit] for bit in inputs]
    while len(words) > 1:
        merged: list[list[AigLiteral]] = []
        for i in range(0, len(words) - 1, 2):
            a, b = words[i], words[i + 1]
            width = max(len(a), len(b)) + 1
            a = a + [builder.zero] * (width - len(a))
            b = b + [builder.zero] * (width - len(b))
            total, carry = builder.ripple_adder(a[: width - 1], b[: width - 1])
            merged.append(total + [carry])
        if len(words) % 2:
            merged.append(words[-1])
        words = merged
    count = words[0]

    def at_least(value: int) -> AigLiteral:
        # count >= value  <=>  count - value does not borrow.
        constant = builder.constant_bus(value, len(count))
        _, carry = builder.subtractor(count, constant)
        return carry

    # Alternating interval membership: [t0, t1) U [t2, t3) U ...
    terms: list[AigLiteral] = []
    bounds = list(thresholds) + [num_inputs + 1]
    for i in range(0, len(thresholds), 2):
        lower = at_least(bounds[i])
        upper = builder.not_(at_least(bounds[i + 1])) if i + 1 < len(bounds) else builder.one
        terms.append(builder.and_(lower, upper))
    builder.output("y", builder.or_(*terms))
    return builder.finish()
