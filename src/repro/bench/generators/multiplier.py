"""Array multiplier (the C6288 class of Table 3).

ISCAS-85 C6288 is a 16x16 array multiplier built from a grid of full and half
adders.  The generator below builds exactly that structure -- partial-product
AND plane followed by a carry-save adder array and a final ripple-carry
merge -- for an arbitrary operand width, so the XOR-dominated composition of
the original benchmark (which gives the largest CNTFET gains in the paper) is
preserved.
"""

from __future__ import annotations

from repro.synthesis.aig import Aig
from repro.synthesis.builder import CircuitBuilder


def array_multiplier_circuit(width: int = 16, name: str | None = None) -> Aig:
    """A ``width x width`` unsigned array multiplier (C6288-like for width 16)."""
    if width < 2:
        raise ValueError("multiplier width must be at least 2")
    builder = CircuitBuilder(name or f"mult-{width}x{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)

    # Partial products pp[i][j] = a[j] & b[i].
    partial = [[builder.and_(a[j], b[i]) for j in range(width)] for i in range(width)]

    # Carry-save reduction row by row, exactly like the classic array layout:
    # row i adds the shifted partial products of b[i] to the running sum.
    sums = list(partial[0])
    carries = [builder.zero] * width
    outputs = [sums[0]]
    for row in range(1, width):
        new_sums = []
        new_carries = []
        for column in range(width):
            addend = partial[row][column]
            above = sums[column + 1] if column + 1 < width else builder.zero
            total, carry = _full_adder(builder, above, addend, carries[column])
            new_sums.append(total)
            new_carries.append(carry)
        sums = new_sums
        carries = new_carries
        outputs.append(sums[0])

    # Final ripple merge of the remaining sum and carry vectors.  The carry
    # out of this merge is always zero (the product fits in 2*width bits).
    high_sum = [sums[i + 1] if i + 1 < width else builder.zero for i in range(width)]
    merged, _ = builder.ripple_adder(high_sum, carries)
    outputs.extend(merged)

    builder.output_bus("p", outputs[: 2 * width])
    return builder.finish()


def _full_adder(builder: CircuitBuilder, a, b, c):
    return builder.full_adder(a, b, c)
