"""Benchmark-circuit generators.

The paper maps 15 multi-level benchmarks (Table 3): ISCAS-85 circuits
(C1355, C1908, C2670, C3540, C5315, C6288, C7552), MCNC circuits (dalu, des,
i10, i18, t481) and three ripple adders (add-16/32/64).  The original netlist
files are not redistributable, so this subpackage generates functional
stand-ins of the same circuit classes and comparable sizes -- exact
generators for the adders, and structural generators (array multiplier,
Hamming-style error correction, ALU + control slices, a reduced DES datapath,
and multi-level control logic) for the rest.  See DESIGN.md, Sec. 4 for the
substitution rationale.
"""

from repro.bench.registry import (
    BenchmarkCase,
    BENCHMARKS,
    all_benchmarks,
    benchmark_by_name,
    build_benchmark,
    register_benchmark,
    register_blif_benchmark,
    unregister_benchmark,
)

__all__ = [
    "BenchmarkCase",
    "BENCHMARKS",
    "all_benchmarks",
    "benchmark_by_name",
    "build_benchmark",
    "register_benchmark",
    "register_blif_benchmark",
    "unregister_benchmark",
]
