"""Registry of the 15 Table-3 benchmarks and their generator stand-ins.

Each :class:`BenchmarkCase` records the paper's benchmark name, its function
class (the "Function" column of Table 3), the published I/O counts, and the
generator call that produces our structural stand-in.  The add-N entries are
exact reconstructions; the others are functional-class substitutes (see
DESIGN.md, Sec. 4) whose sizes are chosen to keep the pure-Python mapping
flow tractable while preserving the circuit-class contrasts that drive the
paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.generators.adders import ripple_adder_circuit
from repro.bench.generators.alu import alu_control_circuit, dedicated_alu_circuit
from repro.bench.generators.des import des_round_circuit
from repro.bench.generators.ecc import hamming_circuit
from repro.bench.generators.logic_misc import (
    random_control_logic_circuit,
    symmetric_logic_circuit,
)
from repro.bench.generators.multiplier import array_multiplier_circuit
from repro.synthesis.aig import Aig


@dataclass(frozen=True)
class BenchmarkCase:
    """One Table-3 benchmark and the generator producing its stand-in."""

    name: str
    function: str
    paper_inputs: int
    paper_outputs: int
    exact: bool
    generator: Callable[[], Aig]
    xor_rich: bool

    def build(self) -> Aig:
        """Generate the benchmark circuit as an AIG."""
        aig = self.generator()
        aig.name = self.name
        return aig


def _case(name, function, inputs, outputs, exact, xor_rich, generator):
    return BenchmarkCase(
        name=name,
        function=function,
        paper_inputs=inputs,
        paper_outputs=outputs,
        exact=exact,
        generator=generator,
        xor_rich=xor_rich,
    )


#: The 15 benchmarks of Table 3, in paper order.
BENCHMARKS: tuple[BenchmarkCase, ...] = (
    _case(
        "C2670", "ALU and control", 233, 140, False, False,
        lambda: alu_control_circuit(data_width=12, control_inputs=16,
                                    control_outputs=32, seed=2670, name="C2670"),
    ),
    _case(
        "C1908", "Error correcting", 33, 25, False, True,
        lambda: hamming_circuit(data_width=32, corrected_output=True, name="C1908"),
    ),
    _case(
        "C3540", "ALU and control", 50, 22, False, False,
        lambda: alu_control_circuit(data_width=16, control_inputs=12,
                                    control_outputs=20, seed=3540, name="C3540"),
    ),
    _case(
        "dalu", "Dedicated ALU", 75, 16, False, False,
        lambda: dedicated_alu_circuit(data_width=16, seed=1984, name="dalu"),
    ),
    _case(
        "C7552", "ALU and control", 207, 108, False, False,
        lambda: alu_control_circuit(data_width=24, control_inputs=20,
                                    control_outputs=48, seed=7552, name="C7552"),
    ),
    _case(
        "C6288", "Multiplier", 32, 32, False, True,
        lambda: array_multiplier_circuit(width=12, name="C6288"),
    ),
    _case(
        "C5315", "ALU and selector", 178, 123, False, False,
        lambda: alu_control_circuit(data_width=20, control_inputs=18,
                                    control_outputs=40, seed=5315, name="C5315"),
    ),
    _case(
        "des", "Data encryption", 256, 245, False, False,
        lambda: des_round_circuit(block_width=64, rounds=1, seed=1977, name="des"),
    ),
    _case(
        "i10", "Logic", 257, 224, False, False,
        lambda: random_control_logic_circuit(num_inputs=96, num_outputs=64,
                                             levels=6, seed=10, name="i10"),
    ),
    _case(
        "t481", "Logic", 16, 1, False, False,
        lambda: symmetric_logic_circuit(num_inputs=16, name="t481"),
    ),
    _case(
        "i18", "Logic", 133, 81, False, False,
        lambda: random_control_logic_circuit(num_inputs=64, num_outputs=48,
                                             levels=5, seed=18, name="i18"),
    ),
    _case(
        "C1355", "Error correcting", 41, 32, False, True,
        lambda: hamming_circuit(data_width=32, corrected_output=False, name="C1355"),
    ),
    _case(
        "add-16", "16-bit adder", 33, 17, True, True,
        lambda: ripple_adder_circuit(16, name="add-16"),
    ),
    _case(
        "add-32", "32-bit adder", 65, 33, True, True,
        lambda: ripple_adder_circuit(32, name="add-32"),
    ),
    _case(
        "add-64", "64-bit adder", 129, 65, True, True,
        lambda: ripple_adder_circuit(64, name="add-64"),
    ),
)


#: Benchmarks registered at run time on top of the built-in Table-3 set
#: (external BLIF circuits, generator sweeps).  Kept separate so the
#: built-in tuple -- and therefore the default artifact set -- never
#: changes under registration.
_EXTRA_BENCHMARKS: dict[str, BenchmarkCase] = {}


def register_benchmark(case: BenchmarkCase, replace: bool = False) -> BenchmarkCase:
    """Register an additional benchmark case.

    The name must not collide with a built-in Table-3 benchmark; an already
    registered extra of the same name is rejected unless ``replace`` is
    set.  Worker processes of the experiment engine inherit registrations
    through ``fork``; on spawn-based platforms register from an imported
    module (the same rule as custom flows) or run with ``jobs=1``.
    """
    if any(case.name == builtin.name for builtin in BENCHMARKS):
        raise ValueError(
            f"benchmark {case.name!r} collides with a built-in Table-3 entry"
        )
    if not replace and case.name in _EXTRA_BENCHMARKS:
        raise ValueError(f"benchmark {case.name!r} is already registered")
    _EXTRA_BENCHMARKS[case.name] = case
    return case


def register_blif_benchmark(
    path, name: str | None = None, function: str = "External BLIF",
    replace: bool = False,
) -> BenchmarkCase:
    """Register an external BLIF file as a benchmark (runner ``--extra-benchmark``).

    The file is parsed eagerly so malformed input fails at registration
    rather than mid-experiment, and the recorded I/O counts describe the
    actual circuit.  The registered generator re-reads the file on every
    build, matching the pure-function contract the engine's caching
    assumes (the cache key hashes the AIG structure, not the path).
    """
    from pathlib import Path

    from repro.synthesis.blif import read_blif_file

    path = Path(path)
    aig = read_blif_file(path)  # validate + measure
    case = BenchmarkCase(
        name=name or path.stem,
        function=function,
        paper_inputs=aig.num_pis,
        paper_outputs=aig.num_pos,
        exact=True,
        generator=lambda: read_blif_file(path),
        xor_rich=False,
    )
    return register_benchmark(case, replace=replace)


def unregister_benchmark(name: str) -> None:
    """Remove a previously registered extra benchmark (no-op if absent)."""
    _EXTRA_BENCHMARKS.pop(name, None)


def all_benchmarks() -> tuple[BenchmarkCase, ...]:
    """The built-in Table-3 set followed by the registered extras."""
    return BENCHMARKS + tuple(_EXTRA_BENCHMARKS.values())


def benchmark_by_name(name: str) -> BenchmarkCase:
    """Look up a benchmark case by name (built-in or registered)."""
    for case in all_benchmarks():
        if case.name == name:
            return case
    raise KeyError(f"unknown benchmark {name!r}")


def build_benchmark(name: str) -> Aig:
    """Generate the stand-in circuit for a Table-3 benchmark."""
    return benchmark_by_name(name).build()
