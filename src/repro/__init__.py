"""repro: reproduction of the DATE 2009 ambipolar-CNTFET gate-library paper.

Public API surface (see README.md for a walkthrough):

* the gate library -- :func:`repro.core.build_library`,
  :class:`repro.core.LogicFamily`, :data:`repro.core.TABLE1_FUNCTIONS`;
* the synthesis flow -- :class:`repro.synthesis.CircuitBuilder`,
  :func:`repro.synthesis.optimize`, :func:`repro.synthesis.technology_map`,
  :func:`repro.synthesis.read_blif` / :func:`repro.synthesis.write_blif`;
* the experiment harness -- :func:`repro.experiments.run_table2`,
  :func:`repro.experiments.run_table3`, :func:`repro.experiments.run_figure6`;
* the benchmark generators -- :data:`repro.bench.BENCHMARKS`,
  :func:`repro.bench.build_benchmark`.
"""

from repro.core import LogicFamily, TABLE1_FUNCTIONS, build_library
from repro.synthesis import (
    CircuitBuilder,
    optimize,
    read_blif,
    technology_map,
    write_blif,
)

__version__ = "0.1.0"

__all__ = [
    "LogicFamily",
    "TABLE1_FUNCTIONS",
    "build_library",
    "CircuitBuilder",
    "optimize",
    "technology_map",
    "read_blif",
    "write_blif",
    "__version__",
]
