"""Experiment: regenerate Table 2 (library characterization).

For each logic family the experiment builds the complete cell set from the
transistor-level construction rules, characterizes it (transistor count,
normalized area, FO4 worst/average) and collects both the per-cell rows and
the family averages, alongside the published values for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterize import (
    CellCharacterization,
    FamilySummary,
    characterize_family,
)
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.core.paper_data import PAPER_TABLE2, PAPER_TABLE2_AVERAGES, PaperCellRow

#: Mapping from our family enum to the paper_data column keys.
FAMILY_KEYS = {
    LogicFamily.TG_STATIC: "tg_static",
    LogicFamily.TG_PSEUDO: "tg_pseudo",
    LogicFamily.PASS_PSEUDO: "pass_pseudo",
    LogicFamily.CMOS: "cmos",
}

#: Families characterized in the published Table 2 (the pass-transistor
#: static family is discussed but not tabulated).
TABLE2_FAMILIES = (
    LogicFamily.TG_STATIC,
    LogicFamily.TG_PSEUDO,
    LogicFamily.PASS_PSEUDO,
    LogicFamily.CMOS,
)


@dataclass(frozen=True)
class Table2Result:
    """Measured and published characterization for the Table-2 families."""

    rows: dict[LogicFamily, tuple[CellCharacterization, ...]]
    summaries: dict[LogicFamily, FamilySummary]
    paper_rows: dict[LogicFamily, dict[str, PaperCellRow]]
    paper_averages: dict[LogicFamily, PaperCellRow]

    def measured_average(self, family: LogicFamily) -> FamilySummary:
        return self.summaries[family]

    def area_ratio_to_paper(self, family: LogicFamily) -> float:
        """Measured average area divided by the published average area."""
        return self.summaries[family].average_area / self.paper_averages[family].area


def run_table2(families: tuple[LogicFamily, ...] = TABLE2_FAMILIES) -> Table2Result:
    """Characterize every requested family and bundle the paper values."""
    rows: dict[LogicFamily, tuple[CellCharacterization, ...]] = {}
    summaries: dict[LogicFamily, FamilySummary] = {}
    paper_rows: dict[LogicFamily, dict[str, PaperCellRow]] = {}
    paper_averages: dict[LogicFamily, PaperCellRow] = {}

    for family in families:
        library = build_library(family)
        family_rows, summary = characterize_family(library)
        rows[family] = family_rows
        summaries[family] = summary
        key = FAMILY_KEYS[family]
        paper_rows[family] = {
            function_id: columns[key]
            for function_id, columns in PAPER_TABLE2.items()
            if key in columns
        }
        paper_averages[family] = PAPER_TABLE2_AVERAGES[key]

    return Table2Result(
        rows=rows,
        summaries=summaries,
        paper_rows=paper_rows,
        paper_averages=paper_averages,
    )
