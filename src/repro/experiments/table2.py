"""Experiment: regenerate Table 2 (library characterization).

For each logic family the experiment builds the complete cell set from the
transistor-level construction rules, characterizes it (transistor count,
normalized area, FO4 worst/average) and collects both the per-cell rows and
the family averages, alongside the published values for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterize import CellCharacterization, FamilySummary
from repro.core.families import LogicFamily
from repro.core.paper_data import PaperCellRow

#: Mapping from our family enum to the paper_data column keys.
FAMILY_KEYS = {
    LogicFamily.TG_STATIC: "tg_static",
    LogicFamily.TG_PSEUDO: "tg_pseudo",
    LogicFamily.PASS_PSEUDO: "pass_pseudo",
    LogicFamily.CMOS: "cmos",
}

#: Families characterized in the published Table 2 (the pass-transistor
#: static family is discussed but not tabulated).
TABLE2_FAMILIES = (
    LogicFamily.TG_STATIC,
    LogicFamily.TG_PSEUDO,
    LogicFamily.PASS_PSEUDO,
    LogicFamily.CMOS,
)


@dataclass(frozen=True)
class Table2Result:
    """Measured and published characterization for the Table-2 families."""

    rows: dict[LogicFamily, tuple[CellCharacterization, ...]]
    summaries: dict[LogicFamily, FamilySummary]
    paper_rows: dict[LogicFamily, dict[str, PaperCellRow]]
    paper_averages: dict[LogicFamily, PaperCellRow]

    def measured_average(self, family: LogicFamily) -> FamilySummary:
        return self.summaries[family]

    def area_ratio_to_paper(self, family: LogicFamily) -> float:
        """Measured average area divided by the published average area."""
        return self.summaries[family].average_area / self.paper_averages[family].area


def run_table2(
    families: tuple[LogicFamily, ...] = TABLE2_FAMILIES,
    engine=None,
) -> Table2Result:
    """Characterize every requested family and bundle the paper values.

    One characterization job per family is scheduled through the experiment
    engine (sequential and cache-less by default; pass a configured
    ``engine`` for parallel execution and on-disk memoization).
    """
    from repro.experiments.engine import ExperimentEngine

    if engine is None:
        engine = ExperimentEngine(jobs=1, use_cache=False)
    return engine.run_table2(families=families)
