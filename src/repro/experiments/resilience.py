"""Fault-tolerant batch execution for the experiment engine.

The engine's jobs are pure functions of their specs, which makes them safe
to retry: a result computed on the second attempt is bit-identical to one
computed on the first.  This module exploits that purity to run a batch of
jobs through a :class:`~concurrent.futures.ProcessPoolExecutor` without the
all-or-nothing failure mode of ``pool.map``:

* **Per-job futures.**  Jobs are ``submit()``-ed individually (at most one
  per worker slot at a time, so a submitted job starts immediately and its
  wall-clock deadline is meaningful) and their results are committed the
  moment each future resolves -- a later crash never discards work that
  already finished.
* **Failure taxonomy.**  A worker death (:class:`BrokenExecutor`) is a
  *crash*; a job overrunning its wall-clock budget is a *timeout*; any
  other exception raised by the job itself is a *flow error* and propagates
  unretried -- a deterministic bug must fail the run, not burn retries.
* **Bounded retries with backoff.**  Crashed and timed-out jobs are
  re-dispatched up to :attr:`RetryPolicy.max_attempts` times, spaced by
  exponential backoff with deterministic seeded jitter
  (:func:`backoff_delay`), so a transient failure (OOM kill, descheduled
  worker) converges to a correct result instead of aborting the batch.
* **Pool rebuild.**  A broken or stuck pool is abandoned (best-effort
  ``kill`` of its worker processes) and rebuilt; only the jobs that were
  lost in flight are re-dispatched.
* **Graceful degradation.**  A job that exhausts its retries -- and the
  whole batch, when no pool can be (re)built at all -- falls back to the
  deterministic in-process path, which computes the same payload the
  worker would have.

Every abnormal event is recorded as a structured :class:`JobFailure` on the
returned :class:`BatchOutcome`, which is what the chaos suite and the
failure-classification artifact assert against.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Sequence

from repro import obs, profiling

#: Failure kinds recorded in :class:`JobFailure` (the taxonomy).
CRASH = "crash"
TIMEOUT = "timeout"
#: Flow errors are never recorded on an outcome -- they propagate to the
#: caller unretried -- but the name participates in the taxonomy so reports
#: can classify exceptions uniformly.
FLOW_ERROR = "flow-error"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout configuration of one batch.

    ``max_attempts`` counts *pool* attempts per job (the terminal in-process
    degrade is not an attempt).  ``timeout`` is the per-job wall-clock
    budget in seconds (``None``: unbounded).  Backoff before attempt ``k``'s
    retry is ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
    scaled by a deterministic jitter in ``[1-jitter, 1+jitter]`` derived
    from ``seed``, the job index and the attempt number -- reproducible
    schedules, but concurrent retries still spread out.
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    @classmethod
    def from_env(cls, environ=None) -> "RetryPolicy":
        """Policy with ``REPRO_JOB_TIMEOUT`` / ``REPRO_JOB_RETRIES`` applied.

        ``REPRO_JOB_TIMEOUT`` is the per-job budget in seconds (``0`` or
        unset: unbounded); ``REPRO_JOB_RETRIES`` the number of retries after
        the first attempt (so ``max_attempts = retries + 1``).
        """
        env = os.environ if environ is None else environ
        kwargs: dict = {}
        raw = env.get("REPRO_JOB_TIMEOUT")
        if raw:
            timeout = float(raw)
            kwargs["timeout"] = timeout if timeout > 0 else None
        raw = env.get("REPRO_JOB_RETRIES")
        if raw:
            kwargs["max_attempts"] = max(1, int(raw) + 1)
        return cls(**kwargs)


def backoff_delay(policy: RetryPolicy, index: int, attempt: int) -> float:
    """Deterministic backoff before re-dispatching job ``index``.

    ``attempt`` is the 1-based attempt that just failed.  Same policy, same
    job, same attempt -> same delay, on every platform.
    """
    if policy.backoff_base <= 0:
        return 0.0
    delay = min(
        policy.backoff_max,
        policy.backoff_base * policy.backoff_factor ** max(0, attempt - 1),
    )
    if policy.jitter > 0:
        swing = Random(f"{policy.seed}:{index}:{attempt}").uniform(
            -policy.jitter, policy.jitter
        )
        delay *= max(0.0, 1.0 + swing)
    return delay


@dataclass(frozen=True)
class JobFailure:
    """One abnormal event in a batch (a job lost to a crash or a timeout).

    ``index`` is the job's position in the batch, ``attempt`` the 1-based
    pool attempt that failed, ``resolution`` what the executor did about it
    (``"retry"``: re-dispatched to the pool after backoff; ``"in-process"``:
    retries exhausted, computed deterministically in the parent).
    """

    index: int
    kind: str
    attempt: int
    message: str
    resolution: str

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "attempt": self.attempt,
            "message": self.message,
            "resolution": self.resolution,
        }


@dataclass
class BatchOutcome:
    """Results plus the failure/recovery record of one batch."""

    results: list
    failures: list[JobFailure] = field(default_factory=list)
    #: Times the worker pool was abandoned and rebuilt.
    rebuilds: int = 0
    #: Jobs that exhausted their retries and ran in-process.
    degraded: int = 0
    #: False when no pool could be created and the whole batch ran in-process.
    pool_used: bool = True

    def failure_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts


def classify_exception(error: BaseException) -> str:
    """Map an exception from a pool future onto the failure taxonomy."""
    if isinstance(error, BrokenExecutor):
        return CRASH
    return FLOW_ERROR


def _abandon(executor: ProcessPoolExecutor) -> None:
    """Tear an executor down without waiting on (possibly stuck) workers."""
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown of a broken pool
        pass
    # shutdown() only delivers sentinels; a worker wedged inside a job (the
    # timeout case) never reads one.  Reclaim it for real.
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already gone
            pass


def run_resilient(
    worker: Callable,
    payloads: Sequence,
    *,
    jobs: int,
    policy: RetryPolicy | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    on_result: Callable[[int, object], None] | None = None,
    on_failure: Callable[[JobFailure], None] | None = None,
) -> BatchOutcome:
    """Run ``worker`` over ``payloads`` with per-job retries and timeouts.

    Results are returned in payload order regardless of completion order;
    ``on_result(index, payload)`` fires the moment each job finishes (pool
    or in-process), so callers can commit completed work immediately, and
    ``on_failure(failure)`` fires the moment each abnormal event is
    recorded (live progress reporting).  Exceptions raised *by* a job
    propagate unchanged after the pool is shut down; crashes and timeouts
    are retried per ``policy`` and degrade to the in-process path once
    exhausted.  Every failure is mirrored to the profiler/tracer event
    counters (``jobs.crash`` / ``jobs.timeout`` / ``jobs.retry`` /
    ``jobs.degraded_inprocess`` and the ``jobs.backoff_seconds`` total) and
    recorded as a tracer event, so ``--profile`` and ``--trace`` both see
    the failure-path traffic.
    """
    policy = policy or RetryPolicy()
    payloads = list(payloads)
    total = len(payloads)
    outcome = BatchOutcome(results=[None] * total)

    def finish(index: int, payload) -> None:
        outcome.results[index] = payload
        if on_result is not None:
            on_result(index, payload)

    def run_in_process(index: int) -> None:
        finish(index, worker(payloads[index]))

    slots = max(1, min(jobs, total))

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=slots, initializer=initializer, initargs=initargs
        )

    try:
        pool: ProcessPoolExecutor | None = new_pool()
    except OSError:
        pool = None
    if pool is None:
        # No process pool on this platform: the deterministic fallback.
        outcome.pool_used = False
        for index in range(total):
            run_in_process(index)
        return outcome

    attempts = [0] * total
    ready: deque[int] = deque(range(total))
    timers: list[tuple[float, int]] = []  # (due, index) backoff heap
    in_flight: dict[Future, int] = {}
    deadlines: dict[Future, float | None] = {}

    def settle_failure(index: int, kind: str, message: str) -> None:
        attempt = attempts[index]
        profiling.count(f"jobs.{kind}")
        if attempt >= policy.max_attempts:
            failure = JobFailure(index, kind, attempt, message, "in-process")
            outcome.failures.append(failure)
            profiling.count("jobs.degraded_inprocess")
            obs.event(f"job.{kind}", index=index, attempt=attempt,
                      resolution="in-process")
            if on_failure is not None:
                on_failure(failure)
            outcome.degraded += 1
            run_in_process(index)
        else:
            failure = JobFailure(index, kind, attempt, message, "retry")
            outcome.failures.append(failure)
            delay = backoff_delay(policy, index, attempt)
            profiling.count("jobs.retry")
            profiling.count("jobs.backoff_seconds", delay)
            obs.event(f"job.{kind}", index=index, attempt=attempt,
                      resolution="retry", backoff_seconds=delay)
            if on_failure is not None:
                on_failure(failure)
            due = time.monotonic() + delay
            heapq.heappush(timers, (due, index))

    def rebuild_pool() -> None:
        nonlocal pool
        if pool is not None:
            _abandon(pool)
        outcome.rebuilds += 1
        try:
            pool = new_pool()
        except OSError:
            pool = None

    def next_tick() -> float | None:
        bounds = [due for due in deadlines.values() if due is not None]
        if timers:
            bounds.append(timers[0][0])
        if not bounds:
            return None
        return max(0.0, min(bounds) - time.monotonic())

    try:
        while ready or timers or in_flight:
            now = time.monotonic()
            while timers and timers[0][0] <= now:
                ready.append(heapq.heappop(timers)[1])
            if pool is None:
                # Rebuild failed: drain every remaining job deterministically.
                remaining = sorted(set(ready) | {index for _due, index in timers})
                ready.clear()
                timers.clear()
                for index in remaining:
                    run_in_process(index)
                continue
            while ready and len(in_flight) < slots:
                index = ready.popleft()
                attempts[index] += 1
                future = pool.submit(worker, payloads[index])
                in_flight[future] = index
                deadlines[future] = (
                    time.monotonic() + policy.timeout if policy.timeout else None
                )
            if not in_flight:
                if timers:  # waiting out a backoff delay
                    time.sleep(max(0.0, timers[0][0] - time.monotonic()))
                continue
            done, _ = wait(
                list(in_flight), timeout=next_tick(), return_when=FIRST_COMPLETED
            )
            crashed = False
            flow_error: BaseException | None = None
            for future in sorted(done, key=in_flight.get):
                index = in_flight.pop(future)
                deadlines.pop(future, None)
                error = future.exception()
                if error is None:
                    finish(index, future.result())
                elif classify_exception(error) == CRASH:
                    crashed = True
                    settle_failure(index, CRASH, str(error) or type(error).__name__)
                else:
                    # A real job exception: fail fast, never retry.
                    flow_error = error
            if flow_error is not None:
                raise flow_error
            if crashed:
                # The pool is broken; every other in-flight job died with it.
                for future, index in sorted(in_flight.items(), key=lambda kv: kv[1]):
                    settle_failure(
                        index, CRASH, "worker pool broke while the job was in flight"
                    )
                in_flight.clear()
                deadlines.clear()
                rebuild_pool()
                continue
            now = time.monotonic()
            expired = {
                future
                for future, due in deadlines.items()
                if due is not None and due <= now and not future.done()
            }
            if expired:
                # A stuck worker can only be reclaimed by abandoning the
                # pool.  Charge the timed-out jobs; the preempted bystanders
                # re-dispatch without losing an attempt.
                for future, index in sorted(in_flight.items(), key=lambda kv: kv[1]):
                    if future in expired:
                        settle_failure(
                            index,
                            TIMEOUT,
                            f"job exceeded its {policy.timeout:.3g}s wall-clock budget",
                        )
                    else:
                        attempts[index] -= 1
                        ready.append(index)
                in_flight.clear()
                deadlines.clear()
                rebuild_pool()
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return outcome
