"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.table2` -- library characterization (Table 2);
* :mod:`repro.experiments.table3` -- technology-mapping results over the 15
  benchmarks (Table 3);
* :mod:`repro.experiments.figure6` -- the per-benchmark CMOS-to-CNTFET
  absolute-delay ratios (Figure 6);
* :mod:`repro.experiments.report` -- text rendering and paper-vs-measured
  comparison helpers used by EXPERIMENTS.md and the pytest benchmarks;
* :mod:`repro.experiments.pareto` -- per-benchmark area/delay/power Pareto
  fronts across the logic families and mapping objectives;
* :mod:`repro.experiments.engine` -- the parallel, cache-aware job engine
  the table/figure experiments are scheduled through;
* :mod:`repro.experiments.resilience` -- the fault-tolerant batch executor
  behind parallel engine runs (per-job retries/timeouts, pool rebuild);
* :mod:`repro.experiments.faults` -- the deterministic fault-injection
  harness (chaos suite) proving the resilience layer keeps artifacts
  bit-identical.
"""

from repro.experiments.engine import ExperimentEngine, MapJob, ResultCache
from repro.experiments.faults import FaultPlan
from repro.experiments.resilience import JobFailure, RetryPolicy
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import PowerStats, Table3Result, Table3Row, run_table3
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.pareto import ParetoResult, render_pareto, run_pareto
from repro.experiments.report import (
    render_table2,
    render_table3,
    render_figure6,
    render_comparison,
)

__all__ = [
    "ExperimentEngine",
    "FaultPlan",
    "JobFailure",
    "MapJob",
    "ResultCache",
    "RetryPolicy",
    "Table2Result",
    "run_table2",
    "PowerStats",
    "Table3Row",
    "Table3Result",
    "run_table3",
    "Figure6Result",
    "run_figure6",
    "ParetoResult",
    "run_pareto",
    "render_table2",
    "render_table3",
    "render_figure6",
    "render_comparison",
    "render_pareto",
]
