"""Experiment: regenerate Table 3 (technology-mapping results).

Every Table-3 benchmark is generated, optimized with the technology-
independent flow (the ``resyn2rs`` stand-in) and mapped onto the CNTFET
transmission-gate static library, the CNTFET transmission-gate pseudo library
and the CMOS reference library.  For each mapping the experiment records the
gate count, normalized area, logic depth, normalized delay and absolute delay
(the five columns of Table 3), plus the paper's published row for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.registry import BENCHMARKS, BenchmarkCase
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.core.paper_data import PAPER_TABLE3, PaperBenchmark, PaperBenchmarkRow
from repro.flow import DEFAULT_FLOW, resolve_flow, run_flow
from repro.synthesis.aig import Aig
from repro.synthesis.mapper import MappedCircuit, technology_map
from repro.synthesis.matcher import matcher_for

#: The three libraries compared in Table 3.
TABLE3_FAMILIES = (
    LogicFamily.TG_STATIC,
    LogicFamily.TG_PSEUDO,
    LogicFamily.CMOS,
)


@dataclass(frozen=True)
class MappingStats:
    """The five Table-3 columns for one benchmark and one library."""

    gates: int
    area: float
    levels: int
    normalized_delay: float
    absolute_delay_ps: float

    @staticmethod
    def from_mapped(mapped: MappedCircuit) -> "MappingStats":
        return MappingStats(
            gates=mapped.gate_count,
            area=mapped.area,
            levels=mapped.levels,
            normalized_delay=mapped.normalized_delay,
            absolute_delay_ps=mapped.absolute_delay_ps,
        )


@dataclass(frozen=True)
class PowerStats:
    """The power axis of one mapping: normalized dynamic/static power.

    Computed by :mod:`repro.analysis.power` (see that module for units) and
    carried alongside :class:`MappingStats` for every (benchmark, library)
    pair; ``method``/``patterns``/``seed`` record the signal-statistics
    provenance so archived figures stay comparable.
    """

    dynamic: float
    input_dynamic: float
    static: float
    total: float
    method: str
    patterns: int
    seed: int | None

    @staticmethod
    def from_analysis(analysis) -> "PowerStats":
        return PowerStats(
            dynamic=analysis.dynamic,
            input_dynamic=analysis.input_dynamic,
            static=analysis.static,
            total=analysis.total,
            method=analysis.method,
            patterns=analysis.patterns,
            seed=analysis.seed,
        )


@dataclass(frozen=True)
class Table3Row:
    """Measured results for one benchmark across the three families."""

    name: str
    function: str
    aig_nodes: int
    aig_depth: int
    results: dict[LogicFamily, MappingStats]
    paper: PaperBenchmark | None
    #: Power axis per family (same keys as ``results``).
    power: dict[LogicFamily, PowerStats] = field(default_factory=dict)

    def improvement_vs_cmos(self, family: LogicFamily, metric: str) -> float:
        """Fractional reduction of a metric relative to the CMOS mapping."""
        ours = getattr(self.results[family], metric)
        cmos = getattr(self.results[LogicFamily.CMOS], metric)
        if cmos == 0:
            return 0.0
        return 1.0 - ours / cmos

    def speedup_vs_cmos(self, family: LogicFamily) -> float:
        """Ratio of CMOS absolute delay to the family's absolute delay (Fig. 6)."""
        ours = self.results[family].absolute_delay_ps
        cmos = self.results[LogicFamily.CMOS].absolute_delay_ps
        return cmos / ours if ours else 0.0


@dataclass
class Table3Result:
    """All measured Table-3 rows plus aggregate statistics."""

    rows: list[Table3Row] = field(default_factory=list)
    #: Name of the synthesis flow the rows were produced under (recorded in
    #: the JSON artifacts so archived flow-sweep results stay tellable apart).
    flow: str = "resyn2rs"
    #: Mapping objective the rows were produced under (recorded likewise).
    objective: str = "delay"
    #: Required-time recovery rounds of the mapper (0 = single-pass mapping;
    #: recorded in the JSON artifacts only when non-zero so round-0 archives
    #: stay byte-comparable across versions).
    rounds: int = 0
    #: Cost axis of the recovery rounds (``"auto"``/``"area"``/``"power"``).
    recovery: str = "auto"

    def average_power(self, family: LogicFamily, component: str = "total") -> float:
        values = [
            getattr(row.power[family], component)
            for row in self.rows
            if family in row.power
        ]
        return sum(values) / len(values) if values else 0.0

    def row(self, name: str) -> Table3Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no result for benchmark {name!r}")

    def average(self, family: LogicFamily, metric: str) -> float:
        values = [getattr(row.results[family], metric) for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def average_improvement(self, family: LogicFamily, metric: str) -> float:
        """Improvement of the per-benchmark averages, as the paper computes it."""
        ours = self.average(family, metric)
        cmos = self.average(LogicFamily.CMOS, metric)
        if cmos == 0:
            return 0.0
        return 1.0 - ours / cmos

    def average_speedup(self, family: LogicFamily) -> float:
        """Mean per-benchmark CMOS-to-family absolute-delay ratio (Fig. 6 average)."""
        values = [row.speedup_vs_cmos(family) for row in self.rows]
        return sum(values) / len(values) if values else 0.0


def _paper_row(name: str) -> PaperBenchmark | None:
    for row in PAPER_TABLE3:
        if row.name == name:
            return row
    return None


def map_benchmark(
    case: BenchmarkCase,
    families: tuple[LogicFamily, ...] = TABLE3_FAMILIES,
    objective: str = "delay",
    optimize_first: bool = True,
    flow: str = DEFAULT_FLOW,
) -> Table3Row:
    """Run the full flow (generate, optimize, map onto each family) for one benchmark.

    ``flow`` names the registered synthesis flow (see :mod:`repro.flow`);
    ``optimize_first=False`` is shorthand for the ``none`` flow and is
    rejected when combined with an explicitly selected flow.
    """
    from repro.analysis.activity import compute_activities
    from repro.analysis.power import analyze_power

    aig: Aig = run_flow(resolve_flow(flow, optimize_first), case.build()).aig
    activities = compute_activities(aig)
    results: dict[LogicFamily, MappingStats] = {}
    power: dict[LogicFamily, PowerStats] = {}
    for family in families:
        library = build_library(family)
        mapped = technology_map(
            aig,
            library,
            matcher=matcher_for(library),
            objective=objective,
            activities=activities,
        )
        results[family] = MappingStats.from_mapped(mapped)
        power[family] = PowerStats.from_analysis(
            analyze_power(mapped, aig, library, activities)
        )
    return Table3Row(
        name=case.name,
        function=case.function,
        aig_nodes=aig.num_ands,
        aig_depth=aig.depth(),
        results=results,
        paper=_paper_row(case.name),
        power=power,
    )


def run_table3(
    benchmark_names: tuple[str, ...] | None = None,
    families: tuple[LogicFamily, ...] = TABLE3_FAMILIES,
    objective: str = "delay",
    optimize_first: bool = True,
    flow: str = DEFAULT_FLOW,
    engine=None,
) -> Table3Result:
    """Regenerate Table 3 (optionally restricted to a subset of benchmarks).

    Scheduling is delegated to the experiment engine
    (:class:`repro.experiments.engine.ExperimentEngine`); by default a
    sequential, cache-less engine is used so library callers see the same
    pure behaviour as before.  Pass a configured ``engine`` for parallel
    execution and on-disk memoization, and ``flow`` to select the
    technology-independent synthesis flow.
    """
    from repro.experiments.engine import ExperimentEngine

    if engine is None:
        engine = ExperimentEngine(jobs=1, use_cache=False)
    return engine.run_table3(
        benchmark_names=benchmark_names,
        families=families,
        objective=objective,
        flow=flow,
        optimize_first=optimize_first,
    )
