"""Text rendering of the regenerated tables and figures.

These helpers render the measured results in the same row/column layout as
the paper's tables so that EXPERIMENTS.md and the pytest benchmark output can
be compared against the published values at a glance.
"""

from __future__ import annotations

from repro.core.families import LogicFamily
from repro.experiments.figure6 import Figure6Result
from repro.experiments.table2 import Table2Result
from repro.experiments.table3 import Table3Result

_FAMILY_LABELS = {
    LogicFamily.TG_STATIC: "CNTFET TG static",
    LogicFamily.TG_PSEUDO: "CNTFET TG pseudo",
    LogicFamily.PASS_STATIC: "CNTFET pass static",
    LogicFamily.PASS_PSEUDO: "CNTFET pass pseudo",
    LogicFamily.CMOS: "CMOS static",
}


def render_table2(result: Table2Result, per_cell: bool = False) -> str:
    """Render the Table-2 family summaries (and optionally every cell row)."""
    lines = ["Table 2 -- library characterization (measured vs. paper averages)"]
    header = (
        f"{'family':<22} {'cells':>5} {'T(avg)':>7} {'A(avg)':>7} "
        f"{'FO4 w':>7} {'FO4 a':>7} {'paper A':>8} {'paper a':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for family, summary in result.summaries.items():
        paper = result.paper_averages[family]
        lines.append(
            f"{_FAMILY_LABELS[family]:<22} {summary.cell_count:>5d} "
            f"{summary.average_transistors:>7.1f} {summary.average_area:>7.1f} "
            f"{summary.average_fo4_worst:>7.1f} {summary.average_fo4:>7.1f} "
            f"{paper.area:>8.1f} {paper.fo4_average:>8.1f}"
        )
    if per_cell:
        for family, rows in result.rows.items():
            lines.append("")
            lines.append(f"-- per-cell rows, {_FAMILY_LABELS[family]} --")
            for row in rows:
                paper_row = result.paper_rows[family].get(row.function_id)
                paper_text = (
                    f"paper: T={paper_row.transistors} A={paper_row.area:.1f} "
                    f"a={paper_row.fo4_average:.1f}"
                    if paper_row
                    else "paper: --"
                )
                lines.append(
                    f"{row.function_id}  T={row.transistors:<3d} A={row.area:<6.1f} "
                    f"FO4w={row.fo4_worst:<6.1f} FO4a={row.fo4_average:<6.1f} | {paper_text}"
                )
    return "\n".join(lines)


def render_table3(result: Table3Result) -> str:
    """Render the measured Table-3 rows with the paper's values alongside."""
    lines = ["Table 3 -- technology mapping (measured; paper values in parentheses)"]
    header = (
        f"{'benchmark':<10} {'family':<18} {'gates':>12} {'area':>16} "
        f"{'levels':>11} {'norm delay':>16} {'abs delay ps':>16}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS):
            stats = row.results.get(family)
            if stats is None:
                continue
            paper_stats = None
            if row.paper is not None:
                paper_stats = {
                    LogicFamily.TG_STATIC: row.paper.tg_static,
                    LogicFamily.TG_PSEUDO: row.paper.tg_pseudo,
                    LogicFamily.CMOS: row.paper.cmos,
                }[family]
            def fmt(value, paper_value, pattern="{:.1f}"):
                text = pattern.format(value)
                if paper_value is None:
                    return text
                return f"{text} ({pattern.format(paper_value)})"
            lines.append(
                f"{row.name:<10} {_FAMILY_LABELS[family]:<18} "
                f"{fmt(stats.gates, paper_stats.gates if paper_stats else None, '{:.0f}'):>12} "
                f"{fmt(stats.area, paper_stats.area if paper_stats else None, '{:.0f}'):>16} "
                f"{fmt(stats.levels, paper_stats.levels if paper_stats else None, '{:.0f}'):>11} "
                f"{fmt(stats.normalized_delay, paper_stats.normalized_delay if paper_stats else None):>16} "
                f"{fmt(stats.absolute_delay_ps, paper_stats.absolute_delay_ps if paper_stats else None):>16}"
            )
    lines.append("")
    lines.append("Average improvements vs. CMOS (measured / paper):")
    paper_improvements = {
        LogicFamily.TG_STATIC: (0.386, 0.377, 0.415, 0.264, 6.9),
        LogicFamily.TG_PSEUDO: (0.379, 0.645, 0.404, 0.130, 5.8),
    }
    for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO):
        if family not in result.rows[0].results:
            continue
        gates = result.average_improvement(family, "gates")
        area = result.average_improvement(family, "area")
        levels = result.average_improvement(family, "levels")
        delay = result.average_improvement(family, "normalized_delay")
        speedup = result.average_speedup(family)
        p = paper_improvements[family]
        lines.append(
            f"  {_FAMILY_LABELS[family]:<18} gates {gates:5.1%} ({p[0]:.1%})  "
            f"area {area:5.1%} ({p[1]:.1%})  levels {levels:5.1%} ({p[2]:.1%})  "
            f"norm delay {delay:5.1%} ({p[3]:.1%})  speed-up {speedup:4.1f}x ({p[4]:.1f}x)"
        )
    return "\n".join(lines)


def render_figure6(result: Figure6Result) -> str:
    """Render the Figure-6 series as a text bar chart."""
    lines = ["Figure 6 -- ratio of CMOS absolute delay to CNTFET absolute delay"]
    lines.append(
        f"{'benchmark':<10} {'static':>8} {'pseudo':>8} {'paper s':>9} {'paper p':>9}  bar (static)"
    )
    for i, name in enumerate(result.benchmark_names):
        static = result.static_speedups[i]
        pseudo = result.pseudo_speedups[i]
        bar = "#" * max(int(round(static * 2)), 1)
        lines.append(
            f"{name:<10} {static:>8.2f} {pseudo:>8.2f} "
            f"{result.paper_static_speedups[i]:>9.2f} {result.paper_pseudo_speedups[i]:>9.2f}  {bar}"
        )
    lines.append(
        f"{'Average':<10} {result.average_static_speedup:>8.2f} "
        f"{result.average_pseudo_speedup:>8.2f} "
        f"{result.paper_average_static_speedup:>9.2f} "
        f"{result.paper_average_pseudo_speedup:>9.2f}"
    )
    return "\n".join(lines)


def render_comparison(result: Table3Result) -> str:
    """One-line verdicts on the qualitative claims of the paper."""
    static = LogicFamily.TG_STATIC
    pseudo = LogicFamily.TG_PSEUDO
    checks = [
        ("static library uses fewer gates than CMOS on average",
         result.average_improvement(static, "gates") > 0),
        ("static library uses less area than CMOS on average",
         result.average_improvement(static, "area") > 0),
        ("pseudo library saves more area than the static library",
         result.average_improvement(pseudo, "area")
         > result.average_improvement(static, "area")),
        ("static library is faster (absolute) than CMOS on average",
         result.average_speedup(static) > 1.0),
        ("static library is faster than the pseudo library",
         result.average_speedup(static) > result.average_speedup(pseudo)),
        ("logic depth is reduced versus CMOS",
         result.average_improvement(static, "levels") > 0),
    ]
    lines = ["Qualitative claims of the paper (measured verdicts):"]
    for text, verdict in checks:
        lines.append(f"  [{'ok' if verdict else 'FAIL'}] {text}")
    return "\n".join(lines)
