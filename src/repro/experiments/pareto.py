"""Experiment: per-benchmark area/delay/power Pareto fronts.

The paper's comparison is inherently multi-objective: the ambipolar families
trade area and delay against the static power of their weak pull-up loads.
This experiment makes that tradeoff explicit.  For every benchmark it maps
the optimized subject graph onto every requested logic family under every
mapping objective (``delay``, ``area`` and ``power``), collects one
``(area, absolute delay, total power)`` point per (family, objective)
combination, and extracts the non-dominated subset -- the Pareto front a
designer would actually choose from.

Scheduling goes through the experiment engine, so the points are ordinary
:class:`~repro.experiments.engine.MapJob` results: cached on disk under the
content-addressed key (which covers the objective and the Monte-Carlo
activity parameters) and bit-identical between sequential and parallel runs
-- the ``pareto.json`` artifact of ``--jobs 4`` equals that of ``--jobs 1``
byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.activity import DEFAULT_SEED, DEFAULT_VECTORS
from repro.core.families import LogicFamily
from repro.flow import DEFAULT_FLOW

#: Every characterized logic family participates in the front by default
#: (the three Table-3 libraries plus the two pass-transistor variants).
PARETO_FAMILIES: tuple[LogicFamily, ...] = tuple(LogicFamily)

#: The three mapping objectives swept per family.
PARETO_OBJECTIVES: tuple[str, ...] = ("delay", "area", "power")


@dataclass(frozen=True)
class ParetoPoint:
    """One (family, objective[, recovery rounds]) mapping in the
    area/delay/power space."""

    family: LogicFamily
    objective: str
    gates: int
    area: float
    levels: int
    normalized_delay: float
    absolute_delay_ps: float
    dynamic_power: float
    static_power: float
    total_power: float
    #: Required-time recovery rounds the point was mapped with (0 = the
    #: classical single-pass mapping).
    rounds: int = 0

    def metrics(self) -> tuple[float, float, float]:
        """The minimized coordinates: (area, absolute delay, total power)."""
        return (self.area, self.absolute_delay_ps, self.total_power)

    def dominates(self, other: "ParetoPoint") -> bool:
        """No-worse in every coordinate and strictly better in at least one."""
        ours, theirs = self.metrics(), other.metrics()
        return all(a <= b for a, b in zip(ours, theirs)) and any(
            a < b for a, b in zip(ours, theirs)
        )


@dataclass(frozen=True)
class ParetoRow:
    """All points and the non-dominated front for one benchmark."""

    name: str
    function: str
    aig_nodes: int
    aig_depth: int
    points: tuple[ParetoPoint, ...]
    front: tuple[ParetoPoint, ...]

    def front_families(self) -> tuple[str, ...]:
        return tuple(sorted({point.family.value for point in self.front}))


@dataclass
class ParetoResult:
    """Pareto fronts for every requested benchmark."""

    rows: list[ParetoRow] = field(default_factory=list)
    families: tuple[LogicFamily, ...] = PARETO_FAMILIES
    objectives: tuple[str, ...] = PARETO_OBJECTIVES
    flow: str = DEFAULT_FLOW
    power_vectors: int = DEFAULT_VECTORS
    power_seed: int = DEFAULT_SEED
    #: Recovery rounds of the additional recovered sweep (0 = round-0-only
    #: sweep, the historical point set).
    rounds: int = 0
    recovery: str = "auto"

    def row(self, name: str) -> ParetoRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no Pareto result for benchmark {name!r}")


def pareto_front(points: tuple[ParetoPoint, ...]) -> tuple[ParetoPoint, ...]:
    """The non-dominated subset, in the (stable) order the points came in."""
    return tuple(
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    )


def run_pareto(
    benchmark_names: tuple[str, ...] | None = None,
    families: tuple[LogicFamily, ...] = PARETO_FAMILIES,
    objectives: tuple[str, ...] = PARETO_OBJECTIVES,
    flow: str = DEFAULT_FLOW,
    engine=None,
    power_vectors: int = DEFAULT_VECTORS,
    power_seed: int = DEFAULT_SEED,
    rounds: int = 0,
    recovery: str = "auto",
) -> ParetoResult:
    """Compute area/delay/power Pareto fronts for the requested benchmarks.

    One :class:`~repro.experiments.engine.MapJob` per (benchmark, family,
    objective) triple is scheduled through ``engine`` (sequential and
    cache-less by default, like :func:`repro.experiments.table3.run_table3`).
    With ``rounds > 0`` every (family, objective) pair contributes a second
    point mapped with that many required-time recovery rounds -- the
    recovered variants enter the dominance comparison alongside the round-0
    sweep, usually pushing the front toward lower area/power at equal delay.
    """
    from repro.experiments.engine import ExperimentEngine, MapJob, _resolve_cases

    if engine is None:
        engine = ExperimentEngine(jobs=1, use_cache=False)

    cases = _resolve_cases(benchmark_names)
    round_variants = (0,) if rounds == 0 else (0, rounds)

    def job_for(
        case_name: str, family: LogicFamily, objective: str, job_rounds: int
    ) -> MapJob:
        return MapJob(
            case_name,
            family,
            objective=objective,
            flow=flow,
            power_vectors=power_vectors,
            power_seed=power_seed,
            rounds=job_rounds,
            recovery=recovery,
        )

    jobs = [
        job_for(case.name, family, objective, job_rounds)
        for case in cases
        for family in families
        for objective in objectives
        for job_rounds in round_variants
    ]
    by_job = engine.run_map_jobs(jobs)

    result = ParetoResult(
        families=tuple(families),
        objectives=tuple(objectives),
        flow=flow,
        power_vectors=power_vectors,
        power_seed=power_seed,
        rounds=rounds,
        recovery=recovery,
    )
    for case in cases:
        points: list[ParetoPoint] = []
        aig_nodes = aig_depth = 0
        for family in families:
            for objective in objectives:
                for job_rounds in round_variants:
                    job_result = by_job[
                        job_for(case.name, family, objective, job_rounds)
                    ]
                    stats, power = job_result.stats, job_result.power
                    aig_nodes = job_result.aig_nodes
                    aig_depth = job_result.aig_depth
                    points.append(
                        ParetoPoint(
                            family=family,
                            objective=objective,
                            gates=stats.gates,
                            area=stats.area,
                            levels=stats.levels,
                            normalized_delay=stats.normalized_delay,
                            absolute_delay_ps=stats.absolute_delay_ps,
                            dynamic_power=power.dynamic + power.input_dynamic,
                            static_power=power.static,
                            total_power=power.total,
                            rounds=job_rounds,
                        )
                    )
        all_points = tuple(points)
        result.rows.append(
            ParetoRow(
                name=case.name,
                function=case.function,
                aig_nodes=aig_nodes,
                aig_depth=aig_depth,
                points=all_points,
                front=pareto_front(all_points),
            )
        )
    return result


def _point_payload(point: ParetoPoint) -> dict:
    payload = {
        "family": point.family.value,
        "objective": point.objective,
        "gates": point.gates,
        "area": point.area,
        "levels": point.levels,
        "normalized_delay": point.normalized_delay,
        "absolute_delay_ps": point.absolute_delay_ps,
        "dynamic_power": point.dynamic_power,
        "static_power": point.static_power,
        "total_power": point.total_power,
    }
    if point.rounds:
        payload["rounds"] = point.rounds
    return payload


def pareto_payload(result: ParetoResult) -> dict:
    """JSON-ready view of a Pareto result (the ``pareto.json`` artifact).

    Recovery metadata (the per-point ``rounds`` tag and the sweep-level
    knobs) is only emitted for recovered sweeps so round-0 artifacts stay
    byte-identical to the pre-recovery format.
    """
    payload = {
        "families": [family.value for family in result.families],
        "objectives": list(result.objectives),
        "flow": result.flow,
        "power_vectors": result.power_vectors,
        "power_seed": result.power_seed,
        "rows": [
            {
                "name": row.name,
                "function": row.function,
                "aig_nodes": row.aig_nodes,
                "aig_depth": row.aig_depth,
                "points": [_point_payload(point) for point in row.points],
                "front": [_point_payload(point) for point in row.front],
            }
            for row in result.rows
        ],
    }
    if result.rounds:
        payload["map_rounds"] = result.rounds
        payload["map_recovery"] = result.recovery
    return payload


def render_pareto(result: ParetoResult) -> str:
    """Text rendering: every benchmark's front, one point per line."""
    sweep = f"flow: {result.flow}"
    if result.rounds:
        sweep += f"; recovery: {result.rounds} round(s) of {result.recovery}"
    lines = [
        f"Pareto fronts (area / absolute delay / total power; {sweep})",
    ]
    for row in result.rows:
        lines.append(
            f"{row.name} ({row.function}): {len(row.front)} of "
            f"{len(row.points)} points on the front"
        )
        for point in row.front:
            tag = f" +r{point.rounds}" if point.rounds else ""
            lines.append(
                f"  {point.family.value:<22} {point.objective:<6}{tag} "
                f"area {point.area:9.1f}  delay {point.absolute_delay_ps:8.1f} ps  "
                f"power {point.total_power:9.2f} "
                f"(dyn {point.dynamic_power:8.2f} + stat {point.static_power:7.2f})"
            )
    return "\n".join(lines)
