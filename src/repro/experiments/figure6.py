"""Experiment: regenerate Figure 6 (CMOS-to-CNTFET absolute-delay ratios).

Figure 6 of the paper plots, for every benchmark, the ratio of the absolute
delay of the CMOS implementation to that of the CNTFET implementation, for
the static and pseudo transmission-gate families.  The data is derived
directly from the Table-3 measurements (normalized delay times the
technology intrinsic delay), so this experiment reuses a
:class:`~repro.experiments.table3.Table3Result` and extracts the two series
plus their averages (the paper reports 6.9x and 5.8x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.families import LogicFamily
from repro.core.paper_data import PAPER_TAU_PS, paper_benchmark
from repro.experiments.table3 import Table3Result, run_table3


def _mean(values: tuple[float, ...]) -> float:
    """Average of a series (0.0 when only external benchmarks were run)."""
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class Figure6Result:
    """Per-benchmark speed-up series for the static and pseudo families."""

    benchmark_names: tuple[str, ...]
    static_speedups: tuple[float, ...]
    pseudo_speedups: tuple[float, ...]
    paper_static_speedups: tuple[float, ...]
    paper_pseudo_speedups: tuple[float, ...]

    @property
    def average_static_speedup(self) -> float:
        return _mean(self.static_speedups)

    @property
    def average_pseudo_speedup(self) -> float:
        return _mean(self.pseudo_speedups)

    @property
    def paper_average_static_speedup(self) -> float:
        return _mean(self.paper_static_speedups)

    @property
    def paper_average_pseudo_speedup(self) -> float:
        return _mean(self.paper_pseudo_speedups)

    def series(self) -> dict[str, dict[str, float]]:
        """Figure data keyed by benchmark name (ready for plotting or tabulation)."""
        data: dict[str, dict[str, float]] = {}
        for i, name in enumerate(self.benchmark_names):
            data[name] = {
                "static": self.static_speedups[i],
                "pseudo": self.pseudo_speedups[i],
                "paper_static": self.paper_static_speedups[i],
                "paper_pseudo": self.paper_pseudo_speedups[i],
            }
        return data


def figure6_from_table3(table3: Table3Result) -> Figure6Result:
    """Derive the Figure-6 series from already-computed Table-3 results.

    Rows without a published counterpart (externally registered benchmarks)
    are skipped: Figure 6 is a comparison against the paper's numbers.
    """
    names: list[str] = []
    static: list[float] = []
    pseudo: list[float] = []
    paper_static: list[float] = []
    paper_pseudo: list[float] = []
    for row in table3.rows:
        if row.paper is None:
            continue
        names.append(row.name)
        static.append(row.speedup_vs_cmos(LogicFamily.TG_STATIC))
        pseudo.append(row.speedup_vs_cmos(LogicFamily.TG_PSEUDO))
        paper = paper_benchmark(row.name)
        paper_static.append(paper.cmos.absolute_delay_ps / paper.tg_static.absolute_delay_ps)
        paper_pseudo.append(paper.cmos.absolute_delay_ps / paper.tg_pseudo.absolute_delay_ps)
    return Figure6Result(
        benchmark_names=tuple(names),
        static_speedups=tuple(static),
        pseudo_speedups=tuple(pseudo),
        paper_static_speedups=tuple(paper_static),
        paper_pseudo_speedups=tuple(paper_pseudo),
    )


def run_figure6(
    benchmark_names: tuple[str, ...] | None = None,
    engine=None,
) -> Figure6Result:
    """Run the mapping flow and produce the Figure-6 series."""
    return figure6_from_table3(
        run_table3(benchmark_names=benchmark_names, engine=engine)
    )
