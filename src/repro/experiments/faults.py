"""Deterministic fault injection for the experiment engine (chaos harness).

The resilience layer (:mod:`repro.experiments.resilience`) is only worth
trusting if its failure paths are exercised on purpose.  This module defines
a seeded, declarative :class:`FaultPlan` that the chaos suite installs into
worker processes to make a specific bad thing happen at a specific point:

* **worker kill** -- the worker executing the plan's target job dies with
  ``os._exit`` (the moral equivalent of an OOM kill), breaking the pool;
* **job delay** -- the target job sleeps past its wall-clock budget,
  driving the timeout/pool-rebuild path;
* **shared-memory attach failure** -- :func:`on_shm_attach` raises
  ``OSError``, driving the engine's degraded recompute-from-spec path;
* **cache corruption** -- :func:`corrupt_file` deterministically truncates
  or bit-flips an on-disk cache entry, driving the quarantine path.

Plans travel to workers through the environment (``REPRO_FAULT_PLAN`` holds
the JSON form; the engine's pool initializer calls
:func:`install_from_env`), so they survive both ``fork`` and ``spawn``
start methods.  The parent process never installs a plan from the
environment, which keeps the deterministic in-process fallback fault-free
by construction -- exactly the degradation contract the engine promises.

Faults that must strike *once per run* rather than once per worker (a
worker kill re-fires forever otherwise: the replacement worker sees the
same ordinal) are latched through ``once_dir``, a spool directory where the
first worker to claim a fault id wins via ``O_CREAT | O_EXCL``.  The same
spool doubles as the execution ledger: :func:`on_job_start` appends one
record per job execution, which is how the chaos tests prove that already
finished jobs are never rerun after a mid-batch crash.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from random import Random

#: Environment variable carrying the JSON form of the active plan.
ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault schedule.

    ``kill_job`` / ``delay_job`` name the 0-based job-execution ordinal
    (per worker process) whose execution triggers the fault; both are
    latched through ``once_dir`` so they strike once per run.
    ``fail_shm_attach`` fails every *first* attach per subject key (also
    latched), forcing the degraded recompute path.  ``seed`` drives every
    derived random stream (:meth:`rng`, :func:`corrupt_file`).
    """

    seed: int = 0
    kill_job: int | None = None
    delay_job: int | None = None
    delay_seconds: float = 0.0
    fail_shm_attach: bool = False
    once_dir: str | None = None
    #: Exit status of an injected worker kill (distinctive in core dumps
    #: and logs; anything nonzero breaks the pool the same way).
    kill_status: int = 17

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        return cls(**data)

    def rng(self, tag: str) -> Random:
        """A deterministic random stream scoped to ``tag``."""
        return Random(f"{self.seed}:{tag}")


_PLAN: FaultPlan | None = None
_JOB_ORDINAL = 0


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` in this process (``None`` clears it)."""
    global _PLAN, _JOB_ORDINAL
    _PLAN = plan
    _JOB_ORDINAL = 0


def install_from_env(environ=None) -> None:
    """Install the plan carried by ``REPRO_FAULT_PLAN``, if any.

    Called from the engine's pool initializer, i.e. only ever in worker
    processes.  A malformed plan is ignored rather than letting a chaos
    knob break a production run.
    """
    env = os.environ if environ is None else environ
    raw = env.get(ENV_VAR)
    if not raw:
        return
    try:
        install(FaultPlan.from_json(raw))
    except (ValueError, TypeError):  # pragma: no cover - malformed plan
        install(None)


def active_plan() -> FaultPlan | None:
    return _PLAN


def claim_once(directory: str | os.PathLike, fault_id: str) -> bool:
    """Cross-process once-latch: True for exactly one claimant of ``fault_id``."""
    path = Path(directory) / f"{fault_id}.fired"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False  # unusable spool: fail safe, do not fire
    try:
        os.write(fd, f"{os.getpid()}\n".encode())
    finally:
        os.close(fd)
    return True


def _claim(plan: FaultPlan, fault_id: str) -> bool:
    if plan.once_dir is None:
        return True
    return claim_once(plan.once_dir, fault_id)


def _record_execution(plan: FaultPlan, tag: str) -> None:
    if plan.once_dir is None or not tag:
        return
    ledger = Path(plan.once_dir) / "executions"
    try:
        ledger.mkdir(exist_ok=True)
        # One uniquely named file per execution: concurrent workers never
        # contend, and readers just count files per tag.
        name = f"{tag}--{os.getpid()}-{_JOB_ORDINAL}-{time.monotonic_ns():x}"
        (ledger / name).touch()
    except OSError:  # pragma: no cover - unusable spool
        pass


def execution_counts(once_dir: str | os.PathLike) -> dict[str, int]:
    """Per-tag job-execution counts recorded under ``once_dir``."""
    ledger = Path(once_dir) / "executions"
    counts: dict[str, int] = {}
    if not ledger.is_dir():
        return counts
    for entry in ledger.iterdir():
        tag = entry.name.rsplit("--", 1)[0]
        counts[tag] = counts.get(tag, 0) + 1
    return counts


def on_job_start(tag: str = "") -> None:
    """Engine hook: fired by workers at the start of every job execution.

    A no-op unless a plan is installed in this process.  May kill the
    process (``kill_job``) or stall it (``delay_job``); always records the
    execution in the ledger first, so a killed execution is still counted.
    """
    global _JOB_ORDINAL
    plan = _PLAN
    if plan is None:
        return
    ordinal = _JOB_ORDINAL
    _JOB_ORDINAL += 1
    _record_execution(plan, tag)
    if (
        plan.kill_job is not None
        and ordinal >= plan.kill_job
        and _claim(plan, "kill")
    ):
        os._exit(plan.kill_status)
    if (
        plan.delay_job is not None
        and ordinal >= plan.delay_job
        and plan.delay_seconds > 0
        and _claim(plan, "delay")
    ):
        time.sleep(plan.delay_seconds)


def on_shm_attach(key: str) -> None:
    """Shared-memory hook: fired before attaching a published segment."""
    plan = _PLAN
    if plan is None or not plan.fail_shm_attach:
        return
    if _claim(plan, f"shm:{key}"):
        raise OSError(f"injected shared-memory attach failure for {key!r}")


def corrupt_file(path: str | os.PathLike, seed: int = 0, mode: str = "flip") -> None:
    """Deterministically damage a file (cache-corruption fault).

    ``mode="truncate"`` keeps the first half of the file; ``mode="flip"``
    flips a seeded selection of bits in place.  Both leave the file present
    so the reader must *detect* the damage rather than miss on ENOENT.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
        return
    if mode != "flip":
        raise ValueError(f"unknown corruption mode {mode!r}")
    if not data:
        return
    blob = bytearray(data)
    rng = Random(f"{seed}:{path.name}")
    for _ in range(max(1, len(blob) // 64)):
        position = rng.randrange(len(blob))
        blob[position] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(blob))
