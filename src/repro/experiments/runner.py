"""Command-line entry point for regenerating every table and figure.

Run as ``python -m repro.experiments.runner`` (optionally with a subset of
benchmark names) to print the regenerated Table 2, Table 3 and Figure 6 with
the paper's values alongside.  The same code paths are exercised by the
pytest benchmarks in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figure6 import figure6_from_table3
from repro.experiments.report import (
    render_comparison,
    render_figure6,
    render_table2,
    render_table3,
)
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help="optional subset of Table-3 benchmark names (default: all 15)",
    )
    parser.add_argument(
        "--per-cell",
        action="store_true",
        help="print every Table-2 cell row, not only the family averages",
    )
    parser.add_argument(
        "--skip-table3",
        action="store_true",
        help="only regenerate Table 2 (fast)",
    )
    args = parser.parse_args(argv)

    start = time.time()
    table2 = run_table2()
    print(render_table2(table2, per_cell=args.per_cell))
    print()

    if not args.skip_table3:
        names = tuple(args.benchmarks) if args.benchmarks else None
        table3 = run_table3(benchmark_names=names)
        print(render_table3(table3))
        print()
        print(render_figure6(figure6_from_table3(table3)))
        print()
        print(render_comparison(table3))

    print(f"\ntotal runtime: {time.time() - start:.1f} s")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
