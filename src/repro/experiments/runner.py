"""Command-line entry point for regenerating every table and figure.

Run as ``python -m repro.experiments.runner`` (optionally with a subset of
benchmark names) to print the regenerated Table 2, Table 3 and Figure 6 with
the paper's values alongside.  The same code paths are exercised by the
pytest benchmarks in ``benchmarks/``.

Scheduling goes through the parallel experiment engine
(:mod:`repro.experiments.engine`):

``--jobs N``
    Run the independent (benchmark, library, objective) mapping jobs on
    ``N`` worker processes.  ``--jobs 1`` (the default) uses the
    deterministic in-process path; parallel runs produce bit-identical
    results.

``--no-cache``
    Disable the content-addressed on-disk result cache.  By default every
    job result is memoized under ``$REPRO_CACHE_DIR`` (falling back to
    ``$XDG_CACHE_HOME/repro/experiments``, then
    ``~/.cache/repro/experiments``), keyed by a SHA-256 hash of the subject
    AIG, the characterized library and the flow parameters, so re-runs on
    unchanged inputs are nearly free.  ``--cache-dir PATH`` relocates the
    cache.

``--json DIR``
    Additionally write machine-readable ``table2.json`` / ``table3.json`` /
    ``figure6.json`` artifacts into ``DIR``.

``--flow NAME`` / ``--list-flows``
    Select the technology-independent synthesis flow run before mapping
    (default: ``resyn2rs``, the paper's flow).  The flow name and the flow's
    pass-pipeline fingerprint are folded into the cache key, so results
    computed under one flow never satisfy requests for another.
    ``--list-flows`` prints every registered flow and exits.

``--objective {delay,area,power}``
    Mapping objective of the Table-3 jobs (default: ``delay``).  The
    selection is recorded in the ``table3.json`` metadata and in the cache
    key.  ``power`` minimizes the activity-weighted switched-capacitance
    flow (see :mod:`repro.analysis`).

``--map-rounds N`` / ``--map-recovery {auto,area,power}``
    Required-time recovery rounds of the mapper (default: 0, the classical
    single-pass mapping).  With ``N > 0`` every mapping job re-chooses
    matches on slack under the recovery cost model without ever worsening
    the round-0 worst delay or the recovered axis
    (:func:`repro.synthesis.mapper.map_rounds`); ``--map-recovery`` picks
    the axis (``auto``: area for the delay/area objectives, power for the
    power objective).  Both knobs are folded into the cache key and, when
    non-zero, recorded in the ``table3.json``/``pareto.json`` metadata;
    with ``--pareto`` the recovered variants join the sweep as extra
    points.

``--extra-benchmark PATH``
    Register an external BLIF circuit as an additional benchmark (repeat
    the flag for several).  The circuit flows through the same engine jobs,
    caching and artifacts as the built-in Table-3 set; it is keyed by its
    structural content hash, so renaming the file never stales the cache.

``--power-vectors N`` / ``--power-seed N``
    Monte-Carlo signal-statistics parameters behind the power axis:
    ``N * 64`` random patterns per benchmark with more primary inputs than
    the exact-enumeration limit.  Both are folded into the cache key.

``--pareto``
    Additionally sweep every logic family under every mapping objective and
    print the per-benchmark area/delay/power Pareto fronts
    (:mod:`repro.experiments.pareto`); with ``--json DIR`` the sweep is
    written as ``pareto.json``.

``--job-timeout SEC`` / ``--job-retries N``
    Fault-tolerance knobs of parallel runs (``--jobs > 1``): every mapping
    job gets a wall-clock budget of SEC seconds (0 = unbounded, the
    default) and is retried up to N times (default: 2) with exponential
    backoff when its worker crashes or times out, rebuilding the process
    pool as needed; a job that exhausts its retries is computed on the
    deterministic in-process path instead.  Environment defaults:
    ``REPRO_JOB_TIMEOUT`` / ``REPRO_JOB_RETRIES``.  Real flow exceptions
    are never retried.

``--cache-stats``
    Print the robustness counters after the run as JSON: result-cache
    hits/misses/corrupt-quarantines/evictions/puts, shared-memory
    degradations, pool rebuilds, in-process degradations and the
    crash/timeout failure classification.

``--profile`` / ``--profile-out PATH``
    Emit per-stage wall-clock timing (``optimize`` / ``activity`` /
    ``cuts`` / ``match`` / ``cover`` / ``recover`` / ``power`` /
    ``verify``) as JSON -- to
    stdout with ``--profile``, to PATH with ``--profile-out`` (which implies
    ``--profile``) -- so performance work can attribute wins per pipeline
    stage.  Profiling disables the result cache (cached jobs skip every
    stage, so a warm run would produce no attributable numbers) but works
    at any ``--jobs`` count: workers ship their per-stage snapshots back
    inside the job payloads and the parent merges them, so a ``--jobs 4``
    profile reports the same stage entries as a sequential one.

``--trace PATH``
    Record the run through the hierarchical span tracer
    (:mod:`repro.obs`) and export it as a Chrome trace-event JSON file --
    load PATH in Perfetto or ``about:tracing`` to see the run laid out as
    one track per process: the parent's scheduling/cache spans plus every
    worker's job -> pass -> round -> stage hierarchy.  Unlike
    ``--profile``, tracing composes with the cache (hits appear as
    synthesized ``cache-hit`` spans) and with ``--jobs N``, and never
    changes the computed artifacts.

``--metrics-out PATH``
    Write the run metrics report (implies tracing): log-bucketed latency
    histograms with p50/p90/p99 for jobs and flow passes, per-stage time
    totals, cache hit rate, retry/crash/timeout counts and the top spans
    by self time, plus the full robustness counters.

``--events-out PATH``
    Write the structured JSONL event log (implies tracing): one JSON
    object per line -- run envelope, spans, point events -- every line
    tagged with the run id (``$REPRO_RUN_ID`` overrides the generated id).

Parallel runs additionally render a live one-line stderr progress report
(jobs done / cached / retried / degraded and the running cache hit rate)
when stderr is a terminal; ``REPRO_LIVE=1``/``0`` forces it on/off.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from repro import obs, profiling
from repro.analysis.activity import DEFAULT_SEED, DEFAULT_VECTORS
from repro.bench.registry import register_blif_benchmark
from repro.experiments.engine import ExperimentEngine
from repro.experiments.resilience import RetryPolicy
from repro.flow import DEFAULT_FLOW, available_flows, get_flow
from repro.experiments.figure6 import figure6_from_table3
from repro.experiments.pareto import render_pareto
from repro.experiments.report import (
    render_comparison,
    render_figure6,
    render_table2,
    render_table3,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help="optional subset of Table-3 benchmark names (default: all 15)",
    )
    parser.add_argument(
        "--per-cell",
        action="store_true",
        help="print every Table-2 cell row, not only the family averages",
    )
    parser.add_argument(
        "--skip-table3",
        action="store_true",
        help="only regenerate Table 2 (fast)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment engine (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="override the result cache location",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write table2.json/table3.json/figure6.json into DIR",
    )
    parser.add_argument(
        "--flow",
        metavar="NAME",
        default=DEFAULT_FLOW,
        help="synthesis flow run before mapping (see --list-flows; "
        f"default: {DEFAULT_FLOW})",
    )
    parser.add_argument(
        "--list-flows",
        action="store_true",
        help="print the registered synthesis flows and exit",
    )
    parser.add_argument(
        "--objective",
        choices=("delay", "area", "power"),
        default="delay",
        help="mapping objective for the Table-3 jobs (default: delay)",
    )
    parser.add_argument(
        "--power-vectors",
        type=int,
        default=DEFAULT_VECTORS,
        metavar="N",
        help="Monte-Carlo 64-pattern words per input for the power axis "
        f"(default: {DEFAULT_VECTORS})",
    )
    parser.add_argument(
        "--power-seed",
        type=int,
        default=DEFAULT_SEED,
        metavar="N",
        help=f"Monte-Carlo signal-statistics seed (default: {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--map-rounds",
        type=int,
        default=0,
        metavar="N",
        help="required-time recovery rounds of the mapper (default: 0 = "
        "single-pass mapping)",
    )
    parser.add_argument(
        "--map-recovery",
        choices=("auto", "area", "power"),
        default="auto",
        help="cost axis of the recovery rounds (default: auto -- area for "
        "the delay/area objectives, power for the power objective)",
    )
    parser.add_argument(
        "--extra-benchmark",
        metavar="PATH",
        action="append",
        default=[],
        help="register an external BLIF circuit as an additional benchmark "
        "(may be repeated)",
    )
    parser.add_argument(
        "--pareto",
        action="store_true",
        help="additionally sweep every family under every objective and "
        "print the per-benchmark area/delay/power Pareto fronts",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="wall-clock budget per mapping job in parallel runs "
        "(0 = unbounded; default: $REPRO_JOB_TIMEOUT or unbounded)",
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=None,
        metavar="N",
        help="crash/timeout retries per job in parallel runs "
        "(default: $REPRO_JOB_RETRIES or 2)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache/resilience counters (hits, misses, quarantines, "
        "evictions, retries, pool rebuilds) as JSON after the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="emit per-stage timing JSON (optimize/cuts/match/cover/verify) "
        "to stdout; implies --no-cache, works at any --jobs count",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="write the per-stage timing JSON to PATH (implies --profile)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the run with the span tracer and write a Chrome "
        "trace-event JSON file (open in Perfetto / about:tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run metrics report (latency percentiles, cache hit "
        "rate, failure counts) as JSON; implies tracing",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help="write the structured JSONL event log of the run; implies "
        "tracing",
    )
    args = parser.parse_args(argv)
    if args.profile_out is not None:
        args.profile = True

    if args.list_flows:
        for name in available_flows():
            spec = get_flow(name)
            passes = ", ".join(spec.pass_names()) or "(identity)"
            print(f"{name:<10} {spec.description}")
            print(f"{'':<10}   passes: {passes}; max rounds: {spec.max_rounds}")
        return 0

    get_flow(args.flow)  # reject unknown flows before doing any work
    if args.map_rounds < 0:
        parser.error("--map-rounds must be non-negative")

    extra_names = []
    for path in args.extra_benchmark:
        try:
            # No replace: two files sharing a stem must error, not silently
            # shadow each other in the reported artifacts.
            case = register_blif_benchmark(path)
        except (OSError, ValueError) as error:
            parser.error(f"--extra-benchmark {path}: {error}")
        extra_names.append(case.name)
    if extra_names:
        print(f"[extra benchmarks: {', '.join(extra_names)}]")

    # Tracing first: enable_profile() preserves a live trace buffer, so the
    # order makes --profile --trace share one coherent recording.
    trace_run_id = None
    if args.trace or args.metrics_out or args.events_out:
        trace_run_id = obs.enable_tracing()
    if args.profile:
        profiling.enable()

    retry_policy = RetryPolicy.from_env()
    if args.job_timeout is not None:
        timeout = args.job_timeout if args.job_timeout > 0 else None
        retry_policy = replace(retry_policy, timeout=timeout)
    if args.job_retries is not None:
        if args.job_retries < 0:
            parser.error("--job-retries must be non-negative")
        retry_policy = replace(retry_policy, max_attempts=args.job_retries + 1)

    progress = None
    if args.jobs > 1 and obs.live_progress_enabled():
        progress = obs.LiveProgress()

    engine = ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=False if args.profile else not args.no_cache,
        retry_policy=retry_policy,
        progress=progress,
    )

    def release_progress_line() -> None:
        # The live line renders without a newline; erase it before printing
        # a report block so tables never continue on the progress line.
        if progress is not None:
            progress.clear()

    start = time.time()
    table3 = figure6 = pareto = None
    with obs.span(
        "run",
        category="run",
        jobs=args.jobs,
        flow=args.flow,
        objective=args.objective,
    ):
        table2 = engine.run_table2()
        release_progress_line()
        print(render_table2(table2, per_cell=args.per_cell))
        print()

        if not args.skip_table3:
            names = tuple(args.benchmarks) if args.benchmarks else None
            table3 = engine.run_table3(
                benchmark_names=names,
                flow=args.flow,
                objective=args.objective,
                power_vectors=args.power_vectors,
                power_seed=args.power_seed,
                rounds=args.map_rounds,
                recovery=args.map_recovery,
            )
            figure6 = figure6_from_table3(table3)
            release_progress_line()
            header = f"[flow: {args.flow}; objective: {args.objective}"
            if args.map_rounds:
                header += (
                    f"; recovery: {args.map_rounds} round(s) of "
                    f"{args.map_recovery}"
                )
            print(header + "]")
            print(render_table3(table3))
            print()
            print(render_figure6(figure6))
            print()
            print(render_comparison(table3))

        if args.pareto:
            # The Pareto sweep schedules its own mapping jobs, so it also
            # runs (and is written) when Table 3 itself is skipped.
            names = tuple(args.benchmarks) if args.benchmarks else None
            pareto = engine.run_pareto(
                benchmark_names=names,
                flow=args.flow,
                power_vectors=args.power_vectors,
                power_seed=args.power_seed,
                rounds=args.map_rounds,
                recovery=args.map_recovery,
            )
            release_progress_line()
            print()
            print(render_pareto(pareto))

    if progress is not None:
        progress.finish()

    if args.json is not None:
        written = engine.write_artifacts(
            args.json, table2=table2, table3=table3, figure6=figure6, pareto=pareto
        )
        print(f"\nwrote {', '.join(str(path) for path in written)}")

    if args.cache_stats:
        print("\nrobustness counters:")
        print(json.dumps(engine.robustness_stats(), indent=2, sort_keys=True))

    if args.profile:
        report = profiling.snapshot()
        profiling.disable()
        rendered = json.dumps(report, indent=2, sort_keys=True)
        if args.profile_out is None:
            print("\nper-stage profile:")
            print(rendered)
        else:
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
            print(f"\nwrote per-stage profile to {args.profile_out}")

    if trace_run_id is not None:
        recorded = obs.spans()
        counter_totals = obs.counters()
        written = []
        if args.trace is not None:
            path = obs.write_chrome_trace(
                args.trace, recorded, run_id=trace_run_id, parent_pid=os.getpid()
            )
            written.append(str(path))
        if args.metrics_out is not None:
            report = obs.build_metrics(
                recorded,
                counter_totals,
                run_id=trace_run_id,
                robustness=engine.robustness_stats(),
            )
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            written.append(args.metrics_out)
        if args.events_out is not None:
            path = obs.write_events(
                args.events_out,
                recorded,
                run_id=trace_run_id,
                counters=counter_totals,
            )
            written.append(str(path))
        obs.disable_tracing()
        print(f"\n[trace {trace_run_id}] wrote {', '.join(written)}")

    print(f"\ntotal runtime: {time.time() - start:.1f} s")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
