"""Shared-memory transport of mapping subjects to pool workers.

A Table-3 run maps the same optimized AIG under several libraries and
objectives.  The flow output and the enumerated cuts are pure functions of
the subject, so the parent can compute them once and *publish* the flat
numpy buffers -- the :class:`~repro.synthesis.aig_array.AigArrays` fanin /
level / output arrays plus the :class:`~repro.synthesis.cuts.CutSet`
struct-of-arrays -- into one ``multiprocessing.shared_memory`` segment per
subject.  Workers then *resolve* a tiny picklable :class:`SubjectHandle`
(names, dtypes, offsets) back into a fully usable ``Aig`` with its array
view and cut memos pre-installed, instead of re-running the optimization
flow and cut enumeration per process.

Subjects are keyed by the content-addressed structure hash of the optimized
AIG (:func:`repro.experiments.engine.aig_fingerprint`) plus the enumeration
parameters, so a handle can never resolve against a stale segment of a
different structure.  Resolution prefers process-local state: the
publishing process answers straight from :data:`_LOCAL` (this is the
pickle-free single-process path and the pool-failure fallback), and a
worker re-attaches each segment at most once per epoch via
:data:`_ATTACHED`.  Attached arrays stay zero-copy views of the shared
segment (marked read-only); the segment itself is kept alive by the
registry entry and dropped by :func:`drop_attachments` when the worker's
cache epoch rolls over.

The publisher owns the segment lifetime: :func:`release_subjects` unlinks
every published segment once the batch's pool has drained.  Platforms
without usable POSIX shared memory simply raise ``OSError`` from
:func:`publish_subject`; the engine then falls back to shipping bare job
specs (workers recompute the subject, exactly the pre-transport behaviour).

**Lifecycle hardening.**  Segment names carry a per-process *run nonce*
(``repro<nonce><seq>``), so leaked segments are attributable to the run
that created them.  The first publish registers an ``atexit`` sweeper as a
backstop behind the engine's own ``finally`` cleanup, and
:func:`reap_stale_segments` (called at engine start) unlinks segments left
behind by a *crashed* publisher -- same ``repro`` prefix, different nonce,
older than the reap age.  Attach/publish failures are tallied in a
degraded-mode counter (:func:`degraded_count`) so chaos tests and
``--cache-stats`` can observe how often the transport fell back to
recompute-from-spec.
"""

from __future__ import annotations

import atexit
import os
import re
import time
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro import obs, profiling
from repro.experiments import faults
from repro.synthesis.aig import Aig, _Node
from repro.synthesis.aig_array import AigArrays, arrays_from_parts
from repro.synthesis.cuts import CutSet, _track_cutset_memo
from repro.synthesis.matcher import CutFunctionTable, cut_function_table

#: Byte alignment of every array inside a segment (covers all shipped dtypes).
_ALIGN = 16

#: Run nonce baked into every segment name created by this process.  Forked
#: pool workers inherit it (same run); a fresh interpreter gets a new one.
_RUN_NONCE = uuid.uuid4().hex[:8]

#: Segment names: ``repro`` + 8 hex nonce chars + 4 hex sequence chars.
#: Short enough for the most restrictive POSIX shm name limits.
_NAME_PATTERN = re.compile(r"^repro[0-9a-f]{8}[0-9a-f]{4}$")

#: Where POSIX shared memory is visible as files (Linux); reaping is a
#: graceful no-op elsewhere.
_SHM_DIR = Path("/dev/shm")

#: Default age (seconds) past which a foreign-nonce segment is considered
#: leaked by a crashed run; override with ``REPRO_SHM_REAP_AGE``.
_DEFAULT_REAP_AGE = 900.0

_SEQUENCE = 0
_ATEXIT_REGISTERED = False

# Degraded-mode tally: publishes/attaches that failed and fell back to the
# recompute-from-spec path.
_DEGRADED = 0


def note_degraded() -> None:
    """Record one transport degradation (failed publish or attach)."""
    global _DEGRADED
    _DEGRADED += 1
    profiling.count("shm.degraded")
    obs.event("shm.degraded")


def degraded_count() -> int:
    """Times this process fell back from the shared-memory transport."""
    return _DEGRADED


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """A fresh nonce-named segment (retrying the rare name collision)."""
    global _SEQUENCE
    while True:
        _SEQUENCE += 1
        name = f"repro{_RUN_NONCE}{_SEQUENCE & 0xFFFF:04x}"
        try:
            return shared_memory.SharedMemory(create=True, name=name, size=size)
        except FileExistsError:  # pragma: no cover - stale same-name segment
            continue


def _atexit_sweep() -> None:  # pragma: no cover - interpreter teardown
    """Backstop behind the engine's ``finally``: never leak our segments."""
    release_subjects()


def reap_stale_segments(max_age: float | None = None) -> int:
    """Unlink segments leaked by crashed runs; returns the count reaped.

    Only names matching this module's pattern with a *different* run nonce
    are candidates (a live concurrent run's segments are younger than the
    reap age); our own segments are owned by :func:`release_subjects`.
    """
    if max_age is None:
        raw = os.environ.get("REPRO_SHM_REAP_AGE")
        max_age = float(raw) if raw else _DEFAULT_REAP_AGE
    if not _SHM_DIR.is_dir():
        return 0
    reaped = 0
    cutoff = time.time() - max_age
    ours = f"repro{_RUN_NONCE}"
    try:
        entries = list(_SHM_DIR.iterdir())
    except OSError:  # pragma: no cover - /dev/shm unreadable
        return 0
    for entry in entries:
        if not _NAME_PATTERN.match(entry.name) or entry.name.startswith(ours):
            continue
        try:
            if entry.stat().st_mtime > cutoff:
                continue
            entry.unlink()
        except OSError:  # pragma: no cover - raced with another reaper
            continue
        reaped += 1
    if reaped:
        profiling.count("shm.reaped", reaped)
    return reaped


@dataclass(frozen=True)
class SubjectHandle:
    """Picklable description of one published subject.

    ``segments`` lists ``(field, dtype, shape, offset)`` for every array in
    the shared segment; everything else is the scalar metadata needed to
    rebuild the ``Aig`` facade (names) and to key the cut memo.
    """

    key: str
    shm_name: str
    aig_name: str
    pi_names: tuple[str, ...]
    po_names: tuple[str, ...]
    max_inputs: int
    cut_limit: int
    segments: tuple[tuple[str, str, tuple[int, ...], int], ...]


# Publisher-side registries: the live SharedMemory objects (so the segments
# can be unlinked) and the original subjects (so the publishing process
# resolves its own handles without any copying or attaching).
_PUBLISHED: dict[str, shared_memory.SharedMemory] = {}
_LOCAL: dict[str, Aig] = {}

# Worker-side registry: one attachment per subject key, holding the segment
# open for as long as the rebuilt AIG's views may be alive.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, Aig]] = {}


#: Segment fields carrying the published match index (the cut set's
#: :class:`~repro.synthesis.matcher.CutFunctionTable` columns), in
#: :class:`CutFunctionTable` field order.
_FUNCTION_TABLE_FIELDS = (
    "inverse",
    "sizes",
    "tables",
    "support",
    "width",
    "positions",
    "reduced",
    "canon",
    "cut_perm",
    "cut_phase",
    "cut_negated",
)


def _subject_arrays(
    arrays: AigArrays, cut_set: CutSet, functions: CutFunctionTable | None = None
) -> list[tuple[str, np.ndarray]]:
    """The shipped buffers, in segment order.

    ``fanout`` / ``is_and`` / ``and_nodes`` / ``level_groups`` are all
    derivable from the fanins and outputs (see
    :func:`repro.synthesis.aig_array.arrays_from_parts`), so only the
    irreducible arrays travel.  The optional match index (one
    ``fn_``-prefixed segment per :class:`CutFunctionTable` column) rides in
    the same segment; the segments tuple is self-describing, so handles with
    and without it coexist.
    """
    payload = [
        ("fanin0", arrays.fanin0),
        ("fanin1", arrays.fanin1),
        ("level", arrays.level),
        ("po_literals", arrays.po_literals),
        ("cut_count", cut_set.count),
        ("cut_leaves", cut_set.leaves),
        ("cut_size", cut_set.size),
        ("cut_table", cut_set.table),
        ("cut_support", cut_set.support),
    ]
    if functions is not None:
        payload.extend(
            (f"fn_{field}", getattr(functions, field))
            for field in _FUNCTION_TABLE_FIELDS
        )
    return payload


def publish_subject(
    key: str, aig: Aig, arrays: AigArrays, cut_set: CutSet
) -> SubjectHandle:
    """Copy a subject's arrays into a shared segment and return its handle.

    Idempotent per ``key`` (the content hash makes equal keys equal
    payloads).  Raises ``OSError`` when shared memory is unavailable;
    callers are expected to fall back to spec-only transport.
    """
    global _ATEXIT_REGISTERED
    existing = _PUBLISHED.get(key)
    if existing is not None:
        _LOCAL.setdefault(key, aig)
        return _LOCAL_HANDLES[key]

    # Build (or reuse) the subject's match index -- the distinct cut
    # functions with their NPN canonicalization columns -- so workers skip
    # the batched orbit scans entirely and resolve matches straight against
    # their (fork-inherited) matcher indexes.
    functions = cut_function_table(cut_set, arrays.and_nodes)
    payload = _subject_arrays(arrays, cut_set, functions)
    offsets: list[int] = []
    total = 0
    for _field, array in payload:
        total = -(-total // _ALIGN) * _ALIGN
        offsets.append(total)
        total += array.nbytes
    segment = _create_segment(max(total, 1))
    if not _ATEXIT_REGISTERED:
        # Backstop for publishers that die between publish and the engine's
        # ``finally`` cleanup; idempotent with release_subjects().
        atexit.register(_atexit_sweep)
        _ATEXIT_REGISTERED = True
    try:
        segments = []
        for (field, array), offset in zip(payload, offsets):
            flat = np.ascontiguousarray(array)
            view = np.frombuffer(
                segment.buf, dtype=flat.dtype, count=flat.size, offset=offset
            )
            view[:] = flat.reshape(-1)
            segments.append((field, flat.dtype.str, tuple(array.shape), offset))
        handle = SubjectHandle(
            key=key,
            shm_name=segment.name,
            aig_name=aig.name,
            pi_names=aig.pi_names,
            po_names=aig.po_names,
            max_inputs=cut_set.max_inputs,
            cut_limit=cut_set.cut_limit,
            segments=tuple(segments),
        )
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    _PUBLISHED[key] = segment
    _LOCAL[key] = aig
    _LOCAL_HANDLES[key] = handle
    return handle


#: Handles of the published subjects (publisher side), for idempotent reuse.
_LOCAL_HANDLES: dict[str, SubjectHandle] = {}


def _attach_views(handle: SubjectHandle) -> tuple[shared_memory.SharedMemory, dict]:
    faults.on_shm_attach(handle.key)  # chaos harness: may raise OSError
    segment = shared_memory.SharedMemory(name=handle.shm_name)
    # Attaching registers the segment with this process's resource tracker
    # (CPython <= 3.12), which would unlink it when *this* process exits even
    # though the publisher owns the lifetime; undo the registration.  Skip
    # the undo when this process *is* the publisher (the tracker cache is a
    # set, so the attach registration collapsed into the create one and the
    # publisher's unlink still needs it).
    if handle.key not in _PUBLISHED:
        try:  # pragma: no cover - tracker layout is an implementation detail
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
    views: dict[str, np.ndarray] = {}
    for field, dtype, shape, offset in handle.segments:
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        view = np.frombuffer(
            segment.buf, dtype=np.dtype(dtype), count=count, offset=offset
        ).reshape(shape)
        view.flags.writeable = False
        views[field] = view
    return segment, views


def _rebuild_aig(
    handle: SubjectHandle,
    fanin0: np.ndarray,
    fanin1: np.ndarray,
    level: np.ndarray,
    po_literals: np.ndarray,
) -> Aig:
    """Reconstruct the ``Aig`` facade around the shipped arrays.

    Node ids, fanin literal order (``and_gate`` stores them canonically
    sorted) and levels are taken verbatim, so the rebuilt graph is
    structurally identical to the published one -- same fingerprint, same
    cut sets, same mapping -- without re-running structural hashing.
    """
    aig = Aig(handle.aig_name)
    nodes = aig._nodes
    strash = aig._strash
    f0 = fanin0.tolist()
    f1 = fanin1.tolist()
    levels = level.tolist()
    pi_iterator = iter(handle.pi_names)
    for node in range(1, len(f0)):
        low = f0[node]
        if low < 0:
            nodes.append(_Node(-1, -1, 0))
            aig._pi_names.append(next(pi_iterator))
            aig._pi_nodes.append(node)
        else:
            high = f1[node]
            nodes.append(_Node(low, high, levels[node]))
            strash[(low, high)] = node
    for name, literal in zip(handle.po_names, po_literals.tolist()):
        aig._po_names.append(name)
        aig._po_literals.append(int(literal))
    return aig


def resolve_subject(handle: SubjectHandle) -> Aig:
    """An ``Aig`` (with array view and cut memos installed) for a handle.

    Resolution order: the publisher's own subject (:data:`_LOCAL`), a
    previous attachment (:data:`_ATTACHED`), then a fresh shared-memory
    attach.  Raises ``OSError`` when the segment cannot be opened (callers
    fall back to recomputing from the job spec).
    """
    local = _LOCAL.get(handle.key)
    if local is not None:
        return local
    attached = _ATTACHED.get(handle.key)
    if attached is not None:
        return attached[1]

    segment, views = _attach_views(handle)
    aig = _rebuild_aig(
        handle, views["fanin0"], views["fanin1"], views["level"], views["po_literals"]
    )
    arrays = arrays_from_parts(
        views["fanin0"], views["fanin1"], views["level"], views["po_literals"]
    )
    cut_set = CutSet(
        max_inputs=handle.max_inputs,
        cut_limit=handle.cut_limit,
        count=views["cut_count"],
        leaves=views["cut_leaves"],
        size=views["cut_size"],
        table=views["cut_table"],
        support=views["cut_support"],
    )
    if "fn_inverse" in views:
        # Pre-install the shipped match index: zero-copy views over the
        # parent's canonicalization columns, keyed exactly as
        # ``cut_function_table`` would memoize its own (output negation on,
        # the engine's matcher configuration).
        functions = CutFunctionTable(
            **{field: views[f"fn_{field}"] for field in _FUNCTION_TABLE_FIELDS}
        )
        object.__setattr__(cut_set, "_function_tables", {True: functions})
        _track_cutset_memo(cut_set)
    structure = (aig.num_nodes, aig.num_pos)
    aig.__dict__["_array_view"] = (structure, arrays)
    aig.__dict__["_cut_sets"] = (
        structure,
        {(handle.max_inputs, handle.cut_limit): cut_set},
    )
    _ATTACHED[handle.key] = (segment, aig)
    return aig


def release_subjects() -> None:
    """Publisher-side cleanup: unlink every published segment."""
    for segment in _PUBLISHED.values():
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    _PUBLISHED.clear()
    _LOCAL.clear()
    _LOCAL_HANDLES.clear()


#: Segments whose close failed because numpy views were still referenced;
#: retried on the next :func:`drop_attachments` (keeping the object alive
#: avoids the noisy ``BufferError`` from ``SharedMemory.__del__``).
_ZOMBIES: list[shared_memory.SharedMemory] = []


def drop_attachments() -> None:
    """Worker-side cleanup: close every attached segment.

    Called when the worker's cache epoch rolls over.  The registry's AIG
    references are dropped *before* closing so the zero-copy views they pin
    are freed first; a segment whose views are still referenced elsewhere
    is parked and re-tried on the next call rather than leaked or closed
    out from under a live array.
    """
    pending = _ZOMBIES + [segment for segment, _aig in _ATTACHED.values()]
    _ZOMBIES.clear()
    _ATTACHED.clear()
    for segment in pending:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - external views still alive
            _ZOMBIES.append(segment)
        except OSError:  # pragma: no cover - already gone
            pass


def attachment_count() -> int:
    """Number of live worker-side attachments (cache-bound diagnostics)."""
    return len(_ATTACHED)


def published_count() -> int:
    """Number of live publisher-side segments."""
    return len(_PUBLISHED)
