"""Parallel, cache-aware experiment engine.

The engine decomposes the paper's experiments into independent jobs and is
the single scheduling/caching layer behind :mod:`repro.experiments.table2`,
:mod:`repro.experiments.table3`, :mod:`repro.experiments.figure6`, the
``benchmarks/`` suite and the CLI runner:

* **Job decomposition.**  Table 3 becomes one :class:`MapJob` per
  ``(benchmark, library, objective)`` triple; Table 2 becomes one
  :class:`CharacterizationJob` per family; Figure 6 is derived from the
  Table-3 results and needs no jobs of its own.
* **Parallel execution.**  Jobs run across processes via
  :class:`concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``.  Every
  job is a pure function of its spec, so the parallel schedule is
  bit-identical to the deterministic single-process fallback (which is also
  used automatically if a process pool cannot be created).
* **Fault tolerance.**  Parallel batches go through
  :mod:`repro.experiments.resilience`: per-job futures with a wall-clock
  timeout, bounded retries with deterministic backoff for crashed or
  timed-out jobs, pool rebuild on ``BrokenExecutor`` re-dispatching only
  the jobs still pending, and in-process degradation once retries are
  exhausted.  Real job exceptions (flow errors) propagate unretried.
  Completed payloads are cache-committed the moment they arrive, never at
  batch end.  The chaos harness (:mod:`repro.experiments.faults`) injects
  deterministic worker kills / delays / attach failures to prove all of
  this keeps artifacts bit-identical.
* **Content-addressed caching.**  Each job result is memoized in an
  on-disk JSON cache keyed by a SHA-256 hash of the subject AIG structure,
  the characterized library and the flow parameters.  The store is safe
  for concurrent runners: two-level sharded directories, unique
  ``mkstemp`` staging with atomic ``os.replace`` commits under an advisory
  per-entry lock, per-entry payload checksums verified on read,
  quarantine (``<cache>/corrupt/``) of damaged entries instead of silent
  re-misses, and optional size-based LRU eviction
  (``REPRO_CACHE_MAX_BYTES``).  The cache directory is
  ``$REPRO_CACHE_DIR``, falling back to ``$XDG_CACHE_HOME/repro/experiments``
  and then ``~/.cache/repro/experiments``.
* **JSON artifacts.**  :meth:`ExperimentEngine.write_artifacts` emits
  machine-readable ``table2.json`` / ``table3.json`` / ``figure6.json``
  next to the rendered text tables.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterator, Sequence

try:  # advisory file locking; absent on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only dependency
    fcntl = None  # type: ignore[assignment]

from repro.analysis.activity import DEFAULT_SEED, DEFAULT_VECTORS, compute_activities
from repro.analysis.power import analyze_power
from repro.bench.registry import benchmark_by_name
from repro.core.characterize import (
    CellCharacterization,
    FamilySummary,
    characterize_family,
)
from repro.core.families import LogicFamily
from repro.core.library import GateLibrary, build_library
from repro.core.paper_data import PAPER_TABLE2, PAPER_TABLE2_AVERAGES
from repro.experiments.figure6 import Figure6Result, figure6_from_table3
from repro.experiments.table2 import FAMILY_KEYS, TABLE2_FAMILIES, Table2Result
from repro.experiments.table3 import (
    TABLE3_FAMILIES,
    MappingStats,
    PowerStats,
    Table3Result,
    Table3Row,
    _paper_row,
)
from repro import obs, profiling
from repro.experiments import faults, resilience, shm
from repro.flow import DEFAULT_FLOW, get_flow, resolve_flow, run_flow
from repro.synthesis.aig import Aig
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import (
    DEFAULT_CUT_LIMIT,
    DEFAULT_MAX_INPUTS,
    clear_cut_caches,
    cut_cache_sizes,
    cut_set_for,
)
from repro.synthesis.mapper import technology_map, verify_mapping
from repro.synthesis.matcher import matcher_for

#: Bump when the meaning of cached payloads changes; old entries are then
#: treated as misses and recomputed.  Schema 2: mapping jobs are keyed by
#: synthesis-flow name + flow fingerprint instead of the optimize_first flag.
#: Schema 3: mapping payloads grow the power axis (dynamic + static power of
#: the mapped netlist), keyed additionally by the Monte-Carlo activity
#: parameters (``power_vectors``/``power_seed``) and by the cells' power
#: characterization via the extended library fingerprint.  Schema 4:
#: mapping jobs carry the multi-round recovery knobs (``rounds`` /
#: ``recovery``), both folded into the key so recovered results never
#: satisfy round-0 requests (or vice versa).  Schema 5: the hardened
#: multi-process store -- entries live in two-level shard directories and
#: carry a sha256 payload checksum verified on read; pre-shard flat
#: entries are simply never found at the sharded paths.
CACHE_SCHEMA = 5


def default_cache_dir() -> Path:
    """Resolve the on-disk cache location (see module docstring)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "experiments"


def aig_fingerprint(aig: Aig) -> str:
    """Content hash of an AIG's structure (inputs, AND nodes, outputs)."""
    digest = hashlib.sha256()
    digest.update(",".join(aig.pi_names).encode())
    digest.update(b"|")
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        digest.update(f"{node}:{f0}:{f1};".encode())
    digest.update(b"|")
    for name, literal in zip(aig.po_names, aig.po_literals):
        digest.update(f"{name}={literal};".encode())
    return digest.hexdigest()


def library_fingerprint(library: GateLibrary) -> str:
    """Content hash of a characterized library.

    Covers every cell field that can reach a cached payload (Table-2 rows
    cache transistor counts, with-inverter figures and the full-swing flag
    in addition to the area/delay numbers used by mapping), so any change
    to the cell construction rules invalidates the cache.
    """
    digest = hashlib.sha256()
    digest.update(f"{library.name}:{library.tau_ps};".encode())
    for cell in library.cells:
        power = cell.power
        # The per-literal capacitance *distribution* matters, not just the
        # total: the pin loads recorded on mapped gates (and the power DP)
        # read individual polarity wires.
        literal_caps = ",".join(
            f"{literal.name}{'~' if literal.negated else ''}={cap:.9f}"
            for literal, cap in sorted(
                power.literal_capacitance.items(),
                key=lambda item: (item[0].name, item[0].negated),
            )
        )
        digest.update(
            f"{cell.function_id}:{cell.name}:{cell.arity}:{cell.function.bits}:"
            f"{cell.expression_text}:{cell.transistor_count}:{int(cell.full_swing)}:"
            f"{cell.area:.9f}:{cell.area_with_inverter:.9f}:"
            f"{cell.delay.fo4_worst:.9f}:{cell.delay.fo4_average:.9f}:"
            f"{cell.delay.parasitic_output:.9f}:"
            f"{power.switched_capacitance:.9f}:[{literal_caps}]:"
            f"{power.static_current_low:.9f}:{power.static_current_average:.9f}:"
            f"{power.low_state_fraction:.9f};".encode()
        )
    return digest.hexdigest()


@lru_cache(maxsize=None)
def _family_fingerprint(family: LogicFamily) -> str:
    """Per-family memo of :func:`library_fingerprint` (libraries are cached)."""
    return library_fingerprint(build_library(family))


@dataclass(frozen=True)
class MapJob:
    """One (benchmark, library, objective, flow) unit of Table-3 work.

    ``power_vectors``/``power_seed`` parameterize the Monte-Carlo activity
    estimation behind the power axis (and the ``power`` mapping objective);
    ``rounds``/``recovery`` select the mapper's required-time recovery
    rounds and their cost axis (see :func:`repro.synthesis.mapper.map_rounds`).
    All four are folded into the content-addressed cache key so results
    computed under one configuration never satisfy another.
    """

    benchmark: str
    family: LogicFamily
    objective: str = "delay"
    flow: str = DEFAULT_FLOW
    max_inputs: int = DEFAULT_MAX_INPUTS
    cut_limit: int = DEFAULT_CUT_LIMIT
    power_vectors: int = DEFAULT_VECTORS
    power_seed: int = DEFAULT_SEED
    rounds: int = 0
    recovery: str = "auto"

    def spec(self) -> tuple:
        """Picklable description handed to worker processes."""
        return (
            self.benchmark,
            self.family.value,
            self.objective,
            self.flow,
            self.max_inputs,
            self.cut_limit,
            self.power_vectors,
            self.power_seed,
            self.rounds,
            self.recovery,
        )

    def label(self) -> str:
        """Human-readable identity used by spans and the progress line."""
        return f"{self.benchmark}:{self.family.value}:{self.objective}"


@dataclass(frozen=True)
class MapJobResult:
    """Outcome of one :class:`MapJob`."""

    job: MapJob
    stats: MappingStats
    power: PowerStats
    aig_nodes: int
    aig_depth: int
    cached: bool


@dataclass(frozen=True)
class CharacterizationJob:
    """One Table-2 unit of work: characterize a whole family."""

    family: LogicFamily

    def spec(self) -> tuple:
        return (self.family.value,)

    def label(self) -> str:
        return f"table2:{self.family.value}"


def _payload_checksum(payload: dict) -> str:
    """Canonical sha256 over a payload's JSON form (verified on read)."""
    material = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/corruption/eviction tally of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    evicted: int = 0
    puts: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class ResultCache:
    """Content-addressed JSON store hardened for concurrent runners.

    One file per job result, in two-level shard directories
    (``<dir>/ab/cd/<key>.json``) so no single directory grows unbounded.
    Writes stage through a uniquely named ``mkstemp`` file in the target
    shard and commit with an atomic ``os.replace`` under an advisory
    per-entry ``flock`` -- two runners sharing the directory can race on
    the same key and the survivor is always one complete, valid entry.
    Entries carry a sha256 checksum of their payload, verified on every
    read; an unreadable or checksum-failing entry is *quarantined* (moved
    to ``<dir>/corrupt/`` and counted) instead of being silently re-read
    as a miss forever.  Entries with a different schema version are stale,
    not corrupt, and are overwritten in place by the next put.  With a
    size budget (``max_bytes`` or ``REPRO_CACHE_MAX_BYTES``) puts evict
    least-recently-used entries (hits refresh mtime) back under budget.
    All traffic is tallied in :attr:`stats` and mirrored to the profiler's
    event counters.
    """

    def __init__(self, directory: Path, max_bytes: int | None = None) -> None:
        self.directory = Path(directory)
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
            max_bytes = int(raw) if raw else None
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / key[2:4] / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.directory / "corrupt"

    def get(self, key: str) -> dict | None:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (FileNotFoundError, NotADirectoryError):
            self.stats.misses += 1
            profiling.count("cache.miss")
            return None
        except (OSError, ValueError):
            self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            # Foreign or older-schema content is stale, not corrupt; the
            # next put overwrites it in place.
            self.stats.misses += 1
            profiling.count("cache.miss")
            return None
        payload = entry.get("payload")
        if (
            entry.get("key") != key
            or not isinstance(payload, dict)
            or entry.get("checksum") != _payload_checksum(payload)
        ):
            self._quarantine(path)
            return None
        self.stats.hits += 1
        profiling.count("cache.hit")
        try:
            os.utime(path)  # LRU recency for size-based eviction
        except OSError:  # pragma: no cover - raced with an eviction
            pass
        return payload

    def put(self, key: str, payload: dict) -> None:
        path = self.path_for(key)
        shard = path.parent
        shard.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "payload": payload,
            "checksum": _payload_checksum(payload),
        }
        text = json.dumps(entry, sort_keys=True)
        with self._locked(path):
            fd, staging = tempfile.mkstemp(
                dir=shard, prefix=f".{key[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(staging, path)
            except BaseException:
                try:
                    os.unlink(staging)
                except OSError:  # pragma: no cover - never committed
                    pass
                raise
        self.stats.puts += 1
        profiling.count("cache.put")
        if self.max_bytes is not None:
            self._evict_to_budget()

    @contextmanager
    def _locked(self, path: Path) -> Iterator[None]:
        """Advisory per-entry write lock (no-op where flock is unavailable).

        ``os.replace`` already guarantees each committed entry is complete;
        the lock additionally serializes same-key writers so checkers never
        observe two staging files for one entry.  Lock files are tiny and
        deliberately never deleted (unlinking a held advisory lock file is
        the classic two-inode race).
        """
        if fcntl is None:
            yield
            return
        try:
            fd = os.open(path.with_suffix(".lock"), os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:  # pragma: no cover - unwritable shard
            yield
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing drops the flock

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside (counted) instead of dropping it."""
        self.stats.corrupt += 1
        profiling.count("cache.corrupt")
        quarantine = self.quarantine_dir()
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            target = quarantine / f"{path.name}.{os.getpid()}-{self.stats.corrupt}"
            os.replace(path, target)
        except OSError:  # pragma: no cover - concurrent runner won the move
            pass

    def _evict_to_budget(self) -> None:
        """Unlink least-recently-used entries until back under ``max_bytes``."""
        entries: list[tuple[float, int, Path]] = []
        total = 0
        # Quarantined files and .lock files never count against the budget:
        # the glob only sees committed entries in two-level shards.
        for path in self.directory.glob("??/??/*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with another evictor
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        for _mtime, size, path in sorted(entries, key=lambda e: (e[0], str(e[2]))):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another evictor
                continue
            total -= size
            self.stats.evicted += 1
            profiling.count("cache.evict")


def _job_label(job) -> str:
    """Span/progress label of a job (falls back to the class name)."""
    label = getattr(job, "label", None)
    return label() if callable(label) else type(job).__name__


def _resolve_cases(benchmark_names: tuple[str, ...] | None):
    """The benchmark cases, optionally restricted to a subset.

    Covers the built-in Table-3 set plus any benchmarks registered at run
    time (``repro.bench.registry.register_benchmark`` /
    ``register_blif_benchmark``, the runner's ``--extra-benchmark`` lane);
    without registrations this is exactly the built-in set.
    """
    from repro.bench.registry import all_benchmarks

    cases = all_benchmarks()
    if benchmark_names is None:
        return cases
    wanted = set(benchmark_names)
    cases = tuple(case for case in cases if case.name in wanted)
    missing = wanted - {case.name for case in cases}
    if missing:
        raise KeyError(f"unknown benchmarks requested: {sorted(missing)}")
    return cases


# Per-process memo of flow-optimized benchmark AIGs so the three family jobs
# of one benchmark that land in the same process run the flow only once.
_OPTIMIZED_AIGS: dict[tuple[str, str], Aig] = {}

# Per-process memo of activity reports: the signal statistics depend only on
# (benchmark, flow, vectors, seed), so the family x objective jobs of one
# benchmark share a single propagation.
_ACTIVITY_REPORTS: dict[tuple[str, str, int, int], object] = {}

# Cache-epoch protocol (worker-side memo hygiene).  The parent bumps
# _CACHE_EPOCH once per run_map_jobs batch and stamps it on every shipped
# job; a pool worker whose _WORKER_EPOCH disagrees drops its per-process
# memos before running the job.  Freshly forked workers are stamped by the
# pool initializer, so within one batch the inherited warm caches (prewarmed
# matchers, published subjects) survive -- only a worker *reused across
# batches* resets, which is exactly the unbounded-growth case the parent's
# own ``finally`` cleanup never reached.  _WORKER_EPOCH stays ``None`` in
# the parent: in-process job execution (jobs=1, pool-failure fallback) must
# not clear the parent memos mid-run.
_CACHE_EPOCH = 0
_WORKER_EPOCH: int | None = None


def _reset_worker_state(epoch: int) -> None:
    """Drop per-process memos grown under a previous cache epoch."""
    global _WORKER_EPOCH
    _OPTIMIZED_AIGS.clear()
    _ACTIVITY_REPORTS.clear()
    clear_cut_caches()
    shm.drop_attachments()
    _WORKER_EPOCH = epoch


def _pool_initializer(epoch: int, obs_config: dict | None = None) -> None:
    """Stamp a fresh pool worker with the batch's cache epoch.

    Also installs any fault plan carried by the environment -- only here,
    so chaos faults fire exclusively in pool workers and the parent's
    deterministic in-process path stays fault-free by construction -- and
    adopts the parent's observability switches (``obs_config``, see
    :func:`repro.obs.worker_config`): the worker clears any span buffer it
    inherited through ``fork`` and starts buffering telemetry per job for
    shipment back inside the payloads.
    """
    global _WORKER_EPOCH
    _WORKER_EPOCH = epoch
    obs.activate_worker(obs_config)
    faults.install_from_env()


def _worker_cache_footprint() -> dict[str, int]:
    """Sizes of every per-process memo (cache-boundedness diagnostics)."""
    sizes = cut_cache_sizes()
    return {
        "optimized_aigs": len(_OPTIMIZED_AIGS),
        "activity_reports": len(_ACTIVITY_REPORTS),
        "cut_cache_entries": sum(sizes.values()),
        "matcher_memos": (
            sizes.get("matcher_positions_memo", 0)
            + sizes.get("matcher_match_memo", 0)
            + sizes.get("npn_batch_memo", 0)
        ),
        "match_tables": sizes.get("cutset_memos", 0),
        "shm_attachments": shm.attachment_count(),
    }


def _subject_aig(benchmark: str, flow: str) -> Aig:
    key = (benchmark, flow)
    cached = _OPTIMIZED_AIGS.get(key)
    if cached is None:
        try:
            case = benchmark_by_name(benchmark)
        except KeyError as error:
            # Worker processes started via spawn/forkserver re-import modules
            # and only see benchmarks registered at import time; surface that
            # instead of a bare KeyError from the registry.
            raise RuntimeError(
                f"benchmark {benchmark!r} is not registered in this worker "
                "process; run-time registrations (--extra-benchmark / "
                "register_benchmark) must come from an imported module (or "
                "use jobs=1) for parallel runs on spawn-based platforms"
            ) from error
        try:
            with profiling.stage("optimize"):
                result = run_flow(flow, case.build())
        except KeyError as error:
            # Same re-import caveat for flows registered at run time.
            raise RuntimeError(
                f"flow {flow!r} is not registered in this worker process; "
                "custom flows must be registered from an imported module (or "
                "use jobs=1) for parallel runs"
            ) from error
        cached = result.aig
        _OPTIMIZED_AIGS[key] = cached
    return cached


def _attach_obs(payload: dict) -> dict:
    """Ship this worker's buffered telemetry back inside the job payload.

    A no-op in the parent (in-process jobs record straight into the global
    buffer) and in disabled workers; the parent strips the blob before the
    payload reaches the result cache or the decoded results.
    """
    if obs.remote_active():
        blob = obs.drain_worker_blob()
        if blob is not None:
            payload["obs"] = blob
    return payload


def _run_map_job(transport: tuple) -> dict:
    """Execute one mapping job (worker-side; must stay picklable/pure).

    ``transport`` is ``(spec, epoch, subject_handle_or_None)``: the job spec
    proper, the batch's cache epoch (see :func:`_reset_worker_state`) and,
    when the parent published the optimized subject, the shared-memory
    handle that lets this process skip the flow and cut enumeration.
    """
    spec, epoch, handle = transport
    if _WORKER_EPOCH is not None and _WORKER_EPOCH != epoch:
        _reset_worker_state(epoch)
    (
        benchmark,
        family_value,
        objective,
        flow,
        max_inputs,
        cut_limit,
        power_vectors,
        power_seed,
        rounds,
        recovery,
    ) = spec
    faults.on_job_start(f"{benchmark}:{family_value}:{objective}:{flow}:{rounds}")
    family = LogicFamily(family_value)
    with obs.span(
        f"job:{benchmark}:{family_value}:{objective}",
        category="job",
        benchmark=benchmark,
        family=family_value,
        objective=objective,
        flow=flow,
        rounds=rounds,
    ) as job_span:
        if handle is not None and (benchmark, flow) not in _OPTIMIZED_AIGS:
            try:
                _OPTIMIZED_AIGS[(benchmark, flow)] = shm.resolve_subject(handle)
                job_span.set("shm_subject", handle.key)
            except (OSError, ValueError):
                # Unreadable segment: recompute the subject from the spec.
                shm.note_degraded()
        aig = _subject_aig(benchmark, flow)
        job_span.set("aig_nodes", aig.num_ands)
        library = build_library(family)
        activity_key = (benchmark, flow, power_vectors, power_seed)
        activities = _ACTIVITY_REPORTS.get(activity_key)
        if activities is None:
            with profiling.stage("activity"):
                activities = compute_activities(
                    aig, vectors=power_vectors, seed=power_seed
                )
            _ACTIVITY_REPORTS[activity_key] = activities
        mapped = technology_map(
            aig,
            library,
            matcher=matcher_for(library),
            objective=objective,
            max_inputs=max_inputs,
            cut_limit=cut_limit,
            activities=activities,
            rounds=rounds,
            recovery=recovery,
        )
        with profiling.stage("power"):
            power = analyze_power(mapped, aig, library, activities)
        if profiling.active():
            # Attribution-only stage: check the mapped netlist against the
            # subject AIG on a deterministic packed pattern set so
            # ``--profile`` reports where verification time would go.
            import random

            seed = random.Random(f"profile:{aig.name}")
            patterns = {
                name: [seed.getrandbits(64) for _ in range(2)]
                for name in aig.pi_names
            }
            with profiling.stage("verify"):
                if not verify_mapping(mapped, aig, patterns):  # pragma: no cover
                    raise RuntimeError(
                        f"mapped netlist of {aig.name!r} failed verification"
                    )
        payload = {
            "stats": asdict(MappingStats.from_mapped(mapped)),
            "power": asdict(PowerStats.from_analysis(power)),
            "aig_nodes": aig.num_ands,
            "aig_depth": aig.depth(),
        }
    return _attach_obs(payload)


def _run_characterization_job(spec: tuple) -> dict:
    """Execute one Table-2 characterization job (worker-side)."""
    (family_value,) = spec
    with obs.span(
        f"job:table2:{family_value}", category="job", family=family_value
    ):
        library = build_library(LogicFamily(family_value))
        rows, summary = characterize_family(library)
        payload = {
            "rows": [asdict(row) for row in rows],
            "summary": asdict(summary),
        }
    return _attach_obs(payload)


class ExperimentEngine:
    """Schedules experiment jobs over processes with on-disk memoization.

    ``jobs`` is the number of worker processes (``1`` selects the
    deterministic in-process path, which parallel runs are bit-identical
    to).  ``use_cache=False`` disables the on-disk cache entirely; otherwise
    results live under ``cache_dir`` (default: :func:`default_cache_dir`)
    bounded by ``cache_max_bytes`` (default: ``REPRO_CACHE_MAX_BYTES``,
    unbounded when unset).  ``retry_policy`` governs the parallel batches'
    per-job timeouts and crash/timeout retries (default:
    :meth:`repro.experiments.resilience.RetryPolicy.from_env`); every
    abnormal event is collected on :attr:`failures` and summarized by
    :meth:`robustness_stats`.  ``progress`` is an optional
    :class:`repro.obs.LiveProgress` fed from the completion callbacks
    (cache hits, per-job commits, resilience failures) -- the live stderr
    line of parallel runs.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Path | str | None = None,
        use_cache: bool = True,
        retry_policy: resilience.RetryPolicy | None = None,
        cache_max_bytes: int | None = None,
        progress: "obs.LiveProgress | None" = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.progress = progress
        self.retry_policy = retry_policy or resilience.RetryPolicy.from_env()
        self.failures: list[resilience.JobFailure] = []
        self.pool_rebuilds = 0
        self.degraded_jobs = 0
        self.cache: ResultCache | None = None
        if use_cache:
            self.cache = ResultCache(
                Path(cache_dir) if cache_dir else default_cache_dir(),
                max_bytes=cache_max_bytes,
            )
        # Unlink shared-memory segments leaked by crashed earlier runs
        # before this one publishes its own (see shm.reap_stale_segments).
        try:
            shm.reap_stale_segments()
        except OSError:  # pragma: no cover - /dev/shm in a bad state
            pass

    # -- generic job scheduling ---------------------------------------------

    def _execute(
        self,
        worker,
        payloads: list[tuple],
        initializer: Callable | None = None,
        initargs: tuple = (),
        on_result: Callable[[int, dict], None] | None = None,
    ) -> list[dict]:
        """Run job payloads through ``worker``, in processes when possible.

        Parallel batches go through the resilient executor: per-job
        futures with the engine's retry policy, pool rebuild on worker
        crashes, and per-job in-process degradation once retries are
        exhausted (whole-batch fallback only when no pool can be created
        at all).  Exceptions raised *by* a job propagate unchanged so real
        flow errors are never silently retried.  ``on_result(index,
        payload)`` fires the moment each job completes, in both the
        parallel and the in-process paths.
        """
        if self.jobs > 1 and len(payloads) > 1:
            outcome = resilience.run_resilient(
                worker,
                payloads,
                jobs=min(self.jobs, len(payloads)),
                policy=self.retry_policy,
                initializer=initializer,
                initargs=initargs,
                on_result=on_result,
                on_failure=(
                    (lambda failure: self.progress.job_failed(
                        failure.kind, failure.resolution))
                    if self.progress is not None
                    else None
                ),
            )
            self.failures.extend(outcome.failures)
            self.pool_rebuilds += outcome.rebuilds
            self.degraded_jobs += outcome.degraded
            return outcome.results
        results = []
        for index, payload_in in enumerate(payloads):
            payload = worker(payload_in)
            if on_result is not None:
                on_result(index, payload)
            results.append(payload)
        return results

    def _run_jobs(
        self,
        worker,
        jobs: Sequence,
        keys: dict,
        prepare_parallel: Callable[[list], None] | None = None,
        transport: Callable[[object], tuple] | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> dict:
        """Cache-aware scheduling shared by map and characterization jobs.

        ``prepare_parallel`` runs in the parent just before a process pool
        would be forked (i.e. only when there are cache misses to execute
        in parallel), so expensive shared state can be built once and
        inherited by the workers.  ``transport`` turns a pending job into
        the picklable payload handed to ``worker`` (default: the job's
        ``spec()``); it runs after ``prepare_parallel`` so it can embed
        handles to state published there.
        """
        if self.progress is not None:
            self.progress.start_batch(len(jobs))
        results: dict = {}
        pending = []
        for job in jobs:
            payload = self.cache.get(keys[job]) if self.cache else None
            if payload is not None:
                # Synthesized span: a hit executes nothing, but the trace
                # must still attribute the job to the cache (the service
                # telemetry's hit-rate view reads these).
                obs.add_span(
                    f"cache-hit:{_job_label(job)}",
                    "cache",
                    key=keys[job],
                )
                if self.progress is not None:
                    self.progress.job_cached()
                results[job] = (payload, True)
            else:
                pending.append(job)
        if pending:
            if prepare_parallel is not None and self.jobs > 1 and len(pending) > 1:
                prepare_parallel(pending)

            def commit(index: int, payload: dict) -> None:
                # Worker-side telemetry rides back inside the payload; fold
                # it into the parent's buffer and strip it before the
                # payload is cached or decoded (observability must never
                # leak into content-addressed artifacts).
                obs.merge_blob(payload.pop("obs", None))
                if self.progress is not None:
                    self.progress.job_done()
                # Committed the moment each job finishes, not at batch end:
                # a crash later in the batch never discards finished work,
                # and a rerun after a fatal error resumes from the cache.
                if self.cache is not None:
                    self.cache.put(keys[pending[index]], payload)

            payloads = self._execute(
                worker,
                [transport(job) if transport else job.spec() for job in pending],
                initializer=initializer,
                initargs=initargs,
                on_result=commit,
            )
            for job, payload in zip(pending, payloads):
                results[job] = (payload, False)
        return results

    def robustness_stats(self) -> dict:
        """Cache / transport / failure counters accumulated by this engine.

        What the runner prints under ``--cache-stats`` and the chaos suite
        serializes into the failure-classification artifact.
        """
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return {
            "cache": self.cache.stats.as_dict() if self.cache else None,
            "shm_degraded": shm.degraded_count(),
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_jobs": self.degraded_jobs,
            "failure_counts": counts,
            "failures": [failure.as_dict() for failure in self.failures],
        }

    # -- mapping jobs (Table 3 / Figure 6) ----------------------------------

    def map_job_key(self, job: MapJob, aig: Aig | None = None) -> str:
        """Content-addressed cache key of one mapping job."""
        if aig is None:
            aig = benchmark_by_name(job.benchmark).build()
        material = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "kind": "map",
                "aig": aig_fingerprint(aig),
                "library": _family_fingerprint(job.family),
                "objective": job.objective,
                "flow": job.flow,
                "flow_spec": get_flow(job.flow).fingerprint(),
                "max_inputs": job.max_inputs,
                "cut_limit": job.cut_limit,
                "power_vectors": job.power_vectors,
                "power_seed": job.power_seed,
                "rounds": job.rounds,
                "recovery": job.recovery,
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def run_map_jobs(self, jobs: Sequence[MapJob]) -> dict[MapJob, MapJobResult]:
        """Run mapping jobs (cache first, then processes) and decode results."""
        global _CACHE_EPOCH
        subject_aigs: dict[str, Aig] = {}
        keys: dict[MapJob, str] = {}
        for job in jobs:
            if job.benchmark not in subject_aigs:
                subject_aigs[job.benchmark] = benchmark_by_name(job.benchmark).build()
            keys[job] = self.map_job_key(job, subject_aigs[job.benchmark])
        _CACHE_EPOCH += 1
        epoch = _CACHE_EPOCH
        handles: dict[tuple[str, str, int, int], shm.SubjectHandle] = {}

        def subject_of(job: MapJob) -> tuple[str, str, int, int]:
            return (job.benchmark, job.flow, job.max_inputs, job.cut_limit)

        def prepare_parallel(pending: list) -> None:
            # Build every required library matcher before the pool forks so
            # worker processes inherit the warm caches instead of each paying
            # the (expensive) matcher construction on their own.
            with obs.span(
                "prepare-parallel", category="engine", pending=len(pending)
            ):
                for family in {job.family for job in pending}:
                    matcher_for(build_library(family))
                # Publish each distinct optimized subject (flow output plus
                # enumerated cuts) into shared memory once, keyed by its
                # content-addressed structure hash, so every worker maps the
                # same buffers instead of re-running the flow per process.
                for benchmark, flow, max_inputs, cut_limit in sorted(
                    {subject_of(job) for job in pending}
                ):
                    try:
                        aig = _subject_aig(benchmark, flow)
                        handles[(benchmark, flow, max_inputs, cut_limit)] = (
                            shm.publish_subject(
                                f"{aig_fingerprint(aig)}:{max_inputs}:{cut_limit}",
                                aig,
                                aig_arrays(aig),
                                cut_set_for(aig, max_inputs, cut_limit),
                            )
                        )
                    except OSError:
                        # No usable shared memory on this platform/filesystem:
                        # ship the bare spec and let workers recompute.
                        shm.note_degraded()
                        continue

        def transport(job: MapJob) -> tuple:
            return (job.spec(), epoch, handles.get(subject_of(job)))

        try:
            with obs.span(
                "run_map_jobs", category="engine", jobs=len(jobs), epoch=epoch
            ):
                raw = self._run_jobs(
                    _run_map_job,
                    list(jobs),
                    keys,
                    prepare_parallel=prepare_parallel,
                    transport=transport,
                    initializer=_pool_initializer,
                    initargs=(epoch, obs.worker_config()),
                )
        finally:
            shm.release_subjects()
            # Bound per-process memory across repeated large-benchmark runs:
            # the scalar table and matcher caches regrow cheaply, and the
            # cut-set memos (the largest per-run allocations) are stripped
            # from the optimized AIGs pinned by _OPTIMIZED_AIGS -- the AIGs
            # themselves stay cached, only their cut arrays are released.
            clear_cut_caches()
            _ACTIVITY_REPORTS.clear()
            for aig in _OPTIMIZED_AIGS.values():
                aig.__dict__.pop("_cut_sets", None)
                aig.__dict__.pop("_array_view", None)
        results: dict[MapJob, MapJobResult] = {}
        for job, (payload, cached) in raw.items():
            results[job] = MapJobResult(
                job=job,
                stats=MappingStats(**payload["stats"]),
                power=PowerStats(**payload["power"]),
                aig_nodes=int(payload["aig_nodes"]),
                aig_depth=int(payload["aig_depth"]),
                cached=cached,
            )
        return results

    def run_table3(
        self,
        benchmark_names: tuple[str, ...] | None = None,
        families: tuple[LogicFamily, ...] = TABLE3_FAMILIES,
        objective: str = "delay",
        flow: str = DEFAULT_FLOW,
        optimize_first: bool = True,
        power_vectors: int = DEFAULT_VECTORS,
        power_seed: int = DEFAULT_SEED,
        rounds: int = 0,
        recovery: str = "auto",
    ) -> Table3Result:
        """Regenerate Table 3 through the job engine.

        ``flow`` names the registered technology-independent flow run before
        mapping; ``optimize_first=False`` is shorthand for the ``none`` flow
        (kept for backward compatibility) and is rejected when combined with
        an explicitly selected flow.  ``rounds``/``recovery`` select the
        mapper's required-time recovery configuration (``--map-rounds`` /
        ``--map-recovery`` on the runner).
        """
        flow_name = resolve_flow(flow, optimize_first)
        cases = _resolve_cases(benchmark_names)

        def job_for(case_name: str, family: LogicFamily) -> MapJob:
            return MapJob(
                case_name,
                family,
                objective=objective,
                flow=flow_name,
                power_vectors=power_vectors,
                power_seed=power_seed,
                rounds=rounds,
                recovery=recovery,
            )

        jobs = [job_for(case.name, family) for case in cases for family in families]
        by_job = self.run_map_jobs(jobs)

        result = Table3Result(
            flow=flow_name, objective=objective, rounds=rounds, recovery=recovery
        )
        for case in cases:
            stats: dict[LogicFamily, MappingStats] = {}
            power: dict[LogicFamily, PowerStats] = {}
            aig_nodes = aig_depth = 0
            for family in families:
                job_result = by_job[job_for(case.name, family)]
                stats[family] = job_result.stats
                power[family] = job_result.power
                aig_nodes = job_result.aig_nodes
                aig_depth = job_result.aig_depth
            result.rows.append(
                Table3Row(
                    name=case.name,
                    function=case.function,
                    aig_nodes=aig_nodes,
                    aig_depth=aig_depth,
                    results=stats,
                    paper=_paper_row(case.name),
                    power=power,
                )
            )
        return result

    # -- characterization jobs (Table 2) ------------------------------------

    def characterization_job_key(self, job: CharacterizationJob) -> str:
        material = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "kind": "table2",
                "library": _family_fingerprint(job.family),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def run_table2(
        self, families: tuple[LogicFamily, ...] = TABLE2_FAMILIES
    ) -> Table2Result:
        """Regenerate Table 2 through the job engine."""
        jobs = [CharacterizationJob(family) for family in families]
        keys = {job: self.characterization_job_key(job) for job in jobs}
        with obs.span("run_table2", category="engine", jobs=len(jobs)):
            raw = self._run_jobs(
                _run_characterization_job,
                jobs,
                keys,
                initializer=_pool_initializer,
                initargs=(_CACHE_EPOCH, obs.worker_config()),
            )

        rows: dict[LogicFamily, tuple[CellCharacterization, ...]] = {}
        summaries: dict[LogicFamily, FamilySummary] = {}
        paper_rows: dict[LogicFamily, dict] = {}
        paper_averages: dict[LogicFamily, object] = {}
        for job in jobs:
            payload, _cached = raw[job]
            rows[job.family] = tuple(
                CellCharacterization(**row) for row in payload["rows"]
            )
            summaries[job.family] = FamilySummary(**payload["summary"])
            key = FAMILY_KEYS[job.family]
            paper_rows[job.family] = {
                function_id: columns[key]
                for function_id, columns in PAPER_TABLE2.items()
                if key in columns
            }
            paper_averages[job.family] = PAPER_TABLE2_AVERAGES[key]
        return Table2Result(
            rows=rows,
            summaries=summaries,
            paper_rows=paper_rows,
            paper_averages=paper_averages,
        )

    # -- figure 6 ------------------------------------------------------------

    def run_figure6(
        self, benchmark_names: tuple[str, ...] | None = None
    ) -> Figure6Result:
        """Regenerate the Figure-6 series (reuses the Table-3 job results)."""
        return figure6_from_table3(self.run_table3(benchmark_names=benchmark_names))

    # -- pareto fronts -------------------------------------------------------

    def run_pareto(self, benchmark_names: tuple[str, ...] | None = None, **kwargs):
        """Per-benchmark area/delay/power Pareto fronts across the families.

        Thin wrapper over :func:`repro.experiments.pareto.run_pareto` bound
        to this engine; see that module for the family/objective knobs.
        """
        from repro.experiments.pareto import run_pareto

        return run_pareto(benchmark_names=benchmark_names, engine=self, **kwargs)

    # -- artifacts -----------------------------------------------------------

    def write_artifacts(
        self,
        directory: Path | str,
        table2: Table2Result | None = None,
        table3: Table3Result | None = None,
        figure6: Figure6Result | None = None,
        pareto=None,
    ) -> list[Path]:
        """Write JSON artifacts for the given results; returns written paths."""
        from repro.experiments.pareto import pareto_payload

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        payloads = {
            "table2.json": table2_payload(table2) if table2 else None,
            "table3.json": table3_payload(table3) if table3 else None,
            "figure6.json": figure6_payload(figure6) if figure6 else None,
            "pareto.json": pareto_payload(pareto) if pareto else None,
        }
        for filename, payload in payloads.items():
            if payload is None:
                continue
            path = directory / filename
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            written.append(path)
        return written


def table2_payload(result: Table2Result) -> dict:
    """JSON-ready view of a Table-2 result."""
    return {
        "families": {
            family.value: {
                "summary": asdict(result.summaries[family]),
                "cells": [asdict(row) for row in result.rows[family]],
            }
            for family in result.summaries
        }
    }


def table3_payload(result: Table3Result) -> dict:
    """JSON-ready view of a Table-3 result.

    The recovery metadata is only emitted for recovered runs: round-0
    payloads stay byte-identical to the pre-recovery format so archived
    artifacts remain directly comparable.
    """
    payload = {
        "flow": result.flow,
        "objective": result.objective,
        "rows": [
            {
                "name": row.name,
                "function": row.function,
                "aig_nodes": row.aig_nodes,
                "aig_depth": row.aig_depth,
                "results": {
                    family.value: asdict(stats)
                    for family, stats in row.results.items()
                },
                "power": {
                    family.value: asdict(stats)
                    for family, stats in row.power.items()
                },
            }
            for row in result.rows
        ],
        "average_improvements": {
            family.value: {
                metric: result.average_improvement(family, metric)
                for metric in ("gates", "area", "levels", "normalized_delay")
            }
            for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO)
            if result.rows and family in result.rows[0].results
        },
        "average_speedups": {
            family.value: result.average_speedup(family)
            for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO)
            if result.rows and family in result.rows[0].results
        },
    }
    if result.rounds:
        payload["map_rounds"] = result.rounds
        payload["map_recovery"] = result.recovery
    return payload


def figure6_payload(result: Figure6Result) -> dict:
    """JSON-ready view of a Figure-6 result."""
    return {
        "series": result.series(),
        "average_static_speedup": result.average_static_speedup,
        "average_pseudo_speedup": result.average_pseudo_speedup,
        "paper_average_static_speedup": result.paper_average_static_speedup,
        "paper_average_pseudo_speedup": result.paper_average_pseudo_speedup,
    }
