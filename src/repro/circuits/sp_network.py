"""Series-parallel switch networks.

A pull network (PU or PD) of a library cell is described as a series-parallel
composition of two kinds of switches:

* a *literal switch* -- a single transistor conducting when its controlling
  literal is true;
* an *XOR switch* -- a CNTFET transmission gate (or pass transistor in the
  compact families) conducting when the XOR of two literals is true.  This is
  the element that gives the ambipolar library its extra expressive power
  (Sec. 3.1 of the paper).

The pull-down network of a cell realizes the cell's Table-1 function ``F``
directly (the cell output node then carries ``not F``); the pull-up network of
a static cell is the *dual* network, obtained by swapping series and parallel
composition and complementing the conduction condition of every leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.devices.transistor import Literal
from repro.logic.expr import And, Const, Expr, Not, Or, Var, Xor
from repro.logic.truth_table import TruthTable


class SwitchNetwork:
    """Base class of the series-parallel switch algebra."""

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        """Whether the network conducts under the given variable assignment."""
        raise NotImplementedError

    def dual(self) -> "SwitchNetwork":
        """The complementary network (conducts exactly when this one does not)."""
        raise NotImplementedError

    def leaves(self) -> Iterator["LiteralSwitch | XorSwitch"]:
        """All leaf switches in left-to-right order."""
        raise NotImplementedError

    def series_depth(self) -> int:
        """Maximum number of leaf switches in series along any conduction path."""
        raise NotImplementedError

    def signals(self) -> tuple[str, ...]:
        """Sorted distinct signal names controlling the network."""
        names: set[str] = set()
        for leaf in self.leaves():
            if isinstance(leaf, LiteralSwitch):
                names.add(leaf.literal.name)
            else:
                names.add(leaf.first.name)
                names.add(leaf.second.name)
        return tuple(sorted(names))

    def conduction_table(self, variable_order: Sequence[str]) -> TruthTable:
        """Truth table of the conduction condition over ``variable_order``."""
        index = {name: i for i, name in enumerate(variable_order)}
        for name in self.signals():
            if name not in index:
                raise ValueError(f"signal {name!r} missing from variable order")
        bits = 0
        for minterm in range(1 << len(variable_order)):
            assignment = {
                name: bool((minterm >> index[name]) & 1) for name in variable_order
            }
            if self.conducts(assignment):
                bits |= 1 << minterm
        return TruthTable(len(variable_order), bits)

    def leaf_count(self) -> int:
        return sum(1 for _ in self.leaves())


@dataclass(frozen=True)
class LiteralSwitch(SwitchNetwork):
    """A single-transistor switch conducting when ``literal`` is true."""

    literal: Literal

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        return self.literal.evaluate(assignment)

    def dual(self) -> "SwitchNetwork":
        return LiteralSwitch(self.literal.complement())

    def leaves(self) -> Iterator["LiteralSwitch | XorSwitch"]:
        yield self

    def series_depth(self) -> int:
        return 1


@dataclass(frozen=True)
class XorSwitch(SwitchNetwork):
    """A transmission-gate / pass-transistor switch conducting when ``first ^ second``."""

    first: Literal
    second: Literal

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        return self.first.evaluate(assignment) != self.second.evaluate(assignment)

    def dual(self) -> "SwitchNetwork":
        # XNOR of (first, second) equals XOR of (first, second').
        return XorSwitch(self.first, self.second.complement())

    def leaves(self) -> Iterator["LiteralSwitch | XorSwitch"]:
        yield self

    def series_depth(self) -> int:
        return 1


@dataclass(frozen=True)
class Series(SwitchNetwork):
    """Series composition: conducts when every child conducts."""

    children: tuple[SwitchNetwork, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("a series composition needs at least two children")

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        return all(child.conducts(assignment) for child in self.children)

    def dual(self) -> "SwitchNetwork":
        return Parallel(tuple(child.dual() for child in self.children))

    def leaves(self) -> Iterator["LiteralSwitch | XorSwitch"]:
        for child in self.children:
            yield from child.leaves()

    def series_depth(self) -> int:
        return sum(child.series_depth() for child in self.children)


@dataclass(frozen=True)
class Parallel(SwitchNetwork):
    """Parallel composition: conducts when at least one child conducts."""

    children: tuple[SwitchNetwork, ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("a parallel composition needs at least two children")

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        return any(child.conducts(assignment) for child in self.children)

    def dual(self) -> "SwitchNetwork":
        return Series(tuple(child.dual() for child in self.children))

    def leaves(self) -> Iterator["LiteralSwitch | XorSwitch"]:
        for child in self.children:
            yield from child.leaves()

    def series_depth(self) -> int:
        return max(child.series_depth() for child in self.children)


def series(*children: SwitchNetwork) -> SwitchNetwork:
    """Series composition helper that flattens nested series networks."""
    flat: list[SwitchNetwork] = []
    for child in children:
        if isinstance(child, Series):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return Series(tuple(flat))


def parallel(*children: SwitchNetwork) -> SwitchNetwork:
    """Parallel composition helper that flattens nested parallel networks."""
    flat: list[SwitchNetwork] = []
    for child in children:
        if isinstance(child, Parallel):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return Parallel(tuple(flat))


class NetworkCompilationError(ValueError):
    """Raised when an expression cannot be compiled into a switch network."""


def _expr_to_literal(expr: Expr) -> Literal | None:
    if isinstance(expr, Var):
        return Literal(expr.name)
    if isinstance(expr, Not):
        inner = _expr_to_literal(expr.operand)
        if inner is not None:
            return inner.complement()
    return None


def network_from_expr(expr: Expr, allow_xor: bool = True) -> SwitchNetwork:
    """Compile a Table-1 style expression into a switch network.

    AND maps to series composition, OR to parallel composition, a literal to a
    literal switch and ``u ^ v`` (literals only) to an XOR switch.  With
    ``allow_xor=False`` (used for the CMOS reference family) XOR operators are
    rejected, reproducing the restriction that CMOS networks can only realize
    unate series-parallel pull functions.
    """
    literal = _expr_to_literal(expr)
    if literal is not None:
        return LiteralSwitch(literal)
    if isinstance(expr, And):
        return series(
            network_from_expr(expr.left, allow_xor),
            network_from_expr(expr.right, allow_xor),
        )
    if isinstance(expr, Or):
        return parallel(
            network_from_expr(expr.left, allow_xor),
            network_from_expr(expr.right, allow_xor),
        )
    if isinstance(expr, Xor):
        if not allow_xor:
            raise NetworkCompilationError(
                "XOR terms require ambipolar devices and are not available in CMOS networks"
            )
        left = _expr_to_literal(expr.left)
        right = _expr_to_literal(expr.right)
        if left is None or right is None:
            raise NetworkCompilationError(
                "XOR switches only support literal operands (as in Table 1)"
            )
        return XorSwitch(left, right)
    if isinstance(expr, Not):
        # Push the complement down by compiling the dual of the operand.
        return network_from_expr(expr.operand, allow_xor).dual()
    if isinstance(expr, Const):
        raise NetworkCompilationError("constant functions have no pull network")
    raise NetworkCompilationError(f"unsupported expression node: {expr!r}")
