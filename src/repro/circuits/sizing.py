"""Unit-drive sizing rules (paper Sec. 4.1 and 4.2).

Every library cell is sized so that its output drive matches a unit inverter:
the worst-case resistance of each pull network equals the target resistance
(1 for static families, 3/4 for the pseudo pull-down networks so that the
1/3-wide always-on load is exactly four times weaker).

The allocation is recursive over the series-parallel structure:

* a series composition of ``k`` blocks gives each block ``target / k`` of the
  resistance budget (so devices in longer stacks are proportionally wider);
* a parallel composition gives each branch the full budget (any single branch
  must be able to carry the unit drive on its own).

Leaf switches translate a resistance budget ``r`` into device widths:

* plain n-type (p-type) transistor: ``W = 1 / r`` (``W = ratio / r`` where the
  ratio is 1 for CNTFETs and 2 for CMOS p-devices);
* transmission gate: each of the two devices gets ``W = (2/3) / r`` because
  the strong device (``1/W``) in parallel with the weak-direction one
  (``2/W``) yields ``(2/3)/W``;
* ambipolar pass transistor: ``W = 2 / r`` (worst-case weak-direction
  conduction at ``2R``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.sp_network import (
    LiteralSwitch,
    Parallel,
    Series,
    SwitchNetwork,
    XorSwitch,
)
from repro.devices.models import Technology

#: The pseudo families make the pull-up load four times weaker than the
#: pull-down network (paper Sec. 4.2): the PD network targets 3/4 of the unit
#: resistance and the always-on load is 1/3 wide (resistance 3).
PSEUDO_PULL_DOWN_TARGET = 0.75
PSEUDO_LOAD_WIDTH = 1.0 / 3.0

#: Equivalent-resistance factor of a transmission gate relative to one of its
#: two devices (strong direction in parallel with weak direction).
TRANSMISSION_GATE_FACTOR = 2.0 / 3.0

#: Worst-case resistance factor of a single ambipolar pass transistor.
PASS_TRANSISTOR_FACTOR = 2.0


@dataclass(frozen=True)
class LeafSizing:
    """Resistance budget assigned to one leaf switch of a pull network."""

    leaf: LiteralSwitch | XorSwitch
    resistance: float


def allocate_resistance(
    network: SwitchNetwork, target_resistance: float
) -> list[LeafSizing]:
    """Assign a resistance budget to every leaf of a series-parallel network."""
    if target_resistance <= 0:
        raise ValueError("target resistance must be positive")
    result: list[LeafSizing] = []

    def visit(node: SwitchNetwork, budget: float) -> None:
        if isinstance(node, (LiteralSwitch, XorSwitch)):
            result.append(LeafSizing(node, budget))
        elif isinstance(node, Series):
            share = budget / len(node.children)
            for child in node.children:
                visit(child, share)
        elif isinstance(node, Parallel):
            for child in node.children:
                visit(child, budget)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown network node {node!r}")

    visit(network, target_resistance)
    return result


def literal_device_width(
    resistance: float, pull_up: bool, technology: Technology
) -> float:
    """Width of a plain transistor realizing a literal switch with the given budget."""
    if pull_up:
        return technology.p_width_for_resistance(resistance)
    return technology.n_width_for_resistance(resistance)


def transmission_gate_width(resistance: float) -> float:
    """Width of each device of a transmission gate with the given budget."""
    return TRANSMISSION_GATE_FACTOR / resistance


def pass_transistor_width(resistance: float) -> float:
    """Width of a single pass transistor with the given worst-case budget."""
    return PASS_TRANSISTOR_FACTOR / resistance
