"""Switch-level simulation of cell netlists.

Verifies, for every input assignment, that

* the cell output is driven to exactly one logic level (no contention between
  the pull networks and no floating output for the static families);
* the computed output function matches the intended Boolean function;
* the driven level reaches the full rail voltage, i.e. there exists a
  conducting path to the rail whose devices all pass that level strongly
  (n-type for a low level, p-type for a high level).  This is the property
  that the transmission-gate construction of Sec. 3.1 restores, and that the
  dynamic GNOR gate of Fig. 2 and the pass-transistor families lack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.circuits.netlist import OUTPUT, VDD, VSS, CellNetlist
from repro.devices.transistor import Device, DeviceRole
from repro.logic.truth_table import TruthTable

_PULL_DOWN_ROLES = (DeviceRole.PULL_DOWN,)
_PULL_UP_ROLES = (DeviceRole.PULL_UP, DeviceRole.PSEUDO_LOAD)


def _connected(
    devices: Iterable[Device],
    assignment: Mapping[str, bool],
    source: str,
    target: str,
    require_strong: bool | None = None,
    rail_value: bool | None = None,
) -> bool:
    """BFS connectivity between two nodes through conducting devices.

    With ``require_strong`` set, only devices that pass ``rail_value`` at full
    swing are traversed.
    """
    adjacency: dict[str, list[str]] = {}
    for device in devices:
        if not device.conducts(assignment):
            continue
        if require_strong and rail_value is not None:
            if not device.passes_strongly(rail_value, assignment):
                continue
        adjacency.setdefault(device.node_a, []).append(device.node_b)
        adjacency.setdefault(device.node_b, []).append(device.node_a)
    if source == target:
        return True
    seen = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency.get(node, ()):
            if neighbour == target:
                return True
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return False


@dataclass(frozen=True)
class SwitchLevelResult:
    """Outcome of exhaustively simulating a cell netlist."""

    input_order: tuple[str, ...]
    output_table: TruthTable
    contention_minterms: tuple[int, ...]
    floating_minterms: tuple[int, ...]
    degraded_minterms: tuple[int, ...]

    @property
    def is_well_formed(self) -> bool:
        """No contention and no floating output for any assignment."""
        return not self.contention_minterms and not self.floating_minterms

    @property
    def is_full_swing(self) -> bool:
        """Every driven level reaches the rail through a strong path."""
        return not self.degraded_minterms


def simulate_cell(netlist: CellNetlist) -> SwitchLevelResult:
    """Exhaustively simulate a cell netlist at switch level."""
    order = netlist.input_signals
    num_vars = len(order)
    if num_vars > 12:
        raise ValueError("switch-level simulation is limited to 12 cell inputs")

    pd_devices = [d for d in netlist.devices if d.role in _PULL_DOWN_ROLES]
    pu_devices = [d for d in netlist.devices if d.role in _PULL_UP_ROLES]
    pseudo = any(d.role is DeviceRole.PSEUDO_LOAD for d in netlist.devices)

    bits = 0
    contention: list[int] = []
    floating: list[int] = []
    degraded: list[int] = []

    for minterm in range(1 << num_vars):
        assignment = {
            name: bool((minterm >> i) & 1) for i, name in enumerate(order)
        }
        pd_on = _connected(pd_devices, assignment, OUTPUT, VSS)
        pu_on = _connected(pu_devices, assignment, OUTPUT, VDD)

        if pseudo:
            # The weak load always conducts; the pull-down wins when it is on.
            output = not pd_on
        else:
            if pd_on and pu_on:
                contention.append(minterm)
                output = False
            elif not pd_on and not pu_on:
                floating.append(minterm)
                output = False
            else:
                output = pu_on

        if output:
            bits |= 1 << minterm

        # Full-swing check on the driven level.  The ratioed low level of a
        # pseudo cell is acceptable by construction (the PD network is sized
        # 4x stronger than the load), but a low level reachable only through
        # p-type devices is stuck near |VTp| regardless of sizing -- that is
        # the degradation the transmission-gate construction removes
        # (Sec. 3.1/3.2), so it is flagged for pseudo cells as well.
        if output:
            strong = _connected(
                pu_devices,
                assignment,
                OUTPUT,
                VDD,
                require_strong=True,
                rail_value=True,
            )
            if not strong:
                degraded.append(minterm)
        elif pd_on:
            strong = _connected(
                pd_devices,
                assignment,
                OUTPUT,
                VSS,
                require_strong=True,
                rail_value=False,
            )
            if not strong:
                degraded.append(minterm)

    return SwitchLevelResult(
        input_order=order,
        output_table=TruthTable(num_vars, bits),
        contention_minterms=tuple(contention),
        floating_minterms=tuple(floating),
        degraded_minterms=tuple(degraded),
    )


def verify_cell_function(
    netlist: CellNetlist, expected_output: TruthTable
) -> SwitchLevelResult:
    """Simulate a cell and check its output function against ``expected_output``.

    ``expected_output`` must be expressed over the netlist's sorted input
    signal order.  Raises :class:`AssertionError` on mismatch so tests can use
    it directly.
    """
    result = simulate_cell(netlist)
    if result.output_table != expected_output:
        raise AssertionError(
            f"cell {netlist.name!r} computes {result.output_table} "
            f"but {expected_output} was expected"
        )
    return result
