"""Cell netlist construction for every logic style of the paper.

A :class:`CellNetlist` is a flat list of :class:`~repro.devices.transistor.Device`
instances connected between named nodes (``VDD``, ``VSS``, the output ``Y``
and internal stack nodes).  The builders below assemble the netlist of a cell
from its pull-down switch network for each of the five logic styles evaluated
in the paper:

================================  =============================================
style                              construction
================================  =============================================
transmission-gate static           complementary PU (dual network), XOR terms as
                                   transmission gates (Sec. 3.1)
transmission-gate pseudo           PD only, XOR terms as transmission gates,
                                   1/3-wide always-on pull-up load (Sec. 3.2)
pass-transistor static             complementary PU, XOR terms as single
                                   ambipolar pass transistors (Sec. 3.2)
pass-transistor pseudo             PD only with pass transistors and the weak
                                   pull-up load (Sec. 3.2)
CMOS static                        complementary PU, XOR terms not available
================================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from repro.circuits.sizing import (
    PSEUDO_LOAD_WIDTH,
    PSEUDO_PULL_DOWN_TARGET,
    literal_device_width,
    pass_transistor_width,
    transmission_gate_width,
)
from repro.circuits.sp_network import (
    LiteralSwitch,
    Parallel,
    Series,
    SwitchNetwork,
    XorSwitch,
)
from repro.devices.models import CMOS_32NM, CNTFET_32NM, Technology
from repro.devices.transistor import (
    ChannelType,
    Device,
    DeviceRole,
    Literal,
    PolarityControl,
)
from repro.devices.transmission_gate import (
    pass_transistor_device,
    transmission_gate_devices,
)

VDD = "VDD"
VSS = "VSS"
OUTPUT = "Y"


class CellStyle(Enum):
    """The five logic styles characterized in Table 2."""

    TRANSMISSION_GATE_STATIC = "tg-static"
    TRANSMISSION_GATE_PSEUDO = "tg-pseudo"
    PASS_TRANSISTOR_STATIC = "pass-static"
    PASS_TRANSISTOR_PSEUDO = "pass-pseudo"
    CMOS_STATIC = "cmos-static"

    @property
    def is_pseudo(self) -> bool:
        return self in (
            CellStyle.TRANSMISSION_GATE_PSEUDO,
            CellStyle.PASS_TRANSISTOR_PSEUDO,
        )

    @property
    def uses_pass_transistors(self) -> bool:
        return self in (
            CellStyle.PASS_TRANSISTOR_STATIC,
            CellStyle.PASS_TRANSISTOR_PSEUDO,
        )

    @property
    def technology(self) -> Technology:
        return CMOS_32NM if self is CellStyle.CMOS_STATIC else CNTFET_32NM


@dataclass(frozen=True)
class CellNetlist:
    """A sized transistor-level netlist of one library cell."""

    name: str
    style: CellStyle
    technology: Technology
    devices: tuple[Device, ...]
    pd_network: SwitchNetwork
    pu_network: SwitchNetwork | None
    input_signals: tuple[str, ...]

    def devices_with_role(self, role: DeviceRole) -> tuple[Device, ...]:
        return tuple(device for device in self.devices if device.role is role)

    def transistor_count(self) -> int:
        return len(self.devices)

    def nodes(self) -> tuple[str, ...]:
        names: set[str] = set()
        for device in self.devices:
            names.add(device.node_a)
            names.add(device.node_b)
        return tuple(sorted(names))

    def internal_nodes(self) -> tuple[str, ...]:
        return tuple(n for n in self.nodes() if n not in (VDD, VSS, OUTPUT))

    def node_capacitance(self, node: str) -> float:
        """Total drain/source parasitic capacitance attached to a node.

        The paper assumes the drain/source capacitance of a device equals its
        gate capacitance, i.e. its width in normalized units (Sec. 4.3).
        """
        total = 0.0
        for device in self.devices:
            if device.node_a == node or device.node_b == node:
                total += device.width
        return total

    def signal_capacitance(self, literal: Literal) -> float:
        """Total gate + polarity-gate capacitance presented to one literal wire."""
        total = 0.0
        for device in self.devices:
            total += device.signal_loads().get(literal, 0.0)
        return total

    def input_literals(self) -> tuple[Literal, ...]:
        """Every distinct literal wire that loads at least one device gate."""
        literals: set[Literal] = set()
        for device in self.devices:
            literals.update(device.signal_loads())
        return tuple(sorted(literals, key=lambda lit: (lit.name, lit.negated)))


class _NodeNamer:
    """Generates unique internal node names for one pull network."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._count = 0

    def next(self) -> str:
        self._count += 1
        return f"{self._prefix}{self._count}"


def _build_pull_network(
    network: SwitchNetwork,
    budget: float,
    top_node: str,
    bottom_node: str,
    pull_up: bool,
    style: CellStyle,
    technology: Technology,
    namer: _NodeNamer,
) -> list[Device]:
    """Recursively place sized devices for one pull network.

    ``top_node`` is the side closer to the cell output; for a series
    composition the first child is placed adjacent to the output, which
    mirrors the stack ordering drawn in Fig. 4 of the paper.
    """
    role = DeviceRole.PULL_UP if pull_up else DeviceRole.PULL_DOWN
    if isinstance(network, LiteralSwitch):
        width = literal_device_width(budget, pull_up, technology)
        literal = network.literal
        if pull_up:
            # A p-type device conducts when its gate wire is low, so the gate
            # wire is the complement of the conduction literal.
            gate = literal.complement()
            channel = ChannelType.P
        else:
            gate = literal
            channel = ChannelType.N
        return [
            Device(
                role=role,
                gate=gate,
                polarity=PolarityControl.fixed(channel),
                width=width,
                node_a=top_node,
                node_b=bottom_node,
            )
        ]
    if isinstance(network, XorSwitch):
        if not technology.ambipolar:
            raise ValueError(
                "XOR switches require ambipolar devices; not available in "
                f"technology {technology.name!r}"
            )
        if style.uses_pass_transistors:
            width = pass_transistor_width(budget)
            return [
                pass_transistor_device(
                    network.first, network.second, width, top_node, bottom_node, role
                )
            ]
        width = transmission_gate_width(budget)
        return list(
            transmission_gate_devices(
                network.first, network.second, width, top_node, bottom_node, role
            )
        )
    if isinstance(network, Series):
        share = budget / len(network.children)
        devices: list[Device] = []
        current_top = top_node
        for position, child in enumerate(network.children):
            is_last = position == len(network.children) - 1
            current_bottom = bottom_node if is_last else namer.next()
            devices.extend(
                _build_pull_network(
                    child,
                    share,
                    current_top,
                    current_bottom,
                    pull_up,
                    style,
                    technology,
                    namer,
                )
            )
            current_top = current_bottom
        return devices
    if isinstance(network, Parallel):
        devices = []
        for child in network.children:
            devices.extend(
                _build_pull_network(
                    child,
                    budget,
                    top_node,
                    bottom_node,
                    pull_up,
                    style,
                    technology,
                    namer,
                )
            )
        return devices
    raise TypeError(f"unknown network node {network!r}")  # pragma: no cover


def build_cell_netlist(
    name: str,
    pd_network: SwitchNetwork,
    style: CellStyle,
) -> CellNetlist:
    """Build and size the complete netlist of a cell from its pull-down network."""
    technology = style.technology
    devices: list[Device] = []

    pd_target = PSEUDO_PULL_DOWN_TARGET if style.is_pseudo else 1.0
    pd_namer = _NodeNamer("pd_n")
    devices.extend(
        _build_pull_network(
            pd_network,
            pd_target,
            OUTPUT,
            VSS,
            pull_up=False,
            style=style,
            technology=technology,
            namer=pd_namer,
        )
    )

    pu_network: SwitchNetwork | None
    if style.is_pseudo:
        pu_network = None
        devices.append(
            Device(
                role=DeviceRole.PSEUDO_LOAD,
                gate=None,
                polarity=PolarityControl.fixed(ChannelType.P),
                width=PSEUDO_LOAD_WIDTH,
                node_a=VDD,
                node_b=OUTPUT,
            )
        )
    else:
        pu_network = pd_network.dual()
        pu_namer = _NodeNamer("pu_n")
        devices.extend(
            _build_pull_network(
                pu_network,
                1.0,
                OUTPUT,
                VDD,
                pull_up=True,
                style=style,
                technology=technology,
                namer=pu_namer,
            )
        )

    return CellNetlist(
        name=name,
        style=style,
        technology=technology,
        devices=tuple(devices),
        pd_network=pd_network,
        pu_network=pu_network,
        input_signals=tuple(sorted(pd_network.signals())),
    )
