"""Normalized area model.

The paper estimates gate area "in a normalized manner as the number of
transistors multiplied by their respective aspect ratios (W/L)" (Sec. 4.3),
i.e. the sum of device widths in unit-transistor areas.  The polarity gate is
buried underneath the channel or defined on top of the actual gate, so it
adds no drawn area (Sec. 4.4).
"""

from __future__ import annotations

from repro.circuits.netlist import CellNetlist


def cell_area(netlist: CellNetlist, with_output_inverter: bool = False) -> float:
    """Normalized area of a cell (sum of W/L over all devices).

    With ``with_output_inverter`` the area of the unit inverter that provides
    the complementary output polarity (paper Sec. 4.3) is added.
    """
    area = sum(device.width for device in netlist.devices)
    if with_output_inverter:
        area += netlist.technology.inverter_area
    return area
