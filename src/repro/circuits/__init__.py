"""Transistor-level circuit substrate.

The paper's library cells are built from series-parallel pull-up / pull-down
networks of ambipolar CNTFETs, CNTFET transmission gates and pass transistors
(Figs. 4 and 5).  This subpackage provides:

* :mod:`repro.circuits.sp_network` -- the series-parallel switch algebra used
  to describe pull networks and to derive the complementary (dual) network;
* :mod:`repro.circuits.sizing` -- the recursive unit-drive sizing rules of
  Sec. 4.1/4.2 (series stacks up-sized, transmission gates sized 2/3, pass
  transistors sized 2x, pseudo pull-downs up-sized 4/3 with a 1/3 load);
* :mod:`repro.circuits.netlist` -- construction of complete cell netlists for
  each logic style (static, pseudo, CMOS, pass-transistor variants);
* :mod:`repro.circuits.switch_sim` -- switch-level functional and full-swing
  verification of a cell netlist;
* :mod:`repro.circuits.delay` -- the switch-level RC / logical-effort FO4
  delay model of Sec. 4.3;
* :mod:`repro.circuits.area` -- the normalized area model (sum of W/L).
"""

from repro.circuits.sp_network import (
    LiteralSwitch,
    Parallel,
    Series,
    SwitchNetwork,
    XorSwitch,
    network_from_expr,
)
from repro.circuits.netlist import CellNetlist, CellStyle, build_cell_netlist
from repro.circuits.switch_sim import SwitchLevelResult, simulate_cell
from repro.circuits.delay import DelayReport, characterize_delay
from repro.circuits.area import cell_area

__all__ = [
    "SwitchNetwork",
    "LiteralSwitch",
    "XorSwitch",
    "Series",
    "Parallel",
    "network_from_expr",
    "CellNetlist",
    "CellStyle",
    "build_cell_netlist",
    "SwitchLevelResult",
    "simulate_cell",
    "DelayReport",
    "characterize_delay",
    "cell_area",
]
