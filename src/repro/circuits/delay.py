"""Switch-level RC / logical-effort delay characterization (paper Sec. 4.3).

The paper reports, for every cell, the FO4 delay (the delay of the gate
driving four copies of itself) normalized to the technology-dependent
intrinsic delay ``tau``.  In the logical-effort formulation FO4 = p + 4*g
where ``g`` is the logical effort of the switching input (its input
capacitance over the unit inverter's) and ``p`` is the parasitic delay of the
cell output.

We reproduce that model and extend it in the two directions the paper
mentions:

* for the *pseudo* families the rising transition is driven by the weak 1/3
  load (resistance 3) rather than a unit-resistance network, so the rise term
  is scaled by the actual drive resistance;
* for the *worst-case* column the charging of internal stack nodes is added
  as an Elmore term, computed on the conducting resistor network of the worst
  transition (effective resistances solved exactly via the network Laplacian).

Capacitances follow the paper's normalizations: the gate capacitance of a
device equals its width, the drain/source parasitic capacitance equals the
gate capacitance, and the polarity gate loads its controlling signal exactly
like a regular gate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import OUTPUT, VDD, VSS, CellNetlist
from repro.circuits.sizing import PSEUDO_LOAD_WIDTH, PSEUDO_PULL_DOWN_TARGET
from repro.devices.transistor import Device, DeviceRole, Literal

_PULL_DOWN_ROLES = (DeviceRole.PULL_DOWN,)
_PULL_UP_ROLES = (DeviceRole.PULL_UP, DeviceRole.PSEUDO_LOAD)

#: Load presented by one fanout copy, in multiples of the switching input's
#: own capacitance (FO4 = fanout of four).
FANOUT = 4


@dataclass(frozen=True)
class DelayReport:
    """FO4 characterization of one cell."""

    fo4_worst: float
    fo4_average: float
    fo4_per_signal: dict[str, float]
    parasitic_output: float
    logical_effort: dict[Literal, float]

    def scaled_worst(self, tau_ps: float) -> float:
        """Worst-case FO4 delay in picoseconds."""
        return self.fo4_worst * tau_ps

    def scaled_average(self, tau_ps: float) -> float:
        """Average FO4 delay in picoseconds."""
        return self.fo4_average * tau_ps


def _conductance(device: Device, rail_value: bool, assignment: dict[str, bool],
                 weak_factor: float) -> float:
    """Channel conductance of a conducting device passing ``rail_value``."""
    if device.passes_strongly(rail_value, assignment):
        return device.width
    return device.width / weak_factor


def _effective_resistances(
    devices: list[Device],
    assignment: dict[str, bool],
    rail: str,
    rail_value: bool,
    weak_factor: float,
) -> dict[str, float] | None:
    """Effective resistance from ``rail`` to every reachable node.

    Builds the conductance Laplacian of the conducting subnetwork and solves
    for node potentials with one ampere injected at each node of interest.
    Returns ``None`` when the output is not connected to the rail.
    """
    conducting = [d for d in devices if d.conducts(assignment)]
    if not conducting:
        return None
    nodes: list[str] = []
    index: dict[str, int] = {}
    for device in conducting:
        for node in (device.node_a, device.node_b):
            if node not in index:
                index[node] = len(nodes)
                nodes.append(node)
    if rail not in index or OUTPUT not in index:
        return None
    n = len(nodes)
    laplacian = np.zeros((n, n))
    for device in conducting:
        g = _conductance(device, rail_value, assignment, weak_factor)
        a, b = index[device.node_a], index[device.node_b]
        laplacian[a, a] += g
        laplacian[b, b] += g
        laplacian[a, b] -= g
        laplacian[b, a] -= g
    # Ground the rail node and solve for the others.
    rail_idx = index[rail]
    keep = [i for i in range(n) if i != rail_idx]
    reduced = laplacian[np.ix_(keep, keep)]
    resistances: dict[str, float] = {rail: 0.0}
    try:
        inv = np.linalg.inv(reduced)
    except np.linalg.LinAlgError:
        return None
    for pos, i in enumerate(keep):
        resistances[nodes[i]] = float(inv[pos, pos])
    if OUTPUT not in resistances or not np.isfinite(resistances[OUTPUT]):
        return None
    return resistances


def _output_value(netlist: CellNetlist, assignment: dict[str, bool]) -> bool | None:
    """Logic value at the output node, or ``None`` when floating/contending."""
    pd = [d for d in netlist.devices if d.role in _PULL_DOWN_ROLES]
    pu = [d for d in netlist.devices if d.role in _PULL_UP_ROLES]
    pseudo = any(d.role is DeviceRole.PSEUDO_LOAD for d in netlist.devices)

    def connected(devices: list[Device], rail: str) -> bool:
        adjacency: dict[str, list[str]] = {}
        for device in devices:
            if device.conducts(assignment):
                adjacency.setdefault(device.node_a, []).append(device.node_b)
                adjacency.setdefault(device.node_b, []).append(device.node_a)
        stack = [OUTPUT]
        seen = {OUTPUT}
        while stack:
            node = stack.pop()
            if node == rail:
                return True
            for neighbour in adjacency.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return False

    pd_on = connected(pd, VSS)
    if pseudo:
        return not pd_on
    pu_on = connected(pu, VDD)
    if pd_on == pu_on:
        return None
    return pu_on


def characterize_delay(netlist: CellNetlist) -> DelayReport:
    """Compute the FO4 delay report of a cell netlist."""
    technology = netlist.technology
    c_unit = technology.inverter_input_capacitance
    weak = technology.weak_direction_factor
    pseudo = any(d.role is DeviceRole.PSEUDO_LOAD for d in netlist.devices)

    # Input capacitance per literal wire and per signal (max over polarities).
    literal_caps = {
        literal: netlist.signal_capacitance(literal)
        for literal in netlist.input_literals()
    }
    logical_effort = {lit: cap / c_unit for lit, cap in literal_caps.items()}
    signal_cap: dict[str, float] = {}
    for literal, cap in literal_caps.items():
        signal_cap[literal.name] = max(signal_cap.get(literal.name, 0.0), cap)

    c_out = netlist.node_capacitance(OUTPUT)
    parasitic_output = c_out / c_unit

    # Nominal drive resistance per transition direction, from the sizing targets.
    if pseudo:
        rise_resistance = 1.0 / PSEUDO_LOAD_WIDTH
        fall_resistance = PSEUDO_PULL_DOWN_TARGET
    else:
        rise_resistance = 1.0
        fall_resistance = 1.0

    order = netlist.input_signals
    num_vars = len(order)
    fo4_per_signal: dict[str, float] = {}
    fo4_worst = 0.0

    pd_devices = [d for d in netlist.devices if d.role in _PULL_DOWN_ROLES]
    pu_devices = [d for d in netlist.devices if d.role in _PULL_UP_ROLES]

    for signal in order:
        cap_in = signal_cap.get(signal, 0.0)
        load = FANOUT * cap_in
        transition_delays: list[float] = []
        worst_for_signal = 0.0
        for minterm in range(1 << num_vars):
            assignment = {
                name: bool((minterm >> i) & 1) for i, name in enumerate(order)
            }
            before = _output_value(netlist, assignment)
            toggled = dict(assignment)
            toggled[signal] = not toggled[signal]
            after = _output_value(netlist, toggled)
            if before is None or after is None or before == after:
                continue
            rail_value = after
            rail = VDD if rail_value else VSS
            nominal_r = rise_resistance if rail_value else fall_resistance
            simple = nominal_r * (c_out + load) / c_unit
            transition_delays.append(simple)

            devices = pu_devices if rail_value else pd_devices
            resistances = _effective_resistances(
                devices, toggled, rail, rail_value, weak
            )
            if resistances is None:
                elmore = simple
            else:
                r_drive = resistances[OUTPUT]
                internal = 0.0
                for node, r_node in resistances.items():
                    if node in (rail, OUTPUT, VDD, VSS):
                        continue
                    internal += r_node * netlist.node_capacitance(node)
                elmore = (internal + r_drive * (c_out + load)) / c_unit
            worst_for_signal = max(worst_for_signal, elmore, simple)
        if transition_delays:
            fo4_per_signal[signal] = sum(transition_delays) / len(transition_delays)
        else:
            # The signal never switches the output (redundant input); report
            # the plain logical-effort value.
            fo4_per_signal[signal] = parasitic_output + FANOUT * cap_in / c_unit
        fo4_worst = max(fo4_worst, worst_for_signal or fo4_per_signal[signal])

    fo4_average = (
        sum(fo4_per_signal.values()) / len(fo4_per_signal) if fo4_per_signal else 0.0
    )
    return DelayReport(
        fo4_worst=fo4_worst,
        fo4_average=fo4_average,
        fo4_per_signal=fo4_per_signal,
        parasitic_output=parasitic_output,
        logical_effort=logical_effort,
    )
