"""Table 1 of the paper: the 46 ambipolar CNTFET logic functions F00..F45.

Every function is realizable with no more than three transmission gates or
transistors in series in each of the pull-up and pull-down networks, with at
most three inputs on regular gates and three control inputs on polarity
gates.  With the same topological constraints a CMOS library realizes only
the seven unate functions F00, F02, F03, F10, F11, F12 and F13
(Sec. 3.1 of the paper).

Functions are written in the paper's algebra (``^`` for XOR, ``|``/``+`` for
OR, ``&``/``.`` for AND); inputs named ``A``, ``B``, ``C`` are applied to
regular gates and ``D``, ``E``, ``F`` are the free control variables applied
to polarity gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.logic.expr import Expr, parse_expr
from repro.logic.truth_table import TruthTable


@dataclass(frozen=True)
class FunctionSpec:
    """One Table-1 entry."""

    function_id: str
    expression_text: str

    @property
    def expression(self) -> Expr:
        return parse_expr(self.expression_text)

    @property
    def input_names(self) -> tuple[str, ...]:
        """Distinct input names in alphabetical order (A, B, C, D, E, F)."""
        return self.expression.variables()

    @property
    def arity(self) -> int:
        return len(self.input_names)

    def truth_table(self) -> TruthTable:
        """Truth table of the function over its sorted input names."""
        return self.expression.to_truth_table(self.input_names)

    def uses_xor(self) -> bool:
        """Whether the function contains at least one XOR term."""
        return "^" in self.expression_text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function_id}: {self.expression_text}"


#: The 46 functions of Table 1, in paper order.
TABLE1_FUNCTIONS: tuple[FunctionSpec, ...] = (
    FunctionSpec("F00", "A"),
    FunctionSpec("F01", "A ^ B"),
    FunctionSpec("F02", "A | B"),
    FunctionSpec("F03", "A & B"),
    FunctionSpec("F04", "(A ^ B) | C"),
    FunctionSpec("F05", "(A ^ B) & C"),
    FunctionSpec("F06", "(A ^ B) | (A ^ C)"),
    FunctionSpec("F07", "(A ^ B) & (A ^ C)"),
    FunctionSpec("F08", "(A ^ B) | (C ^ D)"),
    FunctionSpec("F09", "(A ^ B) & (C ^ D)"),
    FunctionSpec("F10", "A | B | C"),
    FunctionSpec("F11", "(A | B) & C"),
    FunctionSpec("F12", "A | (B & C)"),
    FunctionSpec("F13", "A & B & C"),
    FunctionSpec("F14", "(A ^ D) | B | C"),
    FunctionSpec("F15", "(A ^ D) | (B ^ D) | C"),
    FunctionSpec("F16", "(A ^ D) | (B ^ D) | (C ^ D)"),
    FunctionSpec("F17", "((A ^ D) | B) & C"),
    FunctionSpec("F18", "((A ^ D) | (B ^ D)) & C"),
    FunctionSpec("F19", "((A ^ D) | B) & (C ^ D)"),
    FunctionSpec("F20", "((A ^ D) | (B ^ D)) & (C ^ D)"),
    FunctionSpec("F21", "(A | B) & (C ^ D)"),
    FunctionSpec("F22", "(A ^ D) | (B & C)"),
    FunctionSpec("F23", "A | ((B ^ D) & C)"),
    FunctionSpec("F24", "(A ^ D) | ((B ^ D) & C)"),
    FunctionSpec("F25", "A | ((B ^ D) & (C ^ D))"),
    FunctionSpec("F26", "(A ^ D) | ((B ^ D) & (C ^ D))"),
    FunctionSpec("F27", "(A ^ D) & B & C"),
    FunctionSpec("F28", "(A ^ D) & (B ^ D) & C"),
    FunctionSpec("F29", "(A ^ D) & (B ^ D) & (C ^ D)"),
    FunctionSpec("F30", "(A ^ D) | (B ^ E) | C"),
    FunctionSpec("F31", "(A ^ D) | (B ^ D) | (C ^ E)"),
    FunctionSpec("F32", "((A ^ D) | (B ^ E)) & C"),
    FunctionSpec("F33", "((A ^ D) | B) & (C ^ E)"),
    FunctionSpec("F34", "((A ^ D) | (B ^ D)) & (C ^ E)"),
    FunctionSpec("F35", "((A ^ D) | (B ^ E)) & (C ^ D)"),
    FunctionSpec("F36", "(A ^ D) | ((B ^ E) & C)"),
    FunctionSpec("F37", "A | ((B ^ D) & (C ^ E))"),
    FunctionSpec("F38", "(A ^ D) | ((B ^ E) & (C ^ E))"),
    FunctionSpec("F39", "(A ^ D) | ((B ^ E) & (C ^ D))"),
    FunctionSpec("F40", "(A ^ D) & (B ^ E) & C"),
    FunctionSpec("F41", "(A ^ D) & (B ^ D) & (C ^ E)"),
    FunctionSpec("F42", "(A ^ D) | (B ^ E) | (C ^ F)"),
    FunctionSpec("F43", "((A ^ D) | (B ^ E)) & (C ^ F)"),
    FunctionSpec("F44", "(A ^ D) | ((B ^ E) & (C ^ F))"),
    FunctionSpec("F45", "(A ^ D) & (B ^ E) & (C ^ F)"),
)

#: Function ids realizable by the CMOS reference library with the same
#: topology constraints (no XOR terms) -- 7 functions, as stated in Sec. 3.1.
CMOS_FUNCTION_IDS: tuple[str, ...] = ("F00", "F02", "F03", "F10", "F11", "F12", "F13")


@lru_cache(maxsize=None)
def _function_index() -> dict[str, FunctionSpec]:
    return {spec.function_id: spec for spec in TABLE1_FUNCTIONS}


def function_by_id(function_id: str) -> FunctionSpec:
    """Look up a Table-1 entry by its id (e.g. ``"F05"``)."""
    try:
        return _function_index()[function_id]
    except KeyError as exc:
        raise KeyError(f"unknown Table-1 function id {function_id!r}") from exc


def cmos_functions() -> tuple[FunctionSpec, ...]:
    """The subset of Table 1 realizable in the CMOS reference library."""
    return tuple(function_by_id(fid) for fid in CMOS_FUNCTION_IDS)
