"""Regular fabrics of generalized NOR / NAND blocks (paper Sec. 5).

The paper proposes exploiting the regular layout of the ambipolar gates to
build in-field configurable fabrics: a checkerboard of two block types --
generalized NOR (GNOR) and generalized NAND (GNAND) gates, Fig. 7/8 -- whose
inputs (regular gates and polarity gates) are wired by an SRAM-configured
interconnect.  A GNOR block with *k* transmission-gate pairs evaluates

    Y = not((a1 ^ b1) | (a2 ^ b2) | ... | (ak ^ bk))

and the GNAND block the AND-form dual.  By tying polarity inputs to constants
an XOR term degenerates to a literal (``x ^ 0 = x``, ``x ^ 1 = x'``) and by
tying a pair to equal signals the term drops out, so one physical block
realizes a large subset of the Table-1 library in the field.

This module provides a behavioural model of such fabrics: block configuration
(with feasibility checking), functional evaluation, and area / utilization
accounting.  It is the basis of ``examples/regular_fabric_demo.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.circuits.netlist import CellStyle, build_cell_netlist
from repro.circuits.area import cell_area
from repro.circuits.sp_network import (
    LiteralSwitch,
    Parallel,
    Series,
    SwitchNetwork,
    XorSwitch,
    network_from_expr,
)
from repro.core.functions import FunctionSpec
from repro.devices.transistor import Literal
from repro.logic.expr import parse_expr


class BlockKind(Enum):
    """The two interleaved logic-block types of the fabric (Fig. 7)."""

    GNOR = "gnor"
    GNAND = "gnand"


#: Constant nets available to the configuration bits.
CONST_ZERO = "0"
CONST_ONE = "1"


@dataclass(frozen=True)
class TermConfiguration:
    """Configuration of one transmission-gate pair of a generalized gate.

    ``gate_input`` drives the regular gates and ``polarity_input`` drives the
    polarity gates; either may be a signal name or a constant net.
    A disabled term is tied so that it never affects the output
    (``x ^ x = 0`` for GNOR, complement for GNAND).
    """

    gate_input: str
    polarity_input: str
    enabled: bool = True


@dataclass
class GeneralizedGate:
    """A configurable GNOR or GNAND gate with a fixed number of term pairs."""

    kind: BlockKind
    term_count: int = 3
    terms: list[TermConfiguration] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.term_count < 1:
            raise ValueError("a generalized gate needs at least one term pair")
        if not self.terms:
            self.terms = [
                TermConfiguration(CONST_ZERO, CONST_ZERO, enabled=False)
                for _ in range(self.term_count)
            ]
        if len(self.terms) != self.term_count:
            raise ValueError("terms must match term_count")

    # -- configuration ------------------------------------------------------

    def configure(self, spec: FunctionSpec) -> None:
        """Program the block to realize a Table-1 function.

        The function must be an OR (for GNOR) or AND (for GNAND) of at most
        ``term_count`` terms, each term being a literal or an XOR of two
        literals.  Raises :class:`FabricConfigurationError` otherwise.
        """
        terms = _decompose_terms(spec, self.kind, self.term_count)
        configured: list[TermConfiguration] = []
        for gate_input, polarity_input in terms:
            configured.append(TermConfiguration(gate_input, polarity_input, True))
        while len(configured) < self.term_count:
            idle = CONST_ZERO if self.kind is BlockKind.GNOR else CONST_ONE
            # A GNOR idle term must evaluate to 0 (x ^ x); a GNAND idle term
            # must evaluate to 1 (x ^ x').
            configured.append(
                TermConfiguration(CONST_ZERO, CONST_ZERO if idle == CONST_ZERO else CONST_ONE, False)
            )
        self.terms = configured

    def is_configured(self) -> bool:
        return any(term.enabled for term in self.terms)

    # -- behaviour -----------------------------------------------------------

    def _resolve(self, net: str, assignment: Mapping[str, bool]) -> bool:
        if net == CONST_ZERO:
            return False
        if net == CONST_ONE:
            return True
        if net.endswith("'"):
            return not bool(assignment[net[:-1]])
        return bool(assignment[net])

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Value of the (inverting) block output under an input assignment."""
        term_values = []
        for term in self.terms:
            value = self._resolve(term.gate_input, assignment) != self._resolve(
                term.polarity_input, assignment
            )
            term_values.append(value)
        if self.kind is BlockKind.GNOR:
            return not any(term_values)
        return not all(term_values)

    def signals(self) -> tuple[str, ...]:
        names = set()
        for term in self.terms:
            for net in (term.gate_input, term.polarity_input):
                if net not in (CONST_ZERO, CONST_ONE):
                    names.add(net.rstrip("'"))
        return tuple(sorted(names))

    # -- physical estimate ---------------------------------------------------

    def area(self) -> float:
        """Normalized area of the block's static transmission-gate implementation."""
        terms: list[SwitchNetwork] = [
            XorSwitch(Literal(f"a{i}"), Literal(f"b{i}")) for i in range(self.term_count)
        ]
        if self.kind is BlockKind.GNOR:
            network: SwitchNetwork = Parallel(tuple(terms))
        else:
            network = Series(tuple(terms))
        netlist = build_cell_netlist(
            f"{self.kind.value}{self.term_count}",
            network,
            CellStyle.TRANSMISSION_GATE_STATIC,
        )
        return cell_area(netlist, with_output_inverter=True)


class FabricConfigurationError(ValueError):
    """Raised when a function cannot be mapped onto a fabric block."""


def _decompose_terms(
    spec: FunctionSpec, kind: BlockKind, max_terms: int
) -> list[tuple[str, str]]:
    """Split a Table-1 function into (gate, polarity) input pairs for a block."""
    network = network_from_expr(parse_expr(spec.expression_text))
    if isinstance(network, (LiteralSwitch, XorSwitch)):
        children: Sequence[SwitchNetwork] = (network,)
    elif isinstance(network, Parallel):
        if kind is not BlockKind.GNOR:
            raise FabricConfigurationError(
                f"{spec.function_id} is an OR form; it needs a GNOR block"
            )
        children = network.children
    elif isinstance(network, Series):
        if kind is not BlockKind.GNAND:
            raise FabricConfigurationError(
                f"{spec.function_id} is an AND form; it needs a GNAND block"
            )
        children = network.children
    else:  # pragma: no cover - defensive
        raise FabricConfigurationError(f"unsupported function {spec.function_id}")

    if len(children) > max_terms:
        raise FabricConfigurationError(
            f"{spec.function_id} needs {len(children)} terms, block has {max_terms}"
        )

    pairs: list[tuple[str, str]] = []
    for child in children:
        if isinstance(child, LiteralSwitch):
            polarity = CONST_ONE if child.literal.negated else CONST_ZERO
            pairs.append((child.literal.name, polarity))
        elif isinstance(child, XorSwitch):
            first = str(child.first)
            second = str(child.second)
            pairs.append((first, second))
        else:
            raise FabricConfigurationError(
                f"{spec.function_id} mixes AND and OR terms; it does not fit a "
                "single generalized gate"
            )
    return pairs


@dataclass
class FabricBlock:
    """One tile of the fabric: a generalized gate plus its position."""

    row: int
    column: int
    gate: GeneralizedGate
    label: str | None = None


@dataclass
class RegularFabric:
    """A checkerboard of GNOR / GNAND blocks with SRAM-configured routing.

    The block kind alternates along rows and columns (type 1 / type 2 in
    Fig. 7); routing is modelled only as a net-name binding, the electrical
    cost of the interconnect being outside the paper's scope.
    """

    rows: int
    columns: int
    term_count: int = 3
    blocks: list[FabricBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ValueError("fabric dimensions must be positive")
        if not self.blocks:
            for r in range(self.rows):
                for c in range(self.columns):
                    kind = BlockKind.GNOR if (r + c) % 2 == 0 else BlockKind.GNAND
                    self.blocks.append(
                        FabricBlock(r, c, GeneralizedGate(kind, self.term_count))
                    )

    def block_at(self, row: int, column: int) -> FabricBlock:
        for block in self.blocks:
            if block.row == row and block.column == column:
                return block
        raise KeyError(f"no block at ({row}, {column})")

    def free_blocks(self, kind: BlockKind) -> list[FabricBlock]:
        return [
            b for b in self.blocks if b.gate.kind is kind and not b.gate.is_configured()
        ]

    def place_function(self, spec: FunctionSpec, label: str | None = None) -> FabricBlock:
        """Configure the first free block of the right kind for ``spec``."""
        errors = []
        for kind in (BlockKind.GNOR, BlockKind.GNAND):
            try:
                _decompose_terms(spec, kind, self.term_count)
            except FabricConfigurationError as exc:
                errors.append(str(exc))
                continue
            candidates = self.free_blocks(kind)
            if not candidates:
                raise FabricConfigurationError(
                    f"no free {kind.value} block left for {spec.function_id}"
                )
            block = candidates[0]
            block.gate.configure(spec)
            block.label = label or spec.function_id
            return block
        raise FabricConfigurationError(
            f"{spec.function_id} cannot be placed: {'; '.join(errors)}"
        )

    def utilization(self) -> float:
        used = sum(1 for b in self.blocks if b.gate.is_configured())
        return used / len(self.blocks)

    def total_area(self) -> float:
        """Total normalized area of all blocks (configured or not)."""
        if not self.blocks:
            return 0.0
        per_kind: dict[BlockKind, float] = {}
        for kind in BlockKind:
            per_kind[kind] = GeneralizedGate(kind, self.term_count).area()
        return sum(per_kind[b.gate.kind] for b in self.blocks)
