"""The paper's primary contribution: the ambipolar CNTFET gate library.

* :mod:`repro.core.functions` -- the 46 Table-1 functions F00..F45 and the
  7-function CMOS subset.
* :mod:`repro.core.cell` -- a fully characterized library cell (netlist, area,
  FO4 delays, matchable output function).
* :mod:`repro.core.families` -- construction of complete libraries for each of
  the logic families of Sec. 3 (transmission-gate static / pseudo,
  pass-transistor static / pseudo, CMOS reference).
* :mod:`repro.core.library` -- the :class:`~repro.core.library.GateLibrary`
  container with genlib export and lookup utilities.
* :mod:`repro.core.characterize` -- Table-2 style characterization
  (per-cell and per-family rows).
* :mod:`repro.core.paper_data` -- the values published in Tables 2 and 3, for
  side-by-side comparison in EXPERIMENTS.md.
* :mod:`repro.core.regular_fabric` -- the Sec. 5 regular fabric built from
  interleaved GNOR/GNAND blocks.
"""

from repro.core.functions import (
    CMOS_FUNCTION_IDS,
    FunctionSpec,
    TABLE1_FUNCTIONS,
    function_by_id,
)
from repro.core.cell import LibraryCell
from repro.core.families import LogicFamily, build_family_cells
from repro.core.library import GateLibrary, build_library
from repro.core.characterize import (
    CellCharacterization,
    FamilySummary,
    characterize_family,
    characterize_cell,
)

__all__ = [
    "FunctionSpec",
    "TABLE1_FUNCTIONS",
    "CMOS_FUNCTION_IDS",
    "function_by_id",
    "LibraryCell",
    "LogicFamily",
    "build_family_cells",
    "GateLibrary",
    "build_library",
    "CellCharacterization",
    "FamilySummary",
    "characterize_cell",
    "characterize_family",
]
