"""The logic families of Sec. 3 and their complete cell sets.

========================  ====================================================
family                     contents
========================  ====================================================
TG_STATIC                  all 46 Table-1 functions as full-swing static
                           transmission-gate cells (Sec. 3.1)
TG_PSEUDO                  all 46 functions in pseudo logic (weak always-on
                           pull-up, Sec. 3.2)
PASS_STATIC                all 46 functions with single pass transistors for
                           XOR terms, static PU/PD (Sec. 3.2)
PASS_PSEUDO                all 46 functions with pass transistors and the
                           weak pull-up load (Sec. 3.2)
CMOS                       the 7 functions realizable without ambipolar
                           devices (F00, F02, F03, F10..F13)
========================  ====================================================
"""

from __future__ import annotations

from enum import Enum

from repro.circuits.netlist import CellStyle
from repro.core.cell import LibraryCell, build_cell
from repro.core.functions import (
    CMOS_FUNCTION_IDS,
    TABLE1_FUNCTIONS,
    FunctionSpec,
    function_by_id,
)


class LogicFamily(Enum):
    """The five libraries characterized and compared in the paper."""

    TG_STATIC = "cntfet-tg-static"
    TG_PSEUDO = "cntfet-tg-pseudo"
    PASS_STATIC = "cntfet-pass-static"
    PASS_PSEUDO = "cntfet-pass-pseudo"
    CMOS = "cmos-static"

    @property
    def style(self) -> CellStyle:
        return _FAMILY_STYLE[self]

    @property
    def is_cntfet(self) -> bool:
        return self is not LogicFamily.CMOS

    @property
    def tau_ps(self) -> float:
        """Technology-dependent intrinsic delay used for absolute delays."""
        return self.style.technology.tau_ps

    def function_specs(self) -> tuple[FunctionSpec, ...]:
        """The Table-1 subset realizable by this family."""
        if self is LogicFamily.CMOS:
            return tuple(function_by_id(fid) for fid in CMOS_FUNCTION_IDS)
        return TABLE1_FUNCTIONS


_FAMILY_STYLE = {
    LogicFamily.TG_STATIC: CellStyle.TRANSMISSION_GATE_STATIC,
    LogicFamily.TG_PSEUDO: CellStyle.TRANSMISSION_GATE_PSEUDO,
    LogicFamily.PASS_STATIC: CellStyle.PASS_TRANSISTOR_STATIC,
    LogicFamily.PASS_PSEUDO: CellStyle.PASS_TRANSISTOR_PSEUDO,
    LogicFamily.CMOS: CellStyle.CMOS_STATIC,
}


def build_family_cells(
    family: LogicFamily,
    function_ids: tuple[str, ...] | None = None,
    verify: bool = True,
) -> tuple[LibraryCell, ...]:
    """Build every cell of a family (optionally restricted to ``function_ids``).

    Each cell is sized, characterized and -- unless ``verify`` is disabled --
    verified at switch level against its Table-1 function.
    """
    specs = family.function_specs()
    if function_ids is not None:
        wanted = set(function_ids)
        specs = tuple(spec for spec in specs if spec.function_id in wanted)
        missing = wanted - {spec.function_id for spec in specs}
        if missing:
            raise KeyError(
                f"functions {sorted(missing)} are not available in family {family.value}"
            )
    return tuple(build_cell(spec, family.style, verify=verify) for spec in specs)
