"""Table-2 style characterization of a gate library.

For every cell of a family we report the transistor count, the normalized
area and the worst-case / average FO4 delays; for the family we report the
averages with and without the output inverter that provides the complemented
output polarity (paper Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cell import LibraryCell
from repro.core.library import GateLibrary


@dataclass(frozen=True)
class CellCharacterization:
    """One row of the regenerated Table 2."""

    function_id: str
    expression: str
    transistors: int
    area: float
    area_with_inverter: float
    fo4_worst: float
    fo4_average: float
    fo4_average_with_inverter: float
    full_swing: bool


@dataclass(frozen=True)
class FamilySummary:
    """The per-family average rows of Table 2."""

    family_name: str
    tau_ps: float
    cell_count: int
    average_transistors: float
    average_area: float
    average_fo4_worst: float
    average_fo4: float
    average_transistors_with_inverter: float
    average_area_with_inverter: float
    average_fo4_with_inverter: float


def characterize_cell(cell: LibraryCell) -> CellCharacterization:
    """Characterize a single cell (one Table-2 row)."""
    inverter_extra = _output_inverter_delay(cell)
    return CellCharacterization(
        function_id=cell.function_id,
        expression=cell.expression_text,
        transistors=cell.transistor_count,
        area=cell.area,
        area_with_inverter=cell.area_with_inverter,
        fo4_worst=cell.delay.fo4_worst,
        fo4_average=cell.delay.fo4_average,
        fo4_average_with_inverter=cell.delay.fo4_average + inverter_extra,
        full_swing=cell.full_swing,
    )


def _output_inverter_delay(cell: LibraryCell) -> float:
    """Extra delay of the output inverter providing the complemented polarity.

    Modelled as the fanout-of-1 delay of the unit inverter of the cell's
    technology (parasitic plus one unit load).
    """
    return 2.0


def characterize_family(
    library: GateLibrary,
) -> tuple[tuple[CellCharacterization, ...], FamilySummary]:
    """Characterize every cell of a library and compute the family averages."""
    rows = tuple(characterize_cell(cell) for cell in library.cells)
    count = len(rows)
    inverter_transistors = 2

    summary = FamilySummary(
        family_name=library.name,
        tau_ps=library.tau_ps,
        cell_count=count,
        average_transistors=sum(r.transistors for r in rows) / count,
        average_area=sum(r.area for r in rows) / count,
        average_fo4_worst=sum(r.fo4_worst for r in rows) / count,
        average_fo4=sum(r.fo4_average for r in rows) / count,
        average_transistors_with_inverter=(
            sum(r.transistors + inverter_transistors for r in rows) / count
        ),
        average_area_with_inverter=sum(r.area_with_inverter for r in rows) / count,
        average_fo4_with_inverter=(
            sum(r.fo4_average_with_inverter for r in rows) / count
        ),
    )
    return rows, summary
