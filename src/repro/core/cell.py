"""A fully characterized library cell.

A :class:`LibraryCell` bundles everything the rest of the flow needs to know
about one gate of one logic family: the Table-1 function it realizes, its
sized transistor netlist, its normalized area, its FO4 delay report and the
Boolean function visible at its output node.

Every cell also carries an output inverter option (paper Sec. 4.3): the
library provides both polarities of every cell output so that the
complemented literals required by the transmission-gate XOR terms are always
available.  The technology mapper exploits this by matching cuts against both
output polarities of every cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

from repro.circuits.area import cell_area
from repro.circuits.delay import DelayReport, characterize_delay
from repro.circuits.netlist import CellNetlist, CellStyle, build_cell_netlist
from repro.circuits.sp_network import network_from_expr
from repro.circuits.switch_sim import simulate_cell
from repro.core.functions import FunctionSpec
from repro.logic.truth_table import TruthTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.cell_power import PowerReport


@dataclass(frozen=True)
class LibraryCell:
    """One characterized gate of a logic family."""

    name: str
    function_id: str
    expression_text: str
    style: CellStyle
    input_names: tuple[str, ...]
    netlist: CellNetlist
    function: TruthTable
    output_function: TruthTable
    area: float
    area_with_inverter: float
    delay: DelayReport
    full_swing: bool

    @property
    def transistor_count(self) -> int:
        return self.netlist.transistor_count()

    @property
    def arity(self) -> int:
        return len(self.input_names)

    @property
    def is_inverting(self) -> bool:
        """The natural cell output is the complement of the Table-1 function."""
        return True

    @cached_property
    def power(self) -> "PowerReport":
        """Power characterization, computed on first use and cached like the
        delay report (the import is local because the analysis package sits
        above ``repro.core`` in the layering)."""
        from repro.analysis.cell_power import characterize_power

        return characterize_power(self.netlist)

    def delay_average_ps(self) -> float:
        return self.delay.scaled_average(self.netlist.technology.tau_ps)

    def delay_worst_ps(self) -> float:
        return self.delay.scaled_worst(self.netlist.technology.tau_ps)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name} [{self.style.value}] {self.expression_text} "
            f"(T={self.transistor_count}, A={self.area:.1f})"
        )


class CellConstructionError(ValueError):
    """Raised when a function cannot be realized in the requested style."""


def build_cell(spec: FunctionSpec, style: CellStyle, verify: bool = True) -> LibraryCell:
    """Construct and characterize the cell realizing ``spec`` in ``style``.

    With ``verify`` (the default) the sized netlist is simulated exhaustively
    at switch level and checked against the intended function; construction
    fails loudly on any mismatch, contention or floating output.
    """
    allow_xor = style is not CellStyle.CMOS_STATIC
    try:
        pd_network = network_from_expr(spec.expression, allow_xor=allow_xor)
    except ValueError as exc:
        raise CellConstructionError(
            f"{spec.function_id} cannot be built in style {style.value}: {exc}"
        ) from exc

    name = f"{spec.function_id}_{style.value.replace('-', '_')}"
    netlist = build_cell_netlist(name, pd_network, style)

    function = spec.truth_table()
    expected_output = ~function

    full_swing = True
    if verify:
        result = simulate_cell(netlist)
        if result.output_table != expected_output:
            raise CellConstructionError(
                f"{name}: switch-level function mismatch "
                f"(got {result.output_table}, expected {expected_output})"
            )
        if not result.is_well_formed:
            raise CellConstructionError(
                f"{name}: contention at {result.contention_minterms} or floating "
                f"output at {result.floating_minterms}"
            )
        full_swing = result.is_full_swing

    area = cell_area(netlist)
    area_with_inverter = cell_area(netlist, with_output_inverter=True)
    delay = characterize_delay(netlist)

    return LibraryCell(
        name=name,
        function_id=spec.function_id,
        expression_text=spec.expression_text,
        style=style,
        input_names=spec.input_names,
        netlist=netlist,
        function=function,
        output_function=expected_output,
        area=area,
        area_with_inverter=area_with_inverter,
        delay=delay,
        full_swing=full_swing,
    )
