"""Values published in the paper, for side-by-side comparison.

Table 2 (library characterization) and Table 3 (technology-mapping results)
are transcribed here verbatim so that the experiment harness can report
``paper vs. measured`` for every cell and every benchmark.  Nothing in the
reproduction *uses* these numbers to produce results -- they are reference
data only (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperCellRow:
    """One Table-2 entry for one family: transistor count, area, FO4 worst/avg."""

    transistors: int
    area: float
    fo4_worst: float
    fo4_average: float


@dataclass(frozen=True)
class PaperBenchmarkRow:
    """One Table-3 entry for one family."""

    gates: int
    area: float
    levels: int
    normalized_delay: float
    absolute_delay_ps: float


#: Table 2: per-cell characterization.  Keys are Table-1 function ids; values
#: map family keys (``tg_static``, ``tg_pseudo``, ``pass_pseudo``, ``cmos``)
#: to the published row.  CMOS rows exist only for the 7 unate functions.
PAPER_TABLE2: dict[str, dict[str, PaperCellRow]] = {
    "F00": {
        "tg_static": PaperCellRow(2, 2.0, 5.0, 5.0),
        "tg_pseudo": PaperCellRow(2, 1.7, 7.0, 7.0),
        "pass_pseudo": PaperCellRow(2, 1.7, 7.0, 7.0),
        "cmos": PaperCellRow(2, 2.0, 5.0, 5.0),
    },
    "F01": {
        "tg_static": PaperCellRow(4, 2.7, 4.0, 4.0),
        "tg_pseudo": PaperCellRow(3, 2.1, 5.7, 5.7),
        "pass_pseudo": PaperCellRow(2, 3.0, 13.7, 13.7),
    },
    "F02": {
        "tg_static": PaperCellRow(4, 6.0, 8.0, 8.0),
        "tg_pseudo": PaperCellRow(3, 3.0, 8.3, 8.3),
        "pass_pseudo": PaperCellRow(3, 3.0, 8.3, 8.3),
        "cmos": PaperCellRow(4, 10.0, 8.7, 8.7),
    },
    "F03": {
        "tg_static": PaperCellRow(4, 6.0, 8.0, 8.0),
        "tg_pseudo": PaperCellRow(3, 5.7, 13.7, 13.7),
        "pass_pseudo": PaperCellRow(3, 5.7, 13.7, 13.7),
        "cmos": PaperCellRow(4, 8.0, 7.3, 7.3),
    },
    "F04": {
        "tg_static": PaperCellRow(6, 7.0, 8.2, 6.6),
        "tg_pseudo": PaperCellRow(5, 3.4, 8.8, 7.4),
        "pass_pseudo": PaperCellRow(3, 4.3, 15.0, 13.2),
    },
    "F05": {
        "tg_static": PaperCellRow(6, 7.0, 8.2, 6.6),
        "tg_pseudo": PaperCellRow(5, 6.6, 13.7, 10.8),
        "pass_pseudo": PaperCellRow(3, 13.7, 27.0, 23.4),
    },
    "F06": {
        "tg_static": PaperCellRow(8, 8.0, 10.7, 8.0),
        "tg_pseudo": PaperCellRow(5, 3.9, 11.0, 8.6),
        "pass_pseudo": PaperCellRow(3, 5.7, 27.0, 19.9),
    },
    "F07": {
        "tg_static": PaperCellRow(8, 8.0, 10.7, 8.0),
        "tg_pseudo": PaperCellRow(5, 7.4, 18.1, 13.4),
        "pass_pseudo": PaperCellRow(3, 11.0, 48.3, 34.1),
    },
    "F08": {
        "tg_static": PaperCellRow(8, 8.0, 6.7, 6.7),
        "tg_pseudo": PaperCellRow(5, 3.9, 7.4, 7.4),
        "pass_pseudo": PaperCellRow(3, 5.7, 16.3, 16.3),
    },
    "F09": {
        "tg_static": PaperCellRow(8, 8.0, 6.7, 6.7),
        "tg_pseudo": PaperCellRow(5, 7.4, 11.0, 11.0),
        "pass_pseudo": PaperCellRow(3, 11.0, 27.0, 27.0),
    },
    "F10": {
        "tg_static": PaperCellRow(6, 12.0, 11.0, 11.0),
        "tg_pseudo": PaperCellRow(4, 4.3, 9.7, 9.7),
        "pass_pseudo": PaperCellRow(4, 4.3, 9.7, 9.7),
        "cmos": PaperCellRow(6, 21.0, 12.3, 12.3),
    },
    "F11": {
        "tg_static": PaperCellRow(6, 11.0, 10.5, 9.8),
        "tg_pseudo": PaperCellRow(4, 8.3, 13.7, 13.7),
        "pass_pseudo": PaperCellRow(4, 8.3, 13.7, 13.7),
        "cmos": PaperCellRow(6, 16.0, 10.7, 9.8),
    },
    "F12": {
        "tg_static": PaperCellRow(6, 11.0, 10.5, 9.8),
        "tg_pseudo": PaperCellRow(4, 7.0, 15.0, 13.2),
        "pass_pseudo": PaperCellRow(4, 7.0, 15.0, 13.2),
        "cmos": PaperCellRow(6, 17.0, 10.3, 9.9),
    },
    "F13": {
        "tg_static": PaperCellRow(6, 12.0, 11.0, 11.0),
        "tg_pseudo": PaperCellRow(4, 12.3, 20.3, 20.3),
        "pass_pseudo": PaperCellRow(4, 12.3, 20.3, 20.3),
        "cmos": PaperCellRow(6, 15.0, 9.7, 9.7),
    },
    "F14": {
        "tg_static": PaperCellRow(8, 13.3, 11.2, 9.4),
        "tg_pseudo": PaperCellRow(5, 4.8, 10.1, 8.9),
        "pass_pseudo": PaperCellRow(4, 5.7, 16.3, 13.7),
    },
    "F15": {
        "tg_static": PaperCellRow(10, 14.7, 11.3, 10.6),
        "tg_pseudo": PaperCellRow(6, 5.2, 12.3, 10.1),
        "pass_pseudo": PaperCellRow(4, 7.0, 28.3, 19.0),
    },
    "F16": {
        "tg_static": PaperCellRow(12, 16.0, 20.0, 12.0),
        "tg_pseudo": PaperCellRow(7, 5.7, 16.3, 11.0),
        "pass_pseudo": PaperCellRow(4, 8.3, 40.3, 24.3),
    },
    "F17": {
        "tg_static": PaperCellRow(8, 12.3, 10.5, 8.4),
        "tg_pseudo": PaperCellRow(5, 9.2, 13.7, 11.3),
        "pass_pseudo": PaperCellRow(4, 11.0, 24.3, 20.8),
    },
    "F18": {
        "tg_static": PaperCellRow(10, 13.7, 13.5, 9.8),
        "tg_pseudo": PaperCellRow(6, 10.1, 17.2, 12.7),
        "pass_pseudo": PaperCellRow(4, 13.7, 45.7, 28.9),
    },
    "F19": {
        "tg_static": PaperCellRow(10, 13.3, 12.3, 10.1),
        "tg_pseudo": PaperCellRow(6, 10.1, 18.1, 13.5),
        "pass_pseudo": PaperCellRow(4, 13.7, 48.3, 31.6),
    },
    "F20": {
        "tg_static": PaperCellRow(12, 14.7, 18.0, 10.7),
        "tg_pseudo": PaperCellRow(7, 11.0, 25.2, 14.6),
        "pass_pseudo": PaperCellRow(4, 16.3, 69.7, 37.7),
    },
    "F21": {
        "tg_static": PaperCellRow(8, 12.0, 11.0, 8.3),
        "tg_pseudo": PaperCellRow(5, 9.2, 14.6, 12.2),
        "pass_pseudo": PaperCellRow(4, 11.0, 27.0, 23.4),
    },
    "F22": {
        "tg_static": PaperCellRow(8, 12.0, 11.0, 8.3),
        "tg_pseudo": PaperCellRow(5, 7.4, 15.4, 10.7),
        "pass_pseudo": PaperCellRow(4, 8.3, 16.3, 16.3),
    },
    "F23": {
        "tg_static": PaperCellRow(8, 12.3, 10.5, 8.4),
        "tg_pseudo": PaperCellRow(5, 7.9, 13.7, 10.4),
        "pass_pseudo": PaperCellRow(4, 9.7, 25.7, 19.0),
    },
    "F24": {
        "tg_static": PaperCellRow(10, 13.3, 12.3, 9.5),
        "tg_pseudo": PaperCellRow(6, 7.0, 15.4, 12.4),
        "pass_pseudo": PaperCellRow(4, 11.0, 37.7, 24.3),
    },
    "F25": {
        "tg_static": PaperCellRow(10, 13.7, 13.5, 9.8),
        "tg_pseudo": PaperCellRow(6, 8.8, 26.6, 14.1),
        "pass_pseudo": PaperCellRow(4, 12.3, 49.7, 29.7),
    },
    "F26": {
        "tg_static": PaperCellRow(12, 14.7, 18.0, 10.7),
        "tg_pseudo": PaperCellRow(7, 9.2, 23.4, 14.6),
        "pass_pseudo": PaperCellRow(4, 7.0, 31.0, 17.7),
    },
    "F27": {
        "tg_static": PaperCellRow(8, 13.3, 11.2, 9.4),
        "tg_pseudo": PaperCellRow(5, 13.7, 20.3, 16.8),
        "pass_pseudo": PaperCellRow(4, 16.3, 36.3, 28.3),
    },
    "F28": {
        "tg_static": PaperCellRow(10, 14.7, 14.0, 10.6),
        "tg_pseudo": PaperCellRow(6, 15.0, 20.3, 10.7),
        "pass_pseudo": PaperCellRow(4, 20.3, 68.3, 40.3),
    },
    "F29": {
        "tg_static": PaperCellRow(12, 16.0, 20.0, 12.0),
        "tg_pseudo": PaperCellRow(7, 16.3, 37.7, 21.7),
        "pass_pseudo": PaperCellRow(4, 24.3, 104.3, 56.3),
    },
    "F30": {
        "tg_static": PaperCellRow(10, 14.7, 11.3, 11.0),
        "tg_pseudo": PaperCellRow(6, 5.2, 14.1, 12.5),
        "pass_pseudo": PaperCellRow(4, 7.0, 17.7, 16.6),
    },
    "F31": {
        "tg_static": PaperCellRow(12, 16.0, 14.7, 10.4),
        "tg_pseudo": PaperCellRow(7, 5.7, 12.8, 9.3),
        "pass_pseudo": PaperCellRow(4, 8.3, 29.7, 21.1),
    },
    "F32": {
        "tg_static": PaperCellRow(10, 13.7, 8.8, 8.2),
        "tg_pseudo": PaperCellRow(6, 10.1, 13.7, 10.5),
        "pass_pseudo": PaperCellRow(4, 13.7, 24.3, 23.2),
    },
    "F33": {
        "tg_static": PaperCellRow(10, 13.3, 11.0, 8.0),
        "tg_pseudo": PaperCellRow(6, 10.1, 14.6, 11.4),
        "pass_pseudo": PaperCellRow(4, 13.7, 27.0, 25.8),
    },
    "F34": {
        "tg_static": PaperCellRow(14, 12.7, 14.0, 9.2),
        "tg_pseudo": PaperCellRow(7, 11.0, 18.1, 12.4),
        "pass_pseudo": PaperCellRow(4, 16.3, 48.0, 31.3),
    },
    "F35": {
        "tg_static": PaperCellRow(12, 14.7, 14.0, 9.2),
        "tg_pseudo": PaperCellRow(7, 11.0, 18.1, 12.4),
        "pass_pseudo": PaperCellRow(4, 16.3, 48.3, 31.3),
    },
    "F36": {
        "tg_static": PaperCellRow(10, 13.3, 11.0, 8.0),
        "tg_pseudo": PaperCellRow(6, 8.3, 15.4, 10.7),
        "pass_pseudo": PaperCellRow(4, 11.0, 27.0, 20.6),
    },
    "F37": {
        "tg_static": PaperCellRow(10, 13.7, 10.8, 8.5),
        "tg_pseudo": PaperCellRow(6, 10.1, 13.7, 10.5),
        "pass_pseudo": PaperCellRow(4, 13.7, 24.3, 13.2),
    },
    "F38": {
        "tg_static": PaperCellRow(12, 14.7, 14.0, 9.2),
        "tg_pseudo": PaperCellRow(7, 9.2, 19.9, 12.8),
        "pass_pseudo": PaperCellRow(4, 13.7, 51.0, 29.7),
    },
    "F39": {
        "tg_static": PaperCellRow(12, 14.7, 12.7, 9.2),
        "tg_pseudo": PaperCellRow(7, 9.2, 16.3, 12.8),
        "pass_pseudo": PaperCellRow(4, 13.7, 40.3, 29.7),
    },
    "F40": {
        "tg_static": PaperCellRow(10, 14.7, 11.3, 9.0),
        "tg_pseudo": PaperCellRow(6, 15.0, 20.3, 15.6),
        "pass_pseudo": PaperCellRow(4, 20.3, 36.3, 33.1),
    },
    "F41": {
        "tg_static": PaperCellRow(12, 16.0, 14.7, 10.4),
        "tg_pseudo": PaperCellRow(7, 16.3, 27.0, 18.5),
        "pass_pseudo": PaperCellRow(4, 24.3, 72.3, 46.7),
    },
    "F42": {
        "tg_static": PaperCellRow(12, 16.0, 9.3, 9.3),
        "tg_pseudo": PaperCellRow(7, 5.7, 9.2, 9.2),
        "pass_pseudo": PaperCellRow(4, 8.3, 19.0, 19.0),
    },
    "F43": {
        "tg_static": PaperCellRow(12, 14.7, 8.7, 8.2),
        "tg_pseudo": PaperCellRow(7, 9.2, 12.8, 11.6),
        "pass_pseudo": PaperCellRow(4, 13.7, 29.7, 26.1),
    },
    "F44": {
        "tg_static": PaperCellRow(12, 16.0, 9.3, 9.3),
        "tg_pseudo": PaperCellRow(7, 16.3, 16.3, 16.3),
        "pass_pseudo": PaperCellRow(4, 24.3, 40.3, 40.3),
    },
    "F45": {
        "tg_static": PaperCellRow(12, 14.7, 8.7, 9.2),
        "tg_pseudo": PaperCellRow(7, 11.0, 11.0, 11.0),
        "pass_pseudo": PaperCellRow(4, 16.3, 32.5, 24.1),
    },
}

#: Table 2 bottom rows: per-family averages without the output inverter.
PAPER_TABLE2_AVERAGES: dict[str, PaperCellRow] = {
    "tg_static": PaperCellRow(9, 12.3, 11.3, 9.0),
    "tg_pseudo": PaperCellRow(6, 8.5, 15.6, 12.0),
    "pass_pseudo": PaperCellRow(4, 11.5, 32.5, 24.1),
    "cmos": PaperCellRow(5, 12.7, 9.1, 9.0),
}

#: Intrinsic delays used to convert normalized delay to picoseconds.
PAPER_TAU_PS = {"cntfet": 0.59, "cmos": 3.00}


@dataclass(frozen=True)
class PaperBenchmark:
    """One Table-3 benchmark with its published results for the three families."""

    name: str
    inputs: int
    outputs: int
    function: str
    tg_static: PaperBenchmarkRow
    tg_pseudo: PaperBenchmarkRow
    cmos: PaperBenchmarkRow


#: Table 3: technology-mapping results of the 15 benchmarks.
PAPER_TABLE3: tuple[PaperBenchmark, ...] = (
    PaperBenchmark(
        "C2670", 233, 140, "ALU and control",
        PaperBenchmarkRow(416, 3292.5, 12, 105.2, 62.1),
        PaperBenchmarkRow(467, 1883.9, 11, 125.3, 73.9),
        PaperBenchmarkRow(674, 5687.0, 16, 120.0, 360.0),
    ),
    PaperBenchmark(
        "C1908", 33, 25, "Error correcting",
        PaperBenchmarkRow(201, 1562.2, 12, 106.5, 62.8),
        PaperBenchmarkRow(207, 893.6, 13, 120.2, 70.9),
        PaperBenchmarkRow(502, 4641.0, 22, 175.0, 525.0),
    ),
    PaperBenchmark(
        "C3540", 50, 22, "ALU and control",
        PaperBenchmarkRow(642, 6228.7, 19, 180.7, 106.7),
        PaperBenchmarkRow(664, 3475.4, 19, 197.6, 116.6),
        PaperBenchmarkRow(956, 8823.0, 29, 218.2, 654.0),
    ),
    PaperBenchmark(
        "dalu", 75, 16, "Dedicated ALU",
        PaperBenchmarkRow(679, 6662.3, 16, 163.6, 96.5),
        PaperBenchmarkRow(713, 3956.8, 17, 193.5, 114.2),
        PaperBenchmarkRow(1100, 9181.0, 28, 205.9, 617.7),
    ),
    PaperBenchmark(
        "C7552", 207, 108, "ALU and control",
        PaperBenchmarkRow(904, 6747.6, 17, 149.1, 88.0),
        PaperBenchmarkRow(987, 4235.7, 17, 174.4, 102.9),
        PaperBenchmarkRow(1860, 13933.0, 24, 173.6, 520.8),
    ),
    PaperBenchmark(
        "C6288", 32, 32, "Multiplier",
        PaperBenchmarkRow(1389, 11672.9, 48, 397.8, 234.7),
        PaperBenchmarkRow(1322, 6558.0, 48, 481.6, 284.1),
        PaperBenchmarkRow(2767, 23192.0, 89, 639.8, 1919.4),
    ),
    PaperBenchmark(
        "C5315", 178, 123, "ALU and selector",
        PaperBenchmarkRow(894, 7600.6, 16, 145.6, 85.9),
        PaperBenchmarkRow(986, 4553.2, 17, 172.2, 101.6),
        PaperBenchmarkRow(1465, 12048.0, 27, 200.2, 600.6),
    ),
    PaperBenchmark(
        "des", 256, 245, "Data encryption",
        PaperBenchmarkRow(2583, 25781.1, 10, 88.1, 52.0),
        PaperBenchmarkRow(2500, 13920.0, 9, 90.8, 53.6),
        PaperBenchmarkRow(3560, 35781.0, 15, 115.3, 345.9),
    ),
    PaperBenchmark(
        "i10", 257, 224, "Logic",
        PaperBenchmarkRow(1279, 11264.2, 19, 200.0, 118.0),
        PaperBenchmarkRow(1287, 6296.2, 21, 222.3, 131.2),
        PaperBenchmarkRow(1965, 16394.0, 29, 218.8, 656.4),
    ),
    PaperBenchmark(
        "t481", 16, 1, "Logic",
        PaperBenchmarkRow(670, 6379.0, 12, 113.7, 67.1),
        PaperBenchmarkRow(598, 3516.0, 11, 114.0, 67.3),
        PaperBenchmarkRow(804, 8259.0, 13, 102.2, 306.6),
    ),
    PaperBenchmark(
        "i18", 133, 81, "Logic",
        PaperBenchmarkRow(674, 6642.0, 8, 83.6, 49.3),
        PaperBenchmarkRow(714, 3698.6, 9, 89.8, 53.0),
        PaperBenchmarkRow(836, 7968.0, 11, 82.1, 246.3),
    ),
    PaperBenchmark(
        "C1355", 41, 32, "Error correcting",
        PaperBenchmarkRow(207, 1260.2, 9, 63.9, 37.7),
        PaperBenchmarkRow(215, 776.6, 9, 73.6, 43.4),
        PaperBenchmarkRow(579, 5376.0, 16, 125.0, 375.0),
    ),
    PaperBenchmark(
        "add-16", 33, 17, "16-bit adder",
        PaperBenchmarkRow(128, 834.4, 19, 179.2, 105.7),
        PaperBenchmarkRow(132, 540.0, 20, 220.0, 129.8),
        PaperBenchmarkRow(217, 1548.0, 33, 244.6, 733.8),
    ),
    PaperBenchmark(
        "add-32", 65, 33, "32-bit adder",
        PaperBenchmarkRow(256, 1656.7, 35, 340.5, 200.9),
        PaperBenchmarkRow(260, 1091.4, 36, 421.6, 248.7),
        PaperBenchmarkRow(441, 3084.0, 65, 479.1, 1437.3),
    ),
    PaperBenchmark(
        "add-64", 129, 65, "64-bit adder",
        PaperBenchmarkRow(512, 3321.0, 67, 663.1, 391.2),
        PaperBenchmarkRow(516, 2194.1, 68, 824.8, 486.6),
        PaperBenchmarkRow(889, 6156.0, 129, 948.3, 2844.9),
    ),
)

#: Table 3 bottom rows: published averages and improvements vs. CMOS.
PAPER_TABLE3_AVERAGES = {
    "tg_static": PaperBenchmarkRow(762, 6727.0, 21, 198.7, 117.2),
    "tg_pseudo": PaperBenchmarkRow(771, 3839.3, 22, 234.8, 138.5),
    "cmos": PaperBenchmarkRow(1241, 10804.7, 36, 269.9, 809.7),
}

PAPER_IMPROVEMENTS = {
    "tg_static": {
        "gates": 0.386,
        "area": 0.377,
        "levels": 0.415,
        "normalized_delay": 0.264,
        "speedup": 6.9,
    },
    "tg_pseudo": {
        "gates": 0.379,
        "area": 0.645,
        "levels": 0.404,
        "normalized_delay": 0.130,
        "speedup": 5.8,
    },
}


def paper_benchmark(name: str) -> PaperBenchmark:
    """Look up a Table-3 benchmark row by name."""
    for row in PAPER_TABLE3:
        if row.name == name:
            return row
    raise KeyError(f"unknown paper benchmark {name!r}")
