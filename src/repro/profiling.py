"""Opt-in per-stage wall-clock accounting for the synthesis pipeline.

The runner's ``--profile`` flag enables a process-global accumulator; the
pipeline stages -- ``optimize`` (technology-independent flow), ``cuts``
(enumeration), ``match`` (forward DP), ``cover`` (covering + timing) and
``verify`` (mapped-netlist equivalence check) -- wrap their hot sections in
:func:`stage`, which is a no-op costing one attribute read when profiling is
disabled.  :func:`snapshot` returns the accumulated seconds and entry counts
for the JSON report, so future performance work can attribute wins per stage.

Since the unified observability layer landed this module is a thin shim over
:mod:`repro.obs.tracer`: the same ``stage``/``count`` call sites feed both
the flat ``--profile`` report and, when tracing is enabled, the hierarchical
span buffer behind ``--trace``/``--metrics-out``.  The API and the snapshot
shape are unchanged, and the disabled path is still one attribute read.
"""

from __future__ import annotations

from repro.obs import tracer as _tracer

#: Re-exported tracer primitives: ``stage`` times a section (and records a
#: span in trace mode); ``count`` bumps a named event counter.  See
#: :mod:`repro.obs.tracer` for their contracts.
stage = _tracer.stage
count = _tracer.count


def enable(reset: bool = True) -> None:
    """Turn the accumulator on (optionally clearing previous figures)."""
    _tracer.enable_profile(reset=reset)


def disable() -> None:
    _tracer.disable_profile()


def active() -> bool:
    """True when ``--profile`` stage accounting is on.

    Deliberately *not* true in trace-only mode: call sites that gate extra
    attribution work (the engine's verify stage) on :func:`active` must not
    change a traced run's behaviour.
    """
    return _tracer.profile_active()


def snapshot() -> dict:
    """The accumulated per-stage figures (stable key order)."""
    return _tracer.profile_snapshot()
