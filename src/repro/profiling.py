"""Opt-in per-stage wall-clock accounting for the synthesis pipeline.

The runner's ``--profile`` flag enables a process-global accumulator; the
pipeline stages -- ``optimize`` (technology-independent flow), ``cuts``
(enumeration), ``match`` (forward DP), ``cover`` (covering + timing) and
``verify`` (mapped-netlist equivalence check) -- wrap their hot sections in
:func:`stage`, which is a no-op costing one attribute read when profiling is
disabled.  :func:`snapshot` returns the accumulated seconds and entry counts
for the JSON report, so future performance work can attribute wins per stage.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

_active = False
_seconds: dict[str, float] = {}
_entries: dict[str, int] = {}
_counters: dict[str, int] = {}


def enable(reset: bool = True) -> None:
    """Turn the accumulator on (optionally clearing previous figures)."""
    global _active
    if reset:
        _seconds.clear()
        _entries.clear()
        _counters.clear()
    _active = True


def disable() -> None:
    global _active
    _active = False


def active() -> bool:
    return _active


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Accumulate the wall-clock time of a pipeline stage when profiling."""
    if not _active:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _seconds[name] = _seconds.get(name, 0.0) + (time.perf_counter() - start)
        _entries[name] = _entries.get(name, 0) + 1


def count(name: str, value: int = 1) -> None:
    """Accumulate a named event counter when profiling is active.

    Used by the robustness layer (cache hits/misses/corruptions/evictions,
    shared-memory degradations, job retries) so ``--profile`` reports the
    failure-path traffic next to the stage timings.  One attribute read
    when profiling is disabled.
    """
    if not _active:
        return
    _counters[name] = _counters.get(name, 0) + value


def snapshot() -> dict:
    """The accumulated per-stage figures (stable key order)."""
    return {
        "stages": {name: _seconds[name] for name in sorted(_seconds)},
        "entries": {name: _entries[name] for name in sorted(_entries)},
        "counters": {name: _counters[name] for name in sorted(_counters)},
        "total_seconds": sum(_seconds.values()),
    }
