"""Setup shim.

The environment has setuptools but no ``wheel`` package, so PEP 660 editable
installs (which must build a wheel) fail offline.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` path; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
