"""Unit tests for permutation/phase enumeration and NPN canonicalization."""

import random

import pytest

from repro.logic import TruthTable, all_input_permutation_phase_tables, npn_canonical, p_canonical
from repro.logic.npn import (
    InputMatch,
    apply_match,
    canonicalize_bits,
    compose_matches,
    enumerate_permutation_phase,
    invert_match,
    npn_canonical_exhaustive,
    npn_canonicalize,
    npn_equivalent,
)


def _tt(func, n):
    return TruthTable.from_function(func, n)


class TestEnumeration:
    def test_and2_reaches_all_four_phase_variants(self):
        and2 = _tt(lambda a, b: a and b, 2)
        tables = all_input_permutation_phase_tables(and2)
        reachable = {TruthTable(2, bits).output_column()[0:4] and bits for bits in tables}
        # AND with optional input complementation covers AND, A&!B, !A&B, NOR
        expected = {
            _tt(lambda a, b: a and b, 2).bits,
            _tt(lambda a, b: a and not b, 2).bits,
            _tt(lambda a, b: (not a) and b, 2).bits,
            _tt(lambda a, b: (not a) and (not b), 2).bits,
        }
        assert expected <= set(tables)
        assert reachable is not None

    def test_xor_is_phase_invariant_up_to_output(self):
        xor2 = _tt(lambda a, b: a != b, 2)
        tables = all_input_permutation_phase_tables(xor2)
        # XOR and XNOR are the only reachable functions without output negation
        assert set(tables) == {xor2.bits, (~xor2).bits}

    def test_output_negation_included_when_requested(self):
        and2 = _tt(lambda a, b: a and b, 2)
        without = all_input_permutation_phase_tables(and2, include_output_negation=False)
        with_out = all_input_permutation_phase_tables(and2, include_output_negation=True)
        nand2 = (~and2).bits
        assert nand2 not in without
        assert nand2 in with_out
        assert with_out[nand2].output_negated is True

    def test_match_metadata_reconstructs_table(self):
        base = _tt(lambda a, b, c: (a != b) and c, 3)
        for reachable_bits, match in all_input_permutation_phase_tables(base).items():
            assert isinstance(match, InputMatch)
            rebuilt = base.apply_phase(match.phase).permute_inputs(match.permutation)
            if match.output_negated:
                rebuilt = ~rebuilt
            assert rebuilt.bits == reachable_bits

    def test_enumeration_size_upper_bound(self):
        or2 = _tt(lambda a, b: a or b, 2)
        items = list(enumerate_permutation_phase(or2))
        assert len(items) == 2 * 4  # 2 permutations x 4 phases


class TestCanonical:
    def test_p_canonical_symmetric_function_is_fixed_point(self):
        and2 = _tt(lambda a, b: a and b, 2)
        assert p_canonical(and2) == and2

    def test_npn_groups_and_or(self):
        and2 = _tt(lambda a, b: a and b, 2)
        or2 = _tt(lambda a, b: a or b, 2)
        nand2 = ~and2
        assert npn_canonical(and2) == npn_canonical(or2) == npn_canonical(nand2)

    def test_npn_separates_and_from_xor(self):
        and2 = _tt(lambda a, b: a and b, 2)
        xor2 = _tt(lambda a, b: a != b, 2)
        assert npn_canonical(and2) != npn_canonical(xor2)

    def test_npn_equivalent_predicate(self):
        aoi = _tt(lambda a, b, c: not ((a and b) or c), 3)
        oai_shuffled = _tt(lambda a, b, c: not ((b or c) and a), 3)
        assert npn_equivalent(aoi, ~aoi)
        assert not npn_equivalent(aoi, _tt(lambda a, b, c: a != b != c, 3))
        assert npn_equivalent(oai_shuffled, oai_shuffled)

    def test_npn_rejects_large_functions(self):
        with pytest.raises(ValueError):
            npn_canonical(TruthTable.constant(False, 7))

    def test_npn_different_arity_not_equivalent(self):
        assert not npn_equivalent(TruthTable.constant(True, 2), TruthTable.constant(True, 3))


def _random_match(rng, n, allow_output_negation=True):
    return InputMatch(
        tuple(rng.sample(range(n), n)),
        rng.getrandbits(n),
        allow_output_negation and rng.random() < 0.5,
    )


class TestTransformAlgebra:
    def test_apply_match_agrees_with_enumeration(self):
        base = _tt(lambda a, b, c: (a != b) and c, 3)
        for reachable, match in enumerate_permutation_phase(
            base, include_output_negation=True
        ):
            assert apply_match(base, match) == reachable

    def test_invert_round_trips(self):
        rng = random.Random(11)
        for _ in range(100):
            n = rng.randint(1, 5)
            table = TruthTable(n, rng.getrandbits(1 << n))
            match = _random_match(rng, n)
            transformed = apply_match(table, match)
            assert apply_match(transformed, invert_match(match)) == table

    def test_compose_is_sequential_application(self):
        rng = random.Random(12)
        for _ in range(100):
            n = rng.randint(1, 5)
            table = TruthTable(n, rng.getrandbits(1 << n))
            first = _random_match(rng, n)
            second = _random_match(rng, n)
            assert apply_match(table, compose_matches(first, second)) == apply_match(
                apply_match(table, first), second
            )

    def test_compose_rejects_arity_mismatch(self):
        with pytest.raises(ValueError):
            compose_matches(InputMatch((0, 1), 0, False), InputMatch((0,), 0, False))


class TestFastCanonicalizer:
    def test_matches_exhaustive_reference(self):
        rng = random.Random(13)
        for _ in range(150):
            n = rng.randint(0, 4)
            table = TruthTable(n, rng.getrandbits(1 << n) if n else rng.getrandbits(1))
            assert npn_canonical(table) == npn_canonical_exhaustive(table)

    def test_transform_witnesses_the_canonical_form(self):
        rng = random.Random(14)
        for _ in range(100):
            n = rng.randint(1, 6)
            table = TruthTable(n, rng.getrandbits(1 << n))
            canonical, transform = npn_canonicalize(table)
            assert apply_match(table, transform) == canonical
            # ...and the transform round-trips back to the original table.
            assert apply_match(canonical, invert_match(transform)) == table

    def test_canonical_form_is_orbit_invariant(self):
        rng = random.Random(15)
        for _ in range(60):
            n = rng.randint(1, 5)
            table = TruthTable(n, rng.getrandbits(1 << n))
            canonical, _ = npn_canonicalize(table)
            variant = apply_match(table, _random_match(rng, n))
            assert npn_canonicalize(variant)[0] == canonical

    def test_np_mode_excludes_output_negation(self):
        rng = random.Random(16)
        for _ in range(60):
            n = rng.randint(1, 4)
            table = TruthTable(n, rng.getrandbits(1 << n))
            canonical, transform = npn_canonicalize(table, include_output_negation=False)
            assert not transform.output_negated
            assert apply_match(table, transform) == canonical
            variant = apply_match(
                table, _random_match(rng, n, allow_output_negation=False)
            )
            assert (
                npn_canonicalize(variant, include_output_negation=False)[0] == canonical
            )

    def test_raw_bits_entry_point_masks_input(self):
        bits, perm, phase, negated = canonicalize_bits(0b1000, 2, True)
        assert bits == canonicalize_bits(0b1000 | (1 << 10), 2, True)[0]
        assert sorted(perm) == [0, 1]

    def test_rejects_more_than_six_inputs(self):
        with pytest.raises(ValueError):
            canonicalize_bits(0, 7, True)
        with pytest.raises(ValueError):
            npn_canonical_exhaustive(TruthTable.constant(False, 7))
