"""Property-based tests on the Boolean substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import TruthTable, npn_canonical, parse_expr
from repro.logic.npn import (
    InputMatch,
    all_input_permutation_phase_tables,
    apply_match,
    invert_match,
    npn_canonicalize,
)

MAX_VARS = 4


def tables(num_vars=MAX_VARS):
    return st.integers(min_value=0, max_value=(1 << (1 << num_vars)) - 1).map(
        lambda bits: TruthTable(num_vars, bits)
    )


def matches(num_vars=MAX_VARS, allow_output_negation=True):
    return st.tuples(
        st.permutations(list(range(num_vars))),
        st.integers(min_value=0, max_value=(1 << num_vars) - 1),
        st.booleans() if allow_output_negation else st.just(False),
    ).map(lambda t: InputMatch(tuple(t[0]), t[1], t[2]))


@given(tables(), tables())
def test_de_morgan_holds_for_random_tables(a, b):
    assert ~(a & b) == (~a) | (~b)
    assert ~(a | b) == (~a) & (~b)


@given(tables())
def test_double_complement_is_identity(a):
    assert ~~a == a


@given(tables(), st.integers(min_value=0, max_value=MAX_VARS - 1))
def test_shannon_expansion(a, index):
    x = TruthTable.variable(index, MAX_VARS)
    rebuilt = (x & a.cofactor(index, True)) | (~x & a.cofactor(index, False))
    assert rebuilt == a


@given(tables(), st.integers(min_value=0, max_value=MAX_VARS - 1))
def test_flip_input_is_involution(a, index):
    assert a.flip_input(index).flip_input(index) == a


@given(tables(), st.permutations(list(range(MAX_VARS))))
def test_permutation_preserves_onset_size(a, perm):
    assert a.permute_inputs(perm).count_ones() == a.count_ones()


@given(tables(3))
@settings(max_examples=30)
def test_npn_canonical_is_class_invariant(a):
    canon = npn_canonical(a)
    for bits in list(all_input_permutation_phase_tables(a, include_output_negation=True))[:10]:
        variant = TruthTable(3, bits)
        assert npn_canonical(variant) == canon


@given(tables(), matches())
def test_npn_canonicalize_invariant_under_random_transforms(a, match):
    """The canonical form of any permuted/phased/negated variant is unchanged."""
    canonical, _ = npn_canonicalize(a)
    variant = apply_match(a, match)
    assert npn_canonicalize(variant)[0] == canonical


@given(tables())
def test_npn_canonicalize_transform_round_trips(a):
    """The returned transform maps the table to its canonical form and back."""
    canonical, transform = npn_canonicalize(a)
    assert apply_match(a, transform) == canonical
    assert apply_match(canonical, invert_match(transform)) == a


@given(tables(), matches(allow_output_negation=False))
def test_np_canonicalize_invariant_without_output_negation(a, match):
    canonical, transform = npn_canonicalize(a, include_output_negation=False)
    assert not transform.output_negated
    variant = apply_match(a, match)
    assert npn_canonicalize(variant, include_output_negation=False)[0] == canonical


@given(tables(3))
@settings(max_examples=30)
def test_support_shrink_round_trip(a):
    reduced, mapping = a.shrink_to_support()
    assert reduced.num_vars == len(mapping)
    expanded = reduced.place_variables(mapping, a.num_vars)
    assert expanded == a


@given(st.lists(st.sampled_from(["A", "B", "C"]), min_size=1, max_size=6),
       st.lists(st.sampled_from(["&", "|", "^"]), min_size=0, max_size=5))
def test_parser_agrees_with_direct_evaluation(names, ops):
    # Build a random left-associated expression string and check evaluation
    # against the truth table conversion on every assignment.
    text = names[0]
    for i, op in enumerate(ops):
        text += f" {op} {names[(i + 1) % len(names)]}"
    expr = parse_expr(text)
    order = list(expr.variables())
    table = expr.to_truth_table(order)
    for minterm in range(1 << len(order)):
        env = {name: bool((minterm >> i) & 1) for i, name in enumerate(order)}
        assert expr.evaluate(env) == table.value_at(minterm)
