"""Unit tests for the bit-packed truth table substrate."""

import pytest

from repro.logic import TruthTable
from repro.logic.truth_table import truth_table_distance, var_pattern


class TestConstruction:
    def test_constant_false(self):
        table = TruthTable.constant(False, 3)
        assert table.bits == 0
        assert table.count_ones() == 0
        assert table.is_constant()

    def test_constant_true(self):
        table = TruthTable.constant(True, 3)
        assert table.count_ones() == 8
        assert table.is_constant()

    def test_variable_projection(self):
        x0 = TruthTable.variable(0, 2)
        x1 = TruthTable.variable(1, 2)
        assert x0.output_column() == [0, 1, 0, 1]
        assert x1.output_column() == [0, 0, 1, 1]

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.variable(2, 2)

    def test_from_function_majority(self):
        maj = TruthTable.from_function(lambda a, b, c: (a + b + c) >= 2, 3)
        assert maj.count_ones() == 4
        assert maj.evaluate([1, 1, 0])
        assert not maj.evaluate([1, 0, 0])

    def test_from_values_round_trip(self):
        column = [0, 1, 1, 0, 1, 0, 0, 1]
        table = TruthTable.from_values(column)
        assert table.output_column() == column

    def test_from_values_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_from_minterms(self):
        table = TruthTable.from_minterms([0, 3], 2)
        assert table.output_column() == [1, 0, 0, 1]

    def test_from_minterms_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms([4], 2)

    def test_too_many_variables_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(21, 0)

    def test_bits_are_masked(self):
        table = TruthTable(1, 0b111111)
        assert table.bits == 0b11


class TestAlgebra:
    def test_and_or_xor_invert(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        assert (a & b).output_column() == [0, 0, 0, 1]
        assert (a | b).output_column() == [0, 1, 1, 1]
        assert (a ^ b).output_column() == [0, 1, 1, 0]
        assert (~a).output_column() == [1, 0, 1, 0]

    def test_de_morgan(self):
        a = TruthTable.variable(0, 3)
        b = TruthTable.variable(1, 3)
        assert ~(a & b) == (~a) | (~b)
        assert ~(a | b) == (~a) & (~b)

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.variable(0, 2) & TruthTable.variable(0, 3)

    def test_xor_is_distance(self):
        a = TruthTable.from_values([0, 1, 1, 0])
        b = TruthTable.from_values([0, 1, 0, 1])
        assert truth_table_distance(a, b) == 2

    def test_distance_requires_same_size(self):
        with pytest.raises(ValueError):
            truth_table_distance(TruthTable.constant(False, 1), TruthTable.constant(False, 2))


class TestStructure:
    def test_cofactors_of_mux(self):
        # f = s ? a : b  with variables (s, a, b) = (x0, x1, x2)
        s = TruthTable.variable(0, 3)
        a = TruthTable.variable(1, 3)
        b = TruthTable.variable(2, 3)
        f = (s & a) | (~s & b)
        assert f.cofactor(0, True) == a
        assert f.cofactor(0, False) == b

    def test_support_detection(self):
        a = TruthTable.variable(0, 3)
        c = TruthTable.variable(2, 3)
        f = a ^ c
        assert f.support() == (0, 2)
        assert f.depends_on(0)
        assert not f.depends_on(1)

    def test_shrink_to_support(self):
        a = TruthTable.variable(0, 4)
        d = TruthTable.variable(3, 4)
        f = a & d
        reduced, mapping = f.shrink_to_support()
        assert mapping == (0, 3)
        assert reduced.num_vars == 2
        assert reduced == TruthTable.variable(0, 2) & TruthTable.variable(1, 2)

    def test_permute_inputs_swap(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        f = a & ~b
        swapped = f.permute_inputs([1, 0])
        assert swapped == ~a & b

    def test_permute_inputs_validates(self):
        with pytest.raises(ValueError):
            TruthTable.variable(0, 2).permute_inputs([0, 0])

    def test_flip_input(self):
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        f = a & b
        assert f.flip_input(0) == ~a & b

    def test_apply_phase_matches_repeated_flip(self):
        f = TruthTable.from_function(lambda a, b, c: a ^ (b & c), 3)
        assert f.apply_phase(0b101) == f.flip_input(0).flip_input(2)

    def test_compose_builds_two_level_logic(self):
        # outer(x, y) = x & y composed with (a|b, a^b) = (a|b) & (a^b)
        outer = TruthTable.variable(0, 2) & TruthTable.variable(1, 2)
        a = TruthTable.variable(0, 2)
        b = TruthTable.variable(1, 2)
        composed = outer.compose([a | b, a ^ b])
        assert composed == (a | b) & (a ^ b)

    def test_compose_requires_matching_arity(self):
        outer = TruthTable.variable(0, 2)
        with pytest.raises(ValueError):
            outer.compose([TruthTable.variable(0, 1)])

    def test_permute_expand_rejects_missing_support(self):
        f = TruthTable.variable(1, 2)
        with pytest.raises(ValueError):
            f.permute_expand([0], 1)


class TestPresentation:
    def test_to_hex_xor2(self):
        xor2 = TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)
        assert xor2.to_hex() == "6"

    def test_value_at(self):
        xor2 = TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)
        assert xor2.value_at(1) is True
        assert xor2.value_at(3) is False
        with pytest.raises(ValueError):
            xor2.value_at(4)

    def test_var_pattern_cache_consistency(self):
        assert var_pattern(1, 3) == TruthTable.variable(1, 3).bits
