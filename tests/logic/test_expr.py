"""Unit tests for the Boolean expression AST and parser."""

import pytest

from repro.logic import And, Const, Not, Or, TruthTable, Var, Xor, parse_expr
from repro.logic.expr import ExprParseError


class TestEvaluation:
    def test_variable_lookup(self):
        assert Var("A").evaluate({"A": True})
        assert not Var("A").evaluate({"A": False})

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Var("A").evaluate({})

    def test_operators(self):
        a, b = Var("A"), Var("B")
        env = {"A": True, "B": False}
        assert And(a, b).evaluate(env) is False
        assert Or(a, b).evaluate(env) is True
        assert Xor(a, b).evaluate(env) is True
        assert Not(a).evaluate(env) is False
        assert Const(True).evaluate(env) is True

    def test_operator_sugar(self):
        a, b = Var("A"), Var("B")
        expr = (a & b) | ~(a ^ b)
        assert expr.evaluate({"A": True, "B": True})
        assert not expr.evaluate({"A": True, "B": False})

    def test_variables_sorted_and_unique(self):
        expr = parse_expr("(B ^ A) & B")
        assert expr.variables() == ("A", "B")


class TestTruthTableConversion:
    def test_xor_table(self):
        table = parse_expr("A ^ B").to_truth_table(["A", "B"])
        assert table == TruthTable.variable(0, 2) ^ TruthTable.variable(1, 2)

    def test_order_controls_variable_positions(self):
        table = parse_expr("A & !B").to_truth_table(["B", "A"])
        b = TruthTable.variable(0, 2)
        a = TruthTable.variable(1, 2)
        assert table == a & ~b

    def test_order_must_cover_support(self):
        with pytest.raises(ValueError):
            parse_expr("A & B").to_truth_table(["A"])

    def test_extra_variables_allowed_in_order(self):
        table = parse_expr("A").to_truth_table(["A", "Z"])
        assert table.num_vars == 2
        assert table.support() == (0,)


class TestParser:
    def test_paper_notation_plus_and_dot(self):
        # F05 from Table 1: (A xor B) . C, "+" as OR elsewhere
        expr = parse_expr("(A ^ B) . C")
        assert expr.evaluate({"A": True, "B": False, "C": True})
        assert not expr.evaluate({"A": True, "B": True, "C": True})

    def test_apostrophe_complement(self):
        expr = parse_expr("A' & B")
        assert expr.evaluate({"A": False, "B": True})
        assert not expr.evaluate({"A": True, "B": True})

    def test_double_apostrophe(self):
        expr = parse_expr("A''")
        assert expr.evaluate({"A": True})

    def test_implicit_and_by_juxtaposition(self):
        expr = parse_expr("A B")
        assert expr.evaluate({"A": True, "B": True})
        assert not expr.evaluate({"A": True, "B": False})

    def test_precedence_and_over_or(self):
        expr = parse_expr("A | B & C")
        assert expr.evaluate({"A": False, "B": True, "C": True})
        assert not expr.evaluate({"A": False, "B": True, "C": False})

    def test_precedence_xor_between_or_and_and(self):
        # A | B ^ C & D parses as A | (B ^ (C & D))
        expr = parse_expr("A | B ^ C & D")
        env = {"A": False, "B": True, "C": True, "D": True}
        assert expr.evaluate(env) is False

    def test_parentheses(self):
        expr = parse_expr("(A | B) & (C | D)")
        assert expr.evaluate({"A": True, "B": False, "C": False, "D": True})

    def test_constants(self):
        assert parse_expr("1 | A").evaluate({"A": False})
        assert not parse_expr("0 & A").evaluate({"A": True})

    def test_tilde_and_bang(self):
        assert parse_expr("~A").evaluate({"A": False})
        assert parse_expr("!A").evaluate({"A": False})

    def test_error_on_garbage(self):
        with pytest.raises(ExprParseError):
            parse_expr("A @ B")

    def test_error_on_unbalanced_parens(self):
        with pytest.raises(ExprParseError):
            parse_expr("(A & B")

    def test_error_on_trailing_tokens(self):
        with pytest.raises(ExprParseError):
            parse_expr("A ) B")

    def test_error_on_empty(self):
        with pytest.raises(ExprParseError):
            parse_expr("")

    def test_round_trip_through_str(self):
        expr = parse_expr("(A ^ D) | ((B ^ E) & (C ^ F))")
        reparsed = parse_expr(str(expr))
        order = list(expr.variables())
        assert expr.to_truth_table(order) == reparsed.to_truth_table(order)

    def test_all_table1_forms_parse(self):
        forms = [
            "A",
            "A ^ B",
            "A + B",
            "A . B",
            "(A ^ B) + C",
            "(A ^ B) . C",
            "(A ^ B) + (A ^ C)",
            "(A ^ B) . (A ^ C)",
            "(A ^ B) + (C ^ D)",
            "(A ^ B) . (C ^ D)",
            "A + B + C",
            "(A + B) . C",
            "A + (B . C)",
            "A . B . C",
            "(A ^ D) + ((B ^ E) . (C ^ F))",
            "(A ^ D) . (B ^ E) . (C ^ F)",
        ]
        for form in forms:
            expr = parse_expr(form)
            assert expr.variables()
