"""Equivalence regression: word-parallel verify_mapping vs. the reference.

For Table-3 benchmarks and the three mapping libraries, the mapped netlist
is re-simulated with both the Shannon-expansion fast path
(:func:`repro.synthesis.mapper.verify_mapping`) and the retained
bit-at-a-time reference (:func:`verify_mapping_reference`) on random packed
patterns; both must accept the mapping, and both must reject a deliberately
corrupted netlist.  A small subset runs in the default lane; the full
15-benchmark sweep is marked ``slow``.
"""

import functools

import pytest

from repro.bench.registry import BENCHMARKS, benchmark_by_name
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.experiments.table3 import TABLE3_FAMILIES
from repro.logic.simulation import random_pattern_words
from repro.synthesis.mapper import (
    MappedGate,
    technology_map,
    verify_mapping,
    verify_mapping_reference,
)
from repro.synthesis.matcher import matcher_for
from repro.synthesis.optimize import optimize

FAST_SUBSET = ("add-16", "t481", "C1355")
FULL_SET = tuple(case.name for case in BENCHMARKS)


@functools.lru_cache(maxsize=None)
def _optimized_aig(name: str):
    return optimize(benchmark_by_name(name).build())


@functools.lru_cache(maxsize=None)
def _mapped(name: str, family: LogicFamily):
    library = build_library(family)
    return technology_map(_optimized_aig(name), library, matcher=matcher_for(library))


def _check_agreement(name: str, family: LogicFamily, num_words: int = 2):
    aig = _optimized_aig(name)
    mapped = _mapped(name, family)
    patterns = random_pattern_words(
        aig.pi_names,
        num_words=num_words,
        seed=1000 * len(name) + TABLE3_FAMILIES.index(family),
    )
    fast = verify_mapping(mapped, aig, patterns)
    slow = verify_mapping_reference(mapped, aig, patterns)
    assert fast is True, f"fast path rejected {name}/{family.value}"
    assert slow is True, f"reference rejected {name}/{family.value}"


@pytest.mark.parametrize("family", TABLE3_FAMILIES, ids=lambda f: f.value)
@pytest.mark.parametrize("name", FAST_SUBSET)
def test_fast_and_reference_agree_fast_subset(name, family):
    _check_agreement(name, family)


@pytest.mark.slow
@pytest.mark.parametrize("family", TABLE3_FAMILIES, ids=lambda f: f.value)
@pytest.mark.parametrize(
    "name", tuple(n for n in FULL_SET if n not in FAST_SUBSET)
)
def test_fast_and_reference_agree_full_sweep(name, family):
    _check_agreement(name, family)


@pytest.mark.parametrize("family", TABLE3_FAMILIES, ids=lambda f: f.value)
def test_both_paths_reject_corrupted_netlist(family):
    name = "add-16"
    aig = _optimized_aig(name)
    mapped = _mapped(name, family)
    broken_gate = mapped.gates[len(mapped.gates) // 2]
    flipped = MappedGate(
        output=broken_gate.output,
        cell_name=broken_gate.cell_name,
        function_id=broken_gate.function_id,
        leaves=broken_gate.leaves,
        table=broken_gate.table ^ ((1 << (1 << len(broken_gate.leaves))) - 1),
        area=broken_gate.area,
        intrinsic_delay=broken_gate.intrinsic_delay,
        parasitic_delay=broken_gate.parasitic_delay,
        effort_delay=broken_gate.effort_delay,
    )
    corrupted = type(mapped)(
        name=mapped.name,
        library_name=mapped.library_name,
        tau_ps=mapped.tau_ps,
        gates=[flipped if g is broken_gate else g for g in mapped.gates],
        primary_inputs=mapped.primary_inputs,
        primary_outputs=mapped.primary_outputs,
        po_nodes=mapped.po_nodes,
        levels=mapped.levels,
        normalized_delay=mapped.normalized_delay,
    )
    patterns = random_pattern_words(aig.pi_names, num_words=2, seed=5)
    assert verify_mapping(corrupted, aig, patterns) is False
    assert verify_mapping_reference(corrupted, aig, patterns) is False
