"""Vectorized mapper DP vs the retained scalar oracle.

The batched DP of :mod:`repro.synthesis.mapper` must reproduce the scalar
incumbent scan *decision for decision*: the ``1e-9`` epsilon tie-breaks are
not transitive, so any reordering of the comparison sequence could select a
different (equally "best") cell and silently change downstream artifacts.
These tests pin that contract:

* choice streams -- the selected candidate of every AND node, in order --
  compared node-for-node between ``_dp_round`` and ``_dp_round_batched``,
  on fixed benchmarks and hypothesis-generated random AIGs, for all three
  objectives, with and without required-time constraints;
* ``_required_times`` edge cases (deadline below the worst arrival, nets
  outside the node range, empty covers);
* the incremental recovery re-solve against the full re-solve
  (``map_rounds(incremental=True)`` == ``incremental=False``), and the
  scalar fallback for cost models without batch hooks.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timing import TimingReport
from repro.bench.registry import benchmark_by_name
from repro.core import LogicFamily, build_library
from repro.flow import run_flow
from repro.synthesis.aig import Aig
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cost import MappingContext, cost_model_for
from repro.synthesis.cuts import cut_set_for
from repro.synthesis.mapper import (
    _BatchedChoices,
    _candidate_table_for,
    _candidates_for,
    _cover,
    _cover_references,
    _dp_round,
    _dp_round_batched,
    _pin_bindings,
    _price_candidates,
    _required_times,
    _supports_batch,
    map_rounds,
)
from repro.synthesis.matcher import matcher_for

FAST_BENCHMARKS = ("add-16", "t481")


def _random_aig(seed: int, num_inputs: int, num_nodes: int) -> Aig:
    import random

    rng = random.Random(seed)
    aig = Aig(f"rand-{seed}")
    literals = [aig.add_pi(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_gate(a, b))
    for i, literal in enumerate(literals[-max(2, num_inputs // 2):]):
        aig.add_po(f"y{i}", literal ^ rng.randint(0, 1))
    return aig

_LIBRARY = build_library(LogicFamily.TG_STATIC)
_MATCHER = matcher_for(_LIBRARY)

_SUBJECTS: dict[str, Aig] = {}


def _subject(name: str) -> Aig:
    aig = _SUBJECTS.get(name)
    if aig is None:
        aig = _SUBJECTS[name] = run_flow(
            "resyn2rs", benchmark_by_name(name).build()
        ).aig
    return aig


def _context(aig: Aig, objective: str) -> MappingContext:
    """A mapping context equivalent to the one ``map_rounds`` builds."""
    memo: dict[int, tuple] = {}

    def pin_capacitances(match):
        entry = memo.get(id(match))
        if entry is None:
            power = match.cell.power
            caps = tuple(
                power.pin_capacitance(pin, negated)
                for pin, negated in _pin_bindings(match)
            )
            memo[id(match)] = entry = (match, caps)
        return entry[1]

    context = MappingContext(pin_capacitances=pin_capacitances)
    if objective == "power":
        from repro.analysis.activity import compute_activities

        report = compute_activities(aig)
        context.activity = report.activity.tolist()
        context.probability = report.probability.tolist()
    return context


def _candidate_key(candidate) -> tuple:
    return (
        candidate.leaves,
        candidate.table,
        candidate.match.cell.name,
        candidate.match.match.output_negated,
    )


def _compare_streams(aig: Aig, objective: str, constrained: bool) -> None:
    """Scalar and batched DP must agree on every node's selected candidate
    (and bitwise on every arrival/flow) under identical inputs."""
    model = cost_model_for(objective)
    assert _supports_batch(model)
    context = _context(aig, objective)
    arrays = aig_arrays(aig)
    cut_set = cut_set_for(aig)
    and_node_list = arrays.and_nodes.tolist()
    num_nodes = arrays.num_nodes

    candidates = _candidates_for(arrays, cut_set, _MATCHER, model.prefer)
    prices = _price_candidates(and_node_list, candidates, model, context)
    table = _candidate_table_for(arrays, cut_set, _MATCHER, model.prefer)
    batch_prices = model.price_batch(table, context)

    references = [max(float(count), 1.0) for count in arrays.fanout]
    references_np = np.maximum(arrays.fanout, 1).astype(np.float64)
    required = required_np = None
    load_aware = False
    if constrained:
        # Derive realistic constraints from the round-0 cover, exactly the
        # way the recovery driver does.
        choices, _arr, _flow = _dp_round(
            aig, _LIBRARY, and_node_list, candidates, prices, model, references
        )
        mapped, report = _cover(aig, _LIBRARY, choices, context.pin_capacitances)
        references = _cover_references(mapped, arrays.fanout.tolist())
        references_np = np.asarray(references, dtype=np.float64)
        required = _required_times(num_nodes, report, report.normalized_delay)
        required_np = np.asarray(required, dtype=np.float64)
        load_aware = True

    scalar_choices, scalar_arrival, scalar_flow = _dp_round(
        aig,
        _LIBRARY,
        and_node_list,
        candidates,
        prices,
        model,
        references,
        required=required,
        load_aware=load_aware,
    )
    state = _dp_round_batched(
        aig,
        _LIBRARY,
        table,
        batch_prices,
        model,
        references_np,
        required=required_np,
        load_aware=load_aware,
    )
    batched_choices = _BatchedChoices(table, state.choice)

    for node in and_node_list:
        assert _candidate_key(batched_choices[node]) == _candidate_key(
            scalar_choices[node]
        ), f"choice stream diverges at node {node} ({objective}, constrained={constrained})"
    # Bitwise equality, not approx: the whole point of the slot-ordered scan.
    assert state.arrival.tolist() == scalar_arrival
    assert state.flow.tolist() == scalar_flow


class TestChoiceStreamParity:
    """Vectorized vs scalar selection, node for node."""

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    @pytest.mark.parametrize("objective", ("delay", "area", "power"))
    @pytest.mark.parametrize("constrained", (False, True), ids=("round0", "recovery"))
    def test_benchmark_streams(self, bench_name, objective, constrained):
        _compare_streams(_subject(bench_name), objective, constrained)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=7),
        num_nodes=st.integers(min_value=5, max_value=60),
        objective=st.sampled_from(("delay", "area", "power")),
        constrained=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_streams(self, seed, num_inputs, num_nodes, objective, constrained):
        aig = _random_aig(seed, num_inputs, num_nodes)
        if not aig.num_ands:
            return  # nothing to map; the DP has no decisions to compare
        _compare_streams(aig, objective, constrained)


class TestRequiredTimesEdges:
    """Shift/clip behaviour of the per-node required times."""

    def test_deadline_below_worst_arrival_tightens_every_net(self):
        report = TimingReport(
            normalized_delay=10.0,
            levels=3,
            arrival={1: 4.0, 2: 10.0},
            required={1: 6.0, 2: 10.0},
            slack={1: 2.0, 2: 0.0},
            critical_path=(2,),
        )
        required = _required_times(4, report, deadline=7.0)
        # Every covered net shifts by deadline - normalized_delay = -3.
        assert required[1] == 3.0
        assert required[2] == 7.0
        # Net 2's requirement is now below its arrival: all-negative slack
        # is representable, the DP's fallback scan handles infeasibility.
        assert required[2] - report.arrival[2] < 0.0
        # Uncovered nodes stay unconstrained.
        assert required[0] == float("inf")
        assert required[3] == float("inf")

    def test_nets_outside_node_range_are_ignored(self):
        report = TimingReport(
            normalized_delay=5.0,
            levels=1,
            arrival={},
            required={-1: 1.0, 2: 5.0, 7: 2.0},
            slack={},
            critical_path=(),
        )
        required = _required_times(4, report, deadline=5.0)
        assert required[2] == 5.0
        assert [required[i] for i in (0, 1, 3)] == [float("inf")] * 3
        assert len(required) == 4

    def test_empty_cover_leaves_everything_unconstrained(self):
        report = TimingReport(
            normalized_delay=0.0,
            levels=0,
            arrival={},
            required={},
            slack={},
            critical_path=(),
        )
        assert _required_times(3, report, deadline=1.0) == [float("inf")] * 3


def _round_digests(result) -> list[str]:
    digests = []
    for mapped in result.rounds:
        digest = hashlib.sha256()
        for gate in sorted(mapped.gates, key=lambda g: g.output):
            digest.update(
                f"{gate.output}:{gate.cell_name}:{gate.leaves}:{gate.table}:"
                f"{int(gate.inverted)};".encode()
            )
        digests.append(digest.hexdigest())
    return digests


class TestIncrementalEquivalence:
    """Incremental recovery re-solves must equal the full re-solve bit for bit."""

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    @pytest.mark.parametrize("objective", ("delay", "area", "power"))
    def test_benchmark_equivalence(self, bench_name, objective):
        aig = _subject(bench_name)
        incremental = map_rounds(
            aig, _LIBRARY, matcher=_MATCHER, objective=objective, rounds=3
        )
        full = map_rounds(
            aig,
            _LIBRARY,
            matcher=_MATCHER,
            objective=objective,
            rounds=3,
            incremental=False,
        )
        assert incremental.accepted == full.accepted
        assert _round_digests(incremental) == _round_digests(full)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=7),
        num_nodes=st.integers(min_value=5, max_value=50),
        objective=st.sampled_from(("delay", "area", "power")),
        rounds=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_equivalence(self, seed, num_inputs, num_nodes, objective, rounds):
        aig = _random_aig(seed, num_inputs, num_nodes)
        incremental = map_rounds(
            aig, _LIBRARY, matcher=_MATCHER, objective=objective, rounds=rounds
        )
        full = map_rounds(
            aig,
            _LIBRARY,
            matcher=_MATCHER,
            objective=objective,
            rounds=rounds,
            incremental=False,
        )
        assert incremental.accepted == full.accepted
        assert _round_digests(incremental) == _round_digests(full)


class _ScalarOnlyDelay:
    """DelayCost semantics without the batch hooks: must take the scalar path."""

    name = "delay-scalar-test"
    prefer = "delay"

    def gate_cost(self, candidate, node, context):
        return candidate.area

    def better(self, arrival, flow, best_arrival, best_flow):
        return arrival < best_arrival - 1e-9 or (
            abs(arrival - best_arrival) <= 1e-9 and flow < best_flow - 1e-9
        )


def test_models_without_batch_hooks_fall_back_to_scalar_path():
    """A third-party model lacking price_batch/better_batch still maps, and
    (with DelayCost's semantics) reproduces the batched delay mapping."""
    from repro.synthesis.cost import _COST_MODELS

    model = _ScalarOnlyDelay()
    assert not _supports_batch(model)
    _COST_MODELS[model.name] = model
    try:
        aig = _subject("add-16")
        scalar = map_rounds(aig, _LIBRARY, matcher=_MATCHER, objective=model.name)
        batched = map_rounds(aig, _LIBRARY, matcher=_MATCHER, objective="delay")
        assert _round_digests(scalar) == _round_digests(batched)
    finally:
        _COST_MODELS.pop(model.name, None)
