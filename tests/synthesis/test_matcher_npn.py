"""Equivalence of the NPN-canonical matcher with the exhaustive reference.

The canonical index must be a drop-in replacement: the same cuts match, the
same cells win (stable tie-break), the composed pin assignments realize the
cut functions, and the Table-3 statistics of every mapping are bit-identical
at every cut width.  The fast lane exercises a benchmark subset; the full
15-benchmark sweep rides in ``benchmarks/test_flow_bench.py`` (slow lane).
"""

import random

import pytest

from repro.bench.registry import benchmark_by_name
from repro.core import LogicFamily, build_library
from repro.flow import run_flow
from repro.logic.npn import apply_match
from repro.synthesis.matcher import (
    ExhaustiveLibraryMatcher,
    LibraryMatcher,
    matcher_for,
)
from repro.synthesis.mapper import technology_map

SUBSET = ("add-16", "C1355", "t481")


@pytest.fixture(scope="module")
def tg_static_library():
    return build_library(LogicFamily.TG_STATIC)


@pytest.fixture(scope="module")
def cmos_library():
    return build_library(LogicFamily.CMOS)


@pytest.fixture(scope="module")
def npn_matcher(tg_static_library):
    return LibraryMatcher(tg_static_library)


@pytest.fixture(scope="module")
def exhaustive_matcher(tg_static_library):
    return ExhaustiveLibraryMatcher(tg_static_library)


class TestIndexShape:
    def test_canonical_index_is_at_least_10x_smaller(
        self, npn_matcher, exhaustive_matcher
    ):
        assert len(npn_matcher) * 10 <= len(exhaustive_matcher)

    def test_one_entry_per_class_at_most_one_per_cell(
        self, npn_matcher, tg_static_library
    ):
        assert 0 < len(npn_matcher) <= len(tg_static_library)


class TestMatchEquivalence:
    def _assert_same_match(self, npn, exhaustive, num_vars, bits, prefer):
        ours = npn.match(num_vars, bits, prefer)
        reference = exhaustive.match(num_vars, bits, prefer)
        assert (ours is None) == (reference is None), (num_vars, bits, prefer)
        if ours is not None:
            assert ours.cell.name == reference.cell.name
            full = (1 << (1 << num_vars)) - 1
            rebuilt = apply_match(ours.cell.function, ours.match)
            assert rebuilt.bits == bits & full

    def test_random_tables_match_identically(self, npn_matcher, exhaustive_matcher):
        rng = random.Random(23)
        for _ in range(1500):
            num_vars = rng.randint(2, 4)
            bits = rng.getrandbits(1 << num_vars)
            for prefer in ("delay", "area"):
                self._assert_same_match(
                    npn_matcher, exhaustive_matcher, num_vars, bits, prefer
                )

    def test_cell_function_variants_match_identically(
        self, npn_matcher, exhaustive_matcher, tg_static_library
    ):
        # Every cell's own orbit, including the 5/6-input cells random
        # sampling would practically never hit.
        from repro.logic.npn import InputMatch

        rng = random.Random(24)
        for cell in tg_static_library.cells:
            n = cell.arity
            for _ in range(5):
                variant = apply_match(
                    cell.function,
                    InputMatch(
                        tuple(rng.sample(range(n), n)),
                        rng.getrandbits(n),
                        rng.random() < 0.5,
                    ),
                )
                self._assert_same_match(
                    npn_matcher, exhaustive_matcher, n, variant.bits, "delay"
                )

    def test_np_only_mode_equivalent(self, tg_static_library):
        npn = LibraryMatcher(tg_static_library, allow_output_negation=False)
        exhaustive = ExhaustiveLibraryMatcher(
            tg_static_library, allow_output_negation=False
        )
        rng = random.Random(25)
        for _ in range(500):
            num_vars = rng.randint(2, 4)
            bits = rng.getrandbits(1 << num_vars)
            ours = npn.match(num_vars, bits)
            reference = exhaustive.match(num_vars, bits)
            assert (ours is None) == (reference is None)
            if ours is not None:
                assert ours.cell.name == reference.cell.name
                assert not ours.match.output_negated

    def test_match_reduced_equivalent(self, npn_matcher, exhaustive_matcher):
        # A 3-leaf cut whose function ignores the middle leaf: x0 & x2.
        table = 0
        for minterm in range(8):
            if (minterm & 1) and (minterm & 4):
                table |= 1 << minterm
        ours = npn_matcher.match_reduced((10, 11, 12), table)
        reference = exhaustive_matcher.match_reduced((10, 11, 12), table)
        assert ours is not None and reference is not None
        assert ours[1] == reference[1] == (10, 12)
        assert ours[2] == reference[2]
        assert ours[0].cell.name == reference[0].cell.name


class TestMappingBitIdentity:
    @pytest.mark.parametrize("benchmark_name", SUBSET)
    @pytest.mark.parametrize("max_inputs", (4, 6))
    def test_mapping_statistics_identical(
        self, benchmark_name, max_inputs, tg_static_library, cmos_library
    ):
        """NPN-matched mapping reproduces the exhaustive (seed) Table-3 numbers."""
        aig = run_flow("resyn2rs", benchmark_by_name(benchmark_name).build()).aig
        for library in (tg_static_library, cmos_library):
            ours = technology_map(
                aig,
                library,
                matcher=matcher_for(library, style="npn"),
                max_inputs=max_inputs,
            )
            reference = technology_map(
                aig,
                library,
                matcher=matcher_for(library, style="exhaustive"),
                max_inputs=max_inputs,
            )
            assert ours.statistics() == reference.statistics()
            assert [gate.cell_name for gate in ours.gates] == [
                gate.cell_name for gate in reference.gates
            ]

    def test_matcher_for_styles_and_validation(self, tg_static_library):
        assert isinstance(matcher_for(tg_static_library, style="npn"), LibraryMatcher)
        assert isinstance(
            matcher_for(tg_static_library, style="exhaustive"),
            ExhaustiveLibraryMatcher,
        )
        with pytest.raises(ValueError):
            matcher_for(tg_static_library, style="magic")
