"""Vectorized resynthesis passes vs the retained reference oracles.

PR 6 pinned the mapper DP to its scalar oracle decision for decision; the
vectorized ``balance``/``rewrite`` passes carry the same contract: the
array-backed fast paths must reproduce the reference passes **node for
node** -- same candidate order, same gate-emission stream (losing rewrite
candidates included, since their structural-hash side effects feed later
cost decisions), same structural hashing order, same levels -- so that every
table2/table3/figure6/pareto artifact stays byte-identical whichever arm the
dispatch picks.  These tests pin that contract:

* full-graph signatures and per-node choice streams (``trace``) compared on
  registered benchmarks and hypothesis-generated AIGs, for rewrite at
  K=3/4/5 and balance, with the vectorized arm forced on small graphs too;
* the complete ``resyn2rs`` flow against ``resyn2rs-reference`` (the oracle
  flow registered from the reference passes);
* the heapq scheduling of ``balance_reference`` against a verbatim copy of
  the original ``ordered.pop(0)``/``insert`` algorithm;
* the NPN-class rewrite library: member programs replayed through
  ``compile_ops``/``replay_ops`` equal ``replay_cover`` gate for gate, and
  ``instantiate`` (class template + composed transform) is functionally
  equivalent to direct member synthesis for every class encountered;
* the mask-based ``_cube_minterms`` against the per-minterm loop it
  replaced, and all three cut enumerators cut for cut.
"""

import importlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# ``repro.synthesis`` re-exports the ``optimize`` *function*, which shadows
# the submodule attribute -- fetch the module itself for threshold patching.
optimize_module = importlib.import_module("repro.synthesis.optimize")
from repro.bench.registry import benchmark_by_name
from repro.flow import run_flow
from repro.synthesis.aig import Aig, CONST0, CONST1, lit_is_complemented, lit_node
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import (
    _cut_set_from_dict,
    enumerate_cuts_reference,
    enumerate_cuts_scalar,
    enumerate_cuts_vectorized,
)
from repro.synthesis.optimize import (
    balance,
    balance_reference,
    rewrite,
    rewrite_reference,
)
from repro.synthesis.rewrite_lib import (
    REWRITE_LIBRARY,
    _cube_minterms,
    compile_cover,
    compile_ops,
    replay_cover,
    replay_ops,
)

FAST_BENCHMARKS = ("add-16", "t481")


def _random_aig(seed: int, num_inputs: int, num_nodes: int) -> Aig:
    import random

    rng = random.Random(seed)
    aig = Aig(f"rand-{seed}")
    literals = [aig.add_pi(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_gate(a, b))
    for i, literal in enumerate(literals[-max(2, num_inputs // 2):]):
        aig.add_po(f"y{i}", literal ^ rng.randint(0, 1))
    return aig


def _signature(aig: Aig) -> tuple:
    """Full structural identity: every node's fanins/level, POs, names."""
    return (
        tuple((node.fanin0, node.fanin1, node.level) for node in aig._nodes),
        tuple(aig.po_literals),
        tuple(aig.po_names),
        tuple(aig.pi_names),
    )


class _forced_vectorized:
    """Temporarily drop the dispatch threshold so tiny graphs take the
    vectorized arm (the dispatch must be behaviourally invisible)."""

    def __enter__(self):
        self._saved = optimize_module.PASS_VECTOR_THRESHOLD
        optimize_module.PASS_VECTOR_THRESHOLD = 0

    def __exit__(self, *exc):
        optimize_module.PASS_VECTOR_THRESHOLD = self._saved


def _compare_rewrite(aig: Aig, max_inputs: int) -> None:
    reference_trace: list = []
    reference = rewrite_reference(aig, max_inputs=max_inputs, trace=reference_trace)
    with _forced_vectorized():
        fast_trace: list = []
        fast = rewrite(aig, max_inputs=max_inputs, trace=fast_trace)
    assert fast_trace == reference_trace, "rewrite choice streams diverge"
    assert _signature(fast) == _signature(reference)


def _compare_balance(aig: Aig) -> None:
    reference_trace: list = []
    reference = balance_reference(aig, trace=reference_trace)
    with _forced_vectorized():
        fast_trace: list = []
        fast = balance(aig, trace=fast_trace)
    assert fast_trace == reference_trace, "balance choice streams diverge"
    assert _signature(fast) == _signature(reference)


class TestPassParity:
    """Vectorized passes vs reference oracles, node for node."""

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    @pytest.mark.parametrize("max_inputs", (3, 4, 5))
    def test_benchmark_rewrite(self, bench_name, max_inputs):
        _compare_rewrite(benchmark_by_name(bench_name).build(), max_inputs)

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    def test_benchmark_balance(self, bench_name):
        _compare_balance(benchmark_by_name(bench_name).build())

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    def test_benchmark_resyn2rs_flow(self, bench_name):
        aig = benchmark_by_name(bench_name).build()
        fast = run_flow("resyn2rs", aig)
        reference = run_flow("resyn2rs-reference", aig)
        assert _signature(fast.aig) == _signature(reference.aig)
        assert len(fast.passes) == len(reference.passes)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=7),
        num_nodes=st.integers(min_value=5, max_value=60),
        max_inputs=st.sampled_from((3, 4, 5)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_rewrite(self, seed, num_inputs, num_nodes, max_inputs):
        _compare_rewrite(_random_aig(seed, num_inputs, num_nodes), max_inputs)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=7),
        num_nodes=st.integers(min_value=5, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_balance(self, seed, num_inputs, num_nodes):
        _compare_balance(_random_aig(seed, num_inputs, num_nodes))

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=6),
        num_nodes=st.integers(min_value=8, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_resyn2rs_flow(self, seed, num_inputs, num_nodes):
        aig = _random_aig(seed, num_inputs, num_nodes)
        fast = run_flow("resyn2rs", aig)
        reference = run_flow("resyn2rs-reference", aig)
        assert _signature(fast.aig) == _signature(reference.aig)


def _balance_original(aig: Aig) -> Aig:
    """Verbatim pre-heapq balance: sorted list with pop(0)/insert-after-ties.

    The oracle for the satellite fix: ``balance_reference``'s heap keyed on
    ``(level, insertion index)`` must reproduce this scheduling exactly.
    """
    fanout = aig_arrays(aig).fanout.tolist()
    new = Aig(aig.name)
    mapping: dict[int, int] = {0: CONST0}
    for name in aig.pi_names:
        mapping[lit_node(aig.pi_literal(name))] = new.add_pi(name)

    def translate(literal: int) -> int:
        return mapping[lit_node(literal)] ^ (literal & 1)

    def collect_and_leaves(literal: int, root: bool) -> list:
        node = lit_node(literal)
        if (
            lit_is_complemented(literal)
            or not aig.is_and(node)
            or (not root and fanout[node] > 1)
        ):
            return [literal]
        f0, f1 = aig.fanins(node)
        return collect_and_leaves(f0, False) + collect_and_leaves(f1, False)

    def rebuild(node: int) -> int:
        if node in mapping:
            return mapping[node]
        leaves = collect_and_leaves(node << 1, True)
        translated = []
        for leaf in leaves:
            leaf_node = lit_node(leaf)
            if leaf_node not in mapping:
                rebuild(leaf_node)
            translated.append(translate(leaf))
        ordered = sorted(translated, key=new.literal_level)
        while len(ordered) > 1:
            a = ordered.pop(0)
            b = ordered.pop(0)
            combined = new.and_gate(a, b)
            level = new.literal_level(combined)
            position = 0
            while position < len(ordered) and new.literal_level(
                ordered[position]
            ) <= level:
                position += 1
            ordered.insert(position, combined)
        result = ordered[0] if ordered else CONST1
        mapping[node] = result
        return result

    for node in aig.and_nodes():
        rebuild(node)
    for name, literal in zip(aig.po_names, aig.po_literals):
        if lit_node(literal) not in mapping:
            rebuild(lit_node(literal))
        new.add_po(name, translate(literal))
    return new.cleanup()


class TestBalanceHeapEquivalence:
    """heapq scheduling == the original sorted-list scheduling, gate for gate."""

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    def test_benchmarks(self, bench_name):
        aig = benchmark_by_name(bench_name).build()
        assert _signature(balance_reference(aig)) == _signature(
            _balance_original(aig)
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=7),
        num_nodes=st.integers(min_value=5, max_value=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_random(self, seed, num_inputs, num_nodes):
        aig = _random_aig(seed, num_inputs, num_nodes)
        assert _signature(balance_reference(aig)) == _signature(
            _balance_original(aig)
        )


def _table_strategy():
    return st.integers(min_value=2, max_value=4).flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=0, max_value=(1 << (1 << n)) - 1)
        )
    )


def _simulate_literal_table(aig: Aig, literal: int, num_vars: int) -> int:
    """Truth table of ``literal`` over the first ``num_vars`` PIs."""
    size = 1 << num_vars
    words = {
        name: [
            sum(
                1 << m
                for m in range(size)
                if (m >> index) & 1
            )
        ]
        for index, name in enumerate(aig.pi_names)
    }
    aig.add_po("_probe", literal)
    try:
        result = aig.simulate_words(words)["_probe"][0]
    finally:
        aig._po_names.pop()
        aig._po_literals.pop()
    return result & ((1 << size) - 1)


class TestRewriteLibrary:
    """Program compilation, op schedules and template instantiation."""

    @given(_table_strategy())
    @settings(max_examples=60, deadline=None)
    def test_replay_ops_equals_replay_cover(self, arity_table):
        num_vars, table = arity_table
        program = compile_cover(table, num_vars)
        ops, result = compile_ops(program)

        a = Aig("cover")
        leaves_a = [a.add_pi(f"x{i}") for i in range(num_vars)]
        lit_a = replay_cover(a.and_gate, leaves_a, program)

        b = Aig("ops")
        leaves_b = [b.add_pi(f"x{i}") for i in range(num_vars)]
        lit_b = replay_ops(b.and_gate, leaves_b, ops, result)

        assert lit_a == lit_b, "op schedule returned a different literal"
        assert _signature(a) == _signature(b), "op schedule emitted different gates"

    @given(_table_strategy())
    @settings(max_examples=60, deadline=None)
    def test_template_instantiation_is_functionally_equivalent(self, arity_table):
        num_vars, table = arity_table
        aig = Aig("inst")
        leaves = [aig.add_pi(f"x{i}") for i in range(num_vars)]

        direct = replay_cover(
            aig.and_gate, leaves, REWRITE_LIBRARY.program(table, num_vars)
        )
        via_template = REWRITE_LIBRARY.instantiate(aig, leaves, table, num_vars)

        assert _simulate_literal_table(aig, direct, num_vars) == table
        assert _simulate_literal_table(aig, via_template, num_vars) == table

    def test_class_compression(self):
        """Members share class templates: classes <= members, and a member
        equal to its canonical form reuses the template program object."""
        REWRITE_LIBRARY.cache_clear()
        for table in range(1 << (1 << 2)):
            REWRITE_LIBRARY.program(table, 2)
        assert REWRITE_LIBRARY.member_count == 16
        assert REWRITE_LIBRARY.class_count < REWRITE_LIBRARY.member_count
        template, _match = REWRITE_LIBRARY.template_for(0b1000, 2)
        canonical_program = REWRITE_LIBRARY.program(template.table, 2)
        assert canonical_program is template.program


class TestCubeMintermMasks:
    """Mask-based cube arithmetic vs the per-minterm loop it replaced."""

    @given(
        num_vars=st.integers(min_value=1, max_value=6),
        care=st.integers(min_value=0, max_value=63),
        value=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=120, deadline=None)
    def test_cube_minterms_matches_loop(self, num_vars, care, value):
        care &= (1 << num_vars) - 1
        naive = 0
        for minterm in range(1 << num_vars):
            if (minterm & care) == value:
                naive |= 1 << minterm
        assert _cube_minterms(num_vars, care, value) == naive


class TestEnumeratorParity:
    """All three cut enumerators produce identical CutSet arrays."""

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    @pytest.mark.parametrize("params", ((4, 4), (3, 4), (6, 8)))
    def test_benchmarks(self, bench_name, params):
        max_inputs, cut_limit = params
        aig = benchmark_by_name(bench_name).build()
        scalar = enumerate_cuts_scalar(aig, max_inputs, cut_limit)
        vectorized = enumerate_cuts_vectorized(aig, max_inputs, cut_limit)
        reference = _cut_set_from_dict(
            enumerate_cuts_reference(aig, max_inputs, cut_limit),
            aig_arrays(aig),
            max_inputs,
            cut_limit,
        )
        for other in (vectorized, reference):
            for field in ("count", "leaves", "size", "table", "support"):
                assert np.array_equal(
                    getattr(scalar, field), getattr(other, field)
                ), f"cut enumerators disagree on {field}"

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=3, max_value=7),
        num_nodes=st.integers(min_value=5, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_random(self, seed, num_inputs, num_nodes):
        aig = _random_aig(seed, num_inputs, num_nodes)
        scalar = enumerate_cuts_scalar(aig, 4, 4)
        vectorized = enumerate_cuts_vectorized(aig, 4, 4)
        reference = _cut_set_from_dict(
            enumerate_cuts_reference(aig, 4, 4), aig_arrays(aig), 4, 4
        )
        for other in (vectorized, reference):
            for field in ("count", "leaves", "size", "table", "support"):
                assert np.array_equal(getattr(scalar, field), getattr(other, field))
