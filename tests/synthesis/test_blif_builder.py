"""Tests for the BLIF reader/writer and the circuit builder."""

import pytest

from repro.logic.simulation import exhaustive_pattern_words, random_pattern_words
from repro.synthesis import CircuitBuilder, read_blif, write_blif
from repro.synthesis.blif import BlifParseError


SAMPLE_BLIF = """
.model sample
.inputs a b c
.outputs f g
.names a b ab
11 1
.names ab c f
1- 1
-1 1
.names a c g
10 1
01 1
.end
"""


class TestBlifReader:
    def test_parse_and_evaluate(self):
        aig = read_blif(SAMPLE_BLIF)
        assert aig.pi_names == ("a", "b", "c")
        assert aig.po_names == ("f", "g")
        # f = (a & b) | c, g = a ^ c
        for minterm in range(8):
            env = {"a": bool(minterm & 1), "b": bool(minterm & 2), "c": bool(minterm & 4)}
            out = aig.evaluate(env)
            assert out["f"] == ((env["a"] and env["b"]) or env["c"])
            assert out["g"] == (env["a"] != env["c"])

    def test_constant_names(self):
        text = """
.model consts
.inputs a
.outputs one zero buf
.names one
1
.names zero
.names a buf
1 1
.end
"""
        aig = read_blif(text)
        out = aig.evaluate({"a": True})
        assert out == {"one": True, "zero": False, "buf": True}

    def test_inverted_cover_output(self):
        text = """
.model inv
.inputs a b
.outputs y
.names a b y
11 0
.end
"""
        aig = read_blif(text)
        assert aig.evaluate({"a": True, "b": True})["y"] is False
        assert aig.evaluate({"a": True, "b": False})["y"] is True

    def test_undefined_signal_rejected(self):
        with pytest.raises(BlifParseError):
            read_blif(".model x\n.inputs a\n.outputs y\n.end")

    def test_latch_rejected(self):
        with pytest.raises(BlifParseError):
            read_blif(".model x\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end")

    def test_malformed_cube_rejected(self):
        with pytest.raises(BlifParseError):
            read_blif(".model x\n.inputs a b\n.outputs y\n.names a b y\n1 1 1\n.end")


class TestConstantCovers:
    """Constant ``.names`` drivers in every form tools emit them."""

    def test_omitted_cube_under_declared_fanins(self):
        # Some tools write a constant driver as a bare output-value row even
        # when the .names declares fanins (all inputs don't-care).
        text = ".model m\n.inputs a b\n.outputs y z\n.names a b y\n1\n.names a b z\n0\n.end\n"
        aig = read_blif(text)
        for a in (False, True):
            for b in (False, True):
                out = aig.evaluate({"a": a, "b": b})
                assert out["y"] is True and out["z"] is False

    def test_constant_feeding_logic(self):
        text = (
            ".model m\n.inputs a\n.outputs y\n.names c\n1\n"
            ".names a c y\n11 1\n.end\n"
        )
        aig = read_blif(text)
        assert aig.evaluate({"a": True})["y"] is True
        assert aig.evaluate({"a": False})["y"] is False

    def test_zero_input_empty_cover_is_constant_zero(self):
        aig = read_blif(".model m\n.outputs y\n.names y\n.end\n")
        assert aig.evaluate({})["y"] is False

    def test_bare_value_mixed_with_cube_rows_still_rejected(self):
        # A bare value row next to real cubes is a cube whose output column
        # was dropped, not a constant driver.
        with pytest.raises(BlifParseError):
            read_blif(
                ".model m\n.inputs a b\n.outputs y\n"
                ".names a b y\n11 1\n10\n.end\n"
            )


def _roundtrip_equivalent(name: str) -> bool:
    from repro.bench.registry import benchmark_by_name

    original = benchmark_by_name(name).build()
    rebuilt = read_blif(write_blif(original), name=name)
    patterns = random_pattern_words(original.pi_names, num_words=2, seed=3)
    return original.simulate_words(patterns) == rebuilt.simulate_words(patterns)


class TestBlifRoundTrip:
    def test_write_then_read_is_equivalent(self):
        builder = CircuitBuilder("rt")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 4)
        total, carry = builder.ripple_adder(a, b)
        builder.output_bus("s", total)
        builder.output("cout", carry)
        original = builder.finish()

        rebuilt = read_blif(write_blif(original))
        patterns = random_pattern_words(original.pi_names, num_words=4)
        assert original.simulate_words(patterns) == rebuilt.simulate_words(patterns)

    @pytest.mark.parametrize(
        "name", ("add-16", "add-32", "t481", "C1908", "C1355", "dalu")
    )
    def test_registered_benchmark_roundtrip(self, name):
        assert _roundtrip_equivalent(name)

    @pytest.mark.slow
    def test_all_registered_benchmarks_roundtrip(self):
        from repro.bench.registry import all_benchmarks

        for case in all_benchmarks():
            assert _roundtrip_equivalent(case.name), case.name


class TestCircuitBuilder:
    def test_ripple_adder_adds(self):
        builder = CircuitBuilder("adder")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 4)
        total, carry = builder.ripple_adder(a, b)
        builder.output_bus("s", total)
        builder.output("cout", carry)
        aig = builder.finish()
        for x in range(16):
            for y in range(16):
                env = {f"a[{i}]": bool((x >> i) & 1) for i in range(4)}
                env.update({f"b[{i}]": bool((y >> i) & 1) for i in range(4)})
                out = aig.evaluate(env)
                value = sum((1 << i) for i in range(4) if out[f"s[{i}]"])
                value += 16 if out["cout"] else 0
                assert value == x + y

    def test_subtractor(self):
        builder = CircuitBuilder("sub")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 4)
        diff, _ = builder.subtractor(a, b)
        builder.output_bus("d", diff)
        aig = builder.finish()
        out = aig.evaluate(
            {**{f"a[{i}]": bool((9 >> i) & 1) for i in range(4)},
             **{f"b[{i}]": bool((3 >> i) & 1) for i in range(4)}}
        )
        value = sum((1 << i) for i in range(4) if out[f"d[{i}]"])
        assert value == 6

    def test_equal_and_parity(self):
        builder = CircuitBuilder("cmp")
        a = builder.input_bus("a", 3)
        b = builder.input_bus("b", 3)
        builder.output("eq", builder.equal(a, b))
        builder.output("par", builder.parity(a))
        aig = builder.finish()
        env = {f"a[{i}]": bool((5 >> i) & 1) for i in range(3)}
        env.update({f"b[{i}]": bool((5 >> i) & 1) for i in range(3)})
        out = aig.evaluate(env)
        assert out["eq"] is True
        assert out["par"] is False  # 5 = 0b101 has two set bits

    def test_decoder_one_hot(self):
        builder = CircuitBuilder("dec")
        select = builder.input_bus("s", 2)
        outputs = builder.decoder(select)
        builder.output_bus("o", outputs)
        aig = builder.finish()
        for value in range(4):
            env = {f"s[{i}]": bool((value >> i) & 1) for i in range(2)}
            out = aig.evaluate(env)
            assert [out[f"o[{i}]"] for i in range(4)] == [i == value for i in range(4)]

    def test_mux_tree(self):
        builder = CircuitBuilder("mux")
        select = builder.input_bus("s", 2)
        data = builder.input_bus("d", 4)
        builder.output("y", builder.mux_tree(select, data))
        aig = builder.finish()
        for sel in range(4):
            env = {f"s[{i}]": bool((sel >> i) & 1) for i in range(2)}
            env.update({f"d[{i}]": i == sel for i in range(4)})
            assert aig.evaluate(env)["y"] is True

    def test_truth_table_logic(self):
        builder = CircuitBuilder("tt")
        inputs = builder.input_bus("x", 3)
        column = [1, 0, 0, 1, 1, 0, 1, 0]
        builder.output("y", builder.truth_table_logic(inputs, column))
        aig = builder.finish()
        for minterm in range(8):
            env = {f"x[{i}]": bool((minterm >> i) & 1) for i in range(3)}
            assert aig.evaluate(env)["y"] == bool(column[minterm])

    def test_width_validation(self):
        builder = CircuitBuilder("err")
        a = builder.input_bus("a", 2)
        b = builder.input_bus("b", 3)
        with pytest.raises(ValueError):
            builder.ripple_adder(a, b)
        with pytest.raises(ValueError):
            builder.equal(a, b)
        with pytest.raises(ValueError):
            builder.mux_tree(a, b)
        with pytest.raises(ValueError):
            builder.truth_table_logic(a, [0, 1])

    def test_constant_bus(self):
        builder = CircuitBuilder("const")
        builder.input("a")
        bus = builder.constant_bus(0b1010, 4)
        builder.output_bus("k", bus)
        aig = builder.finish()
        out = aig.evaluate({"a": False})
        assert [out[f"k[{i}]"] for i in range(4)] == [False, True, False, True]
