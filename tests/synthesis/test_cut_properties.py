"""Property tests for cut enumeration and the batched uint64 kernels.

Two families of properties:

* **Semantic correctness** -- for random small AIGs, every enumerated cut's
  table must reproduce the node's simulated value on every *reachable* leaf
  assignment (exhaustive primary-input simulation).  Reachability matters:
  under reconvergence a leaf may be a function of other leaves, and the
  enumerator is free to fill the unreachable (inconsistent) minterms with
  either cofactor, so plain free-variable cone simulation would be too
  strong a specification.
* **Implementation agreement** -- the vectorized kernel path must agree with
  the retained pure-Python oracle ``enumerate_cuts_reference`` cut for cut
  (same leaves, same tables, same supports, same order), and each batched
  kernel must agree with its scalar counterpart on random inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis.aig import Aig
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cut_kernels import (
    FULL_BY_SIZE,
    batch_support,
    expand_tables,
    insert_dontcare,
)
from repro.synthesis.cuts import (
    _expand_at_positions,
    enumerate_cuts,
    enumerate_cuts_reference,
    enumerate_cuts_vectorized,
    table_support,
)


@st.composite
def random_aigs(draw):
    """A small random AIG built through the structurally hashing constructors."""
    num_pis = draw(st.integers(min_value=2, max_value=5))
    aig = Aig("prop")
    literals = [aig.add_pi(f"x{i}") for i in range(num_pis)]
    num_gates = draw(st.integers(min_value=1, max_value=30))
    for _ in range(num_gates):
        index_a = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        index_b = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        comp_a = draw(st.booleans())
        comp_b = draw(st.booleans())
        gate = draw(st.sampled_from(["and", "or", "xor"]))
        a = literals[index_a] ^ int(comp_a)
        b = literals[index_b] ^ int(comp_b)
        if gate == "and":
            literals.append(aig.and_gate(a, b))
        elif gate == "or":
            literals.append(aig.or_gate(a, b))
        else:
            literals.append(aig.xor_gate(a, b))
    num_pos = draw(st.integers(min_value=1, max_value=3))
    for out in range(num_pos):
        index = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        comp = draw(st.booleans())
        aig.add_po(f"y{out}", literals[index] ^ int(comp))
    return aig


def _exhaustive_node_values(aig: Aig) -> dict[int, int]:
    """Value word of every node over all primary-input assignments."""
    num_pis = aig.num_pis
    patterns = 1 << num_pis
    full = (1 << patterns) - 1
    values = {0: 0}
    for position, node in enumerate(aig.pi_nodes()):
        bits = 0
        for minterm in range(patterns):
            if (minterm >> position) & 1:
                bits |= 1 << minterm
        values[node] = bits
    for node in aig.and_nodes():
        fanin0, fanin1 = aig.fanins(node)
        value0 = values[fanin0 >> 1] ^ (full if fanin0 & 1 else 0)
        value1 = values[fanin1 >> 1] ^ (full if fanin1 & 1 else 0)
        values[node] = value0 & value1
    return values


@settings(max_examples=60, deadline=None)
@given(aig=random_aigs(), max_inputs=st.integers(min_value=2, max_value=6))
def test_cut_tables_match_simulation_on_reachable_assignments(aig, max_inputs):
    """Every cut table agrees with node simulation wherever the leaves can go."""
    cuts = enumerate_cuts(aig, max_inputs=max_inputs, cut_limit=6)
    values = _exhaustive_node_values(aig)
    patterns = 1 << aig.num_pis
    arrays = aig_arrays(aig)
    for node in arrays.and_nodes.tolist():
        node_word = values[node]
        for cut in cuts[node]:
            leaf_words = [values[leaf] for leaf in cut.leaves]
            for pattern in range(patterns):
                leaf_minterm = 0
                for position, word in enumerate(leaf_words):
                    if (word >> pattern) & 1:
                        leaf_minterm |= 1 << position
                assert ((cut.table >> leaf_minterm) & 1) == (
                    (node_word >> pattern) & 1
                ), (node, cut.leaves, pattern)
            assert cut.support_mask() == table_support(cut.table, cut.size)


@settings(max_examples=60, deadline=None)
@given(
    aig=random_aigs(),
    max_inputs=st.integers(min_value=2, max_value=6),
    cut_limit=st.integers(min_value=1, max_value=8),
)
def test_vectorized_agrees_with_reference_cut_for_cut(aig, max_inputs, cut_limit):
    """The kernel path reproduces the oracle exactly, cut for cut."""
    reference = enumerate_cuts_reference(aig, max_inputs=max_inputs, cut_limit=cut_limit)
    cut_set = enumerate_cuts_vectorized(aig, max_inputs=max_inputs, cut_limit=cut_limit)
    produced = cut_set.to_dict(aig_arrays(aig))
    assert set(produced) == set(reference)
    for node, expected in reference.items():
        actual = produced[node]
        assert len(actual) == len(expected), node
        for cut_a, cut_e in zip(actual, expected):
            assert cut_a.leaves == cut_e.leaves
            assert cut_a.table == cut_e.table
            assert cut_a.support_mask() == cut_e.support_mask()


@settings(max_examples=200, deadline=None)
@given(data=st.data(), num_vars=st.integers(min_value=0, max_value=5))
def test_insert_dontcare_matches_scalar_insertion(data, num_vars):
    table = data.draw(st.integers(min_value=0, max_value=(1 << (1 << num_vars)) - 1))
    position = data.draw(st.integers(min_value=0, max_value=num_vars))
    expected = _expand_at_positions(table, (position,))
    produced = int(insert_dontcare(np.array([table], dtype=np.uint64), position)[0])
    assert produced == expected


@settings(max_examples=200, deadline=None)
@given(data=st.data(), merged_size=st.integers(min_value=1, max_value=6))
def test_expand_tables_matches_scalar_expansion(data, merged_size):
    positions = data.draw(
        st.sets(
            st.integers(min_value=0, max_value=merged_size - 1),
            min_size=1,
            max_size=merged_size,
        )
    )
    submask = sum(1 << p for p in positions)
    table = data.draw(
        st.integers(min_value=0, max_value=(1 << (1 << len(positions))) - 1)
    )
    inserts = tuple(p for p in range(merged_size) if not (submask >> p) & 1)
    expected = _expand_at_positions(table, inserts)
    produced = int(
        expand_tables(np.array([table], dtype=np.uint64), np.array([submask]))[0]
    )
    produced &= int(FULL_BY_SIZE[merged_size])
    assert produced == expected


@settings(max_examples=200, deadline=None)
@given(data=st.data(), num_vars=st.integers(min_value=1, max_value=6))
def test_batch_support_matches_scalar_support(data, num_vars):
    table = data.draw(st.integers(min_value=0, max_value=(1 << (1 << num_vars)) - 1))
    expected = table_support(table, num_vars)
    produced = int(
        batch_support(np.array([table], dtype=np.uint64), np.array([num_vars]))[0]
    )
    assert produced == expected
