"""Unit tests for the And-Inverter Graph."""

import pytest

from repro.logic.simulation import exhaustive_pattern_words
from repro.synthesis import Aig
from repro.synthesis.aig import (
    CONST0,
    CONST1,
    lit_complement,
    lit_is_complemented,
    lit_node,
    make_literal,
)


class TestLiterals:
    def test_literal_encoding_round_trip(self):
        literal = make_literal(5, True)
        assert lit_node(literal) == 5
        assert lit_is_complemented(literal)
        assert lit_complement(literal) == make_literal(5, False)

    def test_constants(self):
        assert lit_complement(CONST0) == CONST1


class TestConstruction:
    def test_pi_and_po(self):
        aig = Aig("t")
        a = aig.add_pi("a")
        aig.add_po("y", a)
        assert aig.num_pis == 1
        assert aig.num_pos == 1
        assert aig.pi_names == ("a",)
        assert aig.po_names == ("y",)

    def test_duplicate_pi_rejected(self):
        aig = Aig()
        aig.add_pi("a")
        with pytest.raises(ValueError):
            aig.add_pi("a")

    def test_po_of_unknown_literal_rejected(self):
        aig = Aig()
        with pytest.raises(ValueError):
            aig.add_po("y", 100)

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        first = aig.and_gate(a, b)
        second = aig.and_gate(b, a)
        assert first == second
        assert aig.num_ands == 1

    def test_local_simplifications(self):
        aig = Aig()
        a = aig.add_pi("a")
        assert aig.and_gate(a, CONST1) == a
        assert aig.and_gate(a, CONST0) == CONST0
        assert aig.and_gate(a, a) == a
        assert aig.and_gate(a, lit_complement(a)) == CONST0
        assert aig.num_ands == 0

    def test_levels_and_depth(self):
        aig = Aig()
        a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
        ab = aig.and_gate(a, b)
        abc = aig.and_gate(ab, c)
        aig.add_po("y", abc)
        assert aig.level(lit_node(ab)) == 1
        assert aig.level(lit_node(abc)) == 2
        assert aig.depth() == 2

    def test_and_many_balances(self):
        aig = Aig()
        pis = [aig.add_pi(f"x{i}") for i in range(8)]
        out = aig.and_many(pis)
        aig.add_po("y", out)
        assert aig.depth() == 3

    def test_or_xor_mux_semantics(self):
        aig = Aig()
        a, b, s = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("s")
        aig.add_po("or", aig.or_gate(a, b))
        aig.add_po("xor", aig.xor_gate(a, b))
        aig.add_po("xnor", aig.xnor_gate(a, b))
        aig.add_po("nand", aig.nand_gate(a, b))
        aig.add_po("nor", aig.nor_gate(a, b))
        aig.add_po("mux", aig.mux_gate(s, a, b))
        for va in (0, 1):
            for vb in (0, 1):
                for vs in (0, 1):
                    out = aig.evaluate({"a": bool(va), "b": bool(vb), "s": bool(vs)})
                    assert out["or"] == bool(va or vb)
                    assert out["xor"] == bool(va ^ vb)
                    assert out["xnor"] == (not bool(va ^ vb))
                    assert out["nand"] == (not (va and vb))
                    assert out["nor"] == (not (va or vb))
                    assert out["mux"] == bool(va if vs else vb)

    def test_xor_many_is_parity(self):
        aig = Aig()
        pis = [aig.add_pi(f"x{i}") for i in range(5)]
        aig.add_po("p", aig.xor_many(pis))
        assert aig.evaluate({f"x{i}": i in (0, 3) for i in range(5)})["p"] is False
        assert aig.evaluate({f"x{i}": i in (0, 3, 4) for i in range(5)})["p"] is True


class TestSimulation:
    def test_word_simulation_matches_evaluation(self):
        aig = Aig()
        a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
        aig.add_po("y", aig.or_gate(aig.and_gate(a, b), aig.xor_gate(b, c)))
        words = exhaustive_pattern_words(["a", "b", "c"])
        result = aig.simulate_words(words)["y"][0]
        for minterm in range(8):
            env = {"a": bool(minterm & 1), "b": bool(minterm & 2), "c": bool(minterm & 4)}
            assert bool((result >> minterm) & 1) == aig.evaluate(env)["y"]

    def test_simulation_rejects_wrong_inputs(self):
        aig = Aig()
        aig.add_pi("a")
        with pytest.raises(ValueError):
            aig.simulate_words({"b": [0]})


class TestCleanup:
    def test_cleanup_removes_dangling_logic(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        used = aig.and_gate(a, b)
        aig.or_gate(a, b)  # dangling
        aig.add_po("y", used)
        cleaned = aig.cleanup()
        assert cleaned.num_ands == 1
        assert cleaned.pi_names == ("a", "b")
        assert cleaned.evaluate({"a": True, "b": True})["y"] is True

    def test_cleanup_preserves_constant_outputs(self):
        aig = Aig()
        aig.add_pi("a")
        aig.add_po("zero", CONST0)
        aig.add_po("one", CONST1)
        cleaned = aig.cleanup()
        result = cleaned.evaluate({"a": False})
        assert result == {"zero": False, "one": True}

    def test_fanout_counts(self):
        aig = Aig()
        a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
        shared = aig.and_gate(a, b)
        aig.add_po("y1", aig.and_gate(shared, c))
        aig.add_po("y2", shared)
        counts = aig.fanout_counts()
        assert counts[lit_node(shared)] == 2

    def test_statistics(self):
        aig = Aig("s")
        a, b = aig.add_pi("a"), aig.add_pi("b")
        aig.add_po("y", aig.xor_gate(a, b))
        stats = aig.statistics()
        assert stats["pis"] == 2
        assert stats["pos"] == 1
        assert stats["ands"] == 3
        assert stats["depth"] == 2
