"""Parity of the batched NPN matching pipeline with the scalar oracle.

The batched pipeline (``canonicalize_bits_batch_columns`` ->
``cut_function_table`` -> ``LibraryMatcher.match_positions_batch`` /
``match_table``) must be a bit-for-bit drop-in for the retained scalar path:
the same cut functions match, the same cells win, the composed pin
assignments are *tuple-equal* (not merely equivalent), and the candidate
tables the mapper builds from either path produce byte-identical mappings.
The scalar ``match_positions`` (and ``REPRO_SCALAR_MATCH=1`` at the mapper
level) is the pinned oracle throughout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.registry import benchmark_by_name
from repro.core import LogicFamily, build_library
from repro.flow import run_flow
from repro.logic.npn import canonicalize_bits, canonicalize_bits_batch_columns
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cut_kernels import project_table_batch, table_support_batch
from repro.synthesis.cuts import (
    cut_cache_sizes,
    cut_set_for,
    project_table,
    table_support,
)
from repro.synthesis.mapper import technology_map
from repro.synthesis.matcher import (
    LibraryMatcher,
    cut_function_table,
    matcher_for,
)


@pytest.fixture(scope="module")
def tg_library():
    return build_library(LogicFamily.TG_STATIC)


@pytest.fixture(scope="module")
def cmos_library():
    return build_library(LogicFamily.CMOS)


@pytest.fixture(scope="module")
def matchers(tg_library, cmos_library):
    """One matcher per (library, output-negation) combination."""
    return {
        (library.name, flag): LibraryMatcher(library, allow_output_negation=flag)
        for library in (tg_library, cmos_library)
        for flag in (True, False)
    }


@st.composite
def table_batches(draw):
    """A batch of random truth tables of one arity, degenerates included."""
    arity = draw(st.integers(min_value=2, max_value=6))
    size = 1 << arity
    full = (1 << size) - 1
    count = draw(st.integers(min_value=1, max_value=24))
    tables = [draw(st.integers(min_value=0, max_value=full)) for _ in range(count)]
    # Seed the classic degenerate shapes: constants and single-variable
    # projections exercise the empty/partial-support branches.
    tables.extend([0, full, 0xAAAAAAAAAAAAAAAA & full])
    return arity, tables


class TestCanonicalizerColumns:
    @settings(max_examples=80, deadline=None)
    @given(batch=table_batches(), include_output_negation=st.booleans())
    def test_batch_columns_equal_scalar_canonicalizer(
        self, batch, include_output_negation
    ):
        arity, tables = batch
        values = np.array(tables, dtype=np.uint64)
        canon, perm, phase, negated = canonicalize_bits_batch_columns(
            values, arity, include_output_negation
        )
        assert perm.shape == (values.shape[0], arity)
        for row, bits in enumerate(tables):
            want = canonicalize_bits(bits, arity, include_output_negation)
            got = (
                int(canon[row]),
                tuple(int(v) for v in perm[row]),
                int(phase[row]),
                bool(negated[row]),
            )
            assert got == want


class TestBatchedMatchParity:
    @settings(max_examples=60, deadline=None)
    @given(
        batch=table_batches(),
        prefer=st.sampled_from(["delay", "area"]),
        allow_negation=st.booleans(),
        library_name=st.sampled_from(["cntfet-tg-static", "cmos-static"]),
    )
    def test_match_positions_batch_equals_scalar(
        self, matchers, batch, prefer, allow_negation, library_name
    ):
        arity, tables = batch
        matcher = matchers[(library_name, allow_negation)]
        sizes = np.full(len(tables), arity, dtype=np.int64)
        values = np.array(tables, dtype=np.uint64)
        result = matcher.match_positions_batch(sizes, values, prefer)
        assert result.inverse.tolist() == list(range(len(tables)))
        for row, bits in enumerate(tables):
            scalar = matcher.match_positions(arity, bits, prefer=prefer)
            if scalar is None:
                assert not result.matched[row]
                assert result.match_index[row] == -1
                continue
            cell_match, positions, reduced_bits = scalar
            width = len(positions)
            assert result.matched[row]
            assert int(result.width[row]) == width
            assert tuple(result.positions[row, :width].tolist()) == positions
            assert int(result.reduced[row]) == reduced_bits
            batched_match = result.matches[int(result.match_index[row])]
            assert batched_match.cell is cell_match.cell
            # Tuple equality of the composed transform, not mere functional
            # equivalence: downstream pin bindings depend on the exact tuple.
            assert batched_match.match == cell_match.match
            cell = cell_match.cell
            assert result.delay[row] == cell.delay.fo4_average
            assert result.area[row] == cell.area
            assert result.parasitic[row] == cell.delay.parasitic_output
            assert result.effort[row] == max(
                cell.delay.fo4_average - cell.delay.parasitic_output, 0.0
            ) / 4.0

    @settings(max_examples=80, deadline=None)
    @given(batch=table_batches())
    def test_support_and_projection_kernels_match_scalar(self, batch):
        arity, tables = batch
        sizes = np.full(len(tables), arity, dtype=np.int64)
        values = np.array(tables, dtype=np.uint64)
        masks = table_support_batch(values, sizes)
        projected = project_table_batch(values, masks)
        for row, bits in enumerate(tables):
            mask = table_support(bits, arity)
            assert int(masks[row]) == mask
            assert int(projected[row]) == project_table(bits, arity, mask)


class TestCutFunctionTable:
    @pytest.fixture(scope="class")
    def subject(self):
        aig = run_flow("resyn2rs", benchmark_by_name("add-16").build()).aig
        return aig, aig_arrays(aig), cut_set_for(aig)

    def test_function_table_covers_every_ranked_cut(self, subject):
        aig, arrays, cut_set = subject
        table = cut_function_table(cut_set, arrays.and_nodes)
        total = int((cut_set.count[arrays.and_nodes] - 1).sum())
        assert table.num_rows == total
        assert table.inverse.min() >= 0
        assert table.inverse.max() < table.num_distinct
        # Distinct rows reproduce their (size, table) keys through inverse.
        per_node = cut_set.count[arrays.and_nodes] - 1
        nodes_rep = np.repeat(arrays.and_nodes, per_node)
        starts = np.concatenate(([0], np.cumsum(per_node)[:-1]))
        slots = np.arange(total) - np.repeat(starts, per_node)
        assert np.array_equal(
            table.sizes[table.inverse], cut_set.size[nodes_rep, slots]
        )
        assert np.array_equal(
            table.tables[table.inverse], cut_set.table[nodes_rep, slots]
        )

    def test_function_table_is_memoized_and_swept(self, subject):
        aig, arrays, cut_set = subject
        first = cut_function_table(cut_set, arrays.and_nodes)
        assert cut_function_table(cut_set, arrays.and_nodes) is first
        sizes = cut_cache_sizes()
        assert sizes.get("cutset_memos", 0) > 0
        assert "matcher_positions_memo" in sizes
        assert "npn_batch_memo" in sizes

    def test_match_table_counters_and_span(self, subject, tg_library):
        from repro import obs

        aig, arrays, cut_set = subject
        matcher = matcher_for(tg_library)
        obs.enable_tracing()
        try:
            before = dict(obs.counters())
            table = matcher.match_table(cut_set, arrays.and_nodes, "delay")
            # Memoized: a second call must not re-count.
            assert matcher.match_table(cut_set, arrays.and_nodes, "delay") is table
            after = obs.counters()

            def grew(name):
                return after.get(name, 0) - before.get(name, 0)

            assert grew("match.batch_rows") == table.inverse.shape[0]
            assert grew("match.unique_functions") == table.matched.shape[0]
            assert grew("match.index_hits") == int(table.matched.sum())
            batch_spans = [s for s in obs.spans() if s.name == "match-batch"]
            assert len(batch_spans) == 1
            assert batch_spans[0].attributes["prefer"] == "delay"
            assert batch_spans[0].attributes["index_hits"] == int(
                table.matched.sum()
            )
        finally:
            obs.disable_tracing()


class TestMapperPathParity:
    @pytest.mark.parametrize("max_inputs", [4, 6])
    def test_scalar_forced_mapping_is_identical(
        self, monkeypatch, tg_library, max_inputs
    ):
        """``REPRO_SCALAR_MATCH=1`` must reproduce the batched mapping
        gate-for-gate at every cut width (the mapper-level parity pin)."""
        aig = run_flow("resyn2rs", benchmark_by_name("t481").build()).aig
        matcher = matcher_for(tg_library)
        batched = technology_map(
            aig, tg_library, matcher=matcher, max_inputs=max_inputs
        )
        monkeypatch.setenv("REPRO_SCALAR_MATCH", "1")
        # Fresh cut set state so the scalar run rebuilds its own tables.
        scalar_aig = run_flow("resyn2rs", benchmark_by_name("t481").build()).aig
        scalar = technology_map(
            scalar_aig, tg_library, matcher=matcher, max_inputs=max_inputs
        )
        assert [
            (g.output, g.cell_name, g.leaves, g.table, g.inverted)
            for g in batched.gates
        ] == [
            (g.output, g.cell_name, g.leaves, g.table, g.inverted)
            for g in scalar.gates
        ]
        assert batched.normalized_delay == scalar.normalized_delay
        assert batched.area == scalar.area
