"""The cost-model mapping core and the multi-round recovery driver.

Three layers of guarantees:

* **Round-0 bit-identity.**  The refactor from the monolithic single-pass
  ``technology_map`` to the CostModel/candidate-table engine must not change
  a single selected gate: the golden digests below were captured from the
  pre-refactor mapper for every (benchmark, family, objective) probe at
  K=6 and K=4 and pin the mapped netlist gate for gate.
* **Recovery safety.**  However many rounds run, the final circuit is never
  slower than round 0 and never costlier on the recovered axis, and every
  intermediate round's netlist stays functionally equivalent to the subject
  AIG (checked both on fixed benchmarks and on hypothesis-generated random
  circuits).
* **Cost-model registry.**  The objective vocabulary is pluggable and
  validated.
"""

import hashlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.registry import benchmark_by_name
from repro.core import LogicFamily, build_library
from repro.flow import run_flow
from repro.logic.simulation import random_pattern_words
from repro.synthesis.aig import Aig
from repro.synthesis.cost import (
    AreaFlowCost,
    DelayCost,
    PowerFlowCost,
    available_objectives,
    cost_model_for,
    resolve_recovery,
)
from repro.synthesis.mapper import map_rounds, technology_map, verify_mapping
from repro.synthesis.matcher import matcher_for

# Golden round-0 netlist digests captured from the pre-refactor single-pass
# mapper: sha256 over the sorted gates' (output, cell, leaves, table,
# inverted) records, plus (gates, area, levels, normalized_delay).  Keys are
# "benchmark|family|objective"; subjects are the resyn2rs-optimized AIGs.
GOLDEN_K6 = {
    "C1908|cmos-static|area": (
        "031b81e73bc0224407dfa9ddaacb908b1c5da27e1afd0cc4744368273bc06586",
        424, 3406.0, 41, 172.666666667,
    ),
    "C1908|cmos-static|delay": (
        "13af992f7999aef824dc5b6427237f2fa98d59413d15b294da6263d992ce4640",
        306, 4471.0, 22, 168.333333333,
    ),
    "C1908|cmos-static|power": (
        "15ffb1c4a27b0cb0e1110d356f2dc7cdcd393318cbfa991352a2b59d41a06e49",
        392, 3406.0, 41, 174.444444444,
    ),
    "C1908|cntfet-tg-pseudo|area": (
        "e683585f1263c6d870ef4ea7e120a6f57426b9ea8c9d462f3a1527bec234e824",
        180, 434.222222222, 22, 66.171875,
    ),
    "C1908|cntfet-tg-pseudo|delay": (
        "dadfa0f2c16fcf18e2ebcb571726d9a144ae48549155a7255abe13c0bf60bbdc",
        166, 443.333333333, 20, 60.835069444,
    ),
    "C1908|cntfet-tg-pseudo|power": (
        "e683585f1263c6d870ef4ea7e120a6f57426b9ea8c9d462f3a1527bec234e824",
        180, 434.222222222, 22, 66.171875,
    ),
    "C1908|cntfet-tg-static|area": (
        "4b2108e0bbe666b4d45c24da38dfa34534ecf5ad889b21650dfbe1f9dc66692a",
        180, 685.333333333, 22, 63.5,
    ),
    "C1908|cntfet-tg-static|delay": (
        "ea6f17b27356f7423401a1e5f75ad82cd824345e5f3753249e15a1e616d1c69b",
        166, 809.333333333, 20, 56.333333333,
    ),
    "C1908|cntfet-tg-static|power": (
        "b81945dbdd6af04f36f1b939f1b5dfcafb417a1b9efe77c00e9e999611c6f047",
        182, 685.333333333, 22, 65.5,
    ),
    "add-16|cmos-static|area": (
        "3cc5e6ab35f7c7f13e315d5ed12efff786b2ebbbaba7b47bc767245f6275ae91",
        128, 1152.0, 19, 146.0,
    ),
    "add-16|cmos-static|delay": (
        "ce4f5cea2479e2b5a17dacad00e92287e378a045b46f37cf86fa6115541286a9",
        143, 1679.0, 18, 133.444444444,
    ),
    "add-16|cmos-static|power": (
        "12c19fc1b034cfbe5c7a57bd61bc2cdebc75172a74229ee4827ec7767b792784",
        144, 1152.0, 34, 156.0,
    ),
    "add-16|cntfet-tg-pseudo|area": (
        "51eccee26cd2b821d1851bcbb0cdef55bd84c67985d5408aa7afd264da8eabd0",
        80, 218.666666667, 32, 122.067708333,
    ),
    "add-16|cntfet-tg-pseudo|delay": (
        "9e455c23bb2c542a95bc82ec3768894646e8f6cf9260e4291975d61393be3d4a",
        65, 240.333333333, 17, 114.819444444,
    ),
    "add-16|cntfet-tg-pseudo|power": (
        "51eccee26cd2b821d1851bcbb0cdef55bd84c67985d5408aa7afd264da8eabd0",
        80, 218.666666667, 32, 122.067708333,
    ),
    "add-16|cntfet-tg-static|area": (
        "97b501b117550dc9abefe5bad8c241e0144648b9dd582d8ef84df38490461700",
        64, 357.333333333, 17, 100.333333333,
    ),
    "add-16|cntfet-tg-static|delay": (
        "a8f2feb47fd944970bbaf3fcf11383edb98e3134929f24e49536dc34ad04c705",
        65, 379.333333333, 17, 95.875,
    ),
    "add-16|cntfet-tg-static|power": (
        "5e6f649a16938812fa80d519c2960ce53f6215a4071972b730a3bd3d29fd66b3",
        64, 357.333333333, 25, 128.333333333,
    ),
    "dalu|cmos-static|area": (
        "20f7f74de69c4ad8a7ebcbbbceb390b43e2fccb291825dd33f2c33b0c50a0a74",
        287, 3289.0, 19, 151.333333333,
    ),
    "dalu|cmos-static|delay": (
        "3bfd78a7d419fb74a17b5cb57ba2b5756ffcce312dee828b764f4e2adc9a7ee1",
        358, 4524.0, 18, 135.111111111,
    ),
    "dalu|cmos-static|power": (
        "dab61ae99ee2b4db96314c31c91df45eaf92fc56b5f858faa66ab7d0c5ec22f0",
        352, 3326.0, 33, 159.777777778,
    ),
    "dalu|cntfet-tg-pseudo|area": (
        "7002e2d6c5e08e35d55e70af7192b78fdfba2c7c95edaa4ae8d372ff4389fac1",
        253, 884.777777778, 33, 128.40625,
    ),
    "dalu|cntfet-tg-pseudo|delay": (
        "00e17ee2a36ebd88b7897841351257a0bd54c948cfcf7296250a94733db7e828",
        251, 1117.444444444, 17, 106.590277778,
    ),
    "dalu|cntfet-tg-pseudo|power": (
        "dece37cbf6c9314511fd486100662193de0b0d9bc97c669e7d2c3f8308a90545",
        253, 888.777777778, 33, 128.399305556,
    ),
    "dalu|cntfet-tg-static|area": (
        "a7c5eb8645332eacfa41c79d2727496737a5cce9d88644bcbc387542522a70cd",
        202, 1705.0, 18, 106.5,
    ),
    "dalu|cntfet-tg-static|delay": (
        "1f21dd336aba427c29516d08aec5d56a4f9a05b75c1bb18245041740be0f7823",
        248, 2271.666666667, 17, 95.916666667,
    ),
    "dalu|cntfet-tg-static|power": (
        "e2613f1d94c01c173daa161373952b6e8d7b9f2a317ae1a83c0d05c6db82ed8d",
        237, 1736.333333333, 20, 110.333333333,
    ),
    "t481|cmos-static|area": (
        "4ea6ab0a095b72cb5c0813cdfc3dd7f004c11bcb8d22e26a7bcfb2f8541976d7",
        159, 1390.0, 18, 92.444444444,
    ),
    "t481|cmos-static|delay": (
        "b1c91457da406eb2e0196d6432892c9a6af9a130b941fe026e692fbe8a501b57",
        161, 1577.0, 16, 88.888888889,
    ),
    "t481|cmos-static|power": (
        "323f87f648565ab5391ca4bfabc4fd6bcf61fb135f53ffd4c6302b5bee332124",
        168, 1390.0, 21, 102.444444444,
    ),
    "t481|cntfet-tg-pseudo|area": (
        "0d7c5880846776ef72fa53ffa326d8a7ec6775d4e3411d828b4eb642e17ff491",
        97, 268.333333333, 15, 56.237847222,
    ),
    "t481|cntfet-tg-pseudo|delay": (
        "2052b7b2dd7d4ccbc59a363b0b768c8d4c199f98c2eecc8ab1f981bb8986fba6",
        93, 294.555555556, 12, 63.274305556,
    ),
    "t481|cntfet-tg-pseudo|power": (
        "00f3c3272f3307e4c2eba2a3bec9aa3bbf61e690d016fbeaf7158d2a61db4d6c",
        94, 271.333333333, 15, 59.842013889,
    ),
    "t481|cntfet-tg-static|area": (
        "7ea433a32fd23c4ac272b99459dc52c341f5d98d0ccccf765d659067bae04138",
        84, 461.666666667, 12, 50.0,
    ),
    "t481|cntfet-tg-static|delay": (
        "b9c35ac7df67b4de191c3f68389265179b96b35558cb8537e479a8d401429a86",
        88, 512.0, 11, 58.416666667,
    ),
    "t481|cntfet-tg-static|power": (
        "bdde9f0f329b392790b1ed14c994c1f4afa09a2df3b2c501b12d1be4dc678eeb",
        92, 478.666666667, 15, 59.0,
    ),
}

GOLDEN_K4 = {
    "add-16|cmos-static|area": (
        "3cc5e6ab35f7c7f13e315d5ed12efff786b2ebbbaba7b47bc767245f6275ae91",
        128, 1152.0, 19, 146.0,
    ),
    "add-16|cmos-static|delay": (
        "ce4f5cea2479e2b5a17dacad00e92287e378a045b46f37cf86fa6115541286a9",
        143, 1679.0, 18, 133.444444444,
    ),
    "add-16|cmos-static|power": (
        "12c19fc1b034cfbe5c7a57bd61bc2cdebc75172a74229ee4827ec7767b792784",
        144, 1152.0, 34, 156.0,
    ),
    "add-16|cntfet-tg-pseudo|area": (
        "51eccee26cd2b821d1851bcbb0cdef55bd84c67985d5408aa7afd264da8eabd0",
        80, 218.666666667, 32, 122.067708333,
    ),
    "add-16|cntfet-tg-pseudo|delay": (
        "9e455c23bb2c542a95bc82ec3768894646e8f6cf9260e4291975d61393be3d4a",
        65, 240.333333333, 17, 114.819444444,
    ),
    "add-16|cntfet-tg-pseudo|power": (
        "51eccee26cd2b821d1851bcbb0cdef55bd84c67985d5408aa7afd264da8eabd0",
        80, 218.666666667, 32, 122.067708333,
    ),
    "add-16|cntfet-tg-static|area": (
        "97b501b117550dc9abefe5bad8c241e0144648b9dd582d8ef84df38490461700",
        64, 357.333333333, 17, 100.333333333,
    ),
    "add-16|cntfet-tg-static|delay": (
        "a8f2feb47fd944970bbaf3fcf11383edb98e3134929f24e49536dc34ad04c705",
        65, 379.333333333, 17, 95.875,
    ),
    "add-16|cntfet-tg-static|power": (
        "5e6f649a16938812fa80d519c2960ce53f6215a4071972b730a3bd3d29fd66b3",
        64, 357.333333333, 25, 128.333333333,
    ),
    "t481|cmos-static|area": (
        "4ea6ab0a095b72cb5c0813cdfc3dd7f004c11bcb8d22e26a7bcfb2f8541976d7",
        159, 1390.0, 18, 92.444444444,
    ),
    "t481|cmos-static|delay": (
        "b1c91457da406eb2e0196d6432892c9a6af9a130b941fe026e692fbe8a501b57",
        161, 1577.0, 16, 88.888888889,
    ),
    "t481|cmos-static|power": (
        "323f87f648565ab5391ca4bfabc4fd6bcf61fb135f53ffd4c6302b5bee332124",
        168, 1390.0, 21, 102.444444444,
    ),
    "t481|cntfet-tg-pseudo|area": (
        "0d7c5880846776ef72fa53ffa326d8a7ec6775d4e3411d828b4eb642e17ff491",
        97, 268.333333333, 15, 56.237847222,
    ),
    "t481|cntfet-tg-pseudo|delay": (
        "2052b7b2dd7d4ccbc59a363b0b768c8d4c199f98c2eecc8ab1f981bb8986fba6",
        93, 294.555555556, 12, 63.274305556,
    ),
    "t481|cntfet-tg-pseudo|power": (
        "00f3c3272f3307e4c2eba2a3bec9aa3bbf61e690d016fbeaf7158d2a61db4d6c",
        94, 271.333333333, 15, 59.842013889,
    ),
    "t481|cntfet-tg-static|area": (
        "7ea433a32fd23c4ac272b99459dc52c341f5d98d0ccccf765d659067bae04138",
        84, 461.666666667, 12, 50.0,
    ),
    "t481|cntfet-tg-static|delay": (
        "b9c35ac7df67b4de191c3f68389265179b96b35558cb8537e479a8d401429a86",
        88, 512.0, 11, 58.416666667,
    ),
    "t481|cntfet-tg-static|power": (
        "bdde9f0f329b392790b1ed14c994c1f4afa09a2df3b2c501b12d1be4dc678eeb",
        92, 478.666666667, 15, 59.0,
    ),
}

FAMILIES = {
    "cntfet-tg-static": LogicFamily.TG_STATIC,
    "cntfet-tg-pseudo": LogicFamily.TG_PSEUDO,
    "cmos-static": LogicFamily.CMOS,
}

#: Benchmarks small enough for the fast lane; the rest are nightly-only.
FAST_BENCHMARKS = ("add-16", "t481")


def _netlist_digest(mapped) -> str:
    digest = hashlib.sha256()
    for gate in sorted(mapped.gates, key=lambda g: g.output):
        digest.update(
            f"{gate.output}:{gate.cell_name}:{gate.leaves}:{gate.table}:"
            f"{int(gate.inverted)};".encode()
        )
    return digest.hexdigest()


_SUBJECT_CACHE: dict[str, Aig] = {}


def _subject(name: str) -> Aig:
    aig = _SUBJECT_CACHE.get(name)
    if aig is None:
        aig = _SUBJECT_CACHE[name] = run_flow(
            "resyn2rs", benchmark_by_name(name).build()
        ).aig
    return aig


def _check_golden(golden: dict, key: str, max_inputs: int) -> None:
    benchmark, family_key, objective = key.split("|")
    library = build_library(FAMILIES[family_key])
    mapped = technology_map(
        _subject(benchmark),
        library,
        matcher=matcher_for(library),
        objective=objective,
        max_inputs=max_inputs,
    )
    digest, gates, area, levels, delay = golden[key]
    assert mapped.gate_count == gates
    assert mapped.area == pytest.approx(area, abs=1e-6)
    assert mapped.levels == levels
    assert mapped.normalized_delay == pytest.approx(delay, abs=1e-6)
    assert _netlist_digest(mapped) == digest, (
        f"round-0 mapping of {key} (K={max_inputs}) is no longer bit-identical "
        "to the pre-refactor mapper"
    )


class TestRound0Golden:
    """Round 0 must stay bit-identical to the historical single-pass mapper."""

    @pytest.mark.parametrize(
        "key",
        sorted(k for k in GOLDEN_K6 if k.split("|")[0] in FAST_BENCHMARKS),
    )
    def test_round0_bit_identical_k6(self, key):
        _check_golden(GOLDEN_K6, key, 6)

    @pytest.mark.parametrize("key", sorted(GOLDEN_K4))
    def test_round0_bit_identical_k4(self, key):
        _check_golden(GOLDEN_K4, key, 4)

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "key",
        sorted(k for k in GOLDEN_K6 if k.split("|")[0] not in FAST_BENCHMARKS),
    )
    def test_round0_bit_identical_k6_full(self, key):
        _check_golden(GOLDEN_K6, key, 6)

    def test_rounds_zero_equals_technology_map(self):
        library = build_library(LogicFamily.TG_STATIC)
        aig = _subject("add-16")
        direct = technology_map(aig, library, matcher=matcher_for(library))
        result = map_rounds(aig, library, matcher=matcher_for(library), rounds=0)
        assert result.rounds == [result.final]
        assert result.accepted == [True]
        assert _netlist_digest(direct) == _netlist_digest(result.final)


def _objective_total(mapped, objective: str, library, aig) -> float:
    """The recovered axis of a circuit: area, or total power for power."""
    if objective == "power":
        from repro.analysis.power import analyze_power

        return analyze_power(mapped, aig, library).total
    return mapped.area


class TestRecovery:
    """Safety guarantees of the required-time recovery rounds."""

    @pytest.mark.parametrize("bench_name", FAST_BENCHMARKS)
    @pytest.mark.parametrize(
        "family", (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.CMOS),
        ids=lambda f: f.value,
    )
    @pytest.mark.parametrize("objective", ("delay", "area", "power"))
    def test_recovery_never_worsens(self, bench_name, family, objective):
        aig = _subject(bench_name)
        library = build_library(family)
        result = map_rounds(
            aig,
            library,
            matcher=matcher_for(library),
            objective=objective,
            rounds=2,
        )
        round0, final = result.rounds[0], result.final
        assert result.accepted[0] is True
        # Delay is protected whatever the recovered axis.
        assert final.normalized_delay <= round0.normalized_delay + 1e-9
        # The recovered axis never regresses (area for delay/area, power
        # for the power objective).
        assert _objective_total(final, objective, library, aig) <= (
            _objective_total(round0, objective, library, aig) + 1e-9
        )
        # Every round -- accepted or rejected -- is a functionally correct
        # netlist.
        patterns = random_pattern_words(aig.pi_names, num_words=2, seed=11)
        for mapped in result.rounds:
            assert verify_mapping(mapped, aig, patterns)

    def test_recovery_improves_area_somewhere(self):
        """The lane must actually recover area, not just hold the line."""
        aig = _subject("t481")
        library = build_library(LogicFamily.TG_STATIC)
        result = map_rounds(
            aig, library, matcher=matcher_for(library), objective="delay", rounds=2
        )
        assert result.final.area < result.rounds[0].area - 1e-9
        assert result.final.normalized_delay <= (
            result.rounds[0].normalized_delay + 1e-9
        )

    def test_rejected_rounds_do_not_leak_into_final(self):
        aig = _subject("add-16")
        library = build_library(LogicFamily.TG_STATIC)
        result = map_rounds(
            aig, library, matcher=matcher_for(library), objective="delay", rounds=4
        )
        accepted = [m for m, ok in zip(result.rounds, result.accepted) if ok]
        assert result.final is accepted[-1]

    def test_negative_rounds_rejected(self):
        library = build_library(LogicFamily.TG_STATIC)
        with pytest.raises(ValueError):
            map_rounds(_subject("add-16"), library, rounds=-1)

    def test_determinism(self):
        aig = _subject("t481")
        library = build_library(LogicFamily.TG_STATIC)
        first = map_rounds(
            aig, library, matcher=matcher_for(library), objective="delay", rounds=2
        )
        second = map_rounds(
            aig, library, matcher=matcher_for(library), objective="delay", rounds=2
        )
        assert first.accepted == second.accepted
        assert [_netlist_digest(m) for m in first.rounds] == [
            _netlist_digest(m) for m in second.rounds
        ]


def _random_aig(seed: int, num_inputs: int, num_nodes: int) -> Aig:
    rng = random.Random(seed)
    aig = Aig(f"rand-{seed}")
    literals = [aig.add_pi(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_gate(a, b))
    for i, literal in enumerate(literals[-max(2, num_inputs // 2):]):
        aig.add_po(f"y{i}", literal ^ rng.randint(0, 1))
    return aig


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=3, max_value=7),
    num_nodes=st.integers(min_value=5, max_value=50),
    objective=st.sampled_from(("delay", "area", "power")),
    rounds=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_recovery_property_on_random_circuits(
    seed, num_inputs, num_nodes, objective, rounds
):
    """Recovery never worsens delay or the recovered axis and every round's
    netlist is equivalent to the subject, on arbitrary circuits."""
    aig = _random_aig(seed, num_inputs, num_nodes)
    library = build_library(LogicFamily.TG_STATIC)
    result = map_rounds(
        aig,
        library,
        matcher=matcher_for(library),
        objective=objective,
        rounds=rounds,
    )
    round0, final = result.rounds[0], result.final
    assert final.normalized_delay <= round0.normalized_delay + 1e-9
    assert _objective_total(final, objective, library, aig) <= (
        _objective_total(round0, objective, library, aig) + 1e-9
    )
    patterns = random_pattern_words(aig.pi_names, num_words=2, seed=seed)
    for mapped in result.rounds:
        assert verify_mapping(mapped, aig, patterns)


class TestCostModels:
    def test_registry_vocabulary(self):
        assert set(available_objectives()) >= {"delay", "area", "power"}
        assert isinstance(cost_model_for("delay"), DelayCost)
        assert isinstance(cost_model_for("area"), AreaFlowCost)
        assert isinstance(cost_model_for("power"), PowerFlowCost)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            cost_model_for("energy")

    def test_resolve_recovery(self):
        assert resolve_recovery("delay", "auto") == "area"
        assert resolve_recovery("area", "auto") == "area"
        assert resolve_recovery("power", "auto") == "power"
        assert resolve_recovery("delay", "power") == "power"
        with pytest.raises(ValueError):
            resolve_recovery("delay", "delay")
        with pytest.raises(ValueError):
            resolve_recovery("delay", "entropy")

    def test_preferred_cells(self):
        assert cost_model_for("delay").prefer == "delay"
        assert cost_model_for("area").prefer == "area"
        assert cost_model_for("power").prefer == "area"
