"""Property-based tests (hypothesis) for the synthesis substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis.aig import Aig, lit_node
from repro.synthesis.cuts import enumerate_cuts
from repro.synthesis.optimize import _cube_minterms, _isop, balance, rewrite
from repro.logic.simulation import random_pattern_words


def _random_aig(seed: int, num_inputs: int, num_nodes: int) -> Aig:
    """A random, deterministic AIG used as a property-test subject."""
    rng = random.Random(seed)
    aig = Aig(f"rand-{seed}")
    literals = [aig.add_pi(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_gate(a, b))
    for i, literal in enumerate(literals[-max(2, num_inputs // 2):]):
        aig.add_po(f"y{i}", literal ^ rng.randint(0, 1))
    return aig


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=3, max_value=8),
    num_nodes=st.integers(min_value=5, max_value=60),
)
@settings(max_examples=25, deadline=None)
def test_balance_and_rewrite_preserve_random_circuits(seed, num_inputs, num_nodes):
    aig = _random_aig(seed, num_inputs, num_nodes)
    patterns = random_pattern_words(aig.pi_names, num_words=2, seed=seed)
    reference = aig.simulate_words(patterns)
    assert balance(aig).simulate_words(patterns) == reference
    assert rewrite(aig).simulate_words(patterns) == reference


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=3, max_value=6),
    num_nodes=st.integers(min_value=5, max_value=40),
)
@settings(max_examples=15, deadline=None)
def test_cut_functions_evaluate_like_the_node(seed, num_inputs, num_nodes):
    aig = _random_aig(seed, num_inputs, num_nodes)
    cuts = enumerate_cuts(aig, max_inputs=4, cut_limit=4)
    pi_nodes = set(aig.pi_nodes())
    # Pick the last AND node with a PI-only cut and check its function.
    for node in reversed(list(aig.and_nodes())):
        candidates = [c for c in cuts[node] if set(c.leaves) <= pi_nodes and c.leaves != (node,)]
        if not candidates:
            continue
        cut = candidates[0]
        name_of = {n: aig.pi_names[aig.pi_nodes().index(n)] for n in cut.leaves}
        for minterm in range(1 << cut.size):
            env = {name: False for name in aig.pi_names}
            for position, leaf in enumerate(cut.leaves):
                env[name_of[leaf]] = bool((minterm >> position) & 1)
            aig_value = _evaluate_node(aig, node, env)
            assert bool((cut.table >> minterm) & 1) == aig_value
        break


def _evaluate_node(aig: Aig, node: int, env: dict) -> bool:
    probe = Aig("probe")
    mapping = {0: 0}
    for name in aig.pi_names:
        mapping[lit_node(aig.pi_literal(name))] = probe.add_pi(name)
    for candidate in aig.and_nodes():
        f0, f1 = aig.fanins(candidate)
        probe_f0 = mapping[lit_node(f0)] ^ (f0 & 1)
        probe_f1 = mapping[lit_node(f1)] ^ (f1 & 1)
        mapping[candidate] = probe.and_gate(probe_f0, probe_f1)
        if candidate == node:
            break
    probe.add_po("y", mapping[node])
    return probe.evaluate(env)["y"]


@given(
    bits=st.integers(min_value=0, max_value=(1 << 16) - 1),
    num_vars=st.just(4),
)
@settings(max_examples=60, deadline=None)
def test_isop_covers_exactly_the_onset(bits, num_vars):
    cubes = _isop(bits, num_vars)
    covered = 0
    for care, value in cubes:
        covered |= _cube_minterms(num_vars, care, value)
    assert covered == bits
    # Irredundancy: removing any cube must uncover at least one minterm.
    for skip in range(len(cubes)):
        partial = 0
        for index, (care, value) in enumerate(cubes):
            if index != skip:
                partial |= _cube_minterms(num_vars, care, value)
        assert partial != bits or not cubes
