"""Tests for the array-backed AIG view and its consumers."""

import numpy as np
import pytest

from repro.synthesis import CircuitBuilder
from repro.synthesis.aig import Aig
from repro.synthesis.aig_array import aig_arrays
from repro.synthesis.cuts import clear_cut_caches, cut_set_for, table_support


def _sample_aig() -> Aig:
    builder = CircuitBuilder("sample")
    a, b, c, d = (builder.input(name) for name in "abcd")
    builder.output("s", builder.or_(builder.xor_(a, b), builder.and_(c, d)))
    builder.output("t", builder.nand_(a, c))
    return builder.finish()


class TestAigArrays:
    def test_fields_match_aig_accessors(self):
        aig = _sample_aig()
        arrays = aig_arrays(aig)
        assert arrays.num_nodes == aig.num_nodes
        assert arrays.num_ands == aig.num_ands
        assert arrays.pi_nodes.tolist() == list(aig.pi_nodes())
        assert arrays.po_literals.tolist() == list(aig.po_literals)
        for node in aig.and_nodes():
            fanin0, fanin1 = aig.fanins(node)
            assert arrays.fanin0[node] == fanin0
            assert arrays.fanin1[node] == fanin1
            assert arrays.level[node] == aig.level(node)
            assert arrays.is_and[node]
        assert arrays.fanout_dict() == aig.fanout_counts()

    def test_level_groups_partition_and_nodes_in_topological_order(self):
        aig = _sample_aig()
        arrays = aig_arrays(aig)
        flattened = [node for group in arrays.level_groups for node in group.tolist()]
        assert sorted(flattened) == list(aig.and_nodes())
        previous = 0
        for group in arrays.level_groups:
            group_levels = set(arrays.level[group].tolist())
            assert len(group_levels) == 1
            level = group_levels.pop()
            assert level > previous
            previous = level

    def test_view_is_cached_and_invalidated_by_mutation(self):
        aig = _sample_aig()
        first = aig_arrays(aig)
        assert aig_arrays(aig) is first
        x = aig.pi_literal("a")
        y = aig.pi_literal("b")
        aig.add_po("extra", aig.and_gate(x, y))
        second = aig_arrays(aig)
        assert second is not first
        assert second.fanout_dict() == aig.fanout_counts()


class TestVectorizedSimulation:
    def test_simulate_words_matches_per_pattern_evaluation(self):
        aig = _sample_aig()
        words = {name: [0xDEADBEEFCAFEF00D ^ (i * 0x9E3779B97F4A7C15 & (2**64 - 1))]
                 for i, name in enumerate(aig.pi_names)}
        packed = aig.simulate_words(words)
        for bit in range(64):
            assignment = {
                name: bool((words[name][0] >> bit) & 1) for name in aig.pi_names
            }
            single = aig.evaluate(assignment)
            for name, value in single.items():
                assert bool((packed[name][0] >> bit) & 1) == value

    def test_simulate_words_rejects_mismatched_inputs(self):
        aig = _sample_aig()
        with pytest.raises(ValueError):
            aig.simulate_words({"a": [1]})


class TestCleanupFastPath:
    def test_cleanup_matches_reference_rebuild(self):
        builder = CircuitBuilder("dangling")
        a, b, c = (builder.input(name) for name in "abc")
        _ = builder.xor_(builder.and_(a, b), c)  # dangling cone
        builder.output("y", builder.and_(a, c))
        aig = builder.finish()
        fast = aig.cleanup()
        slow = aig._cleanup_rebuild()
        assert fast.statistics() == slow.statistics()
        assert fast.pi_names == slow.pi_names
        assert fast.po_literals == slow.po_literals
        for node in fast.and_nodes():
            assert fast.fanins(node) == slow.fanins(node)

    def test_cleanup_interleaved_pi_and_gate_ids(self):
        aig = Aig("interleaved")
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        gate = aig.and_gate(a, b)
        late = aig.add_pi("late")  # PI id greater than the AND id
        aig.add_po("y", aig.and_gate(gate, late))
        fast = aig.cleanup()
        slow = aig._cleanup_rebuild()
        assert fast.po_literals == slow.po_literals
        assert [fast.fanins(n) for n in fast.and_nodes()] == [
            slow.fanins(n) for n in slow.and_nodes()
        ]


class TestCutSetMemo:
    def test_cut_set_memoized_per_structure(self):
        aig = _sample_aig()
        first = cut_set_for(aig, max_inputs=4, cut_limit=4)
        assert cut_set_for(aig, max_inputs=4, cut_limit=4) is first
        assert cut_set_for(aig, max_inputs=6, cut_limit=4) is not first
        x = aig.pi_literal("a")
        aig.add_po("z", x)
        assert cut_set_for(aig, max_inputs=4, cut_limit=4) is not first

    def test_clear_cut_caches_resets_scalar_memos(self):
        table_support(0b0110, 2)
        assert table_support.cache_info().currsize > 0
        clear_cut_caches()
        assert table_support.cache_info().currsize == 0
