"""Tests for optimization, cut enumeration, matching and technology mapping."""

import pytest

from repro.core import LogicFamily, build_library
from repro.logic.simulation import random_pattern_words
from repro.synthesis import (
    CircuitBuilder,
    LibraryMatcher,
    enumerate_cuts,
    optimize,
    balance,
    rewrite,
    technology_map,
)
from repro.synthesis.aig import Aig, lit_node
from repro.synthesis.cuts import Cut, _expand_table
from repro.synthesis.mapper import MappingError


def _small_adder(width=4, name="adder"):
    builder = CircuitBuilder(name)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_adder(a, b)
    builder.output_bus("s", total)
    builder.output("cout", carry)
    return builder.finish()


def _equivalent(a, b, seed=7):
    patterns = random_pattern_words(a.pi_names, num_words=4, seed=seed)
    return a.simulate_words(patterns) == b.simulate_words(patterns)


@pytest.fixture(scope="module")
def tg_static_library():
    return build_library(LogicFamily.TG_STATIC)


@pytest.fixture(scope="module")
def cmos_library():
    return build_library(LogicFamily.CMOS)


class TestOptimize:
    def test_balance_preserves_function(self):
        aig = _small_adder()
        balanced = balance(aig)
        assert _equivalent(aig, balanced)

    def test_balance_reduces_depth_of_chain(self):
        aig = Aig("chain")
        pis = [aig.add_pi(f"x{i}") for i in range(8)]
        acc = pis[0]
        for literal in pis[1:]:
            acc = aig.and_gate(acc, literal)
        aig.add_po("y", acc)
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert _equivalent(aig, balanced)

    def test_rewrite_preserves_function(self):
        aig = _small_adder()
        rewritten = rewrite(aig)
        assert _equivalent(aig, rewritten)

    def test_rewrite_removes_redundant_logic(self):
        aig = Aig("red")
        a, b = aig.add_pi("a"), aig.add_pi("b")
        # (a & b) | (a & b & a) is just a & b.
        redundant = aig.or_gate(aig.and_gate(a, b), aig.and_gate(aig.and_gate(a, b), a))
        aig.add_po("y", redundant)
        rewritten = rewrite(aig)
        assert rewritten.num_ands <= aig.num_ands
        assert _equivalent(aig, rewritten)

    def test_optimize_never_grows_and_preserves_function(self):
        aig = _small_adder(width=6, name="adder6")
        optimized = optimize(aig)
        assert optimized.num_ands <= aig.num_ands
        assert optimized.depth() <= aig.depth()
        assert _equivalent(aig, optimized)


class TestCuts:
    def test_expand_table_inserts_variables(self):
        # Table over leaves (2, 5): AND.  Expanded over (2, 3, 5).
        table = 0b1000
        expanded = _expand_table(table, (2, 5), (2, 3, 5))
        # New variable (position 1) is a don't care: AND of positions 0 and 2.
        for minterm in range(8):
            expected = bool(minterm & 1) and bool(minterm & 4)
            assert bool((expanded >> minterm) & 1) == expected

    def test_cut_of_fanins_always_present(self):
        aig = _small_adder(width=2, name="a2")
        cuts = enumerate_cuts(aig)
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            fanin_leaves = tuple(sorted({lit_node(f0), lit_node(f1)}))
            assert any(cut.leaves == fanin_leaves for cut in cuts[node])

    def test_cut_functions_are_correct(self):
        # Check the cut functions of a small circuit against direct evaluation.
        aig = Aig("f")
        a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
        xor_ab = aig.xor_gate(a, b)
        out = aig.and_gate(xor_ab, c)
        aig.add_po("y", out)
        cuts = enumerate_cuts(aig)
        pi_nodes = {lit_node(a): "a", lit_node(b): "b", lit_node(c): "c"}
        target = lit_node(out)
        full_cuts = [cut for cut in cuts[target] if set(cut.leaves) <= set(pi_nodes)]
        assert full_cuts
        for cut in full_cuts:
            names = [pi_nodes[leaf] for leaf in cut.leaves]
            for minterm in range(1 << cut.size):
                env = {"a": False, "b": False, "c": False}
                for position, name in enumerate(names):
                    env[name] = bool((minterm >> position) & 1)
                expected = (env["a"] != env["b"]) and env["c"]
                assert bool((cut.table >> minterm) & 1) == expected

    def test_cut_size_limit_respected(self):
        aig = _small_adder(width=4, name="a4")
        cuts = enumerate_cuts(aig, max_inputs=4, cut_limit=6)
        for node in aig.and_nodes():
            for cut in cuts[node]:
                if cut.leaves != (node,):
                    assert cut.size <= 4

    def test_parameter_validation(self):
        aig = _small_adder(width=2, name="a2v")
        with pytest.raises(ValueError):
            enumerate_cuts(aig, max_inputs=1)
        with pytest.raises(ValueError):
            enumerate_cuts(aig, max_inputs=7)
        with pytest.raises(ValueError):
            enumerate_cuts(aig, cut_limit=0)


class TestMatcher:
    def test_matcher_finds_and2_and_xor2(self, tg_static_library):
        matcher = LibraryMatcher(tg_static_library)
        and2 = 0b1000
        xor2 = 0b0110
        assert matcher.match(2, and2) is not None
        assert matcher.match(2, xor2) is not None
        assert matcher.match(2, xor2).cell.function_id == "F01"

    def test_cmos_matcher_has_no_xor(self, cmos_library):
        matcher = LibraryMatcher(cmos_library)
        assert matcher.match(2, 0b0110) is None
        assert matcher.match(2, 0b1000) is not None

    def test_match_reduced_projects_support(self, tg_static_library):
        matcher = LibraryMatcher(tg_static_library)
        # A 3-leaf cut whose function ignores the middle leaf: x0 & x2.
        table = 0
        for minterm in range(8):
            if (minterm & 1) and (minterm & 4):
                table |= 1 << minterm
        found = matcher.match_reduced((10, 11, 12), table)
        assert found is not None
        match, leaves, reduced_bits = found
        assert leaves == (10, 12)
        assert reduced_bits == 0b1000
        assert match.cell.arity == 2

    def test_phase_freedom(self, tg_static_library):
        matcher = LibraryMatcher(tg_static_library)
        # NAND2 (output negation of AND2) must match because every cell
        # provides both output polarities.
        nand2 = (~0b1000) & 0xF
        assert matcher.match(2, nand2) is not None


class TestMapper:
    def test_mapped_adder_statistics(self, tg_static_library, cmos_library):
        aig = optimize(_small_adder(width=8, name="add8"))
        cntfet = technology_map(aig, tg_static_library)
        cmos = technology_map(aig, cmos_library)
        assert cntfet.gate_count > 0 and cmos.gate_count > 0
        # XOR-rich arithmetic: the ambipolar library needs fewer gates, less
        # area and fewer levels than CMOS (the Table-3 trend).
        assert cntfet.gate_count < cmos.gate_count
        assert cntfet.area < cmos.area
        assert cntfet.levels < cmos.levels
        assert cntfet.absolute_delay_ps < cmos.absolute_delay_ps

    def test_mapped_gates_reference_known_cells(self, tg_static_library):
        aig = _small_adder(width=3, name="add3")
        mapped = technology_map(aig, tg_static_library)
        ids = {cell.function_id for cell in tg_static_library}
        for gate in mapped.gates:
            assert gate.function_id in ids
            assert gate.area > 0

    def test_gate_histogram_uses_xor_cells_for_adder(self, tg_static_library):
        aig = optimize(_small_adder(width=8, name="add8h"))
        mapped = technology_map(aig, tg_static_library)
        histogram = mapped.gate_histogram()
        xor_cells = {
            fid for fid, count in histogram.items()
            if "^" in tg_static_library.cell(fid).expression_text and count > 0
        }
        assert xor_cells, "an adder mapped onto the ambipolar library must use XOR cells"

    def test_area_objective_not_larger_than_delay_objective(self, tg_static_library):
        aig = optimize(_small_adder(width=6, name="add6"))
        by_delay = technology_map(aig, tg_static_library, objective="delay")
        by_area = technology_map(aig, tg_static_library, objective="area")
        assert by_area.area <= by_delay.area + 1e-9

    def test_objective_validation(self, tg_static_library):
        aig = _small_adder(width=2, name="add2")
        with pytest.raises(ValueError):
            technology_map(aig, tg_static_library, objective="energy")

    def test_statistics_dictionary(self, tg_static_library):
        aig = _small_adder(width=2, name="add2s")
        mapped = technology_map(aig, tg_static_library)
        stats = mapped.statistics()
        assert set(stats) == {
            "gates",
            "area",
            "levels",
            "normalized_delay",
            "absolute_delay_ps",
            "worst_slack",
        }
        assert stats["absolute_delay_ps"] == pytest.approx(
            stats["normalized_delay"] * 0.59
        )
        # Timing-feasible circuits have non-positive slack bounded by zero.
        assert stats["worst_slack"] == pytest.approx(0.0, abs=1e-9)

    def test_statistics_include_power_when_attached(self, tg_static_library):
        from repro.analysis.power import analyze_power

        aig = _small_adder(width=2, name="add2p")
        mapped = technology_map(aig, tg_static_library)
        mapped.attach_power(analyze_power(mapped, aig, tg_static_library))
        stats = mapped.statistics()
        assert {"dynamic_power", "static_power", "total_power"} <= set(stats)
        assert stats["total_power"] == pytest.approx(
            stats["dynamic_power"] + stats["static_power"]
        )

    def test_mapping_preserves_function(self, tg_static_library):
        # Re-simulate the mapped netlist from the recorded per-gate truth
        # tables and compare every primary output against the subject AIG.
        from repro.logic.simulation import exhaustive_pattern_words
        from repro.synthesis.mapper import verify_mapping

        aig = _small_adder(width=4, name="add4f")
        mapped = technology_map(aig, tg_static_library)
        patterns = exhaustive_pattern_words(aig.pi_names)
        assert verify_mapping(mapped, aig, patterns)

    def test_mapping_preserves_function_cmos_and_optimized(self, cmos_library):
        from repro.synthesis.mapper import verify_mapping

        aig = optimize(_small_adder(width=5, name="add5f"))
        mapped = technology_map(aig, cmos_library)
        patterns = random_pattern_words(aig.pi_names, num_words=4, seed=11)
        assert verify_mapping(mapped, aig, patterns)


class TestPinBindings:
    """The matcher's pin assignment, as resolved for the power analysis.

    Regression for the phase convention: ``g(z) = (~)^out f(sigma(z) ^
    phase)`` applies the phase in the *base function's* input space, so the
    complement flag of leaf ``j`` is phase bit ``permutation[j]`` (reading
    bit ``j`` instead silently mis-assigns pin polarities -- and therefore
    pin capacitances -- whenever a match permutes inputs).
    """

    @pytest.mark.parametrize(
        "family", (LogicFamily.TG_STATIC, LogicFamily.PASS_STATIC),
        ids=lambda f: f.value,
    )
    def test_bindings_reproduce_the_cut_function(self, family):
        import random

        from repro.synthesis.mapper import _pin_bindings
        from repro.synthesis.matcher import matcher_for

        library = build_library(family)
        matcher = matcher_for(library)
        rng = random.Random(42)
        probes = [(2, bits) for bits in range(16)]
        probes += [(3, rng.getrandbits(8)) for _ in range(60)]
        probes += [(4, rng.getrandbits(16)) for _ in range(60)]
        checked = 0
        for num_leaves, bits in probes:
            found = matcher.match(num_leaves, bits)
            if found is None:
                continue
            cell, transform = found.cell, found.match
            bindings = _pin_bindings(found)
            pin_index = {name: i for i, name in enumerate(cell.input_names)}
            for assignment in range(1 << num_leaves):
                minterm = 0
                for j, (pin, negated) in enumerate(bindings):
                    value = ((assignment >> j) & 1) ^ negated
                    minterm |= value << pin_index[pin]
                value = (cell.function.bits >> minterm) & 1
                if transform.output_negated:
                    value ^= 1
                assert value == (bits >> assignment) & 1, (
                    f"{cell.name}: binding {bindings} does not reproduce "
                    f"table {bits:#x} at assignment {assignment}"
                )
            checked += 1
        assert checked > 20
