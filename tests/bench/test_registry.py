"""Tests for the Table-3 benchmark registry."""

import pytest

from repro.bench import BENCHMARKS, benchmark_by_name, build_benchmark
from repro.core.paper_data import PAPER_TABLE3


class TestRegistryShape:
    def test_fifteen_benchmarks_in_paper_order(self):
        assert len(BENCHMARKS) == 15
        assert [case.name for case in BENCHMARKS] == [row.name for row in PAPER_TABLE3]

    def test_function_classes_match_table3(self):
        for case in BENCHMARKS:
            paper = next(row for row in PAPER_TABLE3 if row.name == case.name)
            assert case.function == paper.function

    def test_paper_io_recorded(self):
        case = benchmark_by_name("C6288")
        assert (case.paper_inputs, case.paper_outputs) == (32, 32)

    def test_adders_are_exact(self):
        for name in ("add-16", "add-32", "add-64"):
            assert benchmark_by_name(name).exact

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark_by_name("c17")


class TestBuiltCircuits:
    def test_adder_io_matches_paper_exactly(self):
        for name, width in (("add-16", 16), ("add-32", 32), ("add-64", 64)):
            aig = build_benchmark(name)
            paper = next(row for row in PAPER_TABLE3 if row.name == name)
            assert aig.num_pis == paper.inputs
            assert aig.num_pos == paper.outputs
            assert aig.name == name

    @pytest.mark.parametrize("name", [case.name for case in BENCHMARKS])
    def test_every_benchmark_builds_nontrivial_logic(self, name):
        aig = build_benchmark(name)
        assert aig.num_ands > 50, f"{name} is too small to be meaningful"
        assert aig.num_pis > 0 and aig.num_pos > 0
        assert aig.depth() > 2

    def test_xor_rich_flags(self):
        assert benchmark_by_name("C6288").xor_rich
        assert benchmark_by_name("add-64").xor_rich
        assert not benchmark_by_name("i10").xor_rich

    def test_builds_are_deterministic(self):
        first = build_benchmark("i18")
        second = build_benchmark("i18")
        assert first.num_ands == second.num_ands
        assert first.depth() == second.depth()
