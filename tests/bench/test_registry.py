"""Tests for the Table-3 benchmark registry."""

import pytest

from repro.bench import BENCHMARKS, benchmark_by_name, build_benchmark
from repro.core.paper_data import PAPER_TABLE3


class TestRegistryShape:
    def test_fifteen_benchmarks_in_paper_order(self):
        assert len(BENCHMARKS) == 15
        assert [case.name for case in BENCHMARKS] == [row.name for row in PAPER_TABLE3]

    def test_function_classes_match_table3(self):
        for case in BENCHMARKS:
            paper = next(row for row in PAPER_TABLE3 if row.name == case.name)
            assert case.function == paper.function

    def test_paper_io_recorded(self):
        case = benchmark_by_name("C6288")
        assert (case.paper_inputs, case.paper_outputs) == (32, 32)

    def test_adders_are_exact(self):
        for name in ("add-16", "add-32", "add-64"):
            assert benchmark_by_name(name).exact

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark_by_name("c17")


class TestBuiltCircuits:
    def test_adder_io_matches_paper_exactly(self):
        for name, width in (("add-16", 16), ("add-32", 32), ("add-64", 64)):
            aig = build_benchmark(name)
            paper = next(row for row in PAPER_TABLE3 if row.name == name)
            assert aig.num_pis == paper.inputs
            assert aig.num_pos == paper.outputs
            assert aig.name == name

    @pytest.mark.parametrize("name", [case.name for case in BENCHMARKS])
    def test_every_benchmark_builds_nontrivial_logic(self, name):
        aig = build_benchmark(name)
        assert aig.num_ands > 50, f"{name} is too small to be meaningful"
        assert aig.num_pis > 0 and aig.num_pos > 0
        assert aig.depth() > 2

    def test_xor_rich_flags(self):
        assert benchmark_by_name("C6288").xor_rich
        assert benchmark_by_name("add-64").xor_rich
        assert not benchmark_by_name("i10").xor_rich

    def test_builds_are_deterministic(self):
        first = build_benchmark("i18")
        second = build_benchmark("i18")
        assert first.num_ands == second.num_ands
        assert first.depth() == second.depth()


class TestExtraBenchmarks:
    """Run-time registration of external circuits (runner --extra-benchmark)."""

    @pytest.fixture
    def blif_file(self, tmp_path):
        from repro.synthesis.blif import write_blif

        path = tmp_path / "user-circuit.blif"
        path.write_text(write_blif(build_benchmark("add-16")))
        return path

    def test_register_blif_benchmark(self, blif_file):
        from repro.bench import (
            all_benchmarks,
            register_blif_benchmark,
            unregister_benchmark,
        )
        from repro.logic.simulation import random_pattern_words

        try:
            case = register_blif_benchmark(blif_file)
            assert case.name == "user-circuit"
            assert case.paper_inputs == 33 and case.paper_outputs == 17
            assert benchmark_by_name("user-circuit") is case
            assert all_benchmarks()[-1] is case
            assert all_benchmarks()[: len(BENCHMARKS)] == BENCHMARKS
            # The registered generator rebuilds the same circuit.
            reference = build_benchmark("add-16")
            rebuilt = case.build()
            assert rebuilt.name == "user-circuit"
            patterns = random_pattern_words(reference.pi_names, num_words=2, seed=1)
            packed = {
                new: patterns[old]
                for new, old in zip(rebuilt.pi_names, reference.pi_names)
            }
            assert list(rebuilt.simulate_words(packed).values()) == list(
                reference.simulate_words(patterns).values()
            )
        finally:
            unregister_benchmark("user-circuit")
        with pytest.raises(KeyError):
            benchmark_by_name("user-circuit")

    def test_builtin_name_collision_rejected(self, blif_file):
        from repro.bench import register_blif_benchmark

        with pytest.raises(ValueError):
            register_blif_benchmark(blif_file, name="add-16")

    def test_duplicate_registration_needs_replace(self, blif_file):
        from repro.bench import register_blif_benchmark, unregister_benchmark

        try:
            register_blif_benchmark(blif_file, name="dup")
            with pytest.raises(ValueError):
                register_blif_benchmark(blif_file, name="dup")
            register_blif_benchmark(blif_file, name="dup", replace=True)
        finally:
            unregister_benchmark("dup")

    def test_malformed_file_fails_at_registration(self, tmp_path):
        from repro.bench import register_blif_benchmark
        from repro.synthesis.blif import BlifParseError

        bad = tmp_path / "bad.blif"
        bad.write_text(".model broken\n.subckt foo a=b\n.end\n")
        with pytest.raises(BlifParseError):
            register_blif_benchmark(bad)

    def test_registered_benchmark_flows_through_the_engine(self, blif_file):
        from repro.bench import register_blif_benchmark, unregister_benchmark
        from repro.core.families import LogicFamily
        from repro.experiments.engine import ExperimentEngine

        try:
            register_blif_benchmark(blif_file, name="engine-extra")
            engine = ExperimentEngine(jobs=1, use_cache=False)
            result = engine.run_table3(
                benchmark_names=("engine-extra",),
                families=(LogicFamily.TG_STATIC,),
            )
            (row,) = result.rows
            assert row.name == "engine-extra"
            assert row.paper is None
            assert row.results[LogicFamily.TG_STATIC].gates > 0
        finally:
            unregister_benchmark("engine-extra")
