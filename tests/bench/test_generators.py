"""Functional tests for the benchmark circuit generators."""

import random

import pytest

from repro.bench.generators import (
    alu_control_circuit,
    array_multiplier_circuit,
    dedicated_alu_circuit,
    des_round_circuit,
    hamming_circuit,
    random_control_logic_circuit,
    ripple_adder_circuit,
    symmetric_logic_circuit,
)


def _bus_value(outputs, prefix, width):
    return sum((1 << i) for i in range(width) if outputs[f"{prefix}[{i}]"])


def _bus_env(prefix, value, width):
    return {f"{prefix}[{i}]": bool((value >> i) & 1) for i in range(width)}


class TestAdders:
    def test_add16_io_counts_match_paper(self):
        aig = ripple_adder_circuit(16)
        assert aig.num_pis == 33  # 2 * 16 + carry-in
        assert aig.num_pos == 17  # 16 sum bits + carry-out

    @pytest.mark.parametrize("width", [4, 8])
    def test_adder_adds_exhaustive_corners(self, width):
        aig = ripple_adder_circuit(width)
        rng = random.Random(1)
        cases = [(0, 0, 0), ((1 << width) - 1, (1 << width) - 1, 1)] + [
            (rng.randrange(1 << width), rng.randrange(1 << width), rng.randint(0, 1))
            for _ in range(25)
        ]
        for a, b, cin in cases:
            env = {**_bus_env("a", a, width), **_bus_env("b", b, width), "cin": bool(cin)}
            out = aig.evaluate(env)
            value = _bus_value(out, "sum", width) + ((1 << width) if out["cout"] else 0)
            assert value == a + b + cin

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_adder_circuit(0)


class TestMultiplier:
    def test_small_multiplier_is_exact(self):
        width = 5
        aig = array_multiplier_circuit(width)
        rng = random.Random(2)
        cases = [(0, 0), ((1 << width) - 1, (1 << width) - 1)] + [
            (rng.randrange(1 << width), rng.randrange(1 << width)) for _ in range(30)
        ]
        for a, b in cases:
            env = {**_bus_env("a", a, width), **_bus_env("b", b, width)}
            out = aig.evaluate(env)
            assert _bus_value(out, "p", 2 * width) == a * b

    def test_c6288_class_size(self):
        aig = array_multiplier_circuit(12)
        # An N x N array multiplier needs on the order of N^2 full adders;
        # make sure the generated instance is in the thousand-gate class of
        # C6288 rather than a toy.
        assert aig.num_ands > 1000
        assert aig.num_pos == 24

    def test_width_validation(self):
        with pytest.raises(ValueError):
            array_multiplier_circuit(1)


class TestHamming:
    def test_no_error_gives_zero_syndrome_and_clean_data(self):
        aig = hamming_circuit(data_width=8)
        code_length = aig.num_pis
        env = {f"r[{i}]": False for i in range(code_length)}
        out = aig.evaluate(env)
        assert not out["error"]
        assert all(not out[f"d[{i}]"] for i in range(8))

    def test_single_error_is_corrected(self):
        data_width = 8
        aig = hamming_circuit(data_width=data_width)
        code_length = aig.num_pis

        # Build a valid code word for an arbitrary data pattern by first
        # extracting the parity equations from the circuit itself (syndrome of
        # a word with correct parity bits is zero); easier: start from the
        # all-zero code word (valid) and flip exactly one data position.
        data_positions = [p for p in range(1, code_length + 1) if (p & (p - 1)) != 0]
        flip_position = data_positions[3]
        env = {f"r[{i}]": (i == flip_position - 1) for i in range(code_length)}
        out = aig.evaluate(env)
        assert out["error"]
        # The corrected data bus must equal the original all-zero data word.
        assert all(not out[f"d[{i}]"] for i in range(data_width))

    def test_syndrome_only_variant(self):
        aig = hamming_circuit(data_width=16, corrected_output=False)
        assert not any(name.startswith("d[") for name in aig.po_names)
        assert "error" in aig.po_names

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming_circuit(data_width=2)


class TestAluAndControl:
    def test_alu_addition_and_flags(self):
        width = 8
        aig = alu_control_circuit(data_width=width, control_inputs=6, control_outputs=8, seed=7)
        a, b = 25, 17
        env = {
            **_bus_env("a", a, width),
            **_bus_env("b", b, width),
            **_bus_env("c", 0, width),
            **_bus_env("op", 0, 3),            # opcode 0 = add
            **{f"ctl[{i}]": False for i in range(6)},
        }
        out = aig.evaluate(env)
        assert _bus_value(out, "result", width) == (a + b) % (1 << width)
        assert out["zero"] is False
        assert out["parity"] == (bin((a + b) % (1 << width)).count("1") % 2 == 1)

    def test_alu_subtract_and_xor_ops(self):
        width = 8
        aig = alu_control_circuit(data_width=width, control_inputs=6, control_outputs=8, seed=7)
        a, b = 200, 13
        base = {
            **_bus_env("a", a, width),
            **_bus_env("b", b, width),
            **_bus_env("c", 0, width),
            **{f"ctl[{i}]": False for i in range(6)},
        }
        sub = aig.evaluate({**base, **_bus_env("op", 1, 3)})
        assert _bus_value(sub, "result", width) == (a - b) % (1 << width)
        xor = aig.evaluate({**base, **_bus_env("op", 4, 3)})
        assert _bus_value(xor, "result", width) == a ^ b

    def test_operand_mux_uses_c_when_selected(self):
        width = 6
        aig = alu_control_circuit(data_width=width, control_inputs=4, control_outputs=4, seed=3)
        a, b, c = 10, 21, 33 % (1 << width)
        env = {
            **_bus_env("a", a, width),
            **_bus_env("b", b, width),
            **_bus_env("c", c, width),
            **_bus_env("op", 0, 3),
            **{f"ctl[{i}]": (i == 0) for i in range(4)},
        }
        out = aig.evaluate(env)
        assert _bus_value(out, "result", width) == (a + c) % (1 << width)

    def test_dedicated_alu_modes(self):
        width = 8
        aig = dedicated_alu_circuit(data_width=width, seed=5)
        a, b = 90, 60
        base = {
            **_bus_env("a", a, width),
            **_bus_env("b", b, width),
            **{f"en[{i}]": True for i in range(width // 2)},
        }
        add = aig.evaluate({**base, **_bus_env("mode", 0, 4)})
        assert _bus_value(add, "y", width) == (a + b) % (1 << width)
        sub = aig.evaluate({**base, **_bus_env("mode", 1, 4)})
        assert _bus_value(sub, "y", width) == (a - b) % (1 << width)
        xor = aig.evaluate({**base, **_bus_env("mode", 2, 4)})
        assert _bus_value(xor, "y", width) == a ^ b

    def test_control_logic_is_deterministic(self):
        first = alu_control_circuit(data_width=8, seed=99)
        second = alu_control_circuit(data_width=8, seed=99)
        assert first.num_ands == second.num_ands

    def test_validation(self):
        with pytest.raises(ValueError):
            alu_control_circuit(data_width=1)


class TestDesAndMisc:
    def test_des_round_structure(self):
        aig = des_round_circuit(block_width=16, rounds=1, seed=4)
        assert aig.num_pos == 16
        # one key input bus of 12 bits (expanded half = 12) plus 16 plaintext bits
        assert aig.num_pis == 16 + 12

    def test_des_feistel_swap_property(self):
        # With an all-zero key and all-zero right half, the new right half is
        # left XOR f(0); evaluating twice with different left halves must
        # differ exactly in the positions where the left halves differ.
        aig = des_round_circuit(block_width=16, rounds=1, seed=4)
        half = 8
        key_bits = {name: False for name in aig.pi_names if name.startswith("k0")}

        def run(left_value):
            env = {f"pt[{i}]": bool((left_value >> i) & 1) for i in range(half)}
            env.update({f"pt[{i + half}]": False for i in range(half)})
            env.update(key_bits)
            return aig.evaluate(env)

        out_a = run(0b10110010)
        out_b = run(0b10110011)
        diff = [
            i for i in range(half)
            if out_a[f"ct[{i + half}]"] != out_b[f"ct[{i + half}]"]
        ]
        assert diff == [0]

    def test_des_determinism_and_validation(self):
        assert des_round_circuit(16, 1, seed=4).num_ands == des_round_circuit(16, 1, seed=4).num_ands
        with pytest.raises(ValueError):
            des_round_circuit(block_width=10)
        with pytest.raises(ValueError):
            des_round_circuit(block_width=16, rounds=0)

    def test_random_control_logic_shape(self):
        aig = random_control_logic_circuit(num_inputs=24, num_outputs=12, levels=4, seed=1)
        assert aig.num_pis == 24
        assert aig.num_pos == 12
        assert aig.num_ands > 50
        again = random_control_logic_circuit(num_inputs=24, num_outputs=12, levels=4, seed=1)
        assert again.num_ands == aig.num_ands

    def test_symmetric_circuit_is_symmetric_and_correct(self):
        aig = symmetric_logic_circuit(num_inputs=8, thresholds=(2, 5))
        for value in range(256):
            env = {f"x[{i}]": bool((value >> i) & 1) for i in range(8)}
            expected = 2 <= bin(value).count("1") < 5
            assert aig.evaluate(env)["y"] == expected

    def test_validation_misc(self):
        with pytest.raises(ValueError):
            random_control_logic_circuit(num_inputs=2)
        with pytest.raises(ValueError):
            symmetric_logic_circuit(num_inputs=2)
