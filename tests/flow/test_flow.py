"""Tests for the pass-based synthesis flow framework."""

import pytest

from repro.flow import (
    FlowSpec,
    FunctionPass,
    available_flows,
    available_passes,
    flow_pass,
    get_flow,
    get_pass,
    register_flow,
    register_pass,
    run_flow,
)
from repro.logic.simulation import random_pattern_words
from repro.synthesis import CircuitBuilder, optimize
from repro.synthesis.optimize import balance, rewrite


def _adder(width=6, name="adder"):
    builder = CircuitBuilder(name)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_adder(a, b)
    builder.output_bus("s", total)
    builder.output("cout", carry)
    return builder.finish()


def _equivalent(a, b, seed=5):
    patterns = random_pattern_words(a.pi_names, num_words=4, seed=seed)
    return a.simulate_words(patterns) == b.simulate_words(patterns)


def _shape(aig):
    return (
        aig.num_ands,
        aig.depth(),
        [(node, aig.fanins(node)) for node in aig.and_nodes()],
        tuple(aig.po_literals),
    )


class TestRegistries:
    def test_builtin_flows_registered(self):
        assert {"none", "quick", "resyn2rs", "deep"} <= set(available_flows())

    def test_builtin_passes_registered(self):
        assert {"balance", "rewrite", "rewrite3", "rewrite5"} <= set(available_passes())

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(KeyError, match="resyn2rs"):
            get_flow("not-a-flow")
        with pytest.raises(KeyError, match="balance"):
            get_pass("not-a-pass")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_pass(FunctionPass("balance", balance))
        with pytest.raises(ValueError):
            register_flow(FlowSpec(name="quick"))

    def test_flow_with_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            register_flow(FlowSpec(name="broken-test-flow", prologue=("no-such-pass",)))

    def test_custom_pass_and_flow(self):
        @flow_pass("double-rewrite-test", "rewrite twice (test-only)", replace=True)
        def double_rewrite(aig):
            return rewrite(rewrite(aig))

        spec = register_flow(
            FlowSpec(
                name="custom-test-flow",
                description="test-only",
                prologue=("balance", "double-rewrite-test"),
            ),
            replace=True,
        )
        aig = _adder(4, "adder4")
        result = spec.run(aig)
        assert _equivalent(aig, result.aig)
        assert [p.name for p in result.passes] == ["balance", "double-rewrite-test"]


class TestFlowExecution:
    def test_resyn2rs_reproduces_optimize_exactly(self):
        aig = _adder(8, "adder8")
        via_flow = run_flow("resyn2rs", aig).aig
        via_optimize = optimize(aig)
        assert _shape(via_flow) == _shape(via_optimize)

    def test_resyn2rs_matches_hand_rolled_driver(self):
        # The flow driver must replicate the historical optimize() loop
        # structure bit for bit (balance; rounds of rewrite+balance; keep
        # best; prefer the input when it was already smaller).
        aig = _adder(8, "adder8b")
        current = balance(aig)
        best = current
        for _ in range(3):
            before = current.num_ands
            current = balance(rewrite(current))
            if (current.num_ands, current.depth()) < (best.num_ands, best.depth()):
                best = current
            if current.num_ands >= before:
                break
        if (aig.num_ands, aig.depth()) < (best.num_ands, best.depth()):
            best = aig
        assert _shape(run_flow("resyn2rs", aig).aig) == _shape(best)

    @pytest.mark.parametrize("flow", ("none", "quick", "resyn2rs", "deep"))
    def test_every_flow_preserves_function(self, flow):
        aig = _adder(6, f"adder-{flow}")
        result = run_flow(flow, aig)
        assert _equivalent(aig, result.aig)

    @pytest.mark.parametrize("flow", ("quick", "resyn2rs", "deep"))
    def test_flows_never_worse_than_input(self, flow):
        aig = _adder(6, f"adder-m-{flow}")
        result = run_flow(flow, aig)
        assert (result.aig.num_ands, result.aig.depth()) <= (aig.num_ands, aig.depth())

    def test_none_flow_is_identity(self):
        aig = _adder(3, "adder3")
        result = run_flow("none", aig)
        assert result.aig is aig
        assert result.passes == []

    def test_run_flow_accepts_spec_instances(self):
        aig = _adder(3, "adder3s")
        spec = FlowSpec(name="inline", prologue=("balance",))
        assert _equivalent(aig, run_flow(spec, aig).aig)

    def test_negative_max_rounds_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec(name="bad", max_rounds=-1)


class TestTelemetry:
    def test_per_pass_node_and_depth_accounting(self):
        aig = _adder(8, "adder8t")
        result = run_flow("resyn2rs", aig)
        assert result.passes, "resyn2rs must execute at least the balance prologue"
        assert result.passes[0].name == "balance"
        assert result.passes[0].nodes_before == aig.num_ands
        assert result.passes[0].depth_before == aig.depth()
        for before, after in zip(result.passes, result.passes[1:]):
            assert after.nodes_before == before.nodes_after
            assert after.depth_before == before.depth_after
        assert all(p.seconds >= 0 for p in result.passes)
        assert result.seconds == pytest.approx(sum(p.seconds for p in result.passes))
        assert len(result.telemetry_lines()) == len(result.passes)

    def test_fingerprint_identifies_behaviour(self):
        resyn = get_flow("resyn2rs")
        quick = get_flow("quick")
        assert resyn.fingerprint() != quick.fingerprint()
        from dataclasses import replace

        tweaked = replace(resyn, max_rounds=5)
        assert tweaked.fingerprint() != resyn.fingerprint()

    def test_pass_names_in_first_use_order(self):
        assert get_flow("resyn2rs").pass_names() == ("balance", "rewrite")
        assert get_flow("deep").pass_names() == ("balance", "rewrite", "rewrite3")


class TestMappingPass:
    """Technology mapping as a flow pass (repro.flow.mapping)."""

    def test_default_map_pass_registered(self):
        assert "map" in available_passes()

    def test_map_pass_records_result_and_preserves_the_network(self):
        aig = _adder(width=5, name="map-flow")
        spec = FlowSpec(
            name="test-map-inline",
            prologue=("balance",),
            round_passes=("rewrite", "balance", "map"),
            max_rounds=2,
        )
        register_flow(spec, replace=True)
        result = run_flow("test-map-inline", aig)
        assert result.mapped is not None
        assert result.mapped.gate_count > 0
        assert result.mapped.library_name == "cntfet-tg-static"
        # Mapping is an observation: the flow's AIG is still equivalent.
        assert _equivalent(aig, result.aig)
        assert any(p.name == "map" for p in result.passes)

    def test_map_pass_output_is_equivalent_to_its_subject(self):
        # With the map pass as the only pass, the mapped netlist's node ids
        # refer to the unmodified input AIG, so it can be formally verified
        # against it.
        from repro.synthesis.mapper import verify_mapping

        aig = _adder(width=5, name="map-verify")
        register_flow(FlowSpec(name="test-map-only", prologue=("map",)),
                      replace=True)
        result = run_flow("test-map-only", aig)
        patterns = random_pattern_words(aig.pi_names, num_words=2, seed=9)
        assert verify_mapping(result.mapped, aig, patterns)

    def test_flow_without_map_pass_has_no_mapping(self):
        result = run_flow("quick", _adder(width=4, name="no-map"))
        assert result.mapped is None

    def test_configured_mapping_pass(self):
        from repro.core.families import LogicFamily
        from repro.flow import mapping_pass

        try:
            mapping_pass(
                "test-map-pseudo-area",
                family=LogicFamily.TG_PSEUDO,
                objective="area",
                rounds=2,
            )
        except ValueError:
            pass  # already registered by a previous test run in-process
        register_flow(
            FlowSpec(
                name="test-map-pseudo",
                prologue=("balance", "test-map-pseudo-area"),
            ),
            replace=True,
        )
        result = run_flow("test-map-pseudo", _adder(width=4, name="cfg"))
        assert result.mapped.library_name == "cntfet-tg-pseudo"

    def test_stale_mapping_does_not_leak_between_runs(self):
        from repro.flow import get_pass

        aig = _adder(width=4, name="stale")
        register_flow(
            FlowSpec(name="test-map-once", prologue=("map",)), replace=True
        )
        first = run_flow("test-map-once", aig)
        assert first.mapped is not None
        # A later flow NOT containing a map pass must not inherit the result.
        second = run_flow("quick", aig)
        assert second.mapped is None
