"""Tests for the pass-based synthesis flow framework."""

import pytest

from repro.flow import (
    FlowSpec,
    FunctionPass,
    available_flows,
    available_passes,
    flow_pass,
    get_flow,
    get_pass,
    register_flow,
    register_pass,
    run_flow,
)
from repro.logic.simulation import random_pattern_words
from repro.synthesis import CircuitBuilder, optimize
from repro.synthesis.optimize import balance, rewrite


def _adder(width=6, name="adder"):
    builder = CircuitBuilder(name)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_adder(a, b)
    builder.output_bus("s", total)
    builder.output("cout", carry)
    return builder.finish()


def _equivalent(a, b, seed=5):
    patterns = random_pattern_words(a.pi_names, num_words=4, seed=seed)
    return a.simulate_words(patterns) == b.simulate_words(patterns)


def _shape(aig):
    return (
        aig.num_ands,
        aig.depth(),
        [(node, aig.fanins(node)) for node in aig.and_nodes()],
        tuple(aig.po_literals),
    )


class TestRegistries:
    def test_builtin_flows_registered(self):
        assert {"none", "quick", "resyn2rs", "deep"} <= set(available_flows())

    def test_builtin_passes_registered(self):
        assert {"balance", "rewrite", "rewrite3", "rewrite5"} <= set(available_passes())

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(KeyError, match="resyn2rs"):
            get_flow("not-a-flow")
        with pytest.raises(KeyError, match="balance"):
            get_pass("not-a-pass")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_pass(FunctionPass("balance", balance))
        with pytest.raises(ValueError):
            register_flow(FlowSpec(name="quick"))

    def test_flow_with_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            register_flow(FlowSpec(name="broken-test-flow", prologue=("no-such-pass",)))

    def test_custom_pass_and_flow(self):
        @flow_pass("double-rewrite-test", "rewrite twice (test-only)", replace=True)
        def double_rewrite(aig):
            return rewrite(rewrite(aig))

        spec = register_flow(
            FlowSpec(
                name="custom-test-flow",
                description="test-only",
                prologue=("balance", "double-rewrite-test"),
            ),
            replace=True,
        )
        aig = _adder(4, "adder4")
        result = spec.run(aig)
        assert _equivalent(aig, result.aig)
        assert [p.name for p in result.passes] == ["balance", "double-rewrite-test"]


class TestFlowExecution:
    def test_resyn2rs_reproduces_optimize_exactly(self):
        aig = _adder(8, "adder8")
        via_flow = run_flow("resyn2rs", aig).aig
        via_optimize = optimize(aig)
        assert _shape(via_flow) == _shape(via_optimize)

    def test_resyn2rs_matches_hand_rolled_driver(self):
        # The flow driver must replicate the historical optimize() loop
        # structure bit for bit (balance; rounds of rewrite+balance; keep
        # best; prefer the input when it was already smaller).
        aig = _adder(8, "adder8b")
        current = balance(aig)
        best = current
        for _ in range(3):
            before = current.num_ands
            current = balance(rewrite(current))
            if (current.num_ands, current.depth()) < (best.num_ands, best.depth()):
                best = current
            if current.num_ands >= before:
                break
        if (aig.num_ands, aig.depth()) < (best.num_ands, best.depth()):
            best = aig
        assert _shape(run_flow("resyn2rs", aig).aig) == _shape(best)

    @pytest.mark.parametrize("flow", ("none", "quick", "resyn2rs", "deep"))
    def test_every_flow_preserves_function(self, flow):
        aig = _adder(6, f"adder-{flow}")
        result = run_flow(flow, aig)
        assert _equivalent(aig, result.aig)

    @pytest.mark.parametrize("flow", ("quick", "resyn2rs", "deep"))
    def test_flows_never_worse_than_input(self, flow):
        aig = _adder(6, f"adder-m-{flow}")
        result = run_flow(flow, aig)
        assert (result.aig.num_ands, result.aig.depth()) <= (aig.num_ands, aig.depth())

    def test_none_flow_is_identity(self):
        aig = _adder(3, "adder3")
        result = run_flow("none", aig)
        assert result.aig is aig
        assert result.passes == []

    def test_run_flow_accepts_spec_instances(self):
        aig = _adder(3, "adder3s")
        spec = FlowSpec(name="inline", prologue=("balance",))
        assert _equivalent(aig, run_flow(spec, aig).aig)

    def test_negative_max_rounds_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec(name="bad", max_rounds=-1)


class TestTelemetry:
    def test_per_pass_node_and_depth_accounting(self):
        aig = _adder(8, "adder8t")
        result = run_flow("resyn2rs", aig)
        assert result.passes, "resyn2rs must execute at least the balance prologue"
        assert result.passes[0].name == "balance"
        assert result.passes[0].nodes_before == aig.num_ands
        assert result.passes[0].depth_before == aig.depth()
        for before, after in zip(result.passes, result.passes[1:]):
            assert after.nodes_before == before.nodes_after
            assert after.depth_before == before.depth_after
        assert all(p.seconds >= 0 for p in result.passes)
        assert result.seconds == pytest.approx(sum(p.seconds for p in result.passes))
        assert len(result.telemetry_lines()) == len(result.passes)

    def test_fingerprint_identifies_behaviour(self):
        resyn = get_flow("resyn2rs")
        quick = get_flow("quick")
        assert resyn.fingerprint() != quick.fingerprint()
        from dataclasses import replace

        tweaked = replace(resyn, max_rounds=5)
        assert tweaked.fingerprint() != resyn.fingerprint()

    def test_pass_names_in_first_use_order(self):
        assert get_flow("resyn2rs").pass_names() == ("balance", "rewrite")
        assert get_flow("deep").pass_names() == ("balance", "rewrite", "rewrite3")
