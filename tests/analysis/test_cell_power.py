"""Cell power characterization: switched capacitances and static currents."""

import pytest

from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.circuits.sizing import PSEUDO_LOAD_WIDTH, PSEUDO_PULL_DOWN_TARGET

SAMPLE_FUNCTIONS = ("F00", "F12", "F20")
PSEUDO_FAMILIES = (LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO)
STATIC_FAMILIES = (LogicFamily.TG_STATIC, LogicFamily.PASS_STATIC, LogicFamily.CMOS)


def _sample_cells(family):
    wanted = SAMPLE_FUNCTIONS
    if family is LogicFamily.CMOS:
        wanted = ("F00", "F12")  # F20 needs ambipolar XOR switches
    return build_library(family, function_ids=wanted).cells


@pytest.mark.parametrize("family", list(LogicFamily), ids=lambda f: f.value)
def test_capacitances_are_positive_and_consistent_with_delay(family):
    for cell in _sample_cells(family):
        report = cell.power
        assert report.output_capacitance > 0
        assert report.switched_capacitance >= report.output_capacitance
        # Same normalization as the delay model: the output node parasitics
        # are exactly the characterized parasitic delay contribution.
        assert report.output_capacitance == pytest.approx(
            cell.delay.parasitic_output
        )
        assert set(report.signal_capacitance) == set(cell.input_names)
        for name in cell.input_names:
            assert report.pin_capacitance(name) > 0
            assert report.pin_capacitance(name, negated=True) > 0
        # Per-literal capacitances agree with the delay model's logical
        # efforts (both are netlist.signal_capacitance / c_unit).
        for literal, effort in cell.delay.logical_effort.items():
            assert report.literal_capacitance[literal] == pytest.approx(effort)


@pytest.mark.parametrize("family", PSEUDO_FAMILIES, ids=lambda f: f.value)
def test_pseudo_cells_draw_static_current(family):
    load_resistance = 1.0 / PSEUDO_LOAD_WIDTH
    for cell in _sample_cells(family):
        report = cell.power
        assert report.is_pseudo
        assert report.static_current_low > 0
        assert 0 < report.low_state_fraction < 1
        assert report.static_current_average == pytest.approx(
            report.static_current_low * report.low_state_fraction
        )
        # The load resistance alone bounds the standing current from above.
        assert report.static_current_low < 1.0 / load_resistance


def test_pseudo_inverter_static_current_is_exact():
    # F00 pseudo: a single 4/3-wide pull-down (target resistance 3/4) in
    # series with the 1/3-wide load (resistance 3) whenever the input is
    # high, so I = 1 / (3 + 3/4) on exactly half of the states.
    cell = build_library(LogicFamily.TG_PSEUDO, function_ids=("F00",)).cells[0]
    report = cell.power
    expected = 1.0 / (1.0 / PSEUDO_LOAD_WIDTH + PSEUDO_PULL_DOWN_TARGET)
    assert report.static_current_low == pytest.approx(expected)
    assert report.low_state_fraction == pytest.approx(0.5)
    assert report.static_power(0.5) == pytest.approx(expected / 2)


@pytest.mark.parametrize("family", STATIC_FAMILIES, ids=lambda f: f.value)
def test_static_families_draw_no_static_current(family):
    for cell in _sample_cells(family):
        report = cell.power
        assert not report.is_pseudo
        assert report.static_current_low == 0.0
        assert report.static_current_average == 0.0
        assert report.static_power(1.0) == 0.0


def test_power_report_is_cached_on_the_cell():
    cell = build_library(LogicFamily.TG_STATIC, function_ids=("F00",)).cells[0]
    assert cell.power is cell.power
