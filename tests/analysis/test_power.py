"""Netlist power analysis and the power mapping objective."""

import functools

import pytest

from repro.analysis.activity import compute_activities
from repro.analysis.power import analyze_power
from repro.bench.registry import BENCHMARKS, benchmark_by_name
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.experiments.table3 import TABLE3_FAMILIES
from repro.logic.simulation import random_pattern_words
from repro.synthesis.mapper import technology_map, verify_mapping
from repro.synthesis.matcher import matcher_for
from repro.synthesis.optimize import optimize

PSEUDO = (LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO)
FAST_SUBSET = ("add-16", "t481", "C1355")


@functools.lru_cache(maxsize=None)
def _optimized_aig(name):
    return optimize(benchmark_by_name(name).build())


def _mapped(name, family, objective="delay", activities=None):
    aig = _optimized_aig(name)
    library = build_library(family)
    mapped = technology_map(
        aig,
        library,
        matcher=matcher_for(library),
        objective=objective,
        activities=activities,
    )
    return aig, library, mapped


class TestNetlistPower:
    @pytest.mark.parametrize("family", list(LogicFamily), ids=lambda f: f.value)
    def test_dynamic_positive_static_iff_pseudo(self, family):
        aig, library, mapped = _mapped("add-16", family)
        report = analyze_power(mapped, aig, library)
        assert report.dynamic > 0
        assert report.input_dynamic > 0
        assert report.total == pytest.approx(
            report.dynamic + report.input_dynamic + report.static
        )
        if family in PSEUDO:
            assert report.static > 0
        else:
            assert report.static == 0.0
        # Per-gate breakdown sums to the totals.
        assert sum(g.dynamic for g in report.gates) == pytest.approx(report.dynamic)
        assert sum(g.static for g in report.gates) == pytest.approx(report.static)

    def test_power_is_deterministic_per_seed(self):
        aig, library, mapped = _mapped("C2670", LogicFamily.TG_PSEUDO)
        first = analyze_power(mapped, aig, library, vectors=32, seed=3)
        second = analyze_power(mapped, aig, library, vectors=32, seed=3)
        assert first == second
        other = analyze_power(mapped, aig, library, vectors=32, seed=4)
        assert first.dynamic != other.dynamic

    def test_shared_activities_short_circuit_recomputation(self):
        aig = optimize(benchmark_by_name("t481").build())
        activities = compute_activities(aig)
        library = build_library(LogicFamily.TG_STATIC)
        mapped = technology_map(aig, library, matcher=matcher_for(library))
        with_shared = analyze_power(mapped, aig, library, activities)
        recomputed = analyze_power(mapped, aig, library)
        assert with_shared == recomputed

    def test_cmos_burns_more_dynamic_than_tg_static(self):
        # The paper's area story implies a capacitance story: the CMOS
        # mapping switches substantially more capacitance.
        aig = optimize(benchmark_by_name("add-16").build())
        activities = compute_activities(aig)
        results = {}
        for family in (LogicFamily.TG_STATIC, LogicFamily.CMOS):
            library = build_library(family)
            mapped = technology_map(aig, library, matcher=matcher_for(library))
            results[family] = analyze_power(mapped, aig, library, activities)
        assert (
            results[LogicFamily.CMOS].dynamic
            > results[LogicFamily.TG_STATIC].dynamic
        )


class TestPowerObjective:
    @pytest.mark.parametrize("family", TABLE3_FAMILIES, ids=lambda f: f.value)
    def test_power_mapping_is_correct_and_deterministic(self, family):
        aig = optimize(benchmark_by_name("t481").build())
        library = build_library(family)
        activities = compute_activities(aig)
        first = technology_map(
            aig, library, matcher=matcher_for(library),
            objective="power", activities=activities,
        )
        second = technology_map(
            aig, library, matcher=matcher_for(library),
            objective="power", activities=activities,
        )
        assert [g.cell_name for g in first.gates] == [
            g.cell_name for g in second.gates
        ]
        patterns = random_pattern_words(aig.pi_names, num_words=2, seed=17)
        assert verify_mapping(first, aig, patterns)

    def test_power_mapping_does_not_exceed_delay_mapping_power(self):
        aig = optimize(benchmark_by_name("add-16").build())
        library = build_library(LogicFamily.TG_PSEUDO)
        activities = compute_activities(aig)
        by_objective = {}
        for objective in ("delay", "power"):
            mapped = technology_map(
                aig, library, matcher=matcher_for(library),
                objective=objective, activities=activities,
            )
            by_objective[objective] = analyze_power(
                mapped, aig, library, activities
            )
        assert by_objective["power"].total <= by_objective["delay"].total


@pytest.mark.parametrize("name", FAST_SUBSET)
@pytest.mark.parametrize("family", TABLE3_FAMILIES, ids=lambda f: f.value)
def test_power_reported_for_table3_pairs_fast_subset(name, family):
    _assert_pair_reports_power(name, family)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", tuple(c.name for c in BENCHMARKS if c.name not in FAST_SUBSET)
)
@pytest.mark.parametrize("family", TABLE3_FAMILIES, ids=lambda f: f.value)
def test_power_reported_for_table3_pairs_full_sweep(name, family):
    _assert_pair_reports_power(name, family)


def _assert_pair_reports_power(name, family):
    """Acceptance: dynamic + static power for every Table-3 pair, static
    power nonzero exactly for the pseudo families."""
    aig, library, mapped = _mapped(name, family)
    report = analyze_power(mapped, aig, library)
    assert report.dynamic > 0
    if family in PSEUDO:
        assert report.static > 0
    else:
        assert report.static == 0.0
