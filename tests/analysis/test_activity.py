"""Signal probability / switching activity engine.

The hypothesis property pins the word-parallel exact enumeration against the
one-assignment-at-a-time reference on random cones of up to 10 inputs; the
Monte-Carlo estimator must converge to the exact probabilities within a
statistical tolerance on a mid-size benchmark and be bit-for-bit
reproducible under a fixed seed.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.activity import (
    compute_activities,
    exact_activities,
    exact_activities_reference,
    exact_pi_words,
    monte_carlo_activities,
)
from repro.bench.registry import benchmark_by_name
from repro.synthesis.aig import Aig


def _random_aig(seed: int, num_inputs: int, num_nodes: int) -> Aig:
    """A random, deterministic AIG used as a property-test subject."""
    rng = random.Random(seed)
    aig = Aig(f"rand-{seed}")
    literals = [aig.add_pi(f"x{i}") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.and_gate(a, b))
    for i, literal in enumerate(literals[-max(2, num_inputs // 2):]):
        aig.add_po(f"y{i}", literal ^ rng.randint(0, 1))
    return aig


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=1, max_value=10),
    num_nodes=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=25, deadline=None)
def test_exact_word_parallel_matches_brute_force(seed, num_inputs, num_nodes):
    aig = _random_aig(seed, num_inputs, num_nodes)
    fast = exact_activities(aig)
    reference = exact_activities_reference(aig)
    assert fast.patterns == reference.patterns == (1 << num_inputs)
    assert np.array_equal(fast.probability, reference.probability)
    assert np.array_equal(fast.activity, reference.activity)


def test_exact_pi_words_enumerate_all_minterms():
    words, total, tail_mask = exact_pi_words(8)
    assert total == 256 and words.shape == (8, 4) and tail_mask == (1 << 64) - 1
    # Reassemble every minterm from the packed columns.
    for minterm in (0, 1, 85, 170, 255):
        word, bit = divmod(minterm, 64)
        value = sum(
            ((int(words[i, word]) >> bit) & 1) << i for i in range(8)
        )
        assert value == minterm


def test_probabilities_of_known_gates():
    aig = Aig("known")
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    and_lit = aig.and_gate(a, b)
    xor_lit = aig.xor_gate(a, b)
    aig.add_po("and", and_lit)
    aig.add_po("xor", xor_lit)
    report = exact_activities(aig)
    assert report.node_probability(a >> 1) == pytest.approx(0.5)
    assert report.node_probability(and_lit >> 1) == pytest.approx(0.25)
    assert report.node_activity(and_lit >> 1) == pytest.approx(2 * 0.25 * 0.75)
    assert report.literal_probability(and_lit ^ 1) == pytest.approx(0.75)
    # The XOR output literal is complemented in AIG encoding; its literal
    # probability must still be 1/2.
    assert report.literal_probability(xor_lit) == pytest.approx(0.5)


def test_exact_guard_rejects_wide_inputs():
    aig = _random_aig(7, 10, 5)
    with pytest.raises(ValueError):
        exact_activities(aig, exact_limit=8)


def test_compute_activities_switches_method_on_input_count():
    small = _random_aig(3, 6, 20)
    assert compute_activities(small).method == "exact"
    wide = _random_aig(4, 14, 20)
    report = compute_activities(wide, exact_limit=12, vectors=8, seed=5)
    assert report.method == "monte-carlo"
    assert report.patterns == 8 * 64
    assert report.seed == 5


def test_monte_carlo_is_deterministic_per_seed():
    aig = benchmark_by_name("t481").build()
    first = monte_carlo_activities(aig, vectors=64, seed=11)
    second = monte_carlo_activities(aig, vectors=64, seed=11)
    assert np.array_equal(first.probability, second.probability)
    other = monte_carlo_activities(aig, vectors=64, seed=12)
    assert not np.array_equal(first.probability, other.probability)


def test_monte_carlo_converges_on_mid_size_benchmark():
    # t481 has 16 inputs: small enough to enumerate exactly (65536 patterns)
    # and large enough that the Monte-Carlo path is the default.  At 512
    # words (32768 samples) the worst per-node error of a binomial estimate
    # stays well under 0.02 with this fixed seed.
    aig = benchmark_by_name("t481").build()
    exact = exact_activities(aig, exact_limit=16)
    estimate = monte_carlo_activities(aig, vectors=512, seed=2009)
    worst = float(np.abs(exact.probability - estimate.probability).max())
    assert worst < 0.02, f"Monte-Carlo error {worst:.4f} out of tolerance"
    assert float(np.abs(exact.activity - estimate.activity).max()) < 0.02
