"""Timing report and the topological-order regression of ``_compute_timing``.

The shuffled-id netlist reproduces the latent bug the analysis subsystem
fixed: the historical timing/resimulation loops walked gates in ascending
output id, silently miscomputing arrival times whenever node ids were not
topologically ordered (possible after cleanup/rewrite of the subject graph).
"""

import pytest

from repro.bench.registry import benchmark_by_name
from repro.core.families import LogicFamily
from repro.core.library import build_library
from repro.analysis.timing import compute_timing, gate_delay
from repro.synthesis.mapper import (
    MappedCircuit,
    MappedGate,
    technology_map,
    topological_gates,
)
from repro.synthesis.matcher import matcher_for
from repro.synthesis.optimize import optimize


def _gate(output, leaves, parasitic=1.0, effort=0.5):
    return MappedGate(
        output=output,
        cell_name="F00_test",
        function_id="F00",
        leaves=tuple(leaves),
        table=1,
        area=2.0,
        intrinsic_delay=parasitic + 4 * effort,
        parasitic_delay=parasitic,
        effort_delay=effort,
    )


def _shuffled_circuit():
    """A three-gate chain whose output ids are NOT in topological order.

    Net 9 is driven by the first gate (from PIs 1 and 2), net 3 consumes net
    9 and net 5 consumes net 3 -- sorting by output id (3, 5, 9) visits the
    consumers before their driver.
    """
    gates = [
        _gate(9, (1, 2)),
        _gate(3, (9, 1)),
        _gate(5, (3, 2)),
    ]
    return MappedCircuit(
        name="shuffled",
        library_name="test",
        tau_ps=1.0,
        gates=gates,
        primary_inputs=("a", "b"),
        primary_outputs=("y",),
        po_nodes=(5,),
    )


class TestTopologicalOrder:
    def test_orders_shuffled_ids_by_dependency(self):
        order = [gate.output for gate in topological_gates(_shuffled_circuit().gates)]
        assert order == [9, 3, 5]

    def test_rejects_combinational_cycles(self):
        with pytest.raises(ValueError, match="cycle"):
            topological_gates([_gate(3, (5,)), _gate(5, (3,))])
        with pytest.raises(ValueError, match="cycle"):
            topological_gates([_gate(3, (3,))])
        # A diamond (shared leaf reached through two parents) is NOT a cycle.
        diamond = [_gate(2, (1,)), _gate(3, (2,)), _gate(4, (2,)), _gate(5, (3, 4))]
        assert [g.output for g in topological_gates(diamond)] == [2, 3, 4, 5]

    def test_preserves_ascending_order_when_already_topological(self):
        aig = optimize(benchmark_by_name("add-16").build())
        library = build_library(LogicFamily.TG_STATIC)
        mapped = technology_map(aig, library, matcher=matcher_for(library))
        order = [gate.output for gate in topological_gates(mapped.gates)]
        assert order == sorted(order)


class TestShuffledIdRegression:
    def test_arrival_times_follow_dependencies_not_ids(self):
        mapped = _shuffled_circuit()
        report = compute_timing(mapped)
        # Every gate drives exactly one load here (the chain or the PO).
        delay = gate_delay(mapped.gates[0], 1)
        assert report.arrival[9] == pytest.approx(delay)
        assert report.arrival[3] == pytest.approx(2 * delay)
        assert report.arrival[5] == pytest.approx(3 * delay)
        assert report.normalized_delay == pytest.approx(3 * delay)
        assert report.levels == 3

    def test_mapper_records_correct_delay_for_shuffled_ids(self):
        # The historical sorted-by-id walk would report a depth-1 arrival
        # for net 3 (its driver net 9 not yet computed => treated as 0).
        mapped = _shuffled_circuit()
        report = compute_timing(mapped)
        broken_arrival = gate_delay(mapped.gates[0], 1)  # what the bug gave
        assert report.normalized_delay > 2 * broken_arrival


class TestTimingReport:
    @pytest.fixture(scope="class")
    def mapped(self):
        aig = optimize(benchmark_by_name("add-16").build())
        library = build_library(LogicFamily.TG_STATIC)
        return technology_map(aig, library, matcher=matcher_for(library))

    def test_matches_mapper_recorded_figures(self, mapped):
        report = compute_timing(mapped)
        assert report.normalized_delay == pytest.approx(mapped.normalized_delay)
        assert report.levels == mapped.levels

    def test_slack_is_nonnegative_and_zero_on_critical_path(self, mapped):
        report = compute_timing(mapped)
        assert report.worst_slack() >= -1e-9
        assert report.critical_path, "critical path must not be empty"
        for node in report.critical_path:
            assert report.slack[node] == pytest.approx(0.0, abs=1e-9)
        # The critical path ends at a worst-arrival primary output driver.
        assert report.arrival[report.critical_path[-1]] == pytest.approx(
            report.normalized_delay
        )

    def test_required_is_arrival_plus_slack(self, mapped):
        report = compute_timing(mapped)
        for node, slack in report.slack.items():
            assert report.required[node] == pytest.approx(
                report.arrival[node] + slack
            )

    def test_critical_path_is_a_connected_gate_chain(self, mapped):
        report = compute_timing(mapped)
        by_output = {gate.output: gate for gate in mapped.gates}
        path = report.critical_path
        for upstream, downstream in zip(path, path[1:]):
            assert upstream in by_output[downstream].leaves
