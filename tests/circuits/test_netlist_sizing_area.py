"""Netlist construction, sizing and area tests calibrated against Table 2.

Transistor counts and normalized areas of the paper's Table 2 are exact
consequences of the sizing rules of Sec. 4; these tests pin a representative
subset of cells to the published values.
"""

import pytest

from repro.circuits import CellStyle, build_cell_netlist, cell_area, network_from_expr
from repro.circuits.sizing import (
    allocate_resistance,
    literal_device_width,
    pass_transistor_width,
    transmission_gate_width,
)
from repro.devices import CMOS_32NM, CNTFET_32NM, DeviceRole
from repro.logic import parse_expr


def _cell(expr_text, style, name="cell"):
    allow_xor = style is not CellStyle.CMOS_STATIC
    network = network_from_expr(parse_expr(expr_text), allow_xor=allow_xor)
    return build_cell_netlist(name, network, style)


class TestSizingPrimitives:
    def test_series_allocation_splits_budget(self):
        net = network_from_expr(parse_expr("A & B & C"))
        allocation = allocate_resistance(net, 1.0)
        assert len(allocation) == 3
        for entry in allocation:
            assert entry.resistance == pytest.approx(1 / 3)

    def test_parallel_allocation_keeps_budget(self):
        net = network_from_expr(parse_expr("A | B"))
        for entry in allocate_resistance(net, 1.0):
            assert entry.resistance == pytest.approx(1.0)

    def test_nested_allocation(self):
        net = network_from_expr(parse_expr("(A | B) & C"))
        resistances = sorted(e.resistance for e in allocate_resistance(net, 1.0))
        assert resistances == pytest.approx([0.5, 0.5, 0.5])

    def test_allocation_rejects_non_positive_budget(self):
        net = network_from_expr(parse_expr("A"))
        with pytest.raises(ValueError):
            allocate_resistance(net, 0.0)

    def test_device_width_rules(self):
        assert literal_device_width(1.0, False, CNTFET_32NM) == 1.0
        assert literal_device_width(1.0, True, CNTFET_32NM) == 1.0
        assert literal_device_width(0.5, True, CMOS_32NM) == 4.0
        assert transmission_gate_width(1.0) == pytest.approx(2 / 3)
        assert transmission_gate_width(0.5) == pytest.approx(4 / 3)
        assert pass_transistor_width(1.0) == pytest.approx(2.0)


class TestTransmissionGateStaticCells:
    """Transistor count / area columns of Table 2, CNTFET TG static logic."""

    @pytest.mark.parametrize(
        "expr,count,area",
        [
            ("A", 2, 2.0),                                # F00
            ("A ^ B", 4, 8 / 3),                          # F01
            ("A | B", 4, 6.0),                            # F02
            ("A & B", 4, 6.0),                            # F03
            ("(A ^ B) | C", 6, 7.0),                      # F04
            ("(A ^ B) & C", 6, 7.0),                      # F05
            ("(A ^ B) | (A ^ C)", 8, 8.0),                # F06
            ("(A ^ B) | (C ^ D)", 8, 8.0),                # F08
            ("A | B | C", 6, 12.0),                       # F10
            ("A & B & C", 6, 12.0),                       # F13
            ("(A ^ D) | (B ^ D) | (C ^ D)", 12, 16.0),    # F16
            ("(A ^ D) | (B ^ E) | (C ^ F)", 12, 16.0),    # F42
        ],
    )
    def test_count_and_area_match_table2(self, expr, count, area):
        cell = _cell(expr, CellStyle.TRANSMISSION_GATE_STATIC)
        assert cell.transistor_count() == count
        assert cell_area(cell) == pytest.approx(area, abs=0.05)

    def test_inverter_special_case(self):
        # F00 is a plain complementary inverter: one n and one p device.
        cell = _cell("A", CellStyle.TRANSMISSION_GATE_STATIC)
        roles = sorted(d.role.value for d in cell.devices)
        assert roles == ["pull-down", "pull-up"]

    def test_area_with_output_inverter(self):
        cell = _cell("A ^ B", CellStyle.TRANSMISSION_GATE_STATIC)
        assert cell_area(cell, with_output_inverter=True) == pytest.approx(8 / 3 + 2)


class TestTransmissionGatePseudoCells:
    """Transistor count / area columns of Table 2, CNTFET TG pseudo logic."""

    @pytest.mark.parametrize(
        "expr,count,area",
        [
            ("A", 2, 5 / 3),                 # F00: 1.7
            ("A ^ B", 3, 1.78 + 1 / 3),      # F01: 2.1
            ("A | B", 3, 3.0),               # F02
            ("A & B", 3, 17 / 3),            # F03: 5.7
            # F05: the paper reports T=5 / A=6.6; our construction uses 4
            # devices (TG + literal + load) with the same 6.56 area -- see
            # EXPERIMENTS.md for the transistor-count convention difference.
            ("(A ^ B) & C", 4, 6.56),
            ("A | B | C", 4, 13 / 3),        # F10: 4.3
            ("A & B & C", 4, 12 + 1 / 3),    # F13: 12.3
        ],
    )
    def test_count_and_area_match_table2(self, expr, count, area):
        cell = _cell(expr, CellStyle.TRANSMISSION_GATE_PSEUDO)
        assert cell.transistor_count() == count
        assert cell_area(cell) == pytest.approx(area, abs=0.1)

    def test_pseudo_has_single_weak_load(self):
        cell = _cell("A | B", CellStyle.TRANSMISSION_GATE_PSEUDO)
        loads = cell.devices_with_role(DeviceRole.PSEUDO_LOAD)
        assert len(loads) == 1
        assert loads[0].width == pytest.approx(1 / 3)
        assert loads[0].gate is None

    def test_pseudo_pd_upsized_four_thirds(self):
        static = _cell("A | B", CellStyle.TRANSMISSION_GATE_STATIC)
        pseudo = _cell("A | B", CellStyle.TRANSMISSION_GATE_PSEUDO)
        static_pd = sorted(d.width for d in static.devices_with_role(DeviceRole.PULL_DOWN))
        pseudo_pd = sorted(d.width for d in pseudo.devices_with_role(DeviceRole.PULL_DOWN))
        for s, p in zip(static_pd, pseudo_pd):
            assert p == pytest.approx(s * 4 / 3)


class TestPassTransistorCells:
    def test_pass_pseudo_f01_area(self):
        # Fig. 5 / Table 2: single pass transistor sized 8/3 plus 1/3 load -> 3.
        cell = _cell("A ^ B", CellStyle.PASS_TRANSISTOR_PSEUDO)
        assert cell.transistor_count() == 2
        assert cell_area(cell) == pytest.approx(3.0, abs=0.05)

    def test_pass_static_f01(self):
        # Two pass transistors sized 2 each (PU and PD) -> area 4, T = 2.
        cell = _cell("A ^ B", CellStyle.PASS_TRANSISTOR_STATIC)
        assert cell.transistor_count() == 2
        assert cell_area(cell) == pytest.approx(4.0)

    def test_pass_transistors_larger_than_tg_for_same_drive(self):
        # Sec. 4.2: a pass transistor needs area 2A per unit drive versus 4A/3
        # for a transmission gate, despite halving the device count.
        tg = _cell("(A ^ B) & C", CellStyle.TRANSMISSION_GATE_STATIC)
        pt = _cell("(A ^ B) & C", CellStyle.PASS_TRANSISTOR_STATIC)
        assert pt.transistor_count() < tg.transistor_count()
        tg_xor_area = sum(d.width for d in tg.devices if not d.polarity.is_fixed)
        pt_xor_area = sum(d.width for d in pt.devices if not d.polarity.is_fixed)
        assert pt_xor_area > tg_xor_area


class TestCmosCells:
    """Transistor count / area columns of Table 2, CMOS static logic."""

    @pytest.mark.parametrize(
        "expr,count,area",
        [
            ("A", 2, 3.0),              # CMOS inverter: Wn=1, Wp=2 -> paper normalizes to 2
            ("A | B", 4, 10.0),         # NOR2
            ("A & B", 4, 8.0),          # NAND2
            ("A | B | C", 6, 21.0),     # NOR3
            ("(A | B) & C", 6, 16.0),   # OAI21
            ("A | (B & C)", 6, 17.0),   # AOI21
            ("A & B & C", 6, 15.0),     # NAND3
        ],
    )
    def test_count_and_area(self, expr, count, area):
        cell = _cell(expr, CellStyle.CMOS_STATIC)
        assert cell.transistor_count() == count
        if expr == "A":
            # The paper reports area 2 for the CMOS inverter (unit-transistor
            # normalization); our raw W/L sum is 3.  Both are recorded.
            assert cell_area(cell) == pytest.approx(3.0)
        else:
            assert cell_area(cell) == pytest.approx(area)

    def test_cmos_rejects_ambipolar_xor(self):
        with pytest.raises(Exception):
            _cell("A ^ B", CellStyle.CMOS_STATIC)


class TestNetlistStructure:
    def test_nodes_and_internal_nodes(self):
        cell = _cell("A & B & C", CellStyle.TRANSMISSION_GATE_STATIC)
        assert "Y" in cell.nodes()
        # The PD stack of three devices has two internal nodes; the parallel
        # PU network has none.
        assert len(cell.internal_nodes()) == 2

    def test_node_capacitance_sums_widths(self):
        cell = _cell("A | B", CellStyle.TRANSMISSION_GATE_STATIC)
        # Output node: two PD devices (W=1) and the bottom PU device (W=2).
        assert cell.node_capacitance("Y") == pytest.approx(4.0)

    def test_signal_capacitance_counts_polarity_gates(self):
        cell = _cell("A ^ B", CellStyle.TRANSMISSION_GATE_STATIC)
        from repro.devices import Literal

        # B drives the polarity gates of one PD device and one PU device (2/3 each).
        assert cell.signal_capacitance(Literal("B")) == pytest.approx(4 / 3)

    def test_input_signals_sorted(self):
        cell = _cell("(C ^ A) | B", CellStyle.TRANSMISSION_GATE_STATIC)
        assert cell.input_signals == ("A", "B", "C")
