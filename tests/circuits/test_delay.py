"""FO4 delay model tests calibrated against Table 2 of the paper.

The simple cells (inverter, NOR2, NAND2, XNOR) have closed-form logical-effort
FO4 values that the paper reports exactly; more complex cells are checked for
the qualitative orderings the paper derives (static transmission-gate cells
fastest, pass-transistor pseudo cells slowest, XNOR faster than the inverter).
"""

import pytest

from repro.circuits import (
    CellStyle,
    build_cell_netlist,
    characterize_delay,
    network_from_expr,
)
from repro.logic import parse_expr


def _delay(expr_text, style):
    allow_xor = style is not CellStyle.CMOS_STATIC
    network = network_from_expr(parse_expr(expr_text), allow_xor=allow_xor)
    cell = build_cell_netlist("cell", network, style)
    return characterize_delay(cell)


class TestCntfetStaticDelays:
    def test_inverter_fo4_is_five(self):
        report = _delay("A", CellStyle.TRANSMISSION_GATE_STATIC)
        assert report.fo4_average == pytest.approx(5.0, rel=0.01)
        assert report.fo4_worst == pytest.approx(5.0, rel=0.01)

    def test_xnor_faster_than_inverter(self):
        # Table 2, F01: FO4 = 4 < 5; the paper highlights this property.
        report = _delay("A ^ B", CellStyle.TRANSMISSION_GATE_STATIC)
        assert report.fo4_average == pytest.approx(4.0, rel=0.02)
        assert report.fo4_average < 5.0

    def test_nor2_and_nand2_symmetric(self):
        nor2 = _delay("A | B", CellStyle.TRANSMISSION_GATE_STATIC)
        nand2 = _delay("A & B", CellStyle.TRANSMISSION_GATE_STATIC)
        # Table 2: both are 8 on average (equal n/p resistance).
        assert nor2.fo4_average == pytest.approx(8.0, rel=0.02)
        assert nand2.fo4_average == pytest.approx(8.0, rel=0.02)

    def test_f04_average_close_to_paper(self):
        report = _delay("(A ^ B) | C", CellStyle.TRANSMISSION_GATE_STATIC)
        # Paper: 6.6 average, 8.2 worst.
        assert report.fo4_average == pytest.approx(6.6, rel=0.12)
        assert report.fo4_worst >= report.fo4_average

    def test_parasitic_and_effort_of_inverter(self):
        report = _delay("A", CellStyle.TRANSMISSION_GATE_STATIC)
        assert report.parasitic_output == pytest.approx(1.0)
        from repro.devices import Literal

        assert report.logical_effort[Literal("A")] == pytest.approx(1.0)


class TestCmosDelays:
    def test_cmos_inverter(self):
        report = _delay("A", CellStyle.CMOS_STATIC)
        assert report.fo4_average == pytest.approx(5.0, rel=0.01)

    def test_cmos_nor2_slower_than_nand2(self):
        nor2 = _delay("A | B", CellStyle.CMOS_STATIC)
        nand2 = _delay("A & B", CellStyle.CMOS_STATIC)
        # Table 2: 8.7 vs 7.3 -- the series p-stack penalizes the CMOS NOR.
        assert nor2.fo4_average == pytest.approx(8.67, rel=0.02)
        assert nand2.fo4_average == pytest.approx(7.33, rel=0.02)
        assert nor2.fo4_average > nand2.fo4_average

    def test_cntfet_nor2_faster_than_cmos_nor2(self):
        cmos = _delay("A | B", CellStyle.CMOS_STATIC)
        cntfet = _delay("A | B", CellStyle.TRANSMISSION_GATE_STATIC)
        assert cntfet.fo4_average < cmos.fo4_average


class TestPseudoAndPassDelays:
    def test_pseudo_slower_than_static(self):
        static = _delay("(A ^ B) & C", CellStyle.TRANSMISSION_GATE_STATIC)
        pseudo = _delay("(A ^ B) & C", CellStyle.TRANSMISSION_GATE_PSEUDO)
        assert pseudo.fo4_average > static.fo4_average

    def test_pseudo_inverter_close_to_paper(self):
        report = _delay("A", CellStyle.TRANSMISSION_GATE_PSEUDO)
        # Paper F00 pseudo: 7.
        assert report.fo4_average == pytest.approx(7.0, rel=0.15)

    def test_pass_pseudo_much_slower_than_tg_pseudo(self):
        tg = _delay("A ^ B", CellStyle.TRANSMISSION_GATE_PSEUDO)
        pt = _delay("A ^ B", CellStyle.PASS_TRANSISTOR_PSEUDO)
        # Paper F01: 5.7 vs 13.7 -- more than 2x slower.
        assert pt.fo4_average > 1.8 * tg.fo4_average

    def test_worst_not_less_than_average(self):
        for style in (
            CellStyle.TRANSMISSION_GATE_STATIC,
            CellStyle.TRANSMISSION_GATE_PSEUDO,
            CellStyle.PASS_TRANSISTOR_PSEUDO,
        ):
            report = _delay("(A ^ D) | (B ^ D) | (C ^ D)", style)
            assert report.fo4_worst >= report.fo4_average - 1e-9

    def test_scaling_to_picoseconds(self):
        report = _delay("A", CellStyle.TRANSMISSION_GATE_STATIC)
        assert report.scaled_average(0.59) == pytest.approx(report.fo4_average * 0.59)
        assert report.scaled_worst(0.59) >= report.scaled_average(0.59)


class TestPerSignalReports:
    def test_every_input_gets_a_value(self):
        report = _delay("((A ^ D) | B) & C", CellStyle.TRANSMISSION_GATE_STATIC)
        assert set(report.fo4_per_signal) == {"A", "B", "C", "D"}
        for value in report.fo4_per_signal.values():
            assert value > 0
