"""Unit tests for the series-parallel switch network algebra."""

import pytest

from repro.circuits.sp_network import (
    LiteralSwitch,
    NetworkCompilationError,
    Parallel,
    Series,
    XorSwitch,
    network_from_expr,
    parallel,
    series,
)
from repro.devices import Literal
from repro.logic import parse_expr


def _env(**kwargs):
    return {k: bool(v) for k, v in kwargs.items()}


class TestLeaves:
    def test_literal_switch(self):
        switch = LiteralSwitch(Literal("A"))
        assert switch.conducts(_env(A=1))
        assert not switch.conducts(_env(A=0))

    def test_negated_literal_switch(self):
        switch = LiteralSwitch(Literal("A", negated=True))
        assert switch.conducts(_env(A=0))

    def test_xor_switch(self):
        switch = XorSwitch(Literal("A"), Literal("B"))
        assert switch.conducts(_env(A=1, B=0))
        assert not switch.conducts(_env(A=1, B=1))

    def test_literal_dual_is_complement(self):
        switch = LiteralSwitch(Literal("A"))
        dual = switch.dual()
        for a in (False, True):
            assert switch.conducts(_env(A=a)) != dual.conducts(_env(A=a))

    def test_xor_dual_is_xnor(self):
        switch = XorSwitch(Literal("A"), Literal("B"))
        dual = switch.dual()
        for a in (0, 1):
            for b in (0, 1):
                assert switch.conducts(_env(A=a, B=b)) != dual.conducts(_env(A=a, B=b))


class TestComposition:
    def test_series_requires_all(self):
        net = Series((LiteralSwitch(Literal("A")), LiteralSwitch(Literal("B"))))
        assert net.conducts(_env(A=1, B=1))
        assert not net.conducts(_env(A=1, B=0))

    def test_parallel_requires_any(self):
        net = Parallel((LiteralSwitch(Literal("A")), LiteralSwitch(Literal("B"))))
        assert net.conducts(_env(A=0, B=1))
        assert not net.conducts(_env(A=0, B=0))

    def test_composition_needs_two_children(self):
        with pytest.raises(ValueError):
            Series((LiteralSwitch(Literal("A")),))
        with pytest.raises(ValueError):
            Parallel((LiteralSwitch(Literal("A")),))

    def test_helpers_flatten(self):
        net = series(
            LiteralSwitch(Literal("A")),
            series(LiteralSwitch(Literal("B")), LiteralSwitch(Literal("C"))),
        )
        assert isinstance(net, Series)
        assert len(net.children) == 3
        net2 = parallel(
            LiteralSwitch(Literal("A")),
            parallel(LiteralSwitch(Literal("B")), LiteralSwitch(Literal("C"))),
        )
        assert isinstance(net2, Parallel)
        assert len(net2.children) == 3

    def test_series_depth(self):
        net = series(
            LiteralSwitch(Literal("A")),
            parallel(
                series(LiteralSwitch(Literal("B")), LiteralSwitch(Literal("C"))),
                LiteralSwitch(Literal("D")),
            ),
        )
        assert net.series_depth() == 3

    def test_signals_sorted_unique(self):
        net = parallel(
            XorSwitch(Literal("B"), Literal("A")),
            LiteralSwitch(Literal("A")),
        )
        assert net.signals() == ("A", "B")

    def test_dual_complements_conduction_everywhere(self):
        expr = parse_expr("(A ^ B) & C | D")
        net = network_from_expr(expr)
        dual = net.dual()
        order = ["A", "B", "C", "D"]
        table = net.conduction_table(order)
        dual_table = dual.conduction_table(order)
        assert dual_table == ~table


class TestCompilation:
    @pytest.mark.parametrize(
        "text",
        [
            "A",
            "A'",
            "A ^ B",
            "(A ^ B) + C",
            "(A ^ B) . C",
            "(A ^ D) + ((B ^ E) . (C ^ F))",
            "A + (B . C)",
        ],
    )
    def test_compiled_network_matches_expression(self, text):
        expr = parse_expr(text)
        net = network_from_expr(expr)
        order = list(expr.variables())
        assert net.conduction_table(order) == expr.to_truth_table(order)

    def test_not_over_subexpression_uses_dual(self):
        expr = parse_expr("!(A & B)")
        net = network_from_expr(expr)
        order = ["A", "B"]
        assert net.conduction_table(order) == expr.to_truth_table(order)

    def test_cmos_mode_rejects_xor(self):
        with pytest.raises(NetworkCompilationError):
            network_from_expr(parse_expr("A ^ B"), allow_xor=False)

    def test_xor_of_non_literals_rejected(self):
        with pytest.raises(NetworkCompilationError):
            network_from_expr(parse_expr("(A & B) ^ C"))

    def test_constant_rejected(self):
        with pytest.raises(NetworkCompilationError):
            network_from_expr(parse_expr("1"))

    def test_conduction_table_requires_signals_in_order(self):
        net = network_from_expr(parse_expr("A & B"))
        with pytest.raises(ValueError):
            net.conduction_table(["A"])

    def test_leaf_count(self):
        net = network_from_expr(parse_expr("(A ^ B) + (C ^ D)"))
        assert net.leaf_count() == 2
