"""Switch-level simulation tests: functional correctness and full swing.

These tests reproduce the qualitative claims of Sec. 3 of the paper:

* every static transmission-gate cell computes the complement of its Table-1
  function at the output node, with full swing for every input assignment;
* a pull network built from pass transistors (or the dynamic GNOR of Fig. 2)
  exhibits degraded levels for some assignments, which is exactly why the
  transmission-gate construction and the restoration stages exist.
"""

import pytest

from repro.circuits import (
    CellStyle,
    build_cell_netlist,
    network_from_expr,
    simulate_cell,
)
from repro.circuits.switch_sim import verify_cell_function
from repro.logic import parse_expr

TABLE1_SAMPLE = [
    "A",
    "A ^ B",
    "A | B",
    "A & B",
    "(A ^ B) | C",
    "(A ^ B) & C",
    "(A ^ B) | (A ^ C)",
    "(A ^ B) & (A ^ C)",
    "(A ^ B) | (C ^ D)",
    "(A ^ B) & (C ^ D)",
    "A | B | C",
    "(A | B) & C",
    "A | (B & C)",
    "A & B & C",
    "(A ^ D) | (B ^ D) | (C ^ D)",
    "((A ^ D) | (B ^ D)) & (C ^ D)",
    "(A ^ D) | ((B ^ E) & (C ^ F))",
    "(A ^ D) & (B ^ E) & (C ^ F)",
]


def _expected_output(expr_text):
    expr = parse_expr(expr_text)
    order = sorted(expr.variables())
    return ~expr.to_truth_table(order)


class TestTransmissionGateStatic:
    @pytest.mark.parametrize("expr_text", TABLE1_SAMPLE)
    def test_output_is_complement_of_function(self, expr_text):
        network = network_from_expr(parse_expr(expr_text))
        cell = build_cell_netlist("cell", network, CellStyle.TRANSMISSION_GATE_STATIC)
        result = verify_cell_function(cell, _expected_output(expr_text))
        assert result.is_well_formed

    @pytest.mark.parametrize("expr_text", TABLE1_SAMPLE)
    def test_full_swing_everywhere(self, expr_text):
        network = network_from_expr(parse_expr(expr_text))
        cell = build_cell_netlist("cell", network, CellStyle.TRANSMISSION_GATE_STATIC)
        result = simulate_cell(cell)
        assert result.is_full_swing, (
            f"{expr_text}: degraded levels at minterms {result.degraded_minterms}"
        )


class TestPseudoLogic:
    @pytest.mark.parametrize("expr_text", TABLE1_SAMPLE)
    def test_pseudo_output_function(self, expr_text):
        network = network_from_expr(parse_expr(expr_text))
        cell = build_cell_netlist("cell", network, CellStyle.TRANSMISSION_GATE_PSEUDO)
        verify_cell_function(cell, _expected_output(expr_text))

    def test_pseudo_never_floats(self):
        network = network_from_expr(parse_expr("(A ^ B) & C"))
        cell = build_cell_netlist("cell", network, CellStyle.TRANSMISSION_GATE_PSEUDO)
        result = simulate_cell(cell)
        assert not result.floating_minterms

    def test_pseudo_high_level_is_full_swing(self):
        # The always-on p-type load restores the high level fully.
        network = network_from_expr(parse_expr("(A ^ B) | C"))
        cell = build_cell_netlist("cell", network, CellStyle.TRANSMISSION_GATE_PSEUDO)
        result = simulate_cell(cell)
        assert result.is_full_swing


class TestPassTransistorDegradation:
    def test_pass_transistor_pd_degrades_low_level(self):
        # With a single ambipolar pass transistor in the PD network, the
        # assignments that configure it as p-type pull the output down only to
        # |VTp| (Sec. 3.2) -> flagged as degraded.
        network = network_from_expr(parse_expr("A ^ B"))
        cell = build_cell_netlist("cell", network, CellStyle.PASS_TRANSISTOR_STATIC)
        result = simulate_cell(cell)
        assert not result.is_full_swing
        assert result.degraded_minterms

    def test_pass_transistor_still_functionally_correct(self):
        network = network_from_expr(parse_expr("(A ^ B) & C"))
        cell = build_cell_netlist("cell", network, CellStyle.PASS_TRANSISTOR_STATIC)
        verify_cell_function(cell, _expected_output("(A ^ B) & C"))

    def test_dynamic_gnor_weakness_reproduced(self):
        # Fig. 2: the dynamic GNOR pull-down formed exclusively by p-type
        # devices (B = D = 1) cannot pull the output to a full low level.
        # We model its PD network as two parallel pass-transistor XOR switches.
        network = network_from_expr(parse_expr("(A ^ B) | (C ^ D)"))
        cell = build_cell_netlist("gnor", network, CellStyle.PASS_TRANSISTOR_PSEUDO)
        result = simulate_cell(cell)
        order = result.input_order
        degraded_envs = [
            {name: bool((m >> i) & 1) for i, name in enumerate(order)}
            for m in result.degraded_minterms
        ]
        # Some degraded assignment has both control signals high, the exact
        # scenario described in Sec. 3.
        assert any(env["B"] and env["D"] for env in degraded_envs)


class TestWellFormedness:
    def test_static_cells_never_float_or_contend(self):
        for expr_text in TABLE1_SAMPLE:
            network = network_from_expr(parse_expr(expr_text))
            cell = build_cell_netlist("cell", network, CellStyle.TRANSMISSION_GATE_STATIC)
            result = simulate_cell(cell)
            assert result.is_well_formed

    def test_cmos_nor2_function(self):
        network = network_from_expr(parse_expr("A | B"), allow_xor=False)
        cell = build_cell_netlist("nor2", network, CellStyle.CMOS_STATIC)
        result = verify_cell_function(cell, _expected_output("A | B"))
        assert result.is_full_swing

    def test_verify_cell_function_raises_on_mismatch(self):
        network = network_from_expr(parse_expr("A | B"))
        cell = build_cell_netlist("nor2", network, CellStyle.TRANSMISSION_GATE_STATIC)
        with pytest.raises(AssertionError):
            verify_cell_function(cell, _expected_output("A & B"))

    def test_simulation_input_limit(self):
        text = " | ".join(f"X{i}" for i in range(13))
        network = network_from_expr(parse_expr(text))
        cell = build_cell_netlist("wide", network, CellStyle.TRANSMISSION_GATE_STATIC)
        with pytest.raises(ValueError):
            simulate_cell(cell)
