"""Tests for the Table-1 function set (F00..F45)."""

import pytest

from repro.core import CMOS_FUNCTION_IDS, TABLE1_FUNCTIONS, function_by_id
from repro.core.functions import cmos_functions
from repro.logic import TruthTable


class TestTableShape:
    def test_there_are_46_functions(self):
        # The headline claim of Sec. 3.1: 46 functions vs. 7 for CMOS.
        assert len(TABLE1_FUNCTIONS) == 46

    def test_ids_are_f00_to_f45_in_order(self):
        assert [spec.function_id for spec in TABLE1_FUNCTIONS] == [
            f"F{i:02d}" for i in range(46)
        ]

    def test_cmos_subset_has_7_functions(self):
        assert len(CMOS_FUNCTION_IDS) == 7
        assert set(CMOS_FUNCTION_IDS) == {"F00", "F02", "F03", "F10", "F11", "F12", "F13"}

    def test_cmos_functions_have_no_xor(self):
        for spec in cmos_functions():
            assert not spec.uses_xor()

    def test_all_non_cmos_functions_use_xor(self):
        for spec in TABLE1_FUNCTIONS:
            if spec.function_id not in CMOS_FUNCTION_IDS:
                assert spec.uses_xor(), spec.function_id

    def test_lookup_by_id(self):
        assert function_by_id("F05").expression_text == "(A ^ B) & C"
        with pytest.raises(KeyError):
            function_by_id("F99")


class TestFunctionSemantics:
    def test_functions_are_pairwise_distinct(self):
        # Distinctness up to the shared 6-variable space A..F.
        variables = ("A", "B", "C", "D", "E", "F")
        seen = {}
        for spec in TABLE1_FUNCTIONS:
            table = spec.expression.to_truth_table(variables)
            assert table.bits not in seen, (
                f"{spec.function_id} duplicates {seen.get(table.bits)}"
            )
            seen[table.bits] = spec.function_id

    def test_arity_never_exceeds_six(self):
        for spec in TABLE1_FUNCTIONS:
            assert 1 <= spec.arity <= 6

    def test_input_names_sorted(self):
        for spec in TABLE1_FUNCTIONS:
            assert list(spec.input_names) == sorted(spec.input_names)

    @pytest.mark.parametrize(
        "fid,assignment,value",
        [
            ("F01", {"A": 1, "B": 0}, True),
            ("F01", {"A": 1, "B": 1}, False),
            ("F05", {"A": 1, "B": 0, "C": 1}, True),
            ("F05", {"A": 1, "B": 1, "C": 1}, False),
            ("F09", {"A": 1, "B": 0, "C": 0, "D": 1}, True),
            ("F16", {"A": 0, "B": 0, "C": 0, "D": 0}, False),
            ("F16", {"A": 1, "B": 0, "C": 0, "D": 0}, True),
            ("F45", {"A": 1, "B": 1, "C": 1, "D": 0, "E": 0, "F": 0}, True),
        ],
    )
    def test_spot_values(self, fid, assignment, value):
        spec = function_by_id(fid)
        env = {k: bool(v) for k, v in assignment.items()}
        assert spec.expression.evaluate(env) is value

    def test_truth_table_support_matches_inputs(self):
        for spec in TABLE1_FUNCTIONS:
            table = spec.truth_table()
            assert table.num_vars == spec.arity
            # Every declared input is in the functional support.
            assert table.support() == tuple(range(spec.arity))

    def test_series_parallel_constraint_of_table1(self):
        # Table 1 is defined by "no more than 3 series transmission gates or
        # transistors in each PU/PD network": check the pull-down depth and
        # its dual's depth never exceed 3 terms.
        from repro.circuits import network_from_expr

        for spec in TABLE1_FUNCTIONS:
            network = network_from_expr(spec.expression)
            assert network.series_depth() <= 3, spec.function_id
            assert network.dual().series_depth() <= 3, spec.function_id
