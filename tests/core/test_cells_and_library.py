"""Tests for cell construction, the gate libraries and Table-2 characterization."""

import pytest

from repro.circuits.netlist import CellStyle
from repro.core import (
    LogicFamily,
    build_family_cells,
    build_library,
    characterize_cell,
    characterize_family,
    function_by_id,
)
from repro.core.cell import CellConstructionError, build_cell
from repro.core.paper_data import PAPER_TABLE2, PAPER_TABLE2_AVERAGES


@pytest.fixture(scope="module")
def tg_static_library():
    return build_library(LogicFamily.TG_STATIC)


@pytest.fixture(scope="module")
def cmos_library():
    return build_library(LogicFamily.CMOS)


class TestCellConstruction:
    def test_build_single_cell(self):
        cell = build_cell(function_by_id("F05"), CellStyle.TRANSMISSION_GATE_STATIC)
        assert cell.function_id == "F05"
        assert cell.transistor_count == 6
        assert cell.area == pytest.approx(7.0)
        assert cell.full_swing
        assert cell.output_function == ~cell.function

    def test_cmos_cannot_build_xor_cell(self):
        with pytest.raises(CellConstructionError):
            build_cell(function_by_id("F01"), CellStyle.CMOS_STATIC)

    def test_cell_delay_in_picoseconds(self):
        cell = build_cell(function_by_id("F00"), CellStyle.TRANSMISSION_GATE_STATIC)
        assert cell.delay_average_ps() == pytest.approx(cell.delay.fo4_average * 0.59)
        assert cell.delay_worst_ps() >= cell.delay_average_ps()

    def test_pass_static_cells_not_full_swing(self):
        cell = build_cell(function_by_id("F01"), CellStyle.PASS_TRANSISTOR_STATIC)
        assert not cell.full_swing


class TestLibraries:
    def test_tg_static_library_has_46_cells(self, tg_static_library):
        assert len(tg_static_library) == 46

    def test_cmos_library_has_7_cells(self, cmos_library):
        assert len(cmos_library) == 7

    def test_expressive_power_ratio(self, tg_static_library, cmos_library):
        # The central expressive-power claim: 46 vs 7 with the same topology.
        assert len(tg_static_library) / len(cmos_library) > 6

    def test_lookup_and_inverter(self, tg_static_library):
        assert tg_static_library.cell("F13").function_id == "F13"
        assert tg_static_library.inverter().function_id == "F00"
        with pytest.raises(KeyError):
            tg_static_library.cell("F99")

    def test_family_restriction(self):
        cells = build_family_cells(LogicFamily.TG_STATIC, function_ids=("F00", "F01"))
        assert [c.function_id for c in cells] == ["F00", "F01"]
        with pytest.raises(KeyError):
            build_family_cells(LogicFamily.CMOS, function_ids=("F01",))

    def test_max_arity(self, tg_static_library, cmos_library):
        assert tg_static_library.max_arity == 6
        assert cmos_library.max_arity == 3

    def test_genlib_export(self, tg_static_library):
        text = tg_static_library.to_genlib()
        assert text.count("GATE ") == 46
        assert "F05_tg_static" in text
        assert "PIN " in text

    def test_all_tg_static_cells_full_swing(self, tg_static_library):
        assert all(cell.full_swing for cell in tg_static_library)

    def test_library_caching(self):
        assert build_library(LogicFamily.TG_STATIC) is build_library(LogicFamily.TG_STATIC)


class TestTable2Agreement:
    """Transistor counts and areas must match the published Table 2 exactly
    for the static transmission-gate family and the CMOS family; FO4 values
    must be close (the paper's RC model and ours differ in worst-case state
    enumeration, see DESIGN.md)."""

    def test_tg_static_transistor_counts_match_paper(self, tg_static_library):
        mismatches = []
        for cell in tg_static_library:
            paper = PAPER_TABLE2[cell.function_id]["tg_static"]
            if cell.transistor_count != paper.transistors:
                mismatches.append((cell.function_id, cell.transistor_count, paper.transistors))
        # F34 is reported with 14 transistors in the paper (a typo: its form
        # ((A^D)+(B^D))(C^E) needs 12 like F35); allow that single exception.
        assert all(fid == "F34" for fid, _, _ in mismatches), mismatches

    def test_tg_static_areas_match_paper(self, tg_static_library):
        # F34 is a paper typo (see transistor-count test).  F44 and F45 are
        # reported as 16.0 / 14.7 although their structural twins with shared
        # control variables (F26/F39 and F29) -- identical topologies -- are
        # reported with the swapped values; the sizing rules give the twin
        # values.  All three discrepancies are documented in EXPERIMENTS.md.
        exceptions = {"F34", "F44", "F45"}
        for cell in tg_static_library:
            paper = PAPER_TABLE2[cell.function_id]["tg_static"]
            if cell.function_id in exceptions:
                continue
            assert cell.area == pytest.approx(paper.area, abs=0.06), cell.function_id

    def test_cmos_areas_match_paper(self, cmos_library):
        for cell in cmos_library:
            paper = PAPER_TABLE2[cell.function_id]["cmos"]
            if cell.function_id == "F00":
                # Paper normalizes the CMOS inverter to area 2; our physical
                # W/L sum is 3 (Wp=2, Wn=1).  Documented in EXPERIMENTS.md.
                assert cell.area == pytest.approx(3.0)
                continue
            assert cell.area == pytest.approx(paper.area), cell.function_id

    def test_tg_static_average_fo4_close_to_paper(self, tg_static_library):
        _, summary = characterize_family(tg_static_library)
        paper_avg = PAPER_TABLE2_AVERAGES["tg_static"]
        assert summary.average_fo4 == pytest.approx(paper_avg.fo4_average, rel=0.2)
        assert summary.average_area == pytest.approx(paper_avg.area, rel=0.05)

    def test_cmos_average_close_to_paper(self, cmos_library):
        _, summary = characterize_family(cmos_library)
        paper_avg = PAPER_TABLE2_AVERAGES["cmos"]
        assert summary.average_fo4 == pytest.approx(paper_avg.fo4_average, rel=0.2)

    def test_characterize_cell_fields(self, tg_static_library):
        row = characterize_cell(tg_static_library.cell("F01"))
        assert row.function_id == "F01"
        assert row.transistors == 4
        assert row.area_with_inverter > row.area
        assert row.fo4_average_with_inverter > row.fo4_average
        assert row.full_swing


class TestFamilyOrderings:
    """Qualitative family-level claims of Sec. 4.3."""

    @pytest.fixture(scope="class")
    def summaries(self):
        results = {}
        for family in (LogicFamily.TG_STATIC, LogicFamily.TG_PSEUDO, LogicFamily.PASS_PSEUDO):
            library = build_library(family)
            _, summary = characterize_family(library)
            results[family] = summary
        return results

    def test_pseudo_saves_area_over_static(self, summaries):
        static = summaries[LogicFamily.TG_STATIC]
        pseudo = summaries[LogicFamily.TG_PSEUDO]
        # Paper: 8.5 vs 12.3 average area (~31% smaller).
        assert pseudo.average_area < 0.8 * static.average_area

    def test_pseudo_slower_than_static(self, summaries):
        static = summaries[LogicFamily.TG_STATIC]
        pseudo = summaries[LogicFamily.TG_PSEUDO]
        assert pseudo.average_fo4 > static.average_fo4

    def test_pass_pseudo_is_the_worst_choice(self, summaries):
        tg_pseudo = summaries[LogicFamily.TG_PSEUDO]
        pass_pseudo = summaries[LogicFamily.PASS_PSEUDO]
        # Paper: 2x slower on average and not much smaller.
        assert pass_pseudo.average_fo4 > 1.5 * tg_pseudo.average_fo4

    def test_transistor_count_ordering(self, summaries):
        static = summaries[LogicFamily.TG_STATIC]
        pseudo = summaries[LogicFamily.TG_PSEUDO]
        pass_pseudo = summaries[LogicFamily.PASS_PSEUDO]
        assert static.average_transistors > pseudo.average_transistors
        assert pseudo.average_transistors > pass_pseudo.average_transistors
