"""Tests for the Sec. 5 regular-fabric model (GNOR / GNAND blocks)."""

import pytest

from repro.core import function_by_id
from repro.core.regular_fabric import (
    BlockKind,
    FabricConfigurationError,
    GeneralizedGate,
    RegularFabric,
)


def _all_assignments(names):
    for minterm in range(1 << len(names)):
        yield {name: bool((minterm >> i) & 1) for i, name in enumerate(names)}


class TestGeneralizedGate:
    def test_unconfigured_gnor_outputs_one(self):
        gate = GeneralizedGate(BlockKind.GNOR)
        assert not gate.is_configured()
        assert gate.evaluate({}) is True

    def test_gnor_realizes_f08(self):
        # F08 = (A^B) + (C^D); the block output is the complement.
        gate = GeneralizedGate(BlockKind.GNOR)
        spec = function_by_id("F08")
        gate.configure(spec)
        for env in _all_assignments(spec.input_names):
            assert gate.evaluate(env) == (not spec.expression.evaluate(env))

    def test_gnand_realizes_f09(self):
        gate = GeneralizedGate(BlockKind.GNAND)
        spec = function_by_id("F09")
        gate.configure(spec)
        for env in _all_assignments(spec.input_names):
            assert gate.evaluate(env) == (not spec.expression.evaluate(env))

    def test_literal_terms_use_constant_polarity(self):
        # F04 = (A^B) + C: the C term ties its polarity input to 0.
        gate = GeneralizedGate(BlockKind.GNOR)
        spec = function_by_id("F04")
        gate.configure(spec)
        for env in _all_assignments(spec.input_names):
            assert gate.evaluate(env) == (not spec.expression.evaluate(env))

    def test_wrong_block_kind_rejected(self):
        gate = GeneralizedGate(BlockKind.GNAND)
        with pytest.raises(FabricConfigurationError):
            gate.configure(function_by_id("F08"))

    def test_mixed_and_or_function_rejected(self):
        # F23 = A + (B^D)C mixes OR and AND: one generalized gate is not enough.
        gate = GeneralizedGate(BlockKind.GNOR)
        with pytest.raises(FabricConfigurationError):
            gate.configure(function_by_id("F23"))

    def test_too_many_terms_rejected(self):
        gate = GeneralizedGate(BlockKind.GNOR, term_count=2)
        with pytest.raises(FabricConfigurationError):
            gate.configure(function_by_id("F16"))

    def test_block_area_positive_and_symmetric(self):
        gnor = GeneralizedGate(BlockKind.GNOR).area()
        gnand = GeneralizedGate(BlockKind.GNAND).area()
        # Fig. 8: the two blocks share the same physical layout (rotated).
        assert gnor == pytest.approx(gnand)
        assert gnor > 0

    def test_signals_listed(self):
        gate = GeneralizedGate(BlockKind.GNOR)
        gate.configure(function_by_id("F16"))
        assert gate.signals() == ("A", "B", "C", "D")


class TestRegularFabric:
    def test_checkerboard_layout(self):
        fabric = RegularFabric(rows=2, columns=2)
        assert fabric.block_at(0, 0).gate.kind is BlockKind.GNOR
        assert fabric.block_at(0, 1).gate.kind is BlockKind.GNAND
        assert fabric.block_at(1, 0).gate.kind is BlockKind.GNAND
        assert fabric.block_at(1, 1).gate.kind is BlockKind.GNOR

    def test_place_or_and_forms(self):
        fabric = RegularFabric(rows=2, columns=2)
        nor_block = fabric.place_function(function_by_id("F16"))
        nand_block = fabric.place_function(function_by_id("F29"))
        assert nor_block.gate.kind is BlockKind.GNOR
        assert nand_block.gate.kind is BlockKind.GNAND
        assert fabric.utilization() == pytest.approx(0.5)

    def test_place_runs_out_of_blocks(self):
        fabric = RegularFabric(rows=1, columns=2)
        fabric.place_function(function_by_id("F08"))
        with pytest.raises(FabricConfigurationError):
            fabric.place_function(function_by_id("F16"))

    def test_unmappable_function_reports_error(self):
        fabric = RegularFabric(rows=2, columns=2)
        with pytest.raises(FabricConfigurationError):
            fabric.place_function(function_by_id("F20"))

    def test_total_area_scales_with_size(self):
        small = RegularFabric(rows=1, columns=2).total_area()
        large = RegularFabric(rows=2, columns=4).total_area()
        assert large == pytest.approx(4 * small / 2 * 2)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            RegularFabric(rows=0, columns=3)

    def test_block_lookup_error(self):
        fabric = RegularFabric(rows=1, columns=1)
        with pytest.raises(KeyError):
            fabric.block_at(3, 3)
